"""Unit tests for individual ranking stage roles via the loopback rig."""

import pytest

from repro.core import LoopbackHarness
from repro.ranking.engine import ScoringEngine
from repro.ranking.models import ModelLibrary
from repro.ranking.stages import RankingPayload
from repro.shell.messages import Packet, PacketKind
from repro.sim import Engine
from repro.workloads import TraceGenerator


@pytest.fixture(scope="module")
def library():
    return ModelLibrary.default(scale=0.03)


@pytest.fixture(scope="module")
def pool():
    gen = TraceGenerator(seed=71)
    return [gen.request(target_size=4_000) for _ in range(4)]


def make_harness(stage, library, pool, seed=51):
    eng = Engine(seed=seed)
    scoring = ScoringEngine(library)
    for request in pool:
        scoring.score(request.document, library[request.document.model_id])
    return eng, LoopbackHarness(eng, stage, scoring)


def roundtrip(eng, harness, request):
    from repro.host.slots import SlotClient

    client = SlotClient(harness.stage_server)
    lease = client.lease()
    out = []

    def thread():
        payload = RankingPayload(document=request.document)
        response = yield from lease.request(
            dst=(0, 0), size_bytes=request.size_bytes, payload=payload
        )
        out.append(response)

    eng.process(thread())
    eng.run()
    return out[0] if out else None


def test_fe_stage_extracts_features(library, pool):
    eng, harness = make_harness("fe", library, pool)
    response = roundtrip(eng, harness, pool[0])
    assert response is not None
    assert response.payload.features  # FE filled the feature dict
    assert harness.role.docs_processed == 1


def test_ffe1_stage_merges_ffe_values(library, pool):
    eng, harness = make_harness("ffe1", library, pool)
    response = roundtrip(eng, harness, pool[0])
    assert response.payload.ffe_merged is not None
    assert len(response.payload.ffe_merged) > 0


def test_compress_stage_packs_vector(library, pool):
    eng, harness = make_harness("compress", library, pool)
    response = roundtrip(eng, harness, pool[1])
    model = library[pool[1].document.model_id]
    assert response.payload.packed is not None
    assert len(response.payload.packed) == len(model.compression)


def test_scoring_bank_accumulates_partial(library, pool):
    eng, harness = make_harness("score0", library, pool)
    response = roundtrip(eng, harness, pool[2])
    model = library[pool[2].document.model_id]
    expected = harness.scoring_engine.bank_partial(pool[2].document, model, 0)
    assert response.payload.partial_score == pytest.approx(expected)


def test_score2_finalizes_score(library, pool):
    eng, harness = make_harness("score2", library, pool)
    response = roundtrip(eng, harness, pool[3])
    # Standalone, only bank 2's partial is present — but a score IS set.
    assert response.payload.score is not None


def test_spare_echoes_in_loopback(library, pool):
    eng, harness = make_harness("spare", library, pool)
    response = roundtrip(eng, harness, pool[0])
    assert response is not None
    assert response.kind is PacketKind.RESPONSE


def test_stage_reload_updates_model(library, pool):
    eng, harness = make_harness("ffe0", library, pool)
    role = harness.role
    reload_packet = Packet(
        kind=PacketKind.MODEL_RELOAD,
        src=(1, 0),
        dst=(0, 0),
        size_bytes=64,
        payload=2,
    )

    def inject():
        yield harness.stage_server.shell.send_from_host(reload_packet)

    eng.process(inject())
    eng.run()
    assert role.current_model_id == 2
    assert role.reloads == 1


def test_stage_service_time_scales_with_tokens(library):
    gen = TraceGenerator(seed=72)
    small = gen.request(target_size=1_000)
    large = gen.request(target_size=30_000)
    eng, harness = make_harness("fe", library, [small, large], seed=52)

    def time_one(request):
        start = eng.now
        roundtrip(eng, harness, request)
        return eng.now - start

    t_small = time_one(small)
    t_large = time_one(large)
    assert t_large > 2.0 * t_small  # FE latency ∝ tuple count (§4.4)
