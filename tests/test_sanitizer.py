"""Tests for the SimSanitizer runtime detectors and dual-run race check."""

import types

import pytest

from repro.cluster import ClusterScheduler
from repro.fabric import Datacenter, TorusTopology
from repro.host.slots import SlotAllocator
from repro.sim import Engine, SanitizerError, dual_run, state_digest
from repro.sim.sanitizer import SimSanitizer
from tests.test_cluster import echo_service


# --- timeout-leak detector ----------------------------------------------------------


def test_abandoned_anyof_loser_timeout_is_detected():
    from repro.sim import AnyOf

    eng = Engine(sanitize=True)

    def racer():
        fast = eng.timeout(10.0)
        slow = eng.timeout(1_000.0)
        yield AnyOf(eng, [fast, slow])
        # BUG (deliberate): the loser is never cancelled, so it stays
        # armed and keeps the bare run() alive for the full 1000 ns.

    eng.process(racer())
    with pytest.raises(SanitizerError, match="timeout-leak"):
        eng.run()


def test_leak_report_carries_the_creation_site():
    from repro.sim import AnyOf

    eng = Engine(sanitize=True)

    def racer():
        fast = eng.timeout(10.0)
        slow = eng.timeout(1_000.0)
        yield AnyOf(eng, [fast, slow])

    eng.process(racer())
    with pytest.raises(SanitizerError, match="test_sanitizer.py"):
        eng.run()


def test_cancelled_loser_is_clean():
    from repro.sim import AnyOf

    eng = Engine(sanitize=True)
    laps = []

    def racer():
        fast = eng.timeout(10.0)
        slow = eng.timeout(1_000.0)
        yield AnyOf(eng, [fast, slow])
        slow.cancel()  # the recommended idiom
        laps.append(eng.now)

    eng.process(racer())
    eng.run()
    assert laps == [10.0]
    assert eng.sanitizer.findings == []


def test_awaited_timeout_is_not_a_leak():
    eng = Engine(sanitize=True)
    done = []

    def sleeper():
        yield eng.timeout(50.0)
        done.append(eng.now)

    eng.process(sleeper())
    eng.run()
    assert done == [50.0]
    assert eng.sanitizer.findings == []


# --- orphan-process detector --------------------------------------------------------


def test_process_stuck_on_untriggerable_event_is_an_orphan():
    eng = Engine(sanitize=True)

    def stuck():
        # simlint: allow-dead-yield -- the stranding is the test subject
        yield eng.event(name="never")

    eng.process(stuck(), name="stuck")
    with pytest.raises(SanitizerError, match="orphan-process"):
        eng.run()


def test_expendable_process_is_not_an_orphan():
    eng = Engine(sanitize=True)

    def forever():
        # simlint: allow-dead-yield -- models a perpetual service loop
        yield eng.event(name="mailbox")

    eng.process(forever(), name="service-loop", expendable=True)
    eng.run()
    assert eng.sanitizer.findings == []


def test_time_bounded_run_does_not_report_orphans():
    eng = Engine(sanitize=True)

    def later():
        yield eng.timeout(1_000.0)

    eng.process(later())
    eng.run(until=10.0)  # pending work is legitimate here
    assert eng.sanitizer.findings == []


# --- lease-leak detector ------------------------------------------------------------


def _fake_server(engine, slots=4):
    return types.SimpleNamespace(
        engine=engine,
        machine_id="m0",
        buffers=types.SimpleNamespace(slot_count=slots),
    )


def test_released_owner_with_open_lease_is_a_leak():
    eng = Engine(sanitize=True)
    allocator = SlotAllocator(_fake_server(eng))
    owner = types.SimpleNamespace(released=False)
    allocator.acquire(2, owner="tenant-a", owner_obj=owner)
    owner.released = True  # reclaimed without release_slots(): the bug
    with pytest.raises(SanitizerError, match="lease-leak"):
        eng.run()


def test_returned_lease_is_clean():
    eng = Engine(sanitize=True)
    allocator = SlotAllocator(_fake_server(eng))
    owner = types.SimpleNamespace(released=False)
    slots = allocator.acquire(2, owner="tenant-a", owner_obj=owner)
    allocator.release(slots)
    owner.released = True
    eng.run()
    assert eng.sanitizer.findings == []
    assert eng.sanitizer.open_leases() == []


def test_live_owner_with_open_lease_is_not_a_leak():
    eng = Engine(sanitize=True)
    allocator = SlotAllocator(_fake_server(eng))
    owner = types.SimpleNamespace(released=False)
    allocator.acquire(1, owner="tenant-a", owner_obj=owner)
    eng.run()  # still deployed: holding the lease is correct
    assert eng.sanitizer.findings == []


# --- clock monotonicity -------------------------------------------------------------


def test_clock_regression_is_reported():
    eng = Engine(sanitize=True)
    eng.now = 100.0
    eng.sanitizer.on_dispatch(5.0, eng.event(name="late"))
    assert [f.kind for f in eng.sanitizer.findings] == ["clock-regression"]


def test_normal_run_never_regresses():
    eng = Engine(sanitize=True)

    def body():
        for _ in range(50):
            yield eng.timeout(3.0)

    eng.process(body())
    eng.run()
    assert not any(
        f.kind == "clock-regression" for f in eng.sanitizer.findings
    )


# --- opt-in paths -------------------------------------------------------------------


def test_env_var_enables_the_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Engine().sanitizer is not None
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert Engine().sanitizer is None


def test_explicit_flag_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert Engine(sanitize=False).sanitizer is None
    monkeypatch.delenv("REPRO_SANITIZE")
    assert isinstance(Engine(sanitize=True).sanitizer, SimSanitizer)


# --- dual-run tie-break shuffling ---------------------------------------------------


def test_injected_same_timestamp_race_is_detected():
    """Eight workers wake at the same instant and their completion
    order is recorded as state: a textbook same-timestamp race the
    salted tie-break run must expose."""

    def scenario(eng):
        order = []

        def worker(tag):
            yield eng.timeout(10.0)
            order.append(tag)

        for tag in "abcdefgh":
            eng.process(worker(tag), name=f"w{tag}")
        eng.run()
        return {"order": tuple(order)}

    report = dual_run(scenario, seed=7)
    assert report.racy
    assert not report.state_match


def test_order_insensitive_scenario_is_not_racy():
    """Same workers, but the observable state is order-free — the two
    schedules must digest identically (state AND folded trace)."""

    def scenario(eng):
        done = []

        def worker(tag):
            yield eng.timeout(10.0)
            done.append(tag)

        for tag in "abcdefgh":
            eng.process(worker(tag), name=f"w{tag}")
        eng.run()
        return {"done": sorted(done), "now": eng.now}

    report = dual_run(scenario, seed=7)
    assert not report.racy
    assert report.state_match
    assert report.trace_match


def test_reference_cluster_scenario_is_tie_break_stable():
    """Seed-determinism regression (ISSUE 8 acceptance): the reference
    cluster scenario run under FIFO and shuffled same-timestamp
    tie-breaks must produce identical state and event-trace digests."""

    def scenario(eng):
        dc = Datacenter(
            eng, num_pods=2, topology=TorusTopology(width=2, height=3)
        )
        scheduler = ClusterScheduler(dc)
        (deployment,) = scheduler.deploy(echo_service(), rings=1)
        payloads = []

        def driver():
            for _ in range(4):
                response = yield from deployment.submit(object())
                payloads.append(response.payload)

        eng.process(driver())
        eng.run()
        return {
            "completed": deployment.completed,
            "timeouts": deployment.timeouts,
            "payloads": tuple(payloads),
            "final_ns": eng.now,
        }

    report = dual_run(scenario, seed=3)
    # State (the observable outcome) must match.  The folded trace is
    # not asserted here: it records each event's cancelled flag at
    # dispatch time, and whether a same-timestamp cancel lands before
    # or after the pop is legitimately tie-order dependent.
    assert report.state_match, (
        f"cluster scenario is tie-break sensitive: "
        f"{report.baseline_state} != {report.shuffled_state}"
    )
    assert not report.racy


# --- state digest -------------------------------------------------------------------


def test_state_digest_is_insensitive_to_dict_and_set_order():
    a = {"x": 1, "y": {2, 3}, "z": [1.5, "s"]}
    b = {"y": {3, 2}, "z": [1.5, "s"], "x": 1}
    assert state_digest(a) == state_digest(b)


def test_state_digest_distinguishes_values():
    assert state_digest({"x": 1}) != state_digest({"x": 2})
