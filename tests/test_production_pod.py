"""Full production-geometry integration: the 6x8 pod of 48 servers.

Deploys the ranking service exactly as §2.2/§4 describe — a 6x8 torus
with the pipeline on one 8-node column ring — and exercises traffic
from servers across the pod, plus the FDR-based debugging workflow of
§3.6.
"""

import pytest

from repro.fabric import Pod
from repro.ranking.models import ModelLibrary
from repro.ranking.pipeline import RankingPipeline
from repro.sim import AllOf, Engine


@pytest.fixture(scope="module")
def production_pod():
    eng = Engine(seed=2014)
    pod = Pod(eng)  # the real 6x8
    library = ModelLibrary.default(scale=0.03)
    pipeline = RankingPipeline(eng, pod, library, ring_x=2)
    pipeline.deploy()
    return eng, pod, pipeline


def test_pod_has_production_dimensions(production_pod):
    _eng, pod, _pipeline = production_pod
    assert len(pod.servers) == 48
    assert len(pod.links) == 96
    assert len(pod.assemblies) == 14  # 6 shells of 8 + 8 shells of 6


def test_every_fpga_configured_after_deploy(production_pod):
    _eng, pod, _pipeline = production_pod
    for server in pod.all_servers():
        assert server.fpga.configured_role is not None
        assert server.state.value == "up"


def test_ring_on_column_two(production_pod):
    _eng, _pod, pipeline = production_pod
    assert pipeline.assignment.node_of("fe") == (2, 0)
    assert pipeline.assignment.node_of("score2") == (2, 6)
    assert pipeline.assignment.spare_nodes == [(2, 7)]


def test_far_corner_servers_can_inject(production_pod):
    eng, pod, pipeline = production_pod
    pool = pipeline.make_request_pool(6, seed=8)
    injectors = [pod.server_at((0, 0)), pod.server_at((5, 7)), pod.server_at((4, 3))]
    events = []
    all_stats = []
    for server in injectors:
        done, stats = pipeline.spawn_injector(
            server, threads=2, pool=pool, requests_per_thread=2
        )
        events.append(done)
        all_stats.append(stats)
    eng.run_until(AllOf(eng, events))
    for stats in all_stats:
        assert stats.completed == 4
        assert stats.timeouts == 0


def test_fdr_traces_a_document_through_the_fabric(production_pod):
    """§3.6: the FDR's head/tail flit records reconstruct a packet's
    path across FPGAs for replay debugging."""
    eng, pod, pipeline = production_pod
    pool = pipeline.make_request_pool(1, seed=9)
    done, stats = pipeline.spawn_injector(
        pod.server_at((2, 4)), threads=1, pool=pool, requests_per_thread=1
    )
    eng.run_until(done)
    assert stats.completed == 1

    # Find the trace at the FE head's router and follow it.
    fe_server = pod.server_at(pipeline.head_node)
    fe_entries = fe_server.shell.fdr.stream_out()
    assert fe_entries, "FE router recorded nothing"
    trace_ids = {entry.trace_id for entry in fe_entries if entry.kind == "request"}
    assert trace_ids
    trace_id = sorted(trace_ids)[-1]
    # The same trace shows up on downstream stage FPGAs.
    sightings = 0
    for role_name in ("ffe0", "ffe1", "compress", "score0"):
        node = pipeline.assignment.node_of(role_name)
        entries = pod.server_at(node).shell.fdr.entries_for_trace(trace_id)
        sightings += 1 if entries else 0
    assert sightings >= 3
    # Entries carry direction and size for replay.
    sample = fe_entries[-1]
    assert "->" in sample.direction
    assert sample.size_bytes > 0


def test_mean_hop_count_matches_torus_geometry(production_pod):
    _eng, pod, _pipeline = production_pod
    topology = pod.topology
    distances = [
        topology.hop_distance(a, b)
        for a in topology.nodes()
        for b in topology.nodes()
        if a != b
    ]
    mean = sum(distances) / len(distances)
    # 6x8 torus: mean shortest-path ~ (6/4 + 8/4) * small correction.
    assert 3.0 <= mean <= 4.0
    assert max(distances) == 7  # 3 + 4
