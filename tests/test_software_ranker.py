"""Unit tests for the software baseline's timing model."""

import pytest

from repro.fabric import Pod, TorusTopology
from repro.ranking.engine import ScoringEngine
from repro.ranking.models import ModelLibrary
from repro.ranking.software_ranker import SoftwareRanker
from repro.sim import AllOf, Engine
from repro.workloads import TraceGenerator


@pytest.fixture(scope="module")
def setup():
    eng = Engine(seed=41)
    pod = Pod(eng, topology=TorusTopology(width=2, height=2))
    library = ModelLibrary.default(scale=0.05)
    scoring = ScoringEngine(library)
    server = pod.server_at((0, 0))
    # Fixed-size documents: queueing/contention effects are then not
    # confounded by the heavy doc-size tail.
    gen = TraceGenerator(seed=42)
    requests = [gen.request(target_size=6_500) for _ in range(6)]
    return eng, server, scoring, library, requests


def test_base_service_grows_with_document_size(setup):
    eng, server, scoring, library, _requests = setup
    ranker = SoftwareRanker(server, scoring)
    gen = TraceGenerator(seed=43)
    small = gen.request(target_size=1_000)
    large = gen.request(target_size=40_000)
    model = library[small.document.model_id]
    model_large = library[large.document.model_id]
    assert ranker.base_service_ns(large, model_large) > 2 * ranker.base_service_ns(
        small, model
    )


def test_score_matches_engine(setup):
    eng, server, scoring, library, requests = setup
    ranker = SoftwareRanker(server, scoring)
    request = requests[0]
    model = library[request.document.model_id]

    def run():
        result = yield from ranker.score_request(request)
        return result

    proc = eng.process(run())
    eng.run_until(proc)
    score, latency = proc.value
    assert score == scoring.score(request.document, model)
    assert latency > 0


def test_latency_includes_ssd_and_queueing(setup):
    eng, server, scoring, library, requests = setup
    ranker = SoftwareRanker(server, scoring)
    request = requests[1]
    model = library[request.document.model_id]
    base = ranker.base_service_ns(request, model)

    def run():
        result = yield from ranker.score_request(request)
        return result

    proc = eng.process(run())
    eng.run_until(proc)
    _score, latency = proc.value
    assert latency >= base * 0.8  # service dominates unloaded latency
    assert latency >= ranker.SSD_LOOKUP_NS


def test_contention_inflates_tail_under_load(setup):
    eng, server, scoring, _library, requests = setup
    ranker = SoftwareRanker(server, scoring)

    def batch(count):
        def one(request):
            yield from ranker.score_request(request)

        ranker.latencies_ns.clear()
        procs = [
            eng.process(one(requests[i % len(requests)])) for i in range(count)
        ]
        eng.run_until(AllOf(eng, procs))
        return sorted(ranker.latencies_ns)

    light = batch(2)
    heavy = batch(48)  # 4x oversubscribed on 12 cores
    # Queueing + contention: the heavy tail blows out far more than 4x.
    assert heavy[-1] > light[-1] * 3.0
    assert heavy[len(heavy) // 2] > light[len(light) // 2]


def test_deterministic_given_seed():
    def run_once():
        eng = Engine(seed=77)
        pod = Pod(eng, topology=TorusTopology(width=2, height=2))
        library = ModelLibrary.default(scale=0.05)
        ranker = SoftwareRanker(pod.server_at((0, 0)), ScoringEngine(library))
        request = TraceGenerator(seed=5).request()

        def one():
            result = yield from ranker.score_request(request)
            return result

        proc = eng.process(one())
        eng.run_until(proc)
        return proc.value

    assert run_once() == run_once()
