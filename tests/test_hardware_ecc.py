"""Property and unit tests for the SECDED and CRC-32 codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.ecc import CODE_BITS, Crc32, DecodeStatus, SecDedCodec

codec = SecDedCodec()
words = st.integers(min_value=0, max_value=(1 << 64) - 1)
positions = st.integers(min_value=0, max_value=CODE_BITS - 1)


@settings(max_examples=200)
@given(data=words)
def test_roundtrip_clean(data):
    result = codec.decode(codec.encode(data))
    assert result.status is DecodeStatus.CLEAN
    assert result.data == data


@settings(max_examples=200)
@given(data=words, pos=positions)
def test_single_bit_error_corrected(data, pos):
    corrupted = codec.encode(data) ^ (1 << pos)
    result = codec.decode(corrupted)
    assert result.status is DecodeStatus.CORRECTED
    assert result.data == data
    assert result.flipped_position == pos


@settings(max_examples=200)
@given(data=words, pos1=positions, pos2=positions)
def test_double_bit_error_detected(data, pos1, pos2):
    if pos1 == pos2:
        return  # two flips at the same bit cancel; not a double error
    corrupted = codec.encode(data) ^ (1 << pos1) ^ (1 << pos2)
    result = codec.decode(corrupted)
    assert result.status is DecodeStatus.UNCORRECTABLE


def test_encode_rejects_oversized_data():
    with pytest.raises(ValueError):
        codec.encode(1 << 64)
    with pytest.raises(ValueError):
        codec.encode(-1)


def test_decode_rejects_oversized_codeword():
    with pytest.raises(ValueError):
        codec.decode(1 << 72)


def test_overall_parity_bit_flip_is_correctable():
    data = 0xDEADBEEFCAFEF00D
    corrupted = codec.encode(data) ^ 1  # bit 0 is the overall parity
    result = codec.decode(corrupted)
    assert result.status is DecodeStatus.CORRECTED
    assert result.data == data
    assert result.flipped_position == 0


def test_codeword_is_72_bits():
    assert codec.encode((1 << 64) - 1) < (1 << 72)


# --- CRC-32 ---------------------------------------------------------------


def test_crc32_known_vector():
    # The canonical IEEE 802.3 check value for "123456789".
    assert Crc32().checksum(b"123456789") == 0xCBF43926


def test_crc32_empty():
    assert Crc32().checksum(b"") == 0


def test_crc32_verify():
    crc = Crc32()
    payload = b"catapult fabric"
    assert crc.verify(payload, crc.checksum(payload))
    assert not crc.verify(payload + b"!", crc.checksum(payload))


@settings(max_examples=100)
@given(payload=st.binary(min_size=1, max_size=256), flip=st.data())
def test_crc32_detects_any_single_byte_change(payload, flip):
    crc = Crc32()
    index = flip.draw(st.integers(0, len(payload) - 1))
    delta = flip.draw(st.integers(1, 255))
    corrupted = bytearray(payload)
    corrupted[index] ^= delta
    assert crc.checksum(bytes(corrupted)) != crc.checksum(payload)
