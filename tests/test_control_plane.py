"""Tests for the declarative control plane: ServiceSpec, ClusterManager,
health-driven reconciliation, and the cluster-level failure injector.

The acceptance scenario mirrors the paper's production loop (§2.3,
§3.5): a hardware fault is injected, the per-pod Health Monitor's
report rotates the ring via the Mapping Manager, ``weighted_health``
shifts load toward healthy rings, and reconciliation restores the
declared replica count on a fresh slot — with no caller touching
``HealthMonitor``, ``MappingManager``, or ``LoadBalancer`` directly.
"""

import pytest

from repro.cluster import (
    ClusterFailureInjector,
    ClusterManager,
    ClusterScheduler,
    InsufficientClusterCapacity,
    PlacementFailed,
    RingSlot,
    ServiceSpec,
    echo_service,
)
from repro.fabric import Datacenter, TorusTopology
from repro.services import FailureInjector, FailureKind, HealthMonitor
from repro.shell.role import PassthroughRole
from repro.sim import Engine
from repro.workloads import OpenLoopInjector, PoissonArrivals


def small_cluster(seed=3, pods=2):
    eng = Engine(seed=seed)
    dc = Datacenter(eng, num_pods=pods, topology=TorusTopology(width=2, height=3))
    return eng, dc, ClusterManager(dc)


def echo_spec(**overrides) -> ServiceSpec:
    defaults = dict(service=echo_service(), replicas=2, health_period_ns=5e9)
    defaults.update(overrides)
    return ServiceSpec(**defaults)


def drive(eng, handle, arrivals, rate=100_000.0, seed_tag="t"):
    pool = [object() for _ in range(8)]
    injector = OpenLoopInjector(
        eng, handle, PoissonArrivals(rate), pool, seed_tag=seed_tag
    )
    return eng.run_until(injector.run(arrivals))


# --- ServiceSpec validation ----------------------------------------------------------


def test_spec_validates_fields():
    with pytest.raises(ValueError):
        echo_spec(replicas=0)
    with pytest.raises(ValueError):
        echo_spec(placement="random")
    with pytest.raises(ValueError):
        echo_spec(balancing="fastest")
    with pytest.raises(ValueError):
        echo_spec(slots_per_server=0)
    with pytest.raises(ValueError):
        echo_spec(request_timeout_ns=0.0)
    with pytest.raises(ValueError):
        echo_spec(health_period_ns=-1.0)


def test_spec_is_frozen_and_rescalable():
    spec = echo_spec()
    with pytest.raises(AttributeError):  # frozen dataclass
        spec.replicas = 5
    scaled = spec.with_replicas(4)
    assert scaled.replicas == 4
    assert scaled.service is spec.service
    assert spec.replicas == 2
    assert spec.name == "echo-service"


# --- apply / status / lifecycle ------------------------------------------------------


def test_apply_places_replicas_and_wires_health_monitors():
    _eng, _dc, manager = small_cluster()
    handle = manager.apply(echo_spec())
    status = handle.status()
    assert status.ready_replicas == status.desired_replicas == 2
    assert status.converged
    # spread placement: one replica per pod
    assert {ring.slot.pod_id for ring in status.rings} == {0, 1}
    # the failure loop is pre-wired: each hosting pod's monitor reports
    # into the same mapping manager the scheduler deploys through
    for pod_id in (0, 1):
        monitor = manager.health_monitor(pod_id)
        assert monitor.mapping_manager is manager.scheduler.mapping_manager(pod_id)


def test_handle_is_an_open_loop_sink():
    eng, _dc, manager = small_cluster()
    handle = manager.apply(echo_spec())
    stats = drive(eng, handle, arrivals=60)
    assert stats.completed == 60
    assert all(d.completed > 0 for d in handle.deployments)


def test_reapply_is_declarative():
    _eng, _dc, manager = small_cluster()
    service = echo_service()
    handle = manager.apply(
        ServiceSpec(service=service, replicas=1, health_period_ns=5e9)
    )
    again = manager.apply(
        ServiceSpec(
            service=service,
            replicas=3,
            balancing="round_robin",
            health_period_ns=5e9,
        )
    )
    assert again is handle
    assert handle.balancer.policy == "round_robin"
    assert handle.status().ready_replicas == 3


def test_reapply_with_different_definition_rejected():
    # Same service name, *different* ServiceDefinition (a new role
    # image): old rings would silently keep serving the old definition;
    # refuse and point at upgrade().  A fresh build of the *identical*
    # definition (equal serialized fingerprint, distinct factory
    # closures) is the same declaration — the cluster-file path rebuilds
    # catalogs every load — and must be accepted.
    _eng, _dc, manager = small_cluster()
    manager.apply(echo_spec(replicas=1))
    manager.apply(echo_spec(replicas=1))  # fingerprint-equal rebuild: ok
    with pytest.raises(ValueError):
        manager.apply(
            echo_spec(replicas=1, service=echo_service(role_name="echo-v2"))
        )


def test_scale_after_drain_rejected():
    _eng, _dc, manager = small_cluster()
    handle = manager.apply(echo_spec(replicas=1))
    manager.drain(handle)
    with pytest.raises(RuntimeError):
        handle.scale(2)
    with pytest.raises(RuntimeError):
        handle.reconcile()
    # No hidden redeploy happened.
    assert manager.scheduler.capacity_report().occupied_rings == 0


def test_scale_up_and_down():
    _eng, _dc, manager = small_cluster()
    handle = manager.apply(echo_spec(replicas=1))
    handle.scale(4)
    assert handle.status().ready_replicas == 4
    assert manager.scheduler.capacity_report().occupied_rings == 4
    handle.scale(2)
    assert handle.status().ready_replicas == 2
    assert manager.scheduler.capacity_report().occupied_rings == 2
    # released rings are retired, not cordoned (healthy hardware)
    assert manager.scheduler.cordoned_slots == []
    assert len(handle.retired) == 2


def test_drain_tears_the_service_down():
    eng, _dc, manager = small_cluster()
    handle = manager.apply(echo_spec())
    drive(eng, handle, arrivals=10)
    freed = manager.drain(handle)
    assert len(freed) == 2
    assert not handle.active
    assert manager.scheduler.capacity_report().occupied_rings == 0
    assert "echo-service" not in manager.handles
    with pytest.raises(RuntimeError):
        next(handle.submit(object()))


def test_apply_beyond_capacity_degrades_and_records_shortfall():
    _eng, _dc, manager = small_cluster(pods=1)  # 2 rings total
    handle = manager.apply(echo_spec(replicas=3))
    status = handle.status()
    assert status.ready_replicas == 2  # everything placeable was placed
    assert not status.converged
    assert any(
        action.kind == "shortfall"
        for report in manager.reconcile_reports
        for action in report.actions
    )


def test_apply_with_no_capacity_at_all_raises():
    _eng, _dc, manager = small_cluster(pods=1)
    manager.apply(echo_spec())  # replicas=2 occupies both rings
    with pytest.raises(InsufficientClusterCapacity):
        manager.apply(
            ServiceSpec(service=echo_service("other-service"), replicas=1)
        )


# --- the failure loop, end to end ----------------------------------------------------


def test_acceptance_failure_loop_closes_without_touching_mechanism():
    """Inject fault -> monitor report rotates ring -> weighted_health
    shifts load -> reconcile restores replicas on a fresh slot."""
    eng, dc, manager = small_cluster(seed=11)
    handle = manager.apply(echo_spec(balancing="weighted_health"))
    injector = ClusterFailureInjector(dc)

    baseline = drive(eng, handle, arrivals=40, seed_tag="baseline")
    assert baseline.completed == 40

    # Degrade one ring: fault on a spare node (pipeline keeps serving).
    victim_ring = handle.deployments[0]
    victim_slot = manager.scheduler.slot_of(victim_ring)
    victim = injector.inject_spare(victim_ring, FailureKind.FPGA_HARDWARE_FAULT)

    # The watchdog sweep (no direct HealthMonitor call) rotates the ring.
    eng.run(until=eng.now + 12e9)
    assert victim in victim_ring.assignment.excluded
    assert manager.scheduler.mapping_manager(victim_slot.pod_id).relocations >= 1
    assert victim_ring.health_weight() == pytest.approx(2 / 3)

    # weighted_health steers load toward the healthy ring.
    healthy_ring = handle.deployments[1]
    shifted = drive(eng, handle, arrivals=400, seed_tag="shifted")
    assert shifted.completed > 0
    assert victim_ring.completed < healthy_ring.completed

    # Now exhaust the ring entirely; reconciliation must replace it.
    injector.kill_ring(victim_ring)
    eng.run(until=eng.now + 12e9)
    status = handle.status()
    assert status.ready_replicas == 2
    assert victim_slot in manager.scheduler.cordoned_slots
    assert victim_ring not in handle.deployments
    assert victim_ring in handle.retired
    replaced_slots = {manager.scheduler.slot_of(d) for d in handle.deployments}
    assert victim_slot not in replaced_slots

    # The reconcile log shows the release and the replacement.
    kinds = [
        action.kind
        for report in manager.reconcile_reports
        for action in report.actions
    ]
    assert "release_unservable" in kinds and "replace" in kinds

    # The restored service still completes requests.
    after = drive(eng, handle, arrivals=40, seed_tag="after")
    assert after.completed == 40


def test_weighted_health_share_drops_in_proportion():
    """Satellite: the degraded ring's share of dispatched requests drops
    roughly in proportion to its health weight (2/3 vs 1.0 -> ~40%)."""
    eng, dc, manager = small_cluster(seed=29)
    handle = manager.apply(echo_spec(balancing="weighted_health"))
    injector = ClusterFailureInjector(dc)

    degraded = handle.deployments[0]
    injector.inject_spare(degraded, FailureKind.FPGA_HARDWARE_FAULT)
    # One explicit sweep instead of waiting for the watchdog period.
    eng.run_until(manager.sweep(handle))
    assert degraded.health_weight() == pytest.approx(2 / 3)

    before = {d.name: d.completed for d in handle.deployments}
    drive(eng, handle, arrivals=600, seed_tag="share")
    healthy = handle.deployments[1]
    degraded_share = degraded.completed - before[degraded.name]
    healthy_share = healthy.completed - before[healthy.name]
    total = degraded_share + healthy_share
    assert total == 600
    # Expected share (2/3) / (1 + 2/3) = 0.4; allow sampling noise.
    assert 0.30 <= degraded_share / total <= 0.50
    assert degraded_share < healthy_share


def test_watchdog_reports_shortfall_when_capacity_exhausted():
    eng, dc, manager = small_cluster(pods=1)  # 2 rings, no slack
    handle = manager.apply(echo_spec(replicas=2))
    ClusterFailureInjector(dc).kill_ring(handle.deployments[0])
    eng.run(until=eng.now + 12e9)
    status = handle.status()
    assert status.ready_replicas == 1  # degraded but alive
    assert not status.converged
    kinds = [
        action.kind
        for report in manager.reconcile_reports
        for action in report.actions
    ]
    assert "shortfall" in kinds


def test_placement_failure_cordons_and_converges_after_repair():
    eng, dc, manager = small_cluster(pods=1)
    # Wreck every FPGA of the still-free ring (0, 1) before any deploy.
    pod = dc.pod(0)
    injector = FailureInjector(pod)
    for node in pod.topology.ring(1):
        injector.inject(FailureKind.FPGA_HARDWARE_FAULT, node)
    handle = manager.apply(echo_spec(replicas=2))
    # The wrecked slot was cordoned and the spec could not converge.
    assert RingSlot(0, 1) in manager.scheduler.cordoned_slots
    assert handle.status().ready_replicas == 1
    # Manual service: repair the cards, uncordon, reconcile.
    for node in pod.topology.ring(1):
        pod.server_at(node).fpga.repair()
    manager.scheduler.uncordon(RingSlot(0, 1))
    manager.reconcile(handle)
    assert handle.status().ready_replicas == 2


def test_dead_ring_submissions_time_out_instead_of_hanging():
    """Regression: once a dead ring's leases were all quarantined,
    later submissions blocked forever on the lease store — an open-loop
    run over a failing cluster never finished."""
    eng, dc, manager = small_cluster(pods=1)
    handle = manager.apply(echo_spec(replicas=1, slots_per_server=1))
    handle.stop_watchdog()  # keep the ring dead; no reconciliation
    deployment = handle.deployments[0]
    # Sever the ring's cable assembly: no request can ever complete.
    ClusterFailureInjector(dc).inject_role(
        deployment, FailureKind.CABLE_ASSEMBLY_FAILURE
    )
    server = deployment.injection_servers()[1]  # not the head node
    results = []

    def driver():
        for _ in range(3):
            response = yield from deployment.submit(
                object(), server=server, timeout_ns=1e6
            )
            results.append(response)

    eng.process(driver())
    eng.run()
    assert results == [None, None, None]
    assert deployment.timeouts == 3
    assert deployment.outstanding == 0


# --- release regression (satellite) --------------------------------------------------


def test_released_slot_redeployable_with_different_service():
    """Regression: release() used to leave the old service's roles
    attached and, after failures, left the dead node in the next
    assignment's way — a released slot could not host a new service."""
    eng = Engine(seed=5)
    dc = Datacenter(eng, num_pods=1, topology=TorusTopology(width=2, height=3))
    scheduler = ClusterScheduler(dc)
    (dep_a,) = scheduler.deploy(echo_service("svc-a"), rings=1)

    # Lose the active node; the health loop rotates the ring first.
    pod = dc.pod(0)
    victim = dep_a.assignment.node_of("echo")
    FailureInjector(pod).inject(FailureKind.FPGA_HARDWARE_FAULT, victim)
    monitor = HealthMonitor(eng, pod, mapping_manager=scheduler.mapping_manager(0))
    eng.run_until(monitor.investigate([victim]))
    assert victim in dep_a.assignment.excluded

    slot = scheduler.release(dep_a)
    assert dep_a.released
    assert dep_a.health_weight() == 0.0
    with pytest.raises(RuntimeError):
        next(dep_a.submit(object()))
    # Stale roles are detached: survivors host the passthrough spare.
    for node in dep_a.assignment.ring_nodes:
        if node in dep_a.assignment.excluded:
            continue
        assert isinstance(pod.server_at(node).shell.role, PassthroughRole)

    # Redeploy a *different* service onto the same (pack-first) slot.
    (dep_b,) = scheduler.deploy(
        echo_service("svc-b", role_name="upper", payload="scored-by-b"),
        rings=1,
        policy="pack",
    )
    assert scheduler.slot_of(dep_b) == slot
    # The dead card is pre-mapped-out of the new assignment.
    assert victim in dep_b.assignment.excluded

    results = []

    def driver():
        response = yield from dep_b.submit(object())
        results.append(response)

    eng.process(driver())
    eng.run()
    assert results[0].payload == "scored-by-b"


def test_cordon_accounting():
    _eng, dc, manager = small_cluster()
    scheduler = manager.scheduler
    scheduler.cordon(RingSlot(1, 1))
    assert RingSlot(1, 1) not in scheduler.free_slots()
    report = scheduler.capacity_report()
    assert report.cordoned_rings == 1
    assert report.free_rings == 3
    scheduler.uncordon(RingSlot(1, 1))
    assert RingSlot(1, 1) in scheduler.free_slots()
    with pytest.raises(ValueError):
        scheduler.cordon(RingSlot(7, 0))


def test_placement_failed_carries_slot():
    eng = Engine(seed=2)
    dc = Datacenter(eng, num_pods=1, topology=TorusTopology(width=2, height=3))
    scheduler = ClusterScheduler(dc)
    pod = dc.pod(0)
    injector = FailureInjector(pod)
    for node in pod.topology.ring(0):
        injector.inject(FailureKind.FPGA_HARDWARE_FAULT, node)
    with pytest.raises(PlacementFailed) as info:
        scheduler.deploy(echo_service(), rings=1, policy="pack")
    assert info.value.slot == RingSlot(0, 0)
    # The failed placement left no residue: slot free, no assignment.
    assert RingSlot(0, 0) in scheduler.free_slots()
    assert scheduler.mapping_manager(0).assignments == []
