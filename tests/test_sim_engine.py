"""Unit tests for the simulation engine, events and processes."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Engine,
    Interrupt,
    ProcessKilled,
    SimulationError,
    Timeout,
)


def test_time_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_timeout_advances_clock():
    eng = Engine()
    times = []

    def body(eng):
        yield eng.timeout(10.0)
        times.append(eng.now)
        yield eng.timeout(5.0)
        times.append(eng.now)

    eng.process(body(eng))
    eng.run()
    assert times == [10.0, 15.0]


def test_timeout_delivers_value():
    eng = Engine()

    def body(eng):
        got = yield eng.timeout(1.0, value="payload")
        return got

    proc = eng.process(body(eng))
    eng.run()
    assert proc.value == "payload"


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_process_return_value():
    eng = Engine()

    def body(eng):
        yield eng.timeout(1.0)
        return 42

    proc = eng.process(body(eng))
    eng.run()
    assert proc.value == 42
    assert not proc.is_alive


def test_process_join():
    eng = Engine()

    def child(eng):
        yield eng.timeout(7.0)
        return "done"

    def parent(eng):
        result = yield eng.process(child(eng))
        return (eng.now, result)

    proc = eng.process(parent(eng))
    eng.run()
    assert proc.value == (7.0, "done")


def test_two_processes_interleave_deterministically():
    eng = Engine()
    order = []

    def worker(eng, name, delay):
        yield eng.timeout(delay)
        order.append((eng.now, name))
        yield eng.timeout(delay)
        order.append((eng.now, name))

    eng.process(worker(eng, "a", 3.0))
    eng.process(worker(eng, "b", 2.0))
    eng.run()
    assert order == [(2.0, "b"), (3.0, "a"), (4.0, "b"), (6.0, "a")]


def test_same_time_events_fifo_order():
    eng = Engine()
    order = []

    def worker(eng, name):
        yield eng.timeout(5.0)
        order.append(name)

    for name in ["first", "second", "third"]:
        eng.process(worker(eng, name))
    eng.run()
    assert order == ["first", "second", "third"]


def test_run_until_time_bound():
    eng = Engine()

    def body(eng):
        while True:
            yield eng.timeout(10.0)

    eng.process(body(eng))
    stopped = eng.run(until=35.0)
    assert stopped == 35.0
    assert eng.now == 35.0


def test_run_until_event():
    eng = Engine()

    def body(eng):
        yield eng.timeout(9.0)
        return "x"

    proc = eng.process(body(eng))
    assert eng.run_until(proc) == "x"
    assert eng.now == 9.0


def test_run_until_event_queue_drained_raises():
    eng = Engine()
    never = eng.event("never")

    def body(eng):
        yield eng.timeout(1.0)

    eng.process(body(eng))
    with pytest.raises(SimulationError):
        eng.run_until(never)


def test_event_succeed_once_only():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    eng = Engine()
    ev = eng.event()

    def body(eng, ev):
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    proc = eng.process(body(eng, ev))

    def failer(eng, ev):
        yield eng.timeout(1.0)
        ev.fail(ValueError("boom"))

    eng.process(failer(eng, ev))
    eng.run()
    assert proc.value == "caught boom"


def test_fail_requires_exception():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.event().fail("not an exception")


def test_uncaught_process_exception_surfaces():
    eng = Engine()

    def body(eng):
        yield eng.timeout(1.0)
        raise RuntimeError("crash")

    eng.process(body(eng))
    with pytest.raises(RuntimeError, match="crash"):
        eng.run()


def test_joined_process_exception_delivered_to_joiner():
    eng = Engine()

    def child(eng):
        yield eng.timeout(1.0)
        raise RuntimeError("child crash")

    def parent(eng):
        try:
            yield eng.process(child(eng))
        except RuntimeError as exc:
            return str(exc)

    proc = eng.process(parent(eng))
    eng.run()
    assert proc.value == "child crash"


def test_interrupt_wakes_sleeping_process():
    eng = Engine()

    def sleeper(eng):
        try:
            yield eng.timeout(1000.0)
            return "overslept"
        except Interrupt as intr:
            return ("interrupted", eng.now, intr.cause)

    proc = eng.process(sleeper(eng))

    def interrupter(eng, victim):
        yield eng.timeout(5.0)
        victim.interrupt(cause="wake up")

    eng.process(interrupter(eng, proc))
    eng.run()
    assert proc.value == ("interrupted", 5.0, "wake up")


def test_interrupt_on_finished_process_is_noop():
    eng = Engine()

    def body(eng):
        yield eng.timeout(1.0)

    proc = eng.process(body(eng))
    eng.run()
    proc.interrupt()  # must not raise
    assert proc.triggered


def test_kill_terminates_process():
    eng = Engine()
    progressed = []

    def body(eng):
        yield eng.timeout(10.0)
        progressed.append(True)

    proc = eng.process(body(eng))

    def killer(eng, victim):
        yield eng.timeout(1.0)
        victim.kill()

    eng.process(killer(eng, proc))
    eng.run()
    assert progressed == []
    assert isinstance(proc.exception, ProcessKilled)


def test_allof_waits_for_all():
    eng = Engine()

    def body(eng):
        t1 = eng.timeout(3.0, value="a")
        t2 = eng.timeout(7.0, value="b")
        got = yield AllOf(eng, [t1, t2])
        return (eng.now, sorted(got.values()))

    proc = eng.process(body(eng))
    eng.run()
    assert proc.value == (7.0, ["a", "b"])


def test_anyof_returns_on_first():
    eng = Engine()

    def body(eng):
        t1 = eng.timeout(3.0, value="fast")
        t2 = eng.timeout(7.0, value="slow")
        got = yield AnyOf(eng, [t1, t2])
        t2.cancel()  # disarm the loser so the run ends at the winner
        return (eng.now, list(got.values()))

    proc = eng.process(body(eng))
    eng.run()
    assert proc.value == (3.0, ["fast"])


def test_allof_empty_succeeds_immediately():
    eng = Engine()

    def body(eng):
        got = yield AllOf(eng, [])
        return dict(got)

    proc = eng.process(body(eng))
    eng.run()
    assert proc.value == {}


def test_yield_non_event_is_error():
    eng = Engine()

    def body(eng):
        yield 42

    eng.process(body(eng))
    with pytest.raises(TypeError):
        eng.run()


def test_cannot_schedule_in_past():
    eng = Engine()

    def body(eng):
        yield eng.timeout(5.0)

    eng.process(body(eng))
    eng.run()
    with pytest.raises(SimulationError):
        eng._schedule_at(1.0, eng.event())


def test_timeout_isinstance_event():
    eng = Engine()
    assert isinstance(eng.timeout(1.0), Timeout)

# --- lazy timeout cancellation (timer-queue overhaul) ---------------------------


def test_cancelled_timeout_never_dispatches_callbacks():
    """Regression: a cancelled timeout used to be demoted to daemon work
    but still *dispatched* — its callbacks ran at the stale deadline."""
    eng = Engine()
    fired = []
    timeout = eng.timeout(10.0)
    timeout.add_callback(lambda event: fired.append(event))
    timeout.cancel()
    eng.process(_sleep(eng, 50.0))
    eng.run()
    assert eng.now == 50.0  # ran past the stale deadline
    assert fired == []
    assert eng.events_dropped == 1
    assert not timeout.triggered


def _sleep(eng, delay):
    yield eng.timeout(delay)


def test_cancelled_timeout_does_not_hold_run_open():
    eng = Engine()
    timeout = eng.timeout(1_000_000.0)
    timeout.cancel()
    eng.run()  # must return immediately, not at t=1e6
    assert eng.now == 0.0


def test_cancel_after_trigger_is_noop():
    # sanitize=False: the bare, never-awaited timeout is the point here.
    eng = Engine(sanitize=False)
    timeout = eng.timeout(5.0)
    eng.run()
    assert timeout.triggered
    timeout.cancel()
    assert not timeout.cancelled


def test_cancelled_timeout_dropped_in_heap_only_mode():
    eng = Engine(timer_wheel=False)
    fired = []
    timeout = eng.timeout(10.0)
    timeout.add_callback(fired.append)
    timeout.cancel()
    eng.process(_sleep(eng, 50.0))
    eng.run()
    assert fired == []
    assert eng.events_dropped == 1


# --- dispatched-flag bookkeeping (slots refactor) -------------------------------


def test_add_callback_after_dispatch_fires_immediately():
    """Regression: the dispatched flag used to live only as a class-level
    fallback; it is now real per-instance state set before callbacks run."""
    eng = Engine()
    event = eng.event()
    event.succeed("v")
    eng.run()
    late = []
    event.add_callback(lambda e: late.append(e.value))
    assert late == ["v"]


def test_callback_registered_during_dispatch_is_not_lost():
    eng = Engine()
    event = eng.event()
    order = []

    def first(e):
        order.append("first")
        e.add_callback(lambda e2: order.append("second"))

    event.add_callback(first)
    event.succeed()
    eng.run()
    assert order == ["first", "second"]


def test_kernel_classes_have_no_instance_dict():
    from repro.sim import Event
    from repro.sim.events import _Condition

    eng = Engine()
    for obj in (
        Event(eng),
        eng.timeout(1.0),
        AllOf(eng, [eng.event()]),
        AnyOf(eng, [eng.event()]),
        eng.process(_sleep(eng, 1.0)),
    ):
        assert not hasattr(obj, "__dict__"), type(obj).__name__
    assert _Condition.__slots__  # guards against accidental slot removal


# --- timer wheel vs heap equivalence -------------------------------------------


def _mixed_trace(timer_wheel):
    """A stew of near/far timeouts, cancels, and bands: returns the
    dispatch trace (time, value) plus final counters."""
    eng = Engine(seed=7, timer_wheel=timer_wheel, timer_band_ns=1_000.0)
    trace = []

    def body(eng):
        rng = eng.rng.stream("mix")
        pending = []
        for i in range(300):
            delay = rng.expovariate(1.0) * 1_500.0  # straddles band width
            timeout = eng.timeout(delay, value=i)
            timeout.add_callback(lambda e: trace.append((eng.now, e.value)))
            pending.append(timeout)
            if i % 3 == 0 and pending:
                pending.pop(rng.randrange(len(pending))).cancel()
            yield eng.timeout(rng.expovariate(1.0) * 200.0)

    eng.process(body(eng))
    eng.run()
    return trace, eng.now, eng.events_dispatched, eng.events_dropped


def test_timer_wheel_matches_heap_only_dispatch_order():
    wheel = _mixed_trace(timer_wheel=True)
    heap = _mixed_trace(timer_wheel=False)
    assert wheel == heap


def test_far_future_timeout_lands_in_band_and_fires():
    eng = Engine(timer_band_ns=100.0)
    fired = []
    timeout = eng.timeout(12_345.6, value="far")
    timeout.add_callback(lambda e: fired.append((eng.now, e.value)))
    eng.run()
    assert fired == [(12_345.6, "far")]
    assert eng.now == 12_345.6


def test_band_boundary_timeout_is_not_late():
    """A deadline exactly on (or within float noise of) a band boundary
    must never land in a later band — time would run backwards."""
    eng = Engine(timer_band_ns=1_000.0)
    times = []
    for delay in (999.9999999999999, 1_000.0, 1_000.0000000000001, 2_000.0):
        eng.timeout(delay).add_callback(lambda e: times.append(eng.now))
    eng.run()
    assert times == sorted(times)
    assert eng.now == 2_000.0


def test_engine_diagnostics_counters():
    # sanitize=False: bare timeouts are armed on purpose to count them.
    eng = Engine(sanitize=False)
    eng.timeout(1.0)
    eng.timeout(2.0)
    cancelled = eng.timeout(3.0)
    cancelled.cancel()
    assert eng.queue_length == 3
    assert eng.peak_queue_length >= 3
    eng.run()
    # A bare run() stops once non-daemon work drains; the cancelled
    # (daemon) entry is still parked, undropped, at its deadline.
    assert eng.events_dispatched == 2
    assert eng.events_dropped == 0
    assert eng.queue_length == 1
    eng.run(until=5.0)  # sail past the stale deadline: entry dropped
    assert eng.queue_length == 0
    assert eng.events_dropped == 1


def test_compaction_keeps_queue_flat_under_cancel_churn():
    """Arming and immediately disarming a guard deadline per step must
    not accumulate dead entries: the queue compacts once cancelled
    entries outnumber live ones."""
    eng = Engine(seed=1)

    def churn(eng, steps):
        for _ in range(steps):
            deadline = eng.timeout(5_000_000.0)  # far future, banded
            yield eng.timeout(10.0)
            deadline.cancel()

    eng.process(churn(eng, 6_000))
    eng.run()
    # Without compaction 6k dead deadlines would sit parked until their
    # band came due; with it the queue never exceeds a few thousand.
    assert eng.peak_queue_length < 4_000
    # The tail below the compaction threshold stays lazily parked until
    # a timed run sweeps past it.
    eng.run(until=10_000_000.0)
    assert eng.queue_length == 0
    assert eng.events_dropped == 6_000


def test_compaction_applies_in_heap_only_mode():
    eng = Engine(seed=1, timer_wheel=False)

    def churn(eng, steps):
        for _ in range(steps):
            deadline = eng.timeout(5_000_000.0)
            yield eng.timeout(10.0)
            deadline.cancel()

    eng.process(churn(eng, 6_000))
    eng.run()
    assert eng.peak_queue_length < 4_000
    eng.run(until=10_000_000.0)
    assert eng.events_dropped == 6_000
