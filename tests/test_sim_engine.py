"""Unit tests for the simulation engine, events and processes."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Engine,
    Interrupt,
    ProcessKilled,
    SimulationError,
    Timeout,
)


def test_time_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_timeout_advances_clock():
    eng = Engine()
    times = []

    def body(eng):
        yield eng.timeout(10.0)
        times.append(eng.now)
        yield eng.timeout(5.0)
        times.append(eng.now)

    eng.process(body(eng))
    eng.run()
    assert times == [10.0, 15.0]


def test_timeout_delivers_value():
    eng = Engine()

    def body(eng):
        got = yield eng.timeout(1.0, value="payload")
        return got

    proc = eng.process(body(eng))
    eng.run()
    assert proc.value == "payload"


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_process_return_value():
    eng = Engine()

    def body(eng):
        yield eng.timeout(1.0)
        return 42

    proc = eng.process(body(eng))
    eng.run()
    assert proc.value == 42
    assert not proc.is_alive


def test_process_join():
    eng = Engine()

    def child(eng):
        yield eng.timeout(7.0)
        return "done"

    def parent(eng):
        result = yield eng.process(child(eng))
        return (eng.now, result)

    proc = eng.process(parent(eng))
    eng.run()
    assert proc.value == (7.0, "done")


def test_two_processes_interleave_deterministically():
    eng = Engine()
    order = []

    def worker(eng, name, delay):
        yield eng.timeout(delay)
        order.append((eng.now, name))
        yield eng.timeout(delay)
        order.append((eng.now, name))

    eng.process(worker(eng, "a", 3.0))
    eng.process(worker(eng, "b", 2.0))
    eng.run()
    assert order == [(2.0, "b"), (3.0, "a"), (4.0, "b"), (6.0, "a")]


def test_same_time_events_fifo_order():
    eng = Engine()
    order = []

    def worker(eng, name):
        yield eng.timeout(5.0)
        order.append(name)

    for name in ["first", "second", "third"]:
        eng.process(worker(eng, name))
    eng.run()
    assert order == ["first", "second", "third"]


def test_run_until_time_bound():
    eng = Engine()

    def body(eng):
        while True:
            yield eng.timeout(10.0)

    eng.process(body(eng))
    stopped = eng.run(until=35.0)
    assert stopped == 35.0
    assert eng.now == 35.0


def test_run_until_event():
    eng = Engine()

    def body(eng):
        yield eng.timeout(9.0)
        return "x"

    proc = eng.process(body(eng))
    assert eng.run_until(proc) == "x"
    assert eng.now == 9.0


def test_run_until_event_queue_drained_raises():
    eng = Engine()
    never = eng.event("never")

    def body(eng):
        yield eng.timeout(1.0)

    eng.process(body(eng))
    with pytest.raises(SimulationError):
        eng.run_until(never)


def test_event_succeed_once_only():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    eng = Engine()
    ev = eng.event()

    def body(eng, ev):
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    proc = eng.process(body(eng, ev))

    def failer(eng, ev):
        yield eng.timeout(1.0)
        ev.fail(ValueError("boom"))

    eng.process(failer(eng, ev))
    eng.run()
    assert proc.value == "caught boom"


def test_fail_requires_exception():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.event().fail("not an exception")


def test_uncaught_process_exception_surfaces():
    eng = Engine()

    def body(eng):
        yield eng.timeout(1.0)
        raise RuntimeError("crash")

    eng.process(body(eng))
    with pytest.raises(RuntimeError, match="crash"):
        eng.run()


def test_joined_process_exception_delivered_to_joiner():
    eng = Engine()

    def child(eng):
        yield eng.timeout(1.0)
        raise RuntimeError("child crash")

    def parent(eng):
        try:
            yield eng.process(child(eng))
        except RuntimeError as exc:
            return str(exc)

    proc = eng.process(parent(eng))
    eng.run()
    assert proc.value == "child crash"


def test_interrupt_wakes_sleeping_process():
    eng = Engine()

    def sleeper(eng):
        try:
            yield eng.timeout(1000.0)
            return "overslept"
        except Interrupt as intr:
            return ("interrupted", eng.now, intr.cause)

    proc = eng.process(sleeper(eng))

    def interrupter(eng, victim):
        yield eng.timeout(5.0)
        victim.interrupt(cause="wake up")

    eng.process(interrupter(eng, proc))
    eng.run()
    assert proc.value == ("interrupted", 5.0, "wake up")


def test_interrupt_on_finished_process_is_noop():
    eng = Engine()

    def body(eng):
        yield eng.timeout(1.0)

    proc = eng.process(body(eng))
    eng.run()
    proc.interrupt()  # must not raise
    assert proc.triggered


def test_kill_terminates_process():
    eng = Engine()
    progressed = []

    def body(eng):
        yield eng.timeout(10.0)
        progressed.append(True)

    proc = eng.process(body(eng))

    def killer(eng, victim):
        yield eng.timeout(1.0)
        victim.kill()

    eng.process(killer(eng, proc))
    eng.run()
    assert progressed == []
    assert isinstance(proc.exception, ProcessKilled)


def test_allof_waits_for_all():
    eng = Engine()

    def body(eng):
        t1 = eng.timeout(3.0, value="a")
        t2 = eng.timeout(7.0, value="b")
        got = yield AllOf(eng, [t1, t2])
        return (eng.now, sorted(got.values()))

    proc = eng.process(body(eng))
    eng.run()
    assert proc.value == (7.0, ["a", "b"])


def test_anyof_returns_on_first():
    eng = Engine()

    def body(eng):
        t1 = eng.timeout(3.0, value="fast")
        t2 = eng.timeout(7.0, value="slow")
        got = yield AnyOf(eng, [t1, t2])
        return (eng.now, list(got.values()))

    proc = eng.process(body(eng))
    eng.run()
    assert proc.value == (3.0, ["fast"])


def test_allof_empty_succeeds_immediately():
    eng = Engine()

    def body(eng):
        got = yield AllOf(eng, [])
        return dict(got)

    proc = eng.process(body(eng))
    eng.run()
    assert proc.value == {}


def test_yield_non_event_is_error():
    eng = Engine()

    def body(eng):
        yield 42

    eng.process(body(eng))
    with pytest.raises(TypeError):
        eng.run()


def test_cannot_schedule_in_past():
    eng = Engine()

    def body(eng):
        yield eng.timeout(5.0)

    eng.process(body(eng))
    eng.run()
    with pytest.raises(SimulationError):
        eng._schedule_at(1.0, eng.event())


def test_timeout_isinstance_event():
    eng = Engine()
    assert isinstance(eng.timeout(1.0), Timeout)
