"""Tests for the CatapultFabric facade and the loopback harness."""

import pytest

from repro.core import CatapultFabric, LoopbackHarness, LoopbackMode
from repro.fabric import TorusTopology
from repro.ranking.engine import ScoringEngine
from repro.ranking.models import ModelLibrary
from repro.services import FailureInjector, FailureKind
from repro.sim import Engine
from repro.workloads import TraceGenerator


@pytest.fixture(scope="module")
def fabric_with_ranking():
    fabric = CatapultFabric(
        pods=1, topology=TorusTopology(width=2, height=8), seed=31
    )
    pipeline = fabric.deploy_ranking(ring=0, model_scale=0.03)
    return fabric, pipeline


def test_facade_builds_and_deploys(fabric_with_ranking):
    fabric, pipeline = fabric_with_ranking
    assert pipeline.assignment is not None
    assert pipeline.head_node == (0, 0)
    assert fabric.pod(0).topology.node_count == 16


def test_facade_reuses_managers(fabric_with_ranking):
    fabric, _pipeline = fabric_with_ranking
    assert fabric.mapping_manager(0) is fabric.mapping_manager(0)
    assert fabric.health_monitor(0) is fabric.health_monitor(0)
    assert fabric.health_monitor(0).mapping_manager is fabric.mapping_manager(0)


def test_facade_health_check(fabric_with_ranking):
    fabric, _pipeline = fabric_with_ranking
    report = fabric.check_health([(0, 0), (0, 1)])
    assert len(report.diagnoses) == 2
    assert not report.failed_machines


def test_facade_end_to_end_failure_recovery():
    fabric = CatapultFabric(
        pods=1, topology=TorusTopology(width=2, height=8), seed=32
    )
    pipeline = fabric.deploy_ranking(ring=0, model_scale=0.03)
    victim = pipeline.assignment.node_of("compress")
    FailureInjector(fabric.pod(0)).inject(FailureKind.FPGA_HARDWARE_FAULT, victim)
    report = fabric.check_health([victim])
    assert report.failed_machines
    assert victim in pipeline.assignment.excluded
    assert fabric.mapping_manager(0).relocations == 1


def test_loopback_harness_pcie_vs_sl3():
    library = ModelLibrary.default(scale=0.03)
    pool = [TraceGenerator(seed=61).request() for _ in range(6)]

    rates = {}
    for mode in (LoopbackMode.PCIE, LoopbackMode.SL3):
        eng = Engine(seed=33)
        scoring = ScoringEngine(library)
        for request in pool:
            scoring.score(request.document, library[request.document.model_id])
        harness = LoopbackHarness(eng, "compress", scoring)
        rates[mode] = harness.measure_throughput(
            pool, mode, threads=1, requests_per_thread=8
        )
    assert rates[LoopbackMode.PCIE] > 0
    # The SL3 path adds two link crossings: strictly slower.
    assert rates[LoopbackMode.SL3] < rates[LoopbackMode.PCIE]


def test_loopback_harness_rejects_unknown_stage():
    library = ModelLibrary.default(scale=0.03)
    with pytest.raises(ValueError):
        LoopbackHarness(Engine(), "bogus", ScoringEngine(library))


def test_loopback_fe_stage_works():
    library = ModelLibrary.default(scale=0.03)
    pool = [TraceGenerator(seed=62).request() for _ in range(4)]
    eng = Engine(seed=34)
    scoring = ScoringEngine(library)
    for request in pool:
        scoring.score(request.document, library[request.document.model_id])
    harness = LoopbackHarness(eng, "fe", scoring)
    rate = harness.measure_throughput(
        pool, LoopbackMode.PCIE, threads=2, requests_per_thread=4
    )
    assert rate > 0
    assert harness.role.queue_manager.dispatched == 8
