"""Tests for torus geometry, DOR routing, cables and wiring plans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.cables import WiringPlan
from repro.fabric.torus import TorusTopology, dor_routes
from repro.shell.router import Port

TOPO = TorusTopology()  # the production 6x8


def test_dimensions_and_counts():
    assert TOPO.width == 6
    assert TOPO.height == 8
    assert TOPO.node_count == 48
    assert len(TOPO.nodes()) == 48
    assert len(TOPO.links()) == 96  # 2 per node in a 2-D torus


def test_invalid_torus_rejected():
    with pytest.raises(ValueError):
        TorusTopology(width=1, height=8)


def test_neighbor_wraparound():
    assert TOPO.neighbor((5, 0), Port.EAST) == (0, 0)
    assert TOPO.neighbor((0, 0), Port.WEST) == (5, 0)
    assert TOPO.neighbor((0, 7), Port.SOUTH) == (0, 0)
    assert TOPO.neighbor((0, 0), Port.NORTH) == (0, 7)


def test_neighbor_validation():
    with pytest.raises(ValueError):
        TOPO.neighbor((9, 9), Port.EAST)
    with pytest.raises(ValueError):
        TOPO.neighbor((0, 0), Port.ROLE)


def test_ring_is_full_column():
    ring = TOPO.ring(2)
    assert ring == [(2, y) for y in range(8)]
    with pytest.raises(ValueError):
        TOPO.ring(6)


def test_hop_distance_wraps():
    assert TOPO.hop_distance((0, 0), (5, 0)) == 1  # wraparound
    assert TOPO.hop_distance((0, 0), (3, 0)) == 3
    assert TOPO.hop_distance((0, 0), (0, 4)) == 4
    assert TOPO.hop_distance((1, 1), (1, 1)) == 0


def test_dor_routes_first_dimension_x():
    routes = dor_routes(TOPO, (0, 0))
    assert routes[(3, 0)] is Port.EAST
    assert routes[(4, 0)] is Port.WEST  # shorter the other way
    assert routes[(3, 5)] is Port.EAST  # X resolved before Y
    assert routes[(0, 4)] is Port.SOUTH
    assert routes[(0, 5)] is Port.NORTH
    assert (0, 0) not in routes


@settings(max_examples=100, deadline=None)
@given(
    sx=st.integers(0, 5), sy=st.integers(0, 7),
    dx=st.integers(0, 5), dy=st.integers(0, 7),
)
def test_dor_walk_reaches_destination_in_shortest_hops(sx, sy, dx, dy):
    """Property: following per-node DOR tables realizes shortest paths."""
    src, dst = (sx, sy), (dx, dy)
    if src == dst:
        return
    node = src
    hops = 0
    while node != dst:
        port = dor_routes(TOPO, node)[dst]
        node = TOPO.neighbor(node, port)
        hops += 1
        assert hops <= 16, "routing loop detected"
    assert hops == TOPO.hop_distance(src, dst)


# --- wiring plans / assemblies --------------------------------------------------


def test_assemblies_are_shells_of_eight_and_six():
    plan = WiringPlan(TOPO)
    groups = plan.assemblies()
    columns = [g for name, g in groups.items() if name.startswith("col")]
    rows = [g for name, g in groups.items() if name.startswith("row")]
    assert len(columns) == 6 and all(len(g) == 8 for g in columns)
    assert len(rows) == 8 and all(len(g) == 6 for g in rows)


def test_wiring_swap_cross_connects():
    plan = WiringPlan(TOPO)
    before_a = plan.wires[0]
    before_b = plan.wires[1]
    plan.swap(0, 1)
    assert plan.wires[0][:2] == before_a[:2]  # near end unchanged
    assert plan.wires[0][2:] == before_b[2:]  # far end swapped
    assert plan.wires[1][2:] == before_a[2:]


def test_wiring_swap_self_rejected():
    plan = WiringPlan(TOPO)
    with pytest.raises(ValueError):
        plan.swap(3, 3)


def test_expected_neighbor_matches_topology():
    plan = WiringPlan(TOPO)
    assert plan.expected_neighbor((0, 0), Port.EAST) == (1, 0)
