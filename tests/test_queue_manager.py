"""Unit tests for the Queue Manager (§4.3), isolated from the pipeline."""

import pytest

from repro.ranking.queue_manager import QueueManager
from repro.sim import Engine
from repro.sim.units import US


class Recorder:
    """Captures dispatch/reload order with controllable costs."""

    def __init__(self, eng, dispatch_ns=10.0 * US, reload_ns=250.0 * US):
        self.eng = eng
        self.dispatch_ns = dispatch_ns
        self.reload_ns = reload_ns
        self.events = []

    def dispatch(self, packet):
        yield self.eng.timeout(self.dispatch_ns)
        self.events.append(("doc", packet))

    def reload(self, model_id):
        yield self.eng.timeout(self.reload_ns)
        self.events.append(("reload", model_id))


def make_qm(eng, recorder, **kwargs):
    return QueueManager(
        eng, dispatch=recorder.dispatch, reload_model=recorder.reload, **kwargs
    )


def test_unknown_policy_rejected():
    eng = Engine()
    rec = Recorder(eng)
    with pytest.raises(ValueError):
        make_qm(eng, rec, policy="lifo")


def test_single_model_one_reload():
    eng = Engine()
    rec = Recorder(eng)
    qm = make_qm(eng, rec)
    for i in range(5):
        qm.enqueue(0, f"doc{i}")
    eng.run()
    reloads = [e for e in rec.events if e[0] == "reload"]
    docs = [e for e in rec.events if e[0] == "doc"]
    assert len(reloads) == 1
    assert len(docs) == 5
    assert qm.dispatched == 5
    assert qm.reload_count == 1


def test_batch_policy_drains_model_queues():
    eng = Engine()
    rec = Recorder(eng)
    qm = make_qm(eng, rec, policy="batch")
    # Interleaved arrivals before the QM starts draining.
    for i in range(3):
        qm.enqueue(0, f"a{i}")
        qm.enqueue(1, f"b{i}")
    eng.run()
    assert qm.reload_count == 2  # one switch per model, not per doc
    order = [e[1] for e in rec.events if e[0] == "doc"]
    assert order == ["a0", "a1", "a2", "b0", "b1", "b2"]


def test_fifo_policy_reloads_on_every_change():
    eng = Engine()
    rec = Recorder(eng)
    qm = make_qm(eng, rec, policy="fifo")
    for i in range(3):
        qm.enqueue(0, f"a{i}")
        qm.enqueue(1, f"b{i}")
    eng.run()
    assert qm.reload_count == 6  # a,b,a,b,a,b
    order = [e[1] for e in rec.events if e[0] == "doc"]
    assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]


def test_qm_sleeps_until_arrival():
    eng = Engine()
    rec = Recorder(eng)
    qm = make_qm(eng, rec)

    def late_producer(eng, qm):
        yield eng.timeout(1_000_000.0)
        qm.enqueue(0, "late")

    eng.process(late_producer(eng, qm))
    eng.run()
    assert qm.dispatched == 1
    assert eng.now >= 1_000_000.0


def test_switch_timeout_rotates_between_busy_queues():
    eng = Engine()
    rec = Recorder(eng, dispatch_ns=100.0 * US)
    qm = make_qm(eng, rec, switch_timeout_ns=250.0 * US, max_batch=1000)
    for i in range(6):
        qm.enqueue(0, f"a{i}")
        qm.enqueue(1, f"b{i}")
    eng.run()
    order = [e[1][0] for e in rec.events if e[0] == "doc"]
    # The timeout forces alternation between models: both appear early.
    assert "b" in order[:6]
    assert qm.reload_count > 2


def test_max_batch_caps_run_length():
    eng = Engine()
    rec = Recorder(eng)
    qm = make_qm(eng, rec, max_batch=2, switch_timeout_ns=1e12)
    for i in range(4):
        qm.enqueue(0, f"a{i}")
    qm.enqueue(1, "b0")
    eng.run()
    order = [e[1] for e in rec.events if e[0] == "doc"]
    assert order[:2] == ["a0", "a1"]
    assert "b0" in order[:4]  # model 1 served before model 0 finishes


def test_stats_reports_per_model_reloads_and_dispatches():
    eng = Engine()
    rec = Recorder(eng)
    qm = make_qm(eng, rec, policy="batch")
    for i in range(3):
        qm.enqueue(0, f"a{i}")
    qm.enqueue(1, "b0")
    eng.run()
    stats = qm.stats()
    assert stats["policy"] == "batch"
    assert stats["enqueued"] == 4
    assert stats["dispatched"] == 4
    assert stats["reloads"] == 2
    assert stats["backlog"] == 0
    assert stats["per_model"] == {
        0: {"reloads": 1, "dispatched": 3},
        1: {"reloads": 1, "dispatched": 1},
    }
    # Per-model counts tie out with the totals.
    assert sum(m["reloads"] for m in stats["per_model"].values()) == 2
    assert sum(m["dispatched"] for m in stats["per_model"].values()) == 4


def test_backlog_counts_both_policies():
    eng = Engine()
    rec = Recorder(eng)
    qm = make_qm(eng, rec, policy="batch")
    qm.enqueue(0, "x")
    qm.enqueue(1, "y")
    assert qm.backlog == 2 or qm.backlog == 1  # one may have been taken
    eng.run()
    assert qm.backlog == 0
