"""Tests for simlint: every rule positive + negative + allowlisted."""

import json
import textwrap

from repro.analysis.lint.cli import iter_python_files, main
from repro.analysis.lint.framework import Linter
from repro.analysis.lint.registry import default_rules


def lint(source: str, path: str = "src/repro/example.py"):
    linter = Linter(default_rules())
    return linter.lint_source(path, textwrap.dedent(source))


def codes(source: str, path: str = "src/repro/example.py"):
    return [finding.code for finding in lint(source, path)]


# --- SIM001: bare RNG ---------------------------------------------------------------


def test_rng_flags_bare_random_constructor():
    assert codes("import random\nrng = random.Random(7)\n") == ["SIM001"]


def test_rng_flags_module_level_draw():
    assert codes("import random\nx = random.choice([1, 2])\n") == ["SIM001"]


def test_rng_flags_from_import():
    assert codes("from random import choice\n") == ["SIM001"]


def test_rng_clean_on_named_stream():
    src = "x = engine.rng.stream('pod:0').random()\n"
    assert codes(src) == []


def test_rng_clean_on_local_stream_object():
    # rng.random() is a draw from an (already justified) stream object,
    # not the random module.
    assert codes("y = rng.random()\n") == []


def test_rng_exempts_the_stream_factory_itself():
    src = "import random\nr = random.Random(3)\n"
    assert codes(src, path="src/repro/sim/rng.py") == []


def test_rng_allowlisted_inline():
    src = (
        "import random\n"
        "r = random.Random(3)  # simlint: allow-rng -- engine-free fixture\n"
    )
    assert codes(src) == []


def test_rng_allowlisted_from_comment_block_above():
    src = """\
    import random
    # simlint: allow-rng -- a justification long enough that it
    # wraps across several comment lines before the statement.
    r = random.Random(3)
    """
    assert codes(src) == []


# --- SIM002: wall clock -------------------------------------------------------------


def test_wall_clock_flags_perf_counter_and_datetime_now():
    src = """\
    import time
    import datetime
    t = time.perf_counter()
    d = datetime.datetime.now()
    """
    assert codes(src) == ["SIM002", "SIM002"]


def test_wall_clock_clean_on_engine_now():
    assert codes("t = engine.now\n") == []


def test_wall_clock_allowlisted():
    src = (
        "import time\n"
        "t = time.perf_counter()  # simlint: allow-wall-clock -- harness timing\n"
    )
    assert codes(src) == []


# --- SIM003: real sleep -------------------------------------------------------------


def test_real_sleep_flags_call_and_import():
    assert codes("import time\ntime.sleep(1)\n") == ["SIM003"]
    assert codes("from time import sleep\n") == ["SIM003"]


def test_real_sleep_clean_on_sim_timeout():
    src = """\
    def body(engine):
        yield engine.timeout(5.0)
    """
    assert codes(src) == []


# --- SIM004: OS entropy -------------------------------------------------------------


def test_entropy_flags_urandom_uuid4_secrets():
    src = """\
    import os, uuid, secrets
    a = os.urandom(8)
    b = uuid.uuid4()
    c = secrets.token_hex(4)
    """
    assert codes(src) == ["SIM004", "SIM004", "SIM004"]


def test_entropy_flags_secrets_import():
    assert codes("from secrets import token_hex\n") == ["SIM004"]


def test_system_random_reports_entropy_not_rng():
    # One finding, not two: SIM004 owns SystemRandom.
    assert codes("import random\nr = random.SystemRandom()\n") == ["SIM004"]


def test_entropy_clean_on_uuid5():
    # uuid5 is a pure hash of its inputs: deterministic, allowed.
    assert codes("import uuid\nu = uuid.uuid5(uuid.NAMESPACE_DNS, 'x')\n") == []


# --- SIM005: set iteration ----------------------------------------------------------


def test_set_iteration_flags_for_loop_over_set_literal():
    src = """\
    for node in {1, 2, 3}:
        place(node)
    """
    assert codes(src) == ["SIM005"]


def test_set_iteration_flags_comprehension_and_list_call():
    assert codes("xs = [n for n in set(nodes)]\n") == ["SIM005"]
    assert codes("xs = list({1} | {2})\n") == ["SIM005"]


def test_set_iteration_clean_when_sorted():
    src = """\
    for node in sorted({1, 2, 3}):
        place(node)
    """
    assert codes(src) == []


def test_set_iteration_clean_over_list():
    src = """\
    for node in [1, 2, 3]:
        place(node)
    """
    assert codes(src) == []


# --- SIM006: id() ordering ----------------------------------------------------------


def test_id_ordering_flags_id_call():
    assert codes("order = sorted(objs, key=lambda o: id(o))\n") == ["SIM006"]


def test_id_ordering_clean_on_stable_key():
    assert codes("order = sorted(objs, key=lambda o: o.name)\n") == []


def test_id_ordering_allowlisted():
    src = (
        "seen = {id(o) for o in objs}"
        "  # simlint: allow-id-ordering -- uniqueness only\n"
    )
    assert codes(src) == []


# --- SIM007: unbounded accumulators -------------------------------------------------


def test_unbounded_accum_flags_latency_list():
    assert codes("latencies = []\n") == ["SIM007"]
    assert codes("self.samples = list()\n") == ["SIM007"]
    assert codes("durations_ns: list = []\n") == ["SIM007"]


def test_unbounded_accum_clean_on_reservoir_or_other_names():
    assert codes("latencies = ReservoirSample()\n") == []
    assert codes("names = []\n") == []


def test_unbounded_accum_exempts_reservoir_implementation():
    assert codes("self._sample_ns = []\n", path="src/repro/analysis/stats.py") == []


# --- SIM008: dead yields ------------------------------------------------------------


def test_dead_yield_flags_fresh_event():
    src = """\
    def body(engine):
        yield engine.event()
    """
    assert codes(src) == ["SIM008"]


def test_dead_yield_clean_when_event_is_referenced():
    src = """\
    def body(engine, mailbox):
        ev = engine.event()
        mailbox.append(ev)
        yield ev
    """
    assert codes(src) == []


# --- SIM000: the allowlist itself ---------------------------------------------------


def test_allow_without_reason_is_a_finding_and_grants_nothing():
    src = "import random\nr = random.Random(3)  # simlint: allow-rng\n"
    assert sorted(codes(src)) == ["SIM000", "SIM001"]


def test_allow_unknown_rule_is_a_finding():
    src = "x = 1  # simlint: allow-made-up-rule -- because\n"
    assert codes(src) == ["SIM000"]


def test_directive_without_allow_clause_is_a_finding():
    assert codes("x = 1  # simlint: please ignore\n") == ["SIM000"]


def test_directive_inside_string_is_not_a_directive():
    assert codes("s = '# simlint: allow-rng'\n") == []


def test_one_directive_can_cover_two_rules():
    src = (
        "import random, time\n"
        "# simlint: allow-rng, allow-wall-clock -- harness-local seed+timer\n"
        "r = random.Random(time.time_ns())\n"
    )
    assert codes(src) == []


# --- SIM999 + findings metadata -----------------------------------------------------


def test_syntax_error_is_reported_not_raised():
    findings = lint("def broken(:\n")
    assert [finding.code for finding in findings] == ["SIM999"]


def test_finding_format_is_path_line_col_code():
    (finding,) = lint("import random\nr = random.Random(1)\n")
    assert finding.format().startswith("src/repro/example.py:2:")
    assert "SIM001" in finding.format()


# --- the command line ---------------------------------------------------------------


def test_cli_exit_codes_and_select(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nr = random.Random(1)\nlatencies = []\n")
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")

    assert main([str(clean)]) == 0
    assert main([str(dirty)]) == 1
    capsys.readouterr()  # flush output of the runs above
    # --select narrows the rule set: only the accumulator remains.
    assert main([str(dirty), "--select", "unbounded-accum"]) == 1
    out = capsys.readouterr().out
    assert "SIM007" in out and "SIM001" not in out
    # --ignore removes both findings.
    assert main([str(dirty), "--ignore", "rng,unbounded-accum"]) == 0


def test_cli_json_output(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nr = random.Random(1)\n")
    assert main([str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["code"] == "SIM001"
    assert payload[0]["line"] == 2


def test_cli_usage_errors(tmp_path):
    assert main([]) == 2
    assert main([str(tmp_path / "missing")]) == 2
    assert main([str(tmp_path), "--select", "nope"]) == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SIM001", "SIM002", "SIM005", "SIM008"):
        assert code in out


def test_iter_python_files_skips_caches(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
    (tmp_path / "keep.py").write_text("x = 1\n")
    files = iter_python_files([str(tmp_path)])
    assert [path.name for path in files] == ["keep.py"]
