"""Integration tests: the full 8-FPGA ranking ring on a pod."""

import pytest

from repro.fabric import Pod, TorusTopology
from repro.ranking.models import ModelLibrary
from repro.ranking.pipeline import RankingPipeline, ranking_bitstreams
from repro.ranking.software_ranker import SoftwareRanker
from repro.ranking.stages import FeatureExtractionRole
from repro.sim import Engine


@pytest.fixture(scope="module")
def deployed():
    """One deployed ranking ring (2x8 pod, small models) + request pool."""
    eng = Engine(seed=21)
    pod = Pod(eng, topology=TorusTopology(width=2, height=8))
    library = ModelLibrary.default(scale=0.03)
    pipeline = RankingPipeline(eng, pod, library, ring_x=0)
    pipeline.deploy()
    pool = pipeline.make_request_pool(12, seed=77)
    return eng, pod, pipeline, pool


def test_deployment_maps_all_eight_roles(deployed):
    _eng, pod, pipeline, _pool = deployed
    assignment = pipeline.assignment
    names = [spec.name for spec in pipeline.service.roles]
    assert names == ["fe", "ffe0", "ffe1", "compress", "score0", "score1", "score2"]
    assert assignment.node_of("fe") == (0, 0)
    assert assignment.spare_nodes == [(0, 7)]
    fe_role = pipeline.stage_role("fe")
    assert isinstance(fe_role, FeatureExtractionRole)
    assert fe_role.queue_manager is not None


def test_scores_identical_to_software(deployed):
    """The paper's key functional claim: FPGA results == software."""
    eng, pod, pipeline, pool = deployed
    injector_server = pod.server_at((1, 3))
    done, stats = pipeline.spawn_injector(
        injector_server, threads=2, pool=pool[:4], requests_per_thread=2
    )
    eng.run_until(done)
    assert stats.completed == 4
    assert stats.timeouts == 0

    software = SoftwareRanker(pod.server_at((1, 4)), pipeline.scoring_engine)
    for request in pool[:4]:
        model = pipeline.library[request.document.model_id]
        expected = pipeline.scoring_engine.score(request.document, model)

        def score_one(eng, request=request):
            result = yield from software.score_request(request)
            return result

        proc = eng.process(score_one(eng))
        eng.run_until(proc)
        sw_score, _latency = proc.value
        assert sw_score == expected  # bit-identical


def test_pipeline_latency_reasonable(deployed):
    eng, pod, pipeline, pool = deployed
    done, stats = pipeline.spawn_injector(
        pod.server_at((1, 0)), threads=1, pool=pool[:1], requests_per_thread=3
    )
    eng.run_until(done)
    latencies = stats.latencies_ns
    assert len(latencies) == 3
    # Unloaded round trip: prep + DMA + ring traversal, well under 1 ms.
    assert all(20_000 <= lat <= 1_000_000 for lat in latencies)


def test_stage_counters_advance(deployed):
    _eng, _pod, pipeline, _pool = deployed
    fe = pipeline.stage_role("fe")
    scorer2 = pipeline.stage_role("score2")
    assert fe.docs_processed > 0
    assert scorer2.docs_processed > 0


def test_model_mix_triggers_reloads():
    eng = Engine(seed=22)
    pod = Pod(eng, topology=TorusTopology(width=2, height=8))
    library = ModelLibrary.default(scale=0.03)
    pipeline = RankingPipeline(eng, pod, library, ring_x=0)
    pipeline.deploy()
    pool = pipeline.make_request_pool(16, seed=5, model_mix={0: 0.5, 2: 0.5})
    done, stats = pipeline.spawn_injector(
        pod.server_at((1, 1)), threads=2, pool=pool, requests_per_thread=4
    )
    eng.run_until(done)
    assert stats.completed == 8
    fe = pipeline.stage_role("fe")
    assert fe.queue_manager.reload_count >= 2  # both models were loaded
    ffe0 = pipeline.stage_role("ffe0")
    assert ffe0.reloads >= 2  # reload command rippled downstream


def test_fifo_policy_reloads_more_than_batch():
    results = {}
    for policy in ("batch", "fifo"):
        eng = Engine(seed=23)
        pod = Pod(eng, topology=TorusTopology(width=2, height=8))
        library = ModelLibrary.default(scale=0.03)
        pipeline = RankingPipeline(eng, pod, library, ring_x=0, qm_policy=policy)
        pipeline.deploy()
        pool = pipeline.make_request_pool(24, seed=9, model_mix={0: 0.5, 1: 0.5})
        # Flood the queue manager (no host prep, many threads) so the
        # per-model queues actually build up and batching can pay off.
        done, stats = pipeline.spawn_injector(
            pod.server_at((1, 2)),
            threads=12,
            pool=pool,
            requests_per_thread=8,
            include_prep=False,
        )
        eng.run_until(done)
        assert stats.completed == 96
        results[policy] = pipeline.stage_role("fe").queue_manager.reload_count
    assert results["fifo"] > results["batch"]


def test_ranking_bitstreams_fit_device():
    synthesized = ranking_bitstreams()
    assert set(synthesized) == {
        "fe", "ffe0", "ffe1", "compress", "score0", "score1", "score2", "spare"
    }
    for bitstream, report in synthesized.values():
        assert bitstream.fits(bitstream_device(report))
        assert 0 < report.logic_pct <= 100
        assert 0 < report.ram_pct <= 100


def bitstream_device(report):
    return report.device


def test_software_ranker_latency_grows_under_load():
    eng = Engine(seed=24)
    pod = Pod(eng, topology=TorusTopology(width=2, height=2))
    library = ModelLibrary.default(scale=0.03)
    from repro.ranking.engine import ScoringEngine

    engine_ref = ScoringEngine(library)
    server = pod.server_at((0, 0))
    ranker = SoftwareRanker(server, engine_ref)
    gen_pool = [r for r in __import__("repro.workloads", fromlist=["TraceGenerator"]).TraceGenerator(seed=3).requests(4)]

    def run_batch(count):
        def one(eng, request):
            yield from ranker.score_request(request)

        procs = [
            eng.process(one(eng, gen_pool[i % len(gen_pool)])) for i in range(count)
        ]
        from repro.sim import AllOf

        waiter = AllOf(eng, procs)
        eng.run_until(waiter)

    ranker.latencies_ns.clear()
    run_batch(2)  # light load
    light = sum(ranker.latencies_ns) / len(ranker.latencies_ns)
    ranker.latencies_ns.clear()
    run_batch(36)  # oversubscribed: queueing + contention
    heavy = sum(ranker.latencies_ns) / len(ranker.latencies_ns)
    assert heavy > light * 1.5
