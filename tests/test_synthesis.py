"""Tests for the synthesis estimator and role component library."""

import pytest

from repro.hardware.bitstream import shell_budget
from repro.hardware.constants import STRATIX_V_D5
from repro.hardware.synthesis import (
    COMPONENT_COSTS,
    SynthesisError,
    estimate_clock,
    role_budget,
    synthesize,
)
from repro.ranking.pipeline import ROLE_COMPONENTS, ranking_bitstreams


def test_role_budget_sums_components():
    budget = role_budget({"ffe.core": 2, "ffe.complex_block": 1})
    core = COMPONENT_COSTS["ffe.core"]
    block = COMPONENT_COSTS["ffe.complex_block"]
    assert budget.alms == 2 * core.alms + block.alms
    assert budget.m20k_blocks == 2 * core.m20k_blocks + block.m20k_blocks


def test_unknown_component_rejected():
    with pytest.raises(SynthesisError):
        role_budget({"warp.core": 1})
    with pytest.raises(SynthesisError):
        role_budget({"ffe.core": -1})


def test_synthesize_emits_fitting_bitstream():
    bitstream, report = synthesize("tiny", {"spare.passthrough": 1})
    assert bitstream.fits(STRATIX_V_D5)
    assert report.logic_pct >= 23.0 - 0.5  # shell floor
    assert report.clock_mhz > 100


def test_synthesize_rejects_oversized_role():
    with pytest.raises(SynthesisError):
        synthesize("huge", {"ffe.core": 200})  # 200 cores cannot fit


def test_clock_override():
    bitstream, report = synthesize(
        "fixed", {"spare.passthrough": 1}, clock_override_mhz=175.0
    )
    assert report.clock_mhz == 175.0
    assert bitstream.clock_mhz == 175.0


def test_clock_degrades_with_congestion():
    light = role_budget({"spare.passthrough": 1})
    heavy = role_budget({"ffe.core": 60, "ffe.complex_block": 10})
    assert estimate_clock("light", light, STRATIX_V_D5) > estimate_clock(
        "heavy", heavy, STRATIX_V_D5
    )


def test_shell_budget_is_23_percent_logic():
    shell = shell_budget(STRATIX_V_D5)
    assert shell.alms / STRATIX_V_D5.alms == pytest.approx(0.23, abs=0.002)


def test_all_ranking_roles_fit_with_headroom():
    for role, (bitstream, report) in ranking_bitstreams().items():
        assert bitstream.fits(STRATIX_V_D5), role
        assert report.ram_pct <= 95, role  # no role maxes the device
        assert 100 <= report.clock_mhz <= 200, role


def test_fe_has_43_state_machines_in_component_list():
    assert ROLE_COMPONENTS["fe"]["fe.state_machine"] == 43


def test_ffe_role_has_60_cores_10_clusters():
    assert ROLE_COMPONENTS["ffe0"]["ffe.core"] == 60
    assert ROLE_COMPONENTS["ffe0"]["ffe.complex_block"] == 10  # 60 / 6
