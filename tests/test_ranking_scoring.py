"""Tests for the tree scorer, compression, models, and scoring engine."""

import pytest

from repro.ranking.compression import CompressionMap
from repro.ranking.engine import ScoringEngine
from repro.ranking.models import ModelLibrary, synthesize_model
from repro.ranking.scoring import BoostedTreeScorer, DecisionTree, TreeNode
from repro.workloads import TraceGenerator


def leaf(value):
    return TreeNode(value=value)


def simple_tree():
    # if packed[0] <= 1.0: 0.5 else (if packed[1] <= 2.0: -1.0 else 2.0)
    return DecisionTree(
        TreeNode(
            feature=0,
            threshold=1.0,
            left=leaf(0.5),
            right=TreeNode(feature=1, threshold=2.0, left=leaf(-1.0), right=leaf(2.0)),
        )
    )


def test_tree_evaluation_paths():
    tree = simple_tree()
    assert tree.evaluate([0.5, 0.0]) == 0.5
    assert tree.evaluate([1.5, 1.0]) == -1.0
    assert tree.evaluate([1.5, 3.0]) == 2.0


def test_tree_out_of_range_feature_reads_zero():
    tree = DecisionTree(
        TreeNode(feature=10, threshold=1.0, left=leaf(1.0), right=leaf(-1.0))
    )
    assert tree.evaluate([]) == 1.0  # 0.0 <= 1.0


def test_tree_node_count_and_depth():
    tree = simple_tree()
    assert tree.node_count() == 5
    assert tree.depth() == 3


def test_scorer_banks_partition_trees():
    trees = [simple_tree() for _ in range(10)]
    scorer = BoostedTreeScorer(trees)
    bank_sizes = [len(scorer.bank(i)) for i in range(3)]
    assert sum(bank_sizes) == 10
    assert bank_sizes == [4, 3, 3]  # round-robin


def test_bank_partials_sum_to_full_score():
    trees = [simple_tree() for _ in range(7)]
    scorer = BoostedTreeScorer(trees, learning_rate=0.25)
    packed = [1.5, 3.0]
    total = sum(scorer.evaluate_bank(i, packed) for i in range(3))
    assert total == pytest.approx(scorer.evaluate(packed))


def test_scorer_validation():
    with pytest.raises(ValueError):
        BoostedTreeScorer([])
    with pytest.raises(ValueError):
        BoostedTreeScorer([simple_tree()]).bank(3)


# --- compression -------------------------------------------------------------


def test_compression_pack_order_and_defaults():
    cmap = CompressionMap([10, 3, 99])
    assert cmap.slots == [3, 10, 99]
    packed = cmap.pack({10: 1.0, 99: 2.0})
    assert packed == [0.0, 1.0, 2.0]
    assert cmap.packed_bytes() == 12
    assert len(cmap) == 3


def test_compression_requires_slots():
    with pytest.raises(ValueError):
        CompressionMap([])


# --- models -----------------------------------------------------------------------


def small_model(model_id=0, seed=4):
    return synthesize_model(
        model_id,
        f"test-{model_id}",
        seed=seed,
        metafeatures=6,
        stage1_expressions=40,
        trees=24,
        tree_depth=4,
    )


def test_model_synthesis_deterministic():
    a = small_model(seed=4)
    b = small_model(seed=4)
    gen = TraceGenerator(seed=8)
    request = gen.request()
    engine_a = ScoringEngine(ModelLibrary([a]))
    engine_b = ScoringEngine(ModelLibrary([b]))
    assert engine_a.score(request.document, a) == engine_b.score(request.document, b)


def test_model_footprint_positive():
    model = small_model()
    fp = model.footprint
    assert fp.fe_bytes > 0
    assert fp.ffe0_bytes > 0 and fp.ffe1_bytes > 0
    assert fp.compression_bytes > 0
    assert len(fp.scoring_bytes) == 3 and all(b > 0 for b in fp.scoring_bytes)
    assert fp.stage_bytes("score1") == fp.scoring_bytes[1]


def test_model_library_default_scaled():
    library = ModelLibrary.default(scale=0.02)
    assert len(library) == 4
    assert library.ids() == [0, 1, 2, 3]
    assert 0 in library


# --- scoring engine ------------------------------------------------------------------


def test_engine_score_is_deterministic_and_cached():
    model = small_model()
    engine = ScoringEngine(ModelLibrary([model]))
    request = TraceGenerator(seed=5).request()
    first = engine.score(request.document, model)
    second = engine.score(request.document, model)
    assert first == second
    assert isinstance(first, float)


def test_engine_bank_partials_match_full_score():
    model = small_model()
    engine = ScoringEngine(ModelLibrary([model]))
    request = TraceGenerator(seed=6).request()
    partials = sum(engine.bank_partial(request.document, model, b) for b in range(3))
    assert partials == pytest.approx(engine.score(request.document, model))


def test_engine_ffe_cycles_cached_and_positive():
    model = small_model()
    engine = ScoringEngine(ModelLibrary([model]))
    c0 = engine.ffe_stage_cycles(model, 0)
    c1 = engine.ffe_stage_cycles(model, 1)
    assert c0 > 0 and c1 > 0
    assert engine.ffe_stage_cycles(model, 0) == c0  # cached


def test_engine_metafeatures_flow_into_stage1():
    """Stage-1 expressions reading metafeatures must see stage-0 output."""
    model = small_model()
    engine = ScoringEngine(ModelLibrary([model]))
    request = TraceGenerator(seed=7).request()
    merged = engine.ffe_values(request.document, model)
    from repro.ranking.ffe.expr import METAFEATURE_BASE

    metafeature_slots = [
        slot for slot in merged if METAFEATURE_BASE <= slot < (1 << 17)
    ]
    assert metafeature_slots  # stage 0 produced metafeatures
