"""Tests for the FPGA device, bitstreams, flash, DRAM, power, thermal."""

import pytest

from repro.hardware import (
    Bitstream,
    ConfigFlash,
    DramConfig,
    DramController,
    DramError,
    FlashError,
    Fpga,
    FpgaState,
    PowerModel,
    ReconfigError,
    ResourceBudget,
    ShellVersion,
    STRATIX_V_D5,
    TemperatureShutdown,
    ThermalModel,
)
from repro.hardware.constants import BOARD_LIMITS, DramSpeed, MODEL_RELOAD_WORST_NS
from repro.hardware.flash import FLASH_BYTES
from repro.sim import Engine, SEC


def small_bitstream(name="role", alms=10_000):
    return Bitstream(
        role_name=name,
        role_budget=ResourceBudget(alms=alms, m20k_blocks=100, dsp_blocks=10),
        clock_mhz=175.0,
    )


# --- FPGA -------------------------------------------------------------------


def test_fpga_starts_unconfigured():
    eng = Engine()
    fpga = Fpga(eng, "f0")
    assert fpga.state is FpgaState.UNCONFIGURED
    assert fpga.configured_role is None
    assert not fpga.is_operational


def test_reconfigure_completes_after_delay():
    eng = Engine()
    fpga = Fpga(eng, "f0", reconfig_ns=1.0 * SEC)
    done = fpga.reconfigure(small_bitstream("fe"))
    eng.run_until(done)
    assert eng.now == pytest.approx(1.0 * SEC)
    assert fpga.state is FpgaState.CONFIGURED
    assert fpga.configured_role == "fe"
    assert fpga.is_operational


def test_reconfigure_while_reconfiguring_rejected():
    eng = Engine()
    fpga = Fpga(eng, "f0")
    fpga.reconfigure(small_bitstream())
    eng.run(until=1.0)  # enter RECONFIGURING
    with pytest.raises(ReconfigError):
        fpga.reconfigure(small_bitstream())


def test_reconfigure_oversized_bitstream_rejected():
    eng = Engine()
    fpga = Fpga(eng, "f0")
    huge = Bitstream(
        role_name="huge",
        role_budget=ResourceBudget(alms=STRATIX_V_D5.alms * 2),
        clock_mhz=100.0,
    )
    with pytest.raises(ReconfigError):
        fpga.reconfigure(huge)


def test_failed_fpga_rejects_reconfig():
    eng = Engine()
    fpga = Fpga(eng, "f0")
    fpga.mark_failed()
    with pytest.raises(ReconfigError):
        fpga.reconfigure(small_bitstream())


def test_failure_during_reconfig_fails_event():
    eng = Engine()
    fpga = Fpga(eng, "f0", reconfig_ns=100.0)
    done = fpga.reconfigure(small_bitstream())

    def saboteur(eng, fpga):
        yield eng.timeout(50.0)
        fpga.mark_failed()

    eng.process(saboteur(eng, fpga))

    def waiter(eng, done):
        try:
            yield done
            return "ok"
        except ReconfigError:
            return "failed"

    proc = eng.process(waiter(eng, done))
    eng.run()
    assert proc.value == "failed"
    assert fpga.state is FpgaState.FAILED


def test_seu_scrub_cycle():
    eng = Engine()
    fpga = Fpga(eng, "f0")
    fpga.inject_seu()
    fpga.inject_seu()
    assert fpga.scrub() == 2
    assert fpga.scrub() == 0
    fpga.inject_seu(correctable=False)
    assert fpga.scrub() == 0
    assert fpga.seu.uncorrected == 1


def test_reconfig_clears_uncorrected_seu():
    eng = Engine()
    fpga = Fpga(eng, "f0", reconfig_ns=10.0)
    fpga.inject_seu(correctable=False)
    done = fpga.reconfigure(small_bitstream())
    eng.run_until(done)
    assert fpga.seu.uncorrected == 0


def test_state_observer_notified():
    eng = Engine()
    fpga = Fpga(eng, "f0", reconfig_ns=10.0)
    transitions = []
    fpga.on_state_change(lambda f, s: transitions.append(s))
    done = fpga.reconfigure(small_bitstream())
    eng.run_until(done)
    assert transitions == [FpgaState.RECONFIGURING, FpgaState.CONFIGURED]


def test_repair_resets_device():
    eng = Engine()
    fpga = Fpga(eng, "f0")
    fpga.mark_failed()
    fpga.repair()
    assert fpga.state is FpgaState.UNCONFIGURED
    assert fpga.pll_locked


# --- Shell version ------------------------------------------------------------


def test_shell_version_compatibility():
    assert ShellVersion(1, 0).compatible_with(ShellVersion(1, 5))
    assert not ShellVersion(1, 0).compatible_with(ShellVersion(2, 0))


# --- Bitstream / budgets --------------------------------------------------------


def test_budget_addition_and_fit():
    a = ResourceBudget(alms=100, m20k_blocks=10, dsp_blocks=1)
    b = ResourceBudget(alms=200, m20k_blocks=20, dsp_blocks=2)
    total = a + b
    assert (total.alms, total.m20k_blocks, total.dsp_blocks) == (300, 30, 3)
    assert total.fits(STRATIX_V_D5)


def test_utilization_fractions():
    budget = ResourceBudget(alms=STRATIX_V_D5.alms // 2)
    util = budget.utilization(STRATIX_V_D5)
    assert util["logic"] == pytest.approx(0.5, abs=0.01)
    assert util["ram"] == 0.0


# --- Flash ---------------------------------------------------------------------


def test_flash_write_then_read_roundtrip():
    eng = Engine()
    flash = ConfigFlash(eng)
    bs = small_bitstream("golden-image")
    done = flash.write(ConfigFlash.APPLICATION_SLOT, bs)
    eng.run_until(done)
    assert flash.stored(ConfigFlash.APPLICATION_SLOT) is bs
    read = flash.read(ConfigFlash.APPLICATION_SLOT)
    value = eng.run_until(read)
    assert value is bs


def test_flash_read_empty_slot_raises():
    eng = Engine()
    flash = ConfigFlash(eng)
    with pytest.raises(FlashError):
        flash.read(ConfigFlash.GOLDEN_SLOT)


def test_flash_unknown_slot_rejected():
    eng = Engine()
    flash = ConfigFlash(eng)
    with pytest.raises(FlashError):
        flash.write("bogus", small_bitstream())


def test_flash_capacity_enforced():
    eng = Engine()
    flash = ConfigFlash(eng)
    huge = Bitstream(
        role_name="x",
        role_budget=ResourceBudget(),
        clock_mhz=100.0,
        size_bytes=FLASH_BYTES + 1,
    )
    with pytest.raises(FlashError):
        flash.write(ConfigFlash.APPLICATION_SLOT, huge)


def test_flash_write_takes_time():
    eng = Engine()
    flash = ConfigFlash(eng)
    done = flash.write(ConfigFlash.APPLICATION_SLOT, small_bitstream())
    eng.run_until(done)
    assert eng.now > 1.0 * SEC  # ~21 MB at ~3 MB/s is several seconds


# --- DRAM ----------------------------------------------------------------------


def test_dram_word_roundtrip():
    eng = Engine()
    dram = DramController(eng)
    dram.write_word(0x10, 0xFEEDFACE12345678)
    assert dram.read_word(0x10) == 0xFEEDFACE12345678


def test_dram_unwritten_reads_zero():
    eng = Engine()
    dram = DramController(eng)
    assert dram.read_word(0x999) == 0


def test_dram_out_of_range_raises():
    eng = Engine()
    dram = DramController(eng)
    with pytest.raises(DramError):
        dram.read_word(dram.capacity_words)
    with pytest.raises(DramError):
        dram.write_word(-1, 0)


def test_dram_soft_errors_corrected_by_ecc():
    eng = Engine(seed=5)
    dram = DramController(eng, error_rate=1.0)  # every read injects a flip
    dram.write_word(0, 0xABCD)
    for _ in range(20):
        assert dram.read_word(0) == 0xABCD
    assert dram.health.corrected_errors > 0


def test_dram_double_bit_error_detected_not_corrected():
    eng = Engine(seed=5)
    dram = DramController(eng, double_error_rate=1.0)
    dram.write_word(0, 0xABCD)
    with pytest.raises(DramError):
        dram.read_word(0)
    assert dram.health.uncorrectable_errors == 1


def test_dram_without_ecc_returns_corrupted_data():
    eng = Engine(seed=5)
    dram = DramController(eng, config=DramConfig(ecc_enabled=False), error_rate=1.0)
    dram.write_word(0, 0xABCD)
    values = {dram.read_word(0) for _ in range(10)}
    assert any(value != 0xABCD for value in values)


def test_dram_calibration_failure_blocks_access():
    eng = Engine()
    dram = DramController(eng)
    dram.fail_calibration()
    with pytest.raises(DramError):
        dram.read_word(0)
    dram.recalibrate()
    dram.read_word(0)


def test_dram_speed_tradeoff():
    # Dual-rank: full capacity at lower clock; single-rank: faster, half size.
    dual = DramConfig(speed=DramSpeed.DDR3_1333_DUAL_RANK)
    single = DramConfig(speed=DramSpeed.DDR3_1600_SINGLE_RANK)
    assert dual.total_capacity_bytes == 2 * single.total_capacity_bytes
    assert single.bandwidth_bytes_per_ns > dual.bandwidth_bytes_per_ns


def test_dram_transfer_timing_scales():
    eng = Engine()
    dram = DramController(eng)
    t_small = dram.transfer_time_ns(1024)
    t_big = dram.transfer_time_ns(1024 * 1024)
    assert t_big > t_small
    # The full 2,014-M20K model reload from DRAM must be ~<=250 us (§4.3).
    all_m20k_bytes = 2014 * 20 * 1024 // 8
    assert dram.transfer_time_ns(all_m20k_bytes) <= MODEL_RELOAD_WORST_NS * 2.2


# --- Power / thermal ---------------------------------------------------------------


def test_power_virus_matches_paper():
    report = PowerModel().power_virus()
    assert report.total_w == pytest.approx(BOARD_LIMITS.power_virus_w, rel=0.05)
    assert report.within_pcie_budget


def test_normal_operation_under_20w():
    budget = ResourceBudget(alms=120_000, m20k_blocks=1_000, dsp_blocks=400)
    report = PowerModel().estimate(budget, clock_mhz=166.0, toggle_rate=0.25)
    assert report.total_w < BOARD_LIMITS.normal_power_limit_w


def test_power_toggle_rate_validation():
    with pytest.raises(ValueError):
        PowerModel().estimate(ResourceBudget(), 100.0, toggle_rate=1.5)


def test_thermal_junction_temperature():
    thermal = ThermalModel(inlet_temp_c=45.0, theta_ja_c_per_w=1.3)
    assert thermal.junction_temp_c(20.0) == pytest.approx(71.0)


def test_thermal_shutdown_trips():
    thermal = ThermalModel(inlet_temp_c=68.0, theta_ja_c_per_w=1.3)
    with pytest.raises(TemperatureShutdown):
        thermal.check(30.0)  # 68 + 39 > 100
    assert thermal.shutdown_tripped
    thermal.clear()
    assert not thermal.shutdown_tripped


def test_thermal_normal_power_safe_at_worst_inlet():
    # The 20 W normal limit must be thermally safe even at 68 C inlet.
    thermal = ThermalModel(inlet_temp_c=68.0, theta_ja_c_per_w=1.3)
    assert thermal.check(BOARD_LIMITS.normal_power_limit_w) < 100.0


def test_thermal_rejects_negative_power():
    with pytest.raises(ValueError):
        ThermalModel().junction_temp_c(-1.0)
