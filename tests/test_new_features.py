"""Tests for the neural scorer, YX routing, watchdog, and trace replay."""

import pytest

from repro.analysis import replay_trace
from repro.fabric import CrashSeverity, Pod, TorusTopology
from repro.fabric.torus import yx_routes
from repro.ranking.engine import ScoringEngine
from repro.ranking.models import ModelLibrary, synthesize_model
from repro.ranking.scoring import NeuralScorer
from repro.services import HealthMonitor
from repro.shell.router import Port
from repro.sim import Engine, SEC
from repro.workloads import TraceGenerator

TOPO = TorusTopology()


# --- neural scorer ---------------------------------------------------------------


def small_mlp():
    return NeuralScorer(
        weights=[[0.5, -0.25], [0.1, 0.9], [-0.4, 0.2], [0.3, 0.3]],
        hidden_bias=[0.0, 0.1, -0.1, 0.2],
        output_weights=[1.0, -0.5, 0.25, 0.75],
        output_bias=0.125,
    )


def test_mlp_banks_sum_to_full_score():
    scorer = small_mlp()
    packed = [1.5, -0.75]
    total = sum(scorer.evaluate_bank(i, packed) for i in range(3))
    assert total == pytest.approx(scorer.evaluate(packed))


def test_mlp_output_bias_rides_bank_two():
    scorer = small_mlp()
    zero_input = [0.0, 0.0]
    bank2_only = scorer.evaluate_bank(2, zero_input)
    # With zero input, tanh(bias) terms remain; the output bias is in
    # bank 2 exactly once.
    assert scorer.evaluate(zero_input) == pytest.approx(
        sum(scorer.evaluate_bank(i, zero_input) for i in range(3))
    )
    assert bank2_only != scorer.evaluate_bank(0, zero_input)


def test_mlp_validation():
    with pytest.raises(ValueError):
        NeuralScorer(weights=[], hidden_bias=[], output_weights=[])
    with pytest.raises(ValueError):
        NeuralScorer(weights=[[1.0]], hidden_bias=[0.0, 1.0], output_weights=[1.0])
    with pytest.raises(ValueError):
        small_mlp().evaluate_bank(3, [0.0])


def test_mlp_model_scores_end_to_end():
    model = synthesize_model(
        5, "mlp-model", seed=11, metafeatures=6, stage1_expressions=30,
        trees=40, scorer_kind="mlp",
    )
    assert isinstance(model.scorer, NeuralScorer)
    engine = ScoringEngine(ModelLibrary([model]))
    request = TraceGenerator(seed=12).request()
    score = engine.score(request.document, model)
    partials = sum(engine.bank_partial(request.document, model, b) for b in range(3))
    assert partials == pytest.approx(score)
    assert model.footprint.scoring_bytes[0] > 0


def test_unknown_scorer_kind_rejected():
    with pytest.raises(ValueError):
        synthesize_model(6, "bad", scorer_kind="svm")


# --- YX routing -----------------------------------------------------------------------


def test_yx_routes_first_dimension_y():
    routes = yx_routes(TOPO, (0, 0))
    assert routes[(3, 3)] is Port.SOUTH  # Y resolved before X
    assert routes[(3, 0)] is Port.EAST  # same row: X only
    assert routes[(0, 5)] is Port.NORTH  # dy=5 of 8: shorter northward


def test_yx_walk_reaches_destination():
    src, dst = (1, 2), (4, 6)
    node = src
    hops = 0
    while node != dst:
        port = yx_routes(TOPO, node)[dst]
        node = TOPO.neighbor(node, port)
        hops += 1
        assert hops <= 16
    assert hops == TOPO.hop_distance(src, dst)


def test_pod_with_yx_policy_delivers():
    eng = Engine(seed=51)
    pod = Pod(eng, topology=TorusTopology(width=3, height=4), routing_policy="yx")
    pod.release_all_rx_halts()
    from repro.host import SlotClient
    from repro.shell import Role

    class Echo(Role):
        name = "echo"

        def handle(self, packet):
            yield self.shell.engine.timeout(100.0)
            yield self.send(packet.response_to(16, "yx-ok"))

    pod.server_at((2, 3)).shell.attach_role(Echo())
    lease = SlotClient(pod.server_at((0, 0))).lease()
    got = []

    def thread():
        response = yield from lease.request(dst=(2, 3), size_bytes=512)
        got.append(response.payload)

    eng.process(thread())
    eng.run()
    assert got == ["yx-ok"]


def test_reprogram_routes_switches_policy():
    eng = Engine(seed=52)
    pod = Pod(eng, topology=TorusTopology(width=3, height=4))
    before = pod.server_at((0, 0)).shell.router.routing_table[(2, 3)]
    pod.reprogram_routes("yx")
    after = pod.server_at((0, 0)).shell.router.routing_table[(2, 3)]
    assert pod.routing_policy == "yx"
    # (0,0)->(2,3): XY goes WEST first (wrap), YX goes NORTH first (wrap).
    assert before is not after
    with pytest.raises(ValueError):
        pod.reprogram_routes("zigzag")


def test_pod_rejects_unknown_policy():
    with pytest.raises(ValueError):
        Pod(Engine(), topology=TorusTopology(width=2, height=2), routing_policy="na")


# --- watchdog --------------------------------------------------------------------------


def test_watchdog_recovers_crashed_server_automatically():
    eng = Engine(seed=53)
    pod = Pod(eng, topology=TorusTopology(width=2, height=2))
    monitor = HealthMonitor(eng, pod)
    monitor.start_watchdog(list(pod.servers), period_ns=5 * SEC)
    victim = pod.server_at((1, 1))
    victim.crash(CrashSeverity.TRANSIENT)
    eng.run(until=120 * SEC)
    assert victim.is_responsive  # soft-rebooted by the watchdog
    assert monitor.watchdog_reports
    assert monitor.watchdog_reports[0].diagnoses[0].reboots_performed == 1


def test_watchdog_does_not_block_engine_drain():
    eng = Engine(seed=54)
    pod = Pod(eng, topology=TorusTopology(width=2, height=2))
    monitor = HealthMonitor(eng, pod)
    monitor.start_watchdog(list(pod.servers), period_ns=1 * SEC)
    eng.run()  # daemon: returns immediately with nothing else pending
    assert eng.now == 0.0
    monitor.stop_watchdog()


def test_watchdog_double_start_rejected():
    eng = Engine(seed=55)
    pod = Pod(eng, topology=TorusTopology(width=2, height=2))
    monitor = HealthMonitor(eng, pod)
    monitor.start_watchdog([(0, 0)])
    with pytest.raises(RuntimeError):
        monitor.start_watchdog([(0, 0)])


# --- trace replay -----------------------------------------------------------------------


def test_replay_reconstructs_packet_path():
    eng = Engine(seed=56)
    pod = Pod(eng, topology=TorusTopology(width=4, height=2))
    pod.release_all_rx_halts()
    from repro.host import SlotClient
    from repro.shell import Role

    class Echo(Role):
        name = "echo"

        def handle(self, packet):
            yield self.shell.engine.timeout(100.0)
            yield self.send(packet.response_to(16, "done"))

    pod.server_at((2, 0)).shell.attach_role(Echo())
    lease = SlotClient(pod.server_at((0, 0))).lease()
    trace_ids = []

    def thread():
        response = yield from lease.request(dst=(2, 0), size_bytes=2048)
        trace_ids.append(response.trace_id)

    eng.process(thread())
    eng.run()
    replay = replay_trace(pod, trace_ids[0])
    # Request: (0,0)->(1,0)->(2,0); response retraces. >= 4 sightings.
    assert replay.hop_count >= 4
    assert replay.nodes_visited()[0] == (0, 0)
    assert (2, 0) in replay.nodes_visited()
    assert replay.total_latency_ns > 0
    assert "trace" in replay.format()
    assert replay.stalls(threshold_ns=1e12) == []  # nothing hung


def test_replay_exposes_stall_at_hung_stage():
    eng = Engine(seed=57)
    pod = Pod(eng, topology=TorusTopology(width=4, height=2))
    pod.release_all_rx_halts()
    from repro.host import SlotClient
    from repro.shell import Role

    class SlowRole(Role):
        name = "slow"

        def handle(self, packet):
            yield self.shell.engine.timeout(5_000_000.0)  # a 5 ms "hang"
            yield self.send(packet.response_to(16, "late"))

    pod.server_at((2, 0)).shell.attach_role(SlowRole())
    lease = SlotClient(pod.server_at((0, 0))).lease()
    trace_ids = []

    def thread():
        response = yield from lease.request(dst=(2, 0), size_bytes=1024)
        trace_ids.append(response.trace_id)

    eng.process(thread())
    eng.run()
    replay = replay_trace(pod, trace_ids[0])
    stalls = replay.stalls(threshold_ns=1_000_000.0)
    assert stalls  # the hang shows up as a gap
    _before, after, gap = stalls[0]
    assert gap >= 5_000_000.0 * 0.9
