"""Tests for SL3 links: bandwidth, ECC tax, halt protocol, errors."""

import pytest

from repro.hardware.constants import SL3_HOP_LATENCY_NS, SL3_PEAK_GBPS
from repro.shell.messages import Packet, PacketKind
from repro.shell.sl3 import Sl3Config, Sl3Endpoint, Sl3Link
from repro.sim import Engine


def make_link(eng, config=None, name="test"):
    config = config or Sl3Config()
    a = Sl3Endpoint(eng, "a", config)
    b = Sl3Endpoint(eng, "b", config)
    link = Sl3Link(eng, a, b, config=config, name=name)
    # Tests default to an operational link (halts released).
    a.rx_halt = False
    b.rx_halt = False
    return a, b, link


def request(size=1024, src=(0, 0), dst=(1, 0)):
    return Packet(kind=PacketKind.REQUEST, src=src, dst=dst, size_bytes=size)


def collect_deliveries(endpoint):
    delivered = []
    endpoint.deliver = lambda packet: delivered.append(packet)
    return delivered


def test_packet_flit_count():
    assert request(size=1).flits == 1
    assert request(size=32).flits == 1
    assert request(size=33).flits == 2
    assert request(size=64 * 1024).flits == 2048


def test_packet_rejects_negative_size():
    with pytest.raises(ValueError):
        request(size=-1)


def test_response_to_swaps_endpoints_and_keeps_trace():
    req = request()
    req.slot_id = 7
    resp = req.response_to(size_bytes=16, payload=1.5)
    assert resp.kind is PacketKind.RESPONSE
    assert resp.src == req.dst and resp.dst == req.src
    assert resp.trace_id == req.trace_id
    assert resp.slot_id == 7


def test_delivery_latency_matches_serialization_plus_hop():
    eng = Engine()
    a, b, _link = make_link(eng)
    delivered = collect_deliveries(b)
    pkt = request(size=2000)

    def sender(eng, a, pkt):
        yield a.send(pkt)

    eng.process(sender(eng, a, pkt))
    eng.run()
    assert len(delivered) == 1
    # 2000 B at 16 Gb/s effective = 1000 ns, plus the 400 ns hop.
    expected = 2000 / 2.0 + SL3_HOP_LATENCY_NS
    assert eng.now == pytest.approx(expected)


def test_ecc_tax_reduces_effective_bandwidth():
    with_ecc = Sl3Config(ecc_enabled=True)
    without = Sl3Config(ecc_enabled=False)
    assert with_ecc.effective_gbps == pytest.approx(SL3_PEAK_GBPS * 0.8)
    assert without.effective_gbps == pytest.approx(SL3_PEAK_GBPS)


def test_rx_halt_discards_traffic():
    eng = Engine()
    a, b, _link = make_link(eng)
    b.rx_halt = True  # freshly configured FPGA
    delivered = collect_deliveries(b)

    def sender(eng, a):
        yield a.send(request())

    eng.process(sender(eng, a))
    eng.run()
    assert delivered == []
    assert b.stats.dropped_rx_halt == 1


def test_tx_halt_makes_peer_ignore_then_retrain_restores():
    eng = Engine()
    a, b, link = make_link(eng)
    delivered = collect_deliveries(b)

    def scenario(eng, a, b, link):
        yield a.assert_tx_halt()
        yield eng.timeout(10_000.0)
        # Peer now ignores us: this packet is dropped.
        yield a.send(request())
        yield eng.timeout(10_000.0)
        assert delivered == []
        assert b.stats.dropped_ignore_peer == 1
        # Retrain the link (reconfiguration completed).
        link.retrain(a)
        yield eng.timeout(link.config.retrain_ns + 1_000.0)
        yield a.send(request())

    eng.process(scenario(eng, a, b, link))
    eng.run()
    assert len(delivered) == 1


def test_double_bit_errors_drop_packets_no_retransmission():
    eng = Engine(seed=3)
    config = Sl3Config(flit_double_error_rate=1.0)
    a, b, _link = make_link(eng, config)
    delivered = collect_deliveries(b)

    def sender(eng, a):
        for _ in range(5):
            yield a.send(request())

    eng.process(sender(eng, a))
    eng.run()
    assert delivered == []
    assert b.stats.dropped_crc == 5


def test_single_bit_errors_corrected_and_counted():
    eng = Engine(seed=3)
    config = Sl3Config(flit_single_error_rate=0.5)
    a, b, _link = make_link(eng, config)
    delivered = collect_deliveries(b)

    def sender(eng, a):
        for _ in range(10):
            yield a.send(request(size=3200))  # 100 flits each

    eng.process(sender(eng, a))
    eng.run()
    assert len(delivered) == 10  # singles never drop packets
    assert b.stats.corrected_flits > 100  # ~50/packet expected


def test_no_ecc_turns_bit_errors_into_garbage():
    eng = Engine(seed=3)
    config = Sl3Config(ecc_enabled=False, flit_single_error_rate=0.9)
    a, b, _link = make_link(eng, config)
    delivered = collect_deliveries(b)

    def sender(eng, a):
        yield a.send(request(size=3200))

    eng.process(sender(eng, a))
    eng.run()
    assert len(delivered) == 1
    assert delivered[0].kind is PacketKind.GARBAGE


def test_broken_cable_drops_everything():
    eng = Engine()
    a, b, link = make_link(eng)
    delivered = collect_deliveries(b)
    link.break_cable()

    def sender(eng, a):
        yield a.send(request())

    eng.process(sender(eng, a))
    eng.run()
    assert delivered == []
    assert a.stats.dropped_link_down == 1
    link.repair_cable()

    def sender2(eng, a):
        yield a.send(request())

    eng.process(sender2(eng, a))
    eng.run()
    assert len(delivered) == 1


def test_garbage_emission_during_unprotected_reconfig():
    eng = Engine(seed=1)
    a, b, link = make_link(eng)
    delivered = collect_deliveries(b)
    link.start_garbage(a, duration_ns=500_000.0)
    eng.run()
    garbage = [p for p in delivered if p.kind is PacketKind.GARBAGE]
    assert len(garbage) >= 5
    assert b.stats.garbage_received == len(garbage)


def test_rx_halt_protects_against_garbage():
    eng = Engine(seed=1)
    a, b, link = make_link(eng)
    b.rx_halt = True
    delivered = collect_deliveries(b)
    link.start_garbage(a, duration_ns=500_000.0)
    eng.run()
    assert delivered == []
    assert b.stats.dropped_rx_halt >= 5


def test_xoff_backpressure_counts_and_preserves_packets():
    eng = Engine()
    config = Sl3Config(rx_fifo_packets=2)
    a, b, _link = make_link(eng, config)
    delivered = []

    # Slow consumer: replace the immediate deliver with buffering reads.
    def slow_deliver(packet):
        delivered.append(packet)
        return eng.timeout(100_000.0)  # delivery loop stalls 100 us each

    b.deliver = slow_deliver

    def sender(eng, a):
        for _ in range(10):
            yield a.send(request(size=1024))

    eng.process(sender(eng, a))
    eng.run()
    assert len(delivered) == 10  # flow control is lossless
    assert b.stats.xoff_events > 0


def test_peer_property_requires_link():
    eng = Engine()
    endpoint = Sl3Endpoint(eng, "solo", Sl3Config())
    with pytest.raises(RuntimeError):
        _ = endpoint.peer
