"""Tests for multi-tenant rings: virtualized role regions, weighted
fair-share dispatch, priority preemption, and the LRU bitstream cache.

The paper dedicates a ring per service (§2.3); the tenancy layer carves
a ring into regions so several small services co-reside.  These tests
pin the new subsystem's contracts: FFD packing, one-claim-per-service,
slot-quota isolation on shared injection servers, latency-over-batch
preemption inside a single reconcile pass, region-granular cordon and
repair, per-pod capacity invariants under churn, and the staging-DRAM
cache that turns a re-placement into a model-reload-class operation.
"""

import pytest

from repro.cluster import (
    BitstreamCache,
    ClusterManager,
    ClusterScheduler,
    InsufficientClusterCapacity,
    PodCapacity,
    RepairPolicy,
    RingSlot,
    RingTenancy,
    ServiceSpec,
    echo_service,
    pack_first_fit_decreasing,
    region_node_count,
    slot_quota,
)
from repro.fabric import Datacenter, TorusTopology
from repro.hardware import ResourceBudget
from repro.hardware.constants import MODEL_RELOAD_WORST_NS
from repro.host.slots import SlotAllocator, SlotClient, SlotExhausted
from repro.sim import Engine
from repro.workloads import OpenLoopInjector, PoissonArrivals


def make_dc(seed=3, pods=1, width=2, height=4):
    eng = Engine(seed=seed)
    dc = Datacenter(
        eng, num_pods=pods, topology=TorusTopology(width=width, height=height)
    )
    return eng, dc


def region_spec(name, fraction, priority="batch", replicas=1, **overrides):
    defaults = dict(
        service=echo_service(name),
        replicas=replicas,
        regions=fraction,
        priority=priority,
        health_period_ns=5e9,
    )
    defaults.update(overrides)
    return ServiceSpec(**defaults)


def slot_at(dc, pod_id, ring_x):
    (slot,) = [
        s for s in dc.ring_slots() if s.pod_id == pod_id and s.ring_x == ring_x
    ]
    return slot


# --- tenancy primitives --------------------------------------------------------------


def test_region_node_count_rounds_up_and_floors_at_roles():
    svc = echo_service()  # one active role
    assert region_node_count(svc, 0.5, 8) == 4
    assert region_node_count(svc, 0.51, 8) == 5  # guarantees, not hints
    assert region_node_count(svc, 0.01, 8) == 1
    assert region_node_count(svc, 1.0, 8) == 8
    with pytest.raises(ValueError):
        region_node_count(svc, 0.0, 8)
    with pytest.raises(ValueError):
        region_node_count(svc, 1.5, 8)


def test_slot_quota_weights_latency_twice_batch():
    assert slot_quota(0.5, "latency", 48) == 24
    assert slot_quota(0.5, "batch", 48) == 12
    assert slot_quota(0.01, "batch", 48) == 1  # never starved to zero
    with pytest.raises(ValueError):
        slot_quota(0.5, "interactive", 48)
    # Normalised: co-resident full-weight shares cannot oversubscribe.
    assert slot_quota(0.5, "latency", 48) * 2 <= 48


def test_pack_ffd_plans_minimal_rings():
    plan = pack_first_fit_decreasing(
        [("a", 0.5), ("b", 0.5), ("c", 0.25), ("d", 0.75)]
    )
    assert plan == [["d", "c"], ["a", "b"]]
    with pytest.raises(ValueError):
        pack_first_fit_decreasing([("x", 1.25)])


def test_ring_tenancy_claims_cordons_and_release():
    slot = RingSlot(0, 0)
    tenancy = RingTenancy(slot, ["n0", "n1", "n2", "n3"])
    a = tenancy.claim("a", 0.5, "latency", 2, 48)
    assert a.nodes == ("n0", "n1")
    assert not tenancy.can_host("a", 1)  # one claim per service per ring
    b = tenancy.claim("b", 0.5, "batch", 2, 48)
    assert b.nodes == ("n2", "n3")
    assert tenancy.free_nodes() == []
    with pytest.raises(ValueError):
        tenancy.claim("c", 0.25, "batch", 1, 48)
    tenancy.release(b)
    tenancy.cordon_region(("n2",), "bad card")
    assert tenancy.free_nodes() == ["n3"]
    assert tenancy.free_fraction == pytest.approx(0.25)
    tenancy.release(a)
    assert not tenancy.empty  # the cordon still pins the tenancy
    tenancy.clear_cordons()
    assert tenancy.empty


# --- ResourceBudget satellites -------------------------------------------------------


def test_budget_subtraction_and_fits_within():
    device = ResourceBudget(alms=1000, m20k_blocks=100, dsp_blocks=10)
    used = ResourceBudget(alms=400, m20k_blocks=40, dsp_blocks=4)
    headroom = device - used
    assert headroom == ResourceBudget(alms=600, m20k_blocks=60, dsp_blocks=6)
    assert headroom.non_negative
    assert used.fits_within(device)
    assert not device.fits_within(used)


def test_utilization_handles_zero_capacity():
    empty = ResourceBudget()
    assert all(v == 0.0 for v in ResourceBudget().utilization(empty).values())
    used = ResourceBudget(alms=1).utilization(empty)
    assert used["logic"] == float("inf")
    assert empty.fits(ResourceBudget(alms=1))
    assert not ResourceBudget(alms=1).fits(empty)


# --- shared slot allocator -----------------------------------------------------------


def test_slot_allocator_partitions_one_pool():
    _eng, dc = make_dc()
    server = dc.ring_servers(slot_at(dc, 0, 0))[0]
    allocator = SlotAllocator(server)
    pool = server.buffers.slot_count
    a = allocator.acquire(24, owner="a")
    b = allocator.acquire(12, owner="b")
    assert len(a) == 24 and len(b) == 12
    assert not set(a) & set(b)
    assert allocator.free_count == pool - 36
    allocator.release(a)
    assert allocator.free_count == pool - 12
    allocator.acquire(allocator.free_count, owner="c")
    with pytest.raises(SlotExhausted):
        allocator.acquire(1, owner="d")


def test_lease_for_is_range_checked():
    _eng, dc = make_dc()
    server = dc.ring_servers(slot_at(dc, 0, 0))[0]
    client = SlotClient(server)
    lease = client.lease_for(3)
    assert lease.slot_id == 3
    with pytest.raises(SlotExhausted):
        client.lease_for(server.buffers.slot_count)


# --- region placement ----------------------------------------------------------------


def test_deploy_region_packs_two_tenants_per_ring():
    _eng, dc = make_dc()
    scheduler = ClusterScheduler(dc)
    a = scheduler.deploy_region(echo_service("a"), 0.5, priority="latency")
    b = scheduler.deploy_region(echo_service("b"), 0.5, priority="batch")
    # First fit co-locates both halves on the first ring.
    assert scheduler.slot_of(a) == scheduler.slot_of(b)
    tenancy = scheduler.tenancy_of(scheduler.slot_of(a))
    assert set(tenancy.claims) == {"a", "b"}
    assert not set(a.region.nodes) & set(b.region.nodes)
    report = scheduler.capacity_report()
    assert report.occupied_rings == 1
    assert report.tenant_regions == 2
    # The shared ring cannot be cordoned whole out from under a tenant.
    with pytest.raises(ValueError):
        scheduler.cordon(scheduler.slot_of(a))


def test_replicas_of_one_service_land_on_distinct_rings():
    _eng, dc = make_dc(width=3)
    scheduler = ClusterScheduler(dc)
    svc = echo_service("spread-me")
    first = scheduler.deploy_region(svc, 0.25)
    second = scheduler.deploy_region(svc, 0.25)
    assert scheduler.slot_of(first) != scheduler.slot_of(second)


def test_region_release_keeps_the_other_tenant():
    eng, dc = make_dc()
    scheduler = ClusterScheduler(dc)
    a = scheduler.deploy_region(echo_service("a"), 0.5)
    b = scheduler.deploy_region(echo_service("b"), 0.5)
    slot = scheduler.slot_of(a)
    scheduler.release(a)
    assert a.released and not b.released
    tenancy = scheduler.tenancy_of(slot)
    assert set(tenancy.claims) == {"b"}
    assert scheduler.capacity_report().occupied_rings == 1
    # b still serves after a's departure.
    response = eng.run_until(eng.process(b.submit(object())))
    assert response is not None
    # Releasing the last tenant frees the ring entirely.
    scheduler.release(b)
    assert scheduler.tenancy_of(slot) is None
    assert scheduler.capacity_report().free_rings == dc.total_rings


def test_oversized_region_rejected():
    _eng, dc = make_dc(height=4)
    scheduler = ClusterScheduler(dc)
    scheduler.deploy_region(echo_service("big"), 1.0)
    scheduler.deploy_region(echo_service("big2"), 1.0)
    with pytest.raises(InsufficientClusterCapacity):
        scheduler.deploy_region(echo_service("late"), 0.25)


# --- capacity report: per-pod breakdown under churn ----------------------------------


def assert_report_invariants(scheduler, dc):
    report = scheduler.capacity_report()
    assert set(report.per_pod) == {slot.pod_id for slot in dc.ring_slots()}
    sums = {"total": 0, "free": 0, "occupied": 0, "cordoned": 0, "regions": 0}
    for pod in report.per_pod.values():
        assert isinstance(pod, PodCapacity)
        assert (
            pod.free_rings + pod.occupied_rings + pod.cordoned_rings
            == pod.total_rings
        )
        assert pod.free_rings >= 0 and pod.cordoned_rings >= 0
        sums["total"] += pod.total_rings
        sums["free"] += pod.free_rings
        sums["occupied"] += pod.occupied_rings
        sums["cordoned"] += pod.cordoned_rings
        sums["regions"] += pod.tenant_regions
    assert sums["total"] == report.total_rings == dc.total_rings
    assert sums["free"] == report.free_rings
    assert sums["occupied"] == report.occupied_rings
    assert sums["cordoned"] == report.cordoned_rings
    assert sums["regions"] == report.tenant_regions
    return report


def test_per_pod_breakdown_invariants_under_churn():
    _eng, dc = make_dc(pods=2, width=3, height=4)
    scheduler = ClusterScheduler(dc)
    assert_report_invariants(scheduler, dc)

    whole = scheduler.deploy(echo_service("whole"), rings=2)
    assert_report_invariants(scheduler, dc)

    a = scheduler.deploy_region(echo_service("a"), 0.5)
    b = scheduler.deploy_region(echo_service("b"), 0.5)
    report = assert_report_invariants(scheduler, dc)
    assert report.tenant_regions == 2

    free = scheduler.free_slots()
    scheduler.cordon(free[0], reason="whole-ring fault")
    nodes = [server.node_id for server in dc.ring_servers(free[1])][:2]
    scheduler.cordon_region(free[1], nodes, reason="bad run")
    report = assert_report_invariants(scheduler, dc)
    assert report.cordoned_rings == 2  # one whole, one tenantless shared
    assert report.cordoned_regions == 1

    scheduler.release(whole[0])
    scheduler.release(a)
    report = assert_report_invariants(scheduler, dc)
    assert report.tenant_regions == 1

    scheduler.uncordon(free[0])
    scheduler.slot_serviced(free[1])
    scheduler.release(whole[1])
    scheduler.release(b)
    report = assert_report_invariants(scheduler, dc)
    assert report.free_rings == dc.total_rings


# --- co-resident dispatch: weighted fair share ---------------------------------------


def test_co_resident_tenants_share_servers_under_quota():
    eng, dc = make_dc(seed=9)
    manager = ClusterManager(dc)
    lat = manager.apply(region_spec("lat", 0.5, priority="latency"))
    bat = manager.apply(region_spec("bat", 0.5, priority="batch"))
    d_lat = lat.deployments[0]
    d_bat = bat.deployments[0]
    assert manager.scheduler.slot_of(d_lat) == manager.scheduler.slot_of(d_bat)
    # Latency weighs twice batch at equal fractions.
    assert d_lat.region.slot_quota == 2 * d_bat.region.slot_quota

    pool = [object() for _ in range(16)]
    done_lat = OpenLoopInjector(
        eng, lat, PoissonArrivals(50_000.0), pool, seed_tag="lat"
    ).run(40)
    done_bat = OpenLoopInjector(
        eng, bat, PoissonArrivals(50_000.0), pool, seed_tag="bat"
    ).run(40)
    eng.run_until(done_lat)
    if not done_bat.triggered:
        eng.run_until(done_bat)
    assert done_lat.value.completed == 40
    assert done_bat.value.completed == 40

    # The quotas drew disjoint slot ids from every shared server.
    for server, lat_ids in d_lat._owned_slots:
        bat_ids = [
            ids for srv, ids in d_bat._owned_slots if srv is server
        ]
        assert len(lat_ids) == d_lat.region.slot_quota
        for ids in bat_ids:
            assert not set(lat_ids) & set(ids)


# --- priority preemption -------------------------------------------------------------


def test_latency_preempts_batch_within_one_pass():
    _eng, dc = make_dc(seed=5, width=3, height=8)
    manager = ClusterManager(dc)
    victim = manager.apply(region_spec("victim", 0.75, priority="batch"))
    keeper = manager.apply(region_spec("keeper", 0.5, priority="latency"))
    victim_before = victim.deployments[0]
    keeper_before = keeper.deployments[0]
    assert manager.scheduler.slot_of(victim_before) == slot_at(dc, 0, 0)
    assert manager.scheduler.slot_of(keeper_before) == slot_at(dc, 0, 1)
    # The last ring has a bad node run: cordoned, not free, so the
    # incoming whole-ring latency tenant cannot simply take it.
    spoiled = slot_at(dc, 0, 2)
    bad = [server.node_id for server in dc.ring_servers(spoiled)][:2]
    manager.scheduler.cordon_region(spoiled, bad, reason="bad cable")

    urgent = manager.apply(region_spec("urgent", 1.0, priority="latency"))

    kinds = [a.kind for a in manager.reconcile_reports[-1].actions]
    assert "preempt" in kinds
    # The latency tenant landed on the evicted batch tenant's ring...
    assert urgent.status().ready_replicas == 1
    assert manager.scheduler.slot_of(urgent.deployments[0]) == slot_at(dc, 0, 0)
    # ...the victim was re-placed elsewhere inside the same pass...
    assert victim.status().ready_replicas == 1
    assert victim_before.released
    assert victim_before in victim.retired
    assert manager.scheduler.slot_of(victim.deployments[0]) == spoiled
    # ...around the cordoned run, which stays held out...
    held = set(bad)
    assert not held & set(victim.deployments[0].region.nodes)
    # ...and the co-resident latency tenant was never disturbed.
    assert keeper.deployments[0] is keeper_before
    assert keeper.status().ready_replicas == 1


def test_batch_placement_never_preempts():
    _eng, dc = make_dc(seed=5, width=2, height=4)
    manager = ClusterManager(dc)
    manager.apply(region_spec("a", 1.0, priority="batch"))
    manager.apply(region_spec("b", 1.0, priority="batch"))
    with pytest.raises(InsufficientClusterCapacity):
        manager.apply(region_spec("late-batch", 1.0, priority="batch"))
    kinds = [a.kind for a in manager.reconcile_reports[-1].actions]
    assert "preempt" not in kinds


# --- bitstream cache -----------------------------------------------------------------


def test_cache_lru_eviction_order():
    from repro.hardware import Bitstream

    def image(n):
        return Bitstream(
            role_name=f"r{n}", role_budget=ResourceBudget(alms=n), clock_mhz=175.0
        )

    cache = BitstreamCache(capacity_per_node=3)
    for n in (1, 2, 3):
        cache.install("m0", image(n))
    assert cache.lookup("m0", image(1))  # 1 becomes MRU: order 2, 3, 1
    cache.install("m0", image(4))  # evicts 2 (LRU)
    staged = cache.staged_on("m0")
    assert [b.role_name for b in staged] == ["r3", "r1", "r4"]
    assert cache.evictions == 1
    assert not cache.lookup("m0", image(2))
    assert cache.invalidate("m0") == 3
    assert cache.staged_on("m0") == []
    with pytest.raises(ValueError):
        BitstreamCache(capacity_per_node=0)


def warm_replacement_times(seed):
    """(cold re-place ns, warm re-place ns, scheduler) for one ring."""
    results = []
    for cache in (None, BitstreamCache()):
        eng, dc = make_dc(seed=seed)
        scheduler = ClusterScheduler(dc, bitstream_cache=cache)
        svc = echo_service("tenant")
        first = scheduler.deploy_region(svc, 0.5)
        scheduler.release(first)
        start = eng.now
        scheduler.deploy_region(svc, 0.5)
        results.append((eng.now - start, scheduler))
    (cold, _), (warm, warm_scheduler) = results
    return cold, warm, warm_scheduler


def test_warm_cache_cuts_replacement_to_model_reload():
    cold, warm, scheduler = warm_replacement_times(seed=7)
    # The staged images downgrade every region node's reconfiguration
    # to a model reload: orders of magnitude below the cold path.
    assert warm == pytest.approx(MODEL_RELOAD_WORST_NS)
    assert warm < cold / 50
    report = scheduler.capacity_report()
    assert report.bitstream_hits == 2  # both region nodes were staged
    assert report.bitstream_misses > 0  # the initial configure


def test_warm_replacement_is_seed_deterministic():
    first = warm_replacement_times(seed=11)
    second = warm_replacement_times(seed=11)
    assert first[:2] == second[:2]
    assert first[2].bitstream_cache.stats() == second[2].bitstream_cache.stats()


def test_repair_ticket_invalidates_staged_images():
    eng, dc = make_dc(seed=13)
    cache = BitstreamCache()
    manager = ClusterManager(
        dc,
        repair_policy=RepairPolicy(distribution="fixed", mean_ns=1e9),
        bitstream_cache=cache,
    )
    manager.apply(region_spec("tenant", 0.5))
    tenant_slot = slot_at(dc, 0, 0)
    other = slot_at(dc, 0, 1)
    # The pod-wide spare configure staged images on the other ring too.
    other_machines = [s.machine_id for s in dc.ring_servers(other)]
    assert all(cache.staged_on(m) for m in other_machines)

    nodes = [server.node_id for server in dc.ring_servers(other)][:2]
    manager.scheduler.cordon_region(other, nodes, reason="bad run")
    ticket = manager.repairs.ticket_for(other)
    assert ticket is not None

    eng.run(until=eng.now + 2e9)  # past the fixed repair time

    assert manager.repairs.repaired_count == 1
    # The serviced boards came back with empty staging DRAM...
    assert all(not cache.staged_on(m) for m in other_machines)
    assert cache.invalidations > 0
    # ...the region cordon lifted, returning the ring to the pool...
    assert manager.scheduler.tenancy_of(other) is None
    assert manager.scheduler.capacity_report().cordoned_rings == 0
    # ...and the untouched tenant ring kept its staged images.
    tenant_machines = [s.machine_id for s in dc.ring_servers(tenant_slot)]
    assert any(cache.staged_on(m) for m in tenant_machines)
