"""Tests for the document model, wire codec, and workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranking.documents import (
    CompressedDocument,
    DocumentCodec,
    HitTuple,
    MAX_STREAMS,
    Query,
    StreamHits,
)
from repro.ranking.documents import CodecError
from repro.workloads import DocumentSizeDistribution, TraceGenerator

import random

codec = DocumentCodec()


def make_doc(streams, sw=None, model_id=0):
    return CompressedDocument(
        doc_id=7,
        doc_length=500,
        num_query_terms=4,
        model_id=model_id,
        software_features=sw if sw is not None else [(0, 1.5), (3, -2.25)],
        streams=streams,
    )


# --- tuples -------------------------------------------------------------------


def test_tuple_size_selection():
    assert HitTuple(delta=5, term_index=3).encoded_size == 2
    assert HitTuple(delta=1023, term_index=15).encoded_size == 2
    assert HitTuple(delta=1024, term_index=0).encoded_size == 4
    assert HitTuple(delta=5, term_index=16).encoded_size == 4
    assert HitTuple(delta=5, term_index=3, properties=1).encoded_size == 4
    assert HitTuple(delta=70_000, term_index=0).encoded_size == 6
    assert HitTuple(delta=5, term_index=0, properties=300).encoded_size == 6


def test_tuple_validation():
    with pytest.raises(ValueError):
        HitTuple(delta=-1, term_index=0)
    with pytest.raises(ValueError):
        HitTuple(delta=1 << 24, term_index=0)
    with pytest.raises(ValueError):
        HitTuple(delta=0, term_index=64)
    with pytest.raises(ValueError):
        HitTuple(delta=0, term_index=0, properties=1 << 16)


def test_query_validation():
    with pytest.raises(ValueError):
        Query(query_id=1, terms=())
    with pytest.raises(ValueError):
        Query(query_id=1, terms=tuple(range(17)))


# --- codec ---------------------------------------------------------------------


def test_roundtrip_simple():
    doc = make_doc(
        [StreamHits(0, 500, [HitTuple(3, 0), HitTuple(1500, 1, 7), HitTuple(90_000, 2, 999)])]
    )
    decoded = codec.decode(codec.encode(doc))
    assert decoded.doc_id == doc.doc_id
    assert decoded.model_id == doc.model_id
    assert decoded.num_query_terms == doc.num_query_terms
    assert decoded.software_features == [(0, 1.5), (3, -2.25)]
    assert len(decoded.streams) == 1
    assert decoded.streams[0].tuples == doc.streams[0].tuples


tuple_strategy = st.builds(
    HitTuple,
    delta=st.integers(0, (1 << 24) - 1),
    term_index=st.integers(0, 63),
    properties=st.integers(0, (1 << 16) - 1),
)


@settings(max_examples=60, deadline=None)
@given(
    streams=st.lists(
        st.tuples(
            st.integers(0, MAX_STREAMS - 1),
            st.lists(tuple_strategy, max_size=60),
        ),
        min_size=1,
        max_size=MAX_STREAMS,
        unique_by=lambda s: s[0],
    ),
    sw=st.lists(
        st.tuples(st.integers(0, 999), st.floats(-1e6, 1e6, width=32)), max_size=20
    ),
)
def test_roundtrip_property(streams, sw):
    doc = make_doc(
        [StreamHits(sid, 1000, tuples) for sid, tuples in streams], sw=sw
    )
    decoded = codec.decode(codec.encode(doc, truncate=False))
    assert [s.tuples for s in decoded.streams] == [s.tuples for s in doc.streams]
    assert decoded.software_features == sw


def test_truncation_to_64kb():
    # ~30k six-byte tuples is ~180 KB; must be truncated to fit.
    big = make_doc(
        [
            StreamHits(
                0,
                100_000,
                [HitTuple(70_000, 1, 999) for _ in range(30_000)],
            )
        ]
    )
    encoded = codec.encode(big)
    assert len(encoded) <= codec.truncate_bytes
    decoded = codec.decode(encoded)
    assert decoded.total_tuples < 30_000
    assert decoded.total_tuples > 5_000  # most of the prefix survives


def test_bad_magic_rejected():
    with pytest.raises(CodecError):
        codec.decode(b"\x00" * 64)


def test_short_buffer_rejected():
    with pytest.raises(CodecError):
        codec.decode(b"\x01")


# --- size distribution (Figure 4 anchors) ------------------------------------------


def test_size_distribution_matches_figure4():
    # simlint: allow-rng -- pinned engine-free stream; the Figure 4
    # anchors below were calibrated against exactly this sequence.
    rng = random.Random(42)
    dist = DocumentSizeDistribution(rng)
    samples = dist.sample_many(40_000)
    mean = sum(samples) / len(samples)
    ordered = sorted(samples)
    p99 = ordered[int(0.99 * len(ordered))]
    over_64k = sum(1 for s in samples if s > 64 * 1024) / len(samples)
    assert 5_000 <= mean <= 8_000  # ~6.5 KB
    assert 35_000 <= p99 <= 70_000  # ~53 KB
    assert over_64k < 0.006  # ~0.14 % in the paper; tail is thinned


def test_theoretical_anchors():
    assert DocumentSizeDistribution.theoretical_mean() == pytest.approx(6656, rel=0.05)
    assert DocumentSizeDistribution.theoretical_p99() == pytest.approx(54272, rel=0.06)


# --- trace generator -----------------------------------------------------------------


def test_trace_generator_deterministic():
    a = [r.document.doc_id for r in TraceGenerator(seed=9).requests(5)]
    b = [r.document.doc_id for r in TraceGenerator(seed=9).requests(5)]
    assert a == b
    scores_a = TraceGenerator(seed=9).request().encoded
    scores_b = TraceGenerator(seed=9).request().encoded
    assert scores_a == scores_b


def test_trace_requests_near_target_size():
    gen = TraceGenerator(seed=3)
    request = gen.request(target_size=8_000)
    assert 4_000 <= request.size_bytes <= 12_000


def test_trace_respects_model_mix():
    gen = TraceGenerator(seed=5, model_mix={0: 0.5, 1: 0.5})
    models = {gen.query().model_id for _ in range(50)}
    assert models == {0, 1}


def test_trace_encoding_decodes():
    gen = TraceGenerator(seed=1)
    request = gen.request()
    decoded = codec.decode(request.encoded)
    assert decoded.doc_id == request.document.doc_id


def test_trace_sizes_within_truncation():
    gen = TraceGenerator(seed=2)
    for request in gen.requests(200):
        assert request.size_bytes <= codec.truncate_bytes
