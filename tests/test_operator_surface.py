"""Tests for the operator surface: declarative cluster files, the spec
serialization underneath them, and the stable VIP-style endpoints.

Serialization is lossless by construction — specs and definitions
rebuild through their real constructors, so an invalid document raises
exactly the error direct construction raises — and the clusterfile
layer composes load + diff + apply into the kubectl-style operator
verbs, routed through the existing reconcile / upgrade / scale / drain
paths.
"""

import json

import pytest

from repro.cluster import (
    ClusterManager,
    NoHealthyDeployment,
    RequestAdapter,
    ServiceSpec,
    apply_cluster,
    apply_file,
    diff_cluster,
    dump_cluster,
    echo_service,
    load_cluster,
)
from repro.fabric import Datacenter, TorusTopology
from repro.services.mapping_manager import ServiceDefinition
from repro.sim import Engine
from repro.workloads import OpenLoopInjector, PoissonArrivals


def small_cluster(seed=3, pods=2, height=3):
    eng = Engine(seed=seed)
    dc = Datacenter(
        eng, num_pods=pods, topology=TorusTopology(width=2, height=height)
    )
    return eng, dc, ClusterManager(dc)


ECHO = echo_service()
CATALOG = {"echo-service": ECHO}
ADAPTERS = {"RequestAdapter": RequestAdapter()}


def echo_spec(**overrides) -> ServiceSpec:
    defaults = dict(service=ECHO, replicas=2, health_period_ns=5e9)
    defaults.update(overrides)
    return ServiceSpec(**defaults)


# --- ServiceSpec round trip ----------------------------------------------------------


@pytest.mark.parametrize(
    "overrides",
    [
        {},
        {"replicas": 1, "placement": "pack"},
        {"rings_per_replica": 2, "balancing": "round_robin"},
        {"regions": 0.5, "priority": "latency"},
        {"regions": 0.25, "priority": "batch", "slots_per_server": 12},
        {"adapter": ADAPTERS["RequestAdapter"]},
        {"request_timeout_ns": 1e9, "health_period_ns": 2e9},
    ],
)
def test_spec_round_trips_losslessly(overrides):
    spec = echo_spec(**overrides)
    document = spec.to_dict()
    json.dumps(document)  # JSON-serializable as-is
    rebuilt = ServiceSpec.from_dict(document, CATALOG, ADAPTERS)
    assert rebuilt == spec
    assert rebuilt.service is spec.service
    assert rebuilt.to_dict() == document


def test_spec_document_references_code_by_name():
    document = echo_spec(adapter=ADAPTERS["RequestAdapter"]).to_dict()
    assert document["service"] == "echo-service"
    assert document["adapter"] == "RequestAdapter"
    plain = echo_spec().to_dict()
    assert plain["adapter"] is None


@pytest.mark.parametrize(
    "overrides",
    [
        {"replicas": 0},
        {"placement": "random"},
        {"balancing": "fastest"},
        {"slots_per_server": 0},
        {"request_timeout_ns": 0.0},
        {"health_period_ns": -1.0},
        {"regions": 1.5},
        {"priority": "interactive"},
        {"regions": 0.5, "rings_per_replica": 2},  # tenants are single-ring
    ],
)
def test_invalid_document_raises_the_constructor_error(overrides):
    document = echo_spec().to_dict()
    document.update(overrides)
    with pytest.raises(ValueError) as from_doc:
        ServiceSpec.from_dict(document, CATALOG)
    with pytest.raises(ValueError) as direct:
        echo_spec(**overrides)
    assert str(from_doc.value) == str(direct.value)


def test_document_resolution_errors():
    with pytest.raises(ValueError, match="must be a mapping"):
        ServiceSpec.from_dict(["not", "a", "mapping"], CATALOG)
    with pytest.raises(ValueError, match="unknown ServiceSpec fields"):
        ServiceSpec.from_dict({"service": "echo-service", "flavor": "blue"}, CATALOG)
    with pytest.raises(ValueError, match="needs a 'service' name"):
        ServiceSpec.from_dict({"replicas": 2}, CATALOG)
    with pytest.raises(ValueError, match="unknown service 'web'"):
        ServiceSpec.from_dict({"service": "web"}, CATALOG)
    with pytest.raises(ValueError, match="unknown adapter 'Custom'"):
        ServiceSpec.from_dict(
            {"service": "echo-service", "adapter": "Custom"}, CATALOG, ADAPTERS
        )


# --- ServiceDefinition round trip ----------------------------------------------------


def definition_factories(service: ServiceDefinition) -> dict:
    factories = {role.name: role.factory for role in service.roles}
    factories[service.spare.name] = service.spare.factory
    return factories


def test_definition_round_trips_with_factories():
    document = ECHO.to_dict()
    json.dumps(document)
    rebuilt = ServiceDefinition.from_dict(document, definition_factories(ECHO))
    assert rebuilt.to_dict() == document
    assert [r.name for r in rebuilt.roles] == [r.name for r in ECHO.roles]
    assert rebuilt.roles[0].bitstream == ECHO.roles[0].bitstream
    assert rebuilt.roles[0].factory is ECHO.roles[0].factory


def test_definition_document_is_the_fingerprint():
    # Two independent builds never compare equal directly (factory
    # closures differ) but fingerprint identically.
    assert echo_service() != echo_service()
    assert echo_service().to_dict() == echo_service().to_dict()


def test_definition_duplicate_role_error_is_identical():
    document = ECHO.to_dict()
    document["spare"] = dict(document["roles"][0])  # same name twice
    factories = definition_factories(ECHO)
    factories[document["spare"]["name"]] = ECHO.spare.factory
    with pytest.raises(ValueError, match="duplicate role names"):
        ServiceDefinition.from_dict(document, factories)


def test_definition_missing_factory_error():
    with pytest.raises(ValueError, match="no factory for role 'echo'"):
        ServiceDefinition.from_dict(ECHO.to_dict(), {"spare": ECHO.spare.factory})


# --- cluster files -------------------------------------------------------------------


def cluster_document(*specs: ServiceSpec) -> dict:
    return {"version": 1, "services": [spec.to_dict() for spec in specs]}


def test_load_and_dump_cluster_round_trip(tmp_path):
    specs = {"echo-service": echo_spec()}
    document = dump_cluster(specs)
    path = tmp_path / "cluster.json"
    path.write_text(json.dumps(document))
    loaded = load_cluster(path, CATALOG)
    assert loaded == specs
    assert dump_cluster(loaded) == document


def test_cluster_document_validation():
    with pytest.raises(ValueError, match="must be a mapping"):
        load_cluster([1, 2], CATALOG)
    with pytest.raises(ValueError, match="unknown cluster document keys"):
        load_cluster({"version": 1, "services": [], "extra": 1}, CATALOG)
    with pytest.raises(ValueError, match="unsupported cluster document version"):
        load_cluster({"version": 99, "services": []}, CATALOG)
    with pytest.raises(ValueError, match="needs a 'services' list"):
        load_cluster({"version": 1}, CATALOG)
    twice = cluster_document(echo_spec(), echo_spec(replicas=1))
    with pytest.raises(ValueError, match="declared twice"):
        load_cluster(twice, CATALOG)


def test_diff_classifies_every_action():
    _eng, _dc, manager = small_cluster()
    manager.apply(echo_spec())  # live: echo-service x2
    other = echo_service(name="other-service")
    desired = {
        "echo-service": echo_spec(replicas=3),  # change
        "other-service": ServiceSpec(service=other, replicas=1),  # add
    }
    diff = diff_cluster(manager, desired)
    assert [e.action for e in diff.entries] == ["change", "add"]
    assert diff.changes[0].changed == ("replicas",)
    assert "replicas 2 -> 3" in diff.changes[0].detail
    # Removing from the declaration classifies as remove; identical
    # declaration is a no-op even through a fresh (fingerprint-equal)
    # definition build.
    rebuilt_catalog = {"echo-service": echo_service()}
    same = load_cluster(cluster_document(echo_spec()), rebuilt_catalog)
    diff = diff_cluster(manager, same)
    assert [e.action for e in diff.entries] == ["noop"]
    assert not diff
    diff = diff_cluster(manager, {})
    assert [e.action for e in diff.entries] == ["remove"]
    assert bool(diff)
    lines = diff.summary().splitlines()
    assert lines[-1] == "0 to add, 0 to change, 1 to remove, 0 unchanged"


def test_new_definition_diffs_as_upgrade():
    _eng, _dc, manager = small_cluster()
    manager.apply(echo_spec())
    # The fingerprint sees serialized state (role names, bitstream
    # images) — a new image name is a visible definition change.
    v2 = echo_service(role_name="echo-v2", payload="scored-v2")
    diff = diff_cluster(manager, {"echo-service": echo_spec(service=v2)})
    assert diff.changes[0].changed == ("service_definition",)
    assert "new service definition" in diff.changes[0].detail


def test_dry_run_touches_nothing():
    _eng, _dc, manager = small_cluster()
    manager.apply(echo_spec())
    result = apply_cluster(manager, {}, dry_run=True)
    assert result.dry_run
    assert result.diff.removes
    assert manager.handles["echo-service"].active  # still running


def test_apply_cluster_converges_add_change_remove(tmp_path):
    eng, _dc, manager = small_cluster(height=4)  # 2 rings/pod: 4 total
    other = echo_service(name="other-service")
    catalog = {"echo-service": ECHO, "other-service": other}
    path = tmp_path / "cluster.json"
    path.write_text(
        json.dumps(
            cluster_document(
                echo_spec(), ServiceSpec(service=other, replicas=1)
            )
        )
    )
    result = apply_file(manager, path, catalog)
    assert not result.dry_run
    assert result.converged
    assert manager.handles["echo-service"].status().ready_replicas == 2
    assert manager.handles["other-service"].status().ready_replicas == 1
    # Fixed point: applying the same file again changes nothing.
    again = apply_file(manager, path, catalog)
    assert not again.diff
    assert again.reports == {}
    # Scale via edit + removal in one pass: the drained ring frees
    # capacity the scale-up consumes (4 rings total, 3 -> 4 replicas).
    edited = cluster_document(echo_spec(replicas=4))
    result = apply_cluster(manager, load_cluster(edited, catalog))
    assert result.converged
    assert "other-service" not in [
        name for name, handle in manager.handles.items() if handle.active
    ]
    assert manager.handles["echo-service"].status().ready_replicas == 4


def test_apply_cluster_rolls_new_definition():
    eng, _dc, manager = small_cluster()
    handle = manager.apply(echo_spec())
    old_deployments = list(handle.deployments)
    v2 = echo_service(role_name="echo-v2", payload="scored-v2")
    result = apply_cluster(manager, {"echo-service": echo_spec(service=v2)})
    assert result.converged
    report = result.reports["echo-service"]
    assert any(a.kind == "upgrade_place" for a in report.actions)
    assert all(d.service is v2 for d in handle.deployments)
    assert handle.deployments != old_deployments


# --- endpoints -----------------------------------------------------------------------


def test_endpoint_is_memoized_and_may_predate_apply():
    eng, _dc, manager = small_cluster()
    endpoint = manager.endpoint("echo-service")
    assert manager.endpoint("echo-service") is endpoint
    assert not endpoint.attached
    assert endpoint.outstanding == 0
    with pytest.raises(KeyError):
        endpoint.status()
    manager.apply(echo_spec())
    assert endpoint.attached
    assert endpoint.status().ready_replicas == 2


def test_detached_endpoint_refuses_at_the_front_door():
    eng, _dc, manager = small_cluster()
    endpoint = manager.endpoint("echo-service")

    def caller():
        with pytest.raises(NoHealthyDeployment):
            yield from endpoint.submit(object())

    eng.run_until(eng.process(caller()))


def test_endpoint_survives_drain_and_redeclaration():
    eng, _dc, manager = small_cluster()
    endpoint = manager.endpoint("echo-service")
    handle = manager.apply(echo_spec())
    pool = [object() for _ in range(8)]
    stats = eng.run_until(
        OpenLoopInjector(
            eng, endpoint, PoissonArrivals(50_000.0), pool, seed_tag="a"
        ).run(40)
    )
    assert stats.completed == 40
    manager.drain(handle)
    assert not endpoint.attached
    # Shed at the front door while nothing answers to the name: the
    # injector counts rejections and completes the run.
    stats = eng.run_until(
        OpenLoopInjector(
            eng, endpoint, PoissonArrivals(50_000.0), pool, seed_tag="b"
        ).run(40)
    )
    assert stats.completed == 0
    assert stats.rejected == stats.offered == 40
    # Re-declare (a new handle object): the same endpoint resolves the
    # new incarnation with no rewiring.
    redeclared = manager.apply(echo_spec())
    assert redeclared is not handle
    stats = eng.run_until(
        OpenLoopInjector(
            eng, endpoint, PoissonArrivals(50_000.0), pool, seed_tag="c"
        ).run(40)
    )
    assert stats.completed == 40


def test_endpoint_survives_rolling_upgrade():
    eng, _dc, manager = small_cluster()
    endpoint = manager.endpoint("echo-service")
    handle = manager.apply(echo_spec())
    v2 = echo_service(payload="scored-v2", delay_ns=1_500.0)
    handle.upgrade(echo_spec(service=v2))
    pool = [object() for _ in range(8)]
    stats = eng.run_until(
        OpenLoopInjector(
            eng, endpoint, PoissonArrivals(50_000.0), pool, seed_tag="u"
        ).run(40)
    )
    assert stats.completed == 40
    assert all(d.service is v2 for d in handle.deployments)
