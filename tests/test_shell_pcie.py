"""Tests for the slot-based PCIe DMA interface (§3.1)."""

import pytest

from repro.hardware.constants import PCIE_DMA_LATENCY_TARGET_NS
from repro.shell.messages import Packet, PacketKind
from repro.shell.pcie import HostDmaBuffers, PcieCore, SlotError
from repro.shell.router import Port, Router
from repro.sim import Engine


def setup_pcie(eng, slot_count=64):
    router = Router(eng, node_id=(0, 0))
    buffers = HostDmaBuffers(eng, slot_count=slot_count)
    pcie = PcieCore(eng, router, buffers)
    return router, buffers, pcie


def request(size=1024, dst=(0, 0)):
    return Packet(kind=PacketKind.REQUEST, src=(0, 0), dst=dst, size_bytes=size)


def test_fill_dma_delivers_to_role_queue():
    eng = Engine()
    router, buffers, pcie = setup_pcie(eng)

    def host(eng, buffers):
        yield buffers.fill_input(0, request())

    eng.process(host(eng, buffers))
    eng.run()
    assert router.queue_depth(Port.ROLE) == 1
    assert pcie.stats.requests_dma_in == 1


def test_dma_latency_under_10us_for_16kb():
    eng = Engine()
    router, buffers, pcie = setup_pcie(eng)

    def host(eng, buffers):
        yield buffers.fill_input(0, request(size=16 * 1024))

    eng.process(host(eng, buffers))
    eng.run()
    assert eng.now <= PCIE_DMA_LATENCY_TARGET_NS  # §3.1 design goal


def test_oversized_payload_rejected():
    eng = Engine()
    _router, buffers, _pcie = setup_pcie(eng)
    with pytest.raises(SlotError):
        buffers.fill_input(0, request(size=65 * 1024))


def test_bad_slot_id_rejected():
    eng = Engine()
    _router, buffers, _pcie = setup_pcie(eng)
    with pytest.raises(SlotError):
        buffers.fill_input(64, request())
    with pytest.raises(SlotError):
        buffers.consume_output(-1)


def test_refill_blocks_until_dma_drains():
    eng = Engine()
    router, buffers, pcie = setup_pcie(eng)
    fill_times = []

    def host(eng, buffers):
        yield buffers.fill_input(0, request())
        fill_times.append(eng.now)
        yield buffers.fill_input(0, request())
        fill_times.append(eng.now)

    eng.process(host(eng, buffers))
    eng.run()
    assert fill_times[0] == 0.0
    assert fill_times[1] > 0.0  # second fill waited for the DMA clear
    assert pcie.stats.requests_dma_in == 2


def test_snapshot_fairness_drains_all_full_slots():
    eng = Engine()
    router, buffers, pcie = setup_pcie(eng)

    def host(eng, buffers):
        for slot in range(8):
            yield buffers.fill_input(slot, request())

    eng.process(host(eng, buffers))
    eng.run()
    assert pcie.stats.requests_dma_in == 8
    assert router.queue_depth(Port.ROLE) == 8
    # All 8 fit in at most a few snapshots (they were filled together).
    assert pcie.stats.snapshots < 8 + 3


def test_output_slot_roundtrip_with_interrupt():
    eng = Engine()
    router, buffers, pcie = setup_pcie(eng)
    results = []

    def consumer(eng, buffers):
        packet = yield buffers.consume_output(3)
        results.append((eng.now, packet.payload))

    def responder(eng, router):
        yield eng.timeout(500.0)
        response = Packet(
            kind=PacketKind.RESPONSE,
            src=(1, 0),
            dst=(0, 0),
            size_bytes=16,
            payload=0.75,
            slot_id=3,
        )
        yield router.output_queues[Port.PCIE].put(response)

    eng.process(consumer(eng, buffers))
    eng.process(responder(eng, router))
    eng.run()
    assert len(results) == 1
    assert results[0][1] == 0.75
    assert pcie.stats.responses_dma_out == 1
    assert pcie.stats.interrupts_raised == 1


def test_device_down_raises_nmi_and_pauses_dma():
    eng = Engine()
    router, buffers, pcie = setup_pcie(eng)
    nmis = []
    pcie.on_nmi = lambda: nmis.append(eng.now)
    pcie.device_down()
    assert nmis == [0.0]

    def host(eng, buffers):
        yield buffers.fill_input(0, request())

    eng.process(host(eng, buffers))
    eng.run(until=100_000.0)
    assert pcie.stats.requests_dma_in == 0  # nothing moves while down

    pcie.device_restored()
    eng.run()
    assert pcie.stats.requests_dma_in == 1  # resumes after restore


def test_slot_count_validation():
    eng = Engine()
    with pytest.raises(SlotError):
        HostDmaBuffers(eng, slot_count=0)
