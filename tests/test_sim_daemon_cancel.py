"""Tests for daemon processes and waiter cancellation in the kernel.

These semantics exist for the Catapult models: periodic background
services (SEU scrubber) must not keep ``run()`` alive, and killing a
role's receive loop must not let its pending ``get()`` swallow the
next packet (the ring-rotation bug this guards against).
"""

from repro.sim import Engine, Interrupt, Resource, Store


def test_daemon_timeout_does_not_keep_run_alive():
    eng = Engine()
    ticks = []

    def scrubber(eng):
        while True:
            yield eng.timeout(100.0)
            ticks.append(eng.now)

    eng.process(scrubber(eng), daemon=True)

    def worker(eng):
        yield eng.timeout(250.0)

    eng.process(worker(eng))
    eng.run()
    # run() stops when only the daemon remains; time is at the worker's
    # completion (the daemon got to tick meanwhile).
    assert eng.now == 250.0
    assert ticks == [100.0, 200.0]


def test_daemon_executes_under_run_until_deadline():
    eng = Engine()
    ticks = []

    def scrubber(eng):
        while True:
            yield eng.timeout(100.0)
            ticks.append(eng.now)

    eng.process(scrubber(eng), daemon=True)
    eng.run(until=550.0)
    assert len(ticks) == 5


def test_pure_daemon_engine_run_returns_immediately():
    eng = Engine()

    def scrubber(eng):
        while True:
            yield eng.timeout(10.0)

    eng.process(scrubber(eng), daemon=True)
    eng.run()
    assert eng.now == 0.0


def test_killed_getter_does_not_swallow_item():
    eng = Engine()
    store = Store(eng)
    received = []

    def consumer(eng, store, name):
        item = yield store.get()
        received.append((name, item))

    victim = eng.process(consumer(eng, store, "victim"))

    def scenario(eng):
        yield eng.timeout(1.0)
        victim.kill()
        yield eng.timeout(1.0)
        survivor = eng.process(consumer(eng, store, "survivor"))
        yield eng.timeout(1.0)
        yield store.put("payload")
        yield survivor

    eng.process(scenario(eng))
    eng.run()
    assert received == [("survivor", "payload")]


def test_interrupted_getter_does_not_swallow_item():
    eng = Engine()
    store = Store(eng)
    outcome = []

    def consumer(eng, store):
        try:
            item = yield store.get()
            outcome.append(("got", item))
        except Interrupt:
            outcome.append(("interrupted", eng.now))

    victim = eng.process(consumer(eng, store))

    def scenario(eng):
        yield eng.timeout(5.0)
        victim.interrupt()
        yield eng.timeout(1.0)
        yield store.put("x")  # must stay in the store
        yield eng.timeout(1.0)

    eng.process(scenario(eng))
    eng.run()
    assert outcome == [("interrupted", 5.0)]
    assert store.try_get() == "x"


def test_killed_resource_waiter_releases_cleanly():
    eng = Engine()
    resource = Resource(eng, capacity=1)
    holder_done = []

    def holder(eng, resource):
        yield resource.request()
        yield eng.timeout(10.0)
        resource.release()
        holder_done.append(eng.now)

    def waiter(eng, resource):
        yield resource.request()
        raise AssertionError("must never be granted")  # pragma: no cover

    eng.process(holder(eng, resource))
    doomed = eng.process(waiter(eng, resource))

    def killer(eng):
        yield eng.timeout(1.0)
        doomed.kill()

    eng.process(killer(eng))
    eng.run()
    assert holder_done == [10.0]
    assert resource.available == 1  # unit returned despite dead waiter


def test_interrupt_lost_when_wakeup_already_in_flight():
    eng = Engine()
    store = Store(eng)
    outcome = []

    def consumer(eng, store):
        try:
            item = yield store.get()
            outcome.append(("got", item))
        except Interrupt:  # pragma: no cover - should not happen
            outcome.append(("interrupted", eng.now))

    victim = eng.process(consumer(eng, store))

    def scenario(eng):
        yield eng.timeout(1.0)
        store.try_put("x")  # triggers the get at t=1
        victim.interrupt()  # same instant: wakeup already in flight
        yield eng.timeout(1.0)

    eng.process(scenario(eng))
    eng.run()
    assert outcome == [("got", "x")]
