"""Tests for the crossbar router and the Flight Data Recorder."""

import pytest

from repro.shell.fdr import FdrEntry, FlightDataRecorder
from repro.shell.messages import Packet, PacketKind
from repro.shell.router import Port, Router, RoutingError
from repro.sim import Engine


def packet(kind=PacketKind.REQUEST, src=(0, 0), dst=(1, 0), size=100):
    return Packet(kind=kind, src=src, dst=dst, size_bytes=size)


def test_route_to_configured_port():
    eng = Engine()
    router = Router(eng, node_id=(0, 0))
    router.set_route((1, 0), Port.EAST)
    put = router.submit(packet(dst=(1, 0)), Port.PCIE)
    assert put is not None
    eng.run()
    assert router.queue_depth(Port.EAST) == 1


def test_local_request_goes_to_role():
    eng = Engine()
    router = Router(eng, node_id=(0, 0))
    router.submit(packet(dst=(0, 0)), Port.NORTH)
    eng.run()
    assert router.queue_depth(Port.ROLE) == 1


def test_local_response_goes_to_pcie():
    eng = Engine()
    router = Router(eng, node_id=(0, 0))
    router.submit(packet(kind=PacketKind.RESPONSE, dst=(0, 0)), Port.NORTH)
    eng.run()
    assert router.queue_depth(Port.PCIE) == 1


def test_no_route_drops_and_counts():
    eng = Engine()
    router = Router(eng, node_id=(0, 0))
    put = router.submit(packet(dst=(5, 5)), Port.PCIE)
    assert put is None
    assert router.dropped_no_route == 1


def test_route_table_validation():
    eng = Engine()
    router = Router(eng, node_id=(0, 0))
    with pytest.raises(RoutingError):
        router.set_route((1, 0), Port.ROLE)
    with pytest.raises(RoutingError):
        router.set_route((0, 0), Port.EAST)


def test_router_records_fdr_entries():
    eng = Engine()
    router = Router(eng, node_id=(0, 0))
    router.set_route((1, 0), Port.EAST)
    pkt = packet(dst=(1, 0))
    router.submit(pkt, Port.PCIE)
    entries = router.fdr.stream_out()
    assert len(entries) == 1
    assert entries[0].trace_id == pkt.trace_id
    assert entries[0].direction == "pcie->east"
    assert entries[0].kind == "request"


def test_packet_route_tracks_nodes():
    eng = Engine()
    router = Router(eng, node_id=(2, 3))
    router.set_route((1, 0), Port.WEST)
    pkt = packet(dst=(1, 0))
    router.submit(pkt, Port.NORTH)
    assert pkt.route == [(2, 3)]


# --- FDR ----------------------------------------------------------------------


def entry(i, trace=1):
    return FdrEntry(
        timestamp_ns=float(i),
        trace_id=trace,
        size_bytes=64,
        direction="north->role",
        kind="request",
        queue_lengths=(),
    )


def test_fdr_keeps_most_recent_512():
    fdr = FlightDataRecorder()
    for i in range(600):
        fdr.record(entry(i))
    assert len(fdr) == 512
    events = fdr.stream_out()
    assert events[0].timestamp_ns == 88.0  # oldest retained
    assert events[-1].timestamp_ns == 599.0
    assert fdr.dropped == 88
    assert fdr.total_recorded == 600


def test_fdr_trace_filter():
    fdr = FlightDataRecorder(capacity=10)
    fdr.record(entry(0, trace=7))
    fdr.record(entry(1, trace=8))
    fdr.record(entry(2, trace=7))
    assert len(fdr.entries_for_trace(7)) == 2


def test_fdr_power_on_checks():
    fdr = FlightDataRecorder()
    fdr.record_power_on("sl3_north_lock", True)
    fdr.record_power_on("pll_lock", False)
    assert fdr.power_on_checks == {"sl3_north_lock": True, "pll_lock": False}


def test_fdr_capacity_validation():
    with pytest.raises(ValueError):
        FlightDataRecorder(capacity=0)
