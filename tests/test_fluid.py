"""Fluid fast-forward: equivalence with the discrete path, transient
handling, and the recycling primitives that ride along (Timeout.rearm,
Slab, ReservoirSample.merge_analytic)."""

import math

import pytest

from repro.analysis import ReservoirSample
from repro.sim import (
    AnyOf,
    Engine,
    SEC,
    Slab,
    SlabError,
    Store,
)
from repro.sim.fluid import (
    FluidModel,
    FluidProfile,
    PeriodicTransient,
    ScheduledTransients,
)
from repro.sim.units import MS
from repro.workloads.openloop import (
    BurstyArrivals,
    DiurnalArrivals,
    OpenLoopInjector,
    PoissonArrivals,
)

# --- echo sink with the fluid protocol ------------------------------------


class EchoServer:
    def __init__(self, engine, service_ns):
        self.engine = engine
        self.queue = Store(engine, name="echo-q")
        engine.process(self._serve(service_ns), name="echo.worker", daemon=True)

    def _serve(self, service_ns):
        engine = self.engine
        while True:
            payload, done = yield self.queue.get()
            yield engine.timeout(service_ns)
            done.succeed(payload)


class EchoCluster:
    """Round-robin deterministic-service sink publishing an exact
    M/D/c fluid profile — the reference for equivalence checks."""

    def __init__(self, engine, servers, service_ns):
        self.engine = engine
        self.service_ns = service_ns
        self.servers = [EchoServer(engine, service_ns) for _ in range(servers)]
        self.outstanding = 0
        self._next = 0

    def submit(self, request, timeout_ns):
        engine = self.engine
        self.outstanding += 1
        try:
            server = self.servers[self._next]
            self._next = (self._next + 1) % len(self.servers)
            done = engine.event(name="echo-done")
            yield server.queue.put((request, done))
            deadline = engine.timeout(timeout_ns)
            yield AnyOf(engine, [done, deadline])
            if not done.triggered:
                return None
            deadline.cancel()
            return done.value
        finally:
            self.outstanding -= 1

    def fluid_profile(self):
        return FluidProfile(
            servers=len(self.servers),
            service_ns=self.service_ns,
            cursor=self._next,
        )

    def note_fluid(self, window):
        self._next = (self._next + window.admitted) % len(self.servers)


def run_once(
    fluid,
    arrivals_factory,
    count=8_000,
    servers=4,
    service_ns=1_500.0,
    max_depth=256,
    timeout_ns=5 * SEC,
    sanitize=False,
    script=None,
):
    engine = Engine(seed=2014, fluid=fluid, sanitize=sanitize)
    cluster = EchoCluster(engine, servers, service_ns)
    injector = OpenLoopInjector(
        engine,
        cluster,
        arrivals_factory(),
        pool=list(range(16)),
        max_queue_depth=max_depth,
        timeout_ns=timeout_ns,
    )
    if script is not None:
        script(engine, cluster)
    done = injector.run(count)
    stats = engine.run_until(done)
    return {
        "counters": injector.stats.to_dict(),
        "latency": stats.stats(),
        "now": engine.now,
        "dispatched": engine.events_dispatched,
        "windows": engine.fluid.windows if engine.fluid else 0,
    }


def assert_equivalent(discrete, fluid, min_event_ratio=2.0):
    assert fluid["counters"] == discrete["counters"]
    assert fluid["now"] == discrete["now"]
    for field in ("p50", "p99"):
        d = getattr(discrete["latency"], field)
        f = getattr(fluid["latency"], field)
        assert f == pytest.approx(d, rel=0.01), (field, d, f)
    # The whole point: the same answers from far fewer engine events.
    assert fluid["dispatched"] * min_event_ratio <= discrete["dispatched"], (
        fluid["dispatched"],
        discrete["dispatched"],
    )
    assert fluid["windows"] > 0


# --- equivalence: same seed, same answers ---------------------------------


def test_fluid_matches_discrete_poisson():
    def factory():
        return PoissonArrivals(400_000.0)
    discrete = run_once(False, factory)
    fluid = run_once(True, factory)
    assert_equivalent(discrete, fluid, min_event_ratio=50.0)


def test_fluid_matches_discrete_bursty():
    def factory():
        return BurstyArrivals(
            base_rate_per_s=150_000.0,
            burst_rate_per_s=900_000.0,
            period_s=0.008,
            duty=0.25,
        )
    discrete = run_once(False, factory)
    fluid = run_once(True, factory)
    assert_equivalent(discrete, fluid)


def test_fluid_matches_discrete_diurnal():
    # Slow rate drift: the curvature horizon (~4 ms at this amplitude
    # and period) clears the minimum window, so fluid engages in
    # horizon-bounded steps that track the varying rate.
    def factory():
        return DiurnalArrivals(400_000.0, amplitude=0.2, period_s=0.1)
    discrete = run_once(False, factory)
    fluid = run_once(True, factory)
    assert_equivalent(discrete, fluid)


def test_fluid_sits_out_fast_diurnal_swings():
    # Rate curvature too fast for the tolerance: the horizon never
    # clears the minimum window and the run stays discrete — correct
    # (if conservative) behavior, with answers unchanged.
    def factory():
        return DiurnalArrivals(400_000.0, amplitude=0.4, period_s=0.02)
    discrete = run_once(False, factory, count=2_000)
    fluid = run_once(True, factory, count=2_000)
    assert fluid["counters"] == discrete["counters"]
    assert fluid["now"] == discrete["now"]
    assert fluid["windows"] == 0


def test_fluid_matches_discrete_under_sanitizer():
    def factory():
        return PoissonArrivals(400_000.0)
    discrete = run_once(False, factory, count=2_000, sanitize=True)
    fluid = run_once(True, factory, count=2_000, sanitize=True)
    assert_equivalent(discrete, fluid, min_event_ratio=10.0)


def test_fluid_matches_discrete_with_admission_pressure():
    # Depth limit low enough that bursts shed: rejected counts must
    # still agree exactly (the virtual queue sees the same depth).
    def factory():
        return BurstyArrivals(
            base_rate_per_s=200_000.0,
            burst_rate_per_s=4_000_000.0,
            period_s=0.004,
            duty=0.5,
        )
    discrete = run_once(False, factory, max_depth=24, servers=2)
    fluid = run_once(True, factory, max_depth=24, servers=2)
    assert discrete["counters"]["rejected"] > 0  # the scenario bites
    assert_equivalent(discrete, fluid, min_event_ratio=1.0)


def test_fluid_matches_discrete_across_kill_and_repair():
    """A server is pulled from rotation mid-run and restored later —
    the fluid run must drop to discrete around both transients (the
    instants are registered as ScheduledTransients) and still agree
    with the discrete run exactly."""
    kill_at = 6.0 * MS
    repair_at = 14.0 * MS

    def script(engine, cluster):
        if engine.fluid is not None:
            # A 20 ms run: shrink the guard/warm-up from the production
            # 5 ms so fluid has room to engage between the transients.
            engine.fluid.guard_ns = 1.0 * MS
            engine.fluid.warmup_ns = 1.0 * MS
            engine.fluid.register(ScheduledTransients([kill_at, repair_at]))

        def chaos():
            yield engine.timeout(kill_at)
            victim = cluster.servers.pop()
            cluster._next %= len(cluster.servers)
            if engine.fluid is not None:
                engine.fluid.note_transient("kill")
            yield engine.timeout(repair_at - kill_at)
            cluster.servers.append(victim)
            if engine.fluid is not None:
                engine.fluid.note_transient("repair")

        engine.process(chaos(), name="chaos", daemon=True)

    def factory():
        return PoissonArrivals(400_000.0)
    discrete = run_once(False, factory, script=script)
    fluid = run_once(True, factory, script=script)
    assert_equivalent(discrete, fluid, min_event_ratio=1.5)


def test_fluid_off_is_the_default_and_discrete_path_is_unchanged():
    engine = Engine(seed=1)
    assert engine.fluid is None
    def factory():
        return PoissonArrivals(400_000.0)
    a = run_once(False, factory, count=1_000)
    b = run_once(False, factory, count=1_000)
    assert a == b  # same seed, same series — still fully deterministic


# --- coordinator mechanics ------------------------------------------------


def test_window_end_respects_guard_and_observers():
    engine = Engine(seed=0, fluid=True)
    fluid = engine.fluid
    fluid.register(ScheduledTransients([20.0 * MS]))  # guarded
    fluid.register(PeriodicTransient(7.0 * MS), guarded=False)
    # Observer tick at 7ms bounds exactly; the kill at 20ms minus the
    # 5ms guard would allow 15ms.
    assert fluid.window_end(0.0) == 7.0 * MS
    assert fluid.window_end(8.0 * MS) == 14.0 * MS
    # Past both ticks before the guarded transient: guard applies.
    assert fluid.window_end(14.5 * MS) == 15.0 * MS


def test_note_transient_forces_discrete_warmup():
    engine = Engine(seed=0, fluid=True)
    fluid = engine.fluid
    fluid.note_transient("test")
    assert fluid.window_end(0.0) == 0.0  # no window during warm-up
    assert fluid.usable_window(0.0) == 0.0
    after = fluid.discrete_until_ns
    assert after == engine.now + fluid.warmup_ns
    assert fluid.window_end(after + 1.0) > after


def test_usable_window_enforces_minimum_width():
    engine = Engine(seed=0, fluid=True)
    fluid = engine.fluid
    fluid.register(
        ScheduledTransients([fluid.guard_ns + fluid.min_window_ns / 2])
    )
    assert fluid.window_end(0.0) == fluid.min_window_ns / 2
    assert fluid.usable_window(0.0) == 0.0  # too narrow to engage


def test_run_deadline_bounds_windows():
    engine = Engine(seed=0, fluid=True)
    seen = []

    def probe():
        yield engine.timeout(1.0 * MS)
        seen.append(engine.fluid.window_end(engine.now))

    engine.process(probe())
    engine.run(until=3.0 * MS)
    assert seen == [3.0 * MS]
    # Outside a bounded run the deadline no longer caps the window.
    assert engine.fluid.window_end(engine.now) == math.inf


def test_periodic_transient_is_strictly_after_now():
    ticks = PeriodicTransient(10.0, anchor_ns=0.0)
    assert ticks.next_transient_ns(0.0) == 10.0
    assert ticks.next_transient_ns(10.0) == 20.0
    assert ticks.next_transient_ns(9.999999) == 10.0


def test_scheduled_transients_ordering():
    sched = ScheduledTransients([5.0, 1.0])
    sched.add(3.0)
    assert sched.next_transient_ns(0.0) == 1.0
    assert sched.next_transient_ns(1.0) == 3.0
    assert sched.next_transient_ns(5.0) == math.inf


# --- the virtual queue ----------------------------------------------------


def test_fluid_model_tracks_queue_buildup_exactly():
    model = FluidModel(FluidProfile(servers=2, service_ns=10.0))
    # Three arrivals at t=0: two start immediately, one queues.
    assert model.offer(0.0) == 10.0
    assert model.offer(0.0) == 10.0
    assert model.offer(0.0) == 20.0  # waits for channel 0 to free
    assert model.outstanding == 3
    assert model.drain(10.0) == 2
    assert model.outstanding == 1
    assert model.last_completion_ns == 20.0
    assert model.drain(25.0) == 1


def test_fluid_model_requires_exact_profile():
    sampler_profile = FluidProfile(servers=1, sampler=lambda rng: 1.0)
    with pytest.raises(ValueError):
        FluidModel(sampler_profile)


def test_fluid_profile_validation():
    with pytest.raises(ValueError):
        FluidProfile(servers=0, service_ns=1.0)
    with pytest.raises(ValueError):
        FluidProfile(servers=1)
    with pytest.raises(ValueError):
        FluidProfile(servers=1, service_ns=-1.0)


# --- Timeout.rearm --------------------------------------------------------


def test_rearm_reuses_one_timeout_across_sleeps():
    engine = Engine(seed=0)
    instants = []

    def sleeper():
        gate = engine.timeout(5.0)
        yield gate
        instants.append(engine.now)
        for _ in range(3):
            gate.rearm(7.0)
            yield gate
            instants.append(engine.now)

    engine.process(sleeper())
    engine.run()
    assert instants == [5.0, 12.0, 19.0, 26.0]


def test_rearm_of_pending_timeout_raises():
    engine = Engine(seed=0)
    gate = engine.timeout(5.0)
    with pytest.raises(RuntimeError):
        gate.rearm(1.0)  # still queued: rearming would resurrect it


def test_rearm_rejects_negative_delay():
    engine = Engine(seed=0)

    def sleeper():
        gate = engine.timeout(1.0)
        yield gate
        with pytest.raises(ValueError):
            gate.rearm(-1.0)

    engine.process(sleeper())
    engine.run()


# --- Slab -----------------------------------------------------------------


def test_slab_recycles_and_counts():
    engine = Engine(seed=0)
    slab = Slab.for_events(engine, name="pooled")
    first = slab.acquire()
    slab.release(first)
    second = slab.acquire()
    assert second is first
    assert slab.allocated == 1 and slab.recycled == 1


def test_slab_double_release_raises():
    engine = Engine(seed=0)
    slab = Slab.for_events(engine)
    event = slab.acquire()
    slab.release(event)
    with pytest.raises(SlabError):
        slab.release(event)


def test_slab_refuses_to_recycle_scheduled_event():
    engine = Engine(seed=0)
    slab = Slab.for_events(engine)
    event = slab.acquire()
    event.succeed("x")  # scheduled but not yet dispatched
    with pytest.raises(SlabError):
        slab.release(event)


def test_slab_reset_restores_pristine_event():
    engine = Engine(seed=0)
    slab = Slab.for_events(engine, name="pooled")
    event = slab.acquire()
    event.succeed("payload")
    engine.run()
    slab.release(event)  # dispatched: safe to recycle
    fresh = slab.acquire()
    assert fresh is event
    assert not fresh.triggered and fresh.callbacks is None
    fresh.succeed("again")  # a triggered event would raise here
    engine.run()
    assert fresh.value == "again"


def test_slab_capacity_bounds_the_freelist():
    engine = Engine(seed=0)
    slab = Slab(lambda: engine.event(), capacity=1)
    a, b = slab.acquire(), slab.acquire()
    slab.release(a)
    slab.release(b)  # beyond capacity: dropped, not parked
    assert len(slab) == 1


def test_slab_violation_is_a_sanitizer_finding():
    engine = Engine(seed=0, sanitize=True)
    slab = Slab.for_events(engine)
    event = slab.acquire()
    event.succeed("x")
    with pytest.raises(SlabError):
        slab.release(event)
    assert any(
        finding.kind == "slab-resurrection"
        for finding in engine.sanitizer.findings
    )


# --- ReservoirSample.merge_analytic ---------------------------------------


def test_merge_analytic_exact_below_capacity():
    reservoir = ReservoirSample(capacity=1_000, seed=1)
    reservoir.merge_analytic(100, 2_000.0)
    assert reservoir.count == 100
    assert reservoir.total == pytest.approx(100 * 2_000.0)
    summary = reservoir.summary()
    assert summary.count == 100
    assert summary.p50 == pytest.approx(2_000.0)


def test_merge_analytic_beyond_capacity_keeps_counts():
    reservoir = ReservoirSample(capacity=64, seed=2)
    reservoir.extend([1_000.0] * 64)
    reservoir.merge_analytic(10_000, 3_000.0)
    assert reservoir.count == 10_064
    assert reservoir.sample_size == 64
    # The bulk merge dominates: most reservoir slots now hold its mean.
    merged = sum(1 for v in reservoir._sample if v == 3_000.0)
    assert merged > 32


def test_merge_analytic_with_draw_injects_spread():
    reservoir = ReservoirSample(capacity=32, seed=3)
    reservoir.merge_analytic(16, 500.0, draw=lambda rng: 400.0 + rng.random() * 200.0)
    values = set(reservoir._sample)
    assert len(values) > 1
    assert all(400.0 <= v <= 600.0 for v in values)


def test_merge_analytic_validates_count():
    reservoir = ReservoirSample(capacity=8, seed=4)
    with pytest.raises(ValueError):
        reservoir.merge_analytic(-1, 1.0)
    reservoir.merge_analytic(0, 1.0)  # no-op
    assert reservoir.count == 0
