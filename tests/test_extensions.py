"""Tests for the paper's future-work extensions we implement.

§3.2: partial reconfiguration — role swap with the shell still live,
routing inter-FPGA traffic throughout, no PCIe NMI.
§3.6: FDR extended history — evicted entries spilled to DRAM.
"""

import pytest

from repro.fabric import Pod, ServerState, TorusTopology
from repro.hardware import Bitstream, ResourceBudget, ReconfigError
from repro.hardware.bitstream import ShellVersion
from repro.hardware.constants import FULL_RECONFIG_NS, PARTIAL_RECONFIG_NS
from repro.shell import Role
from repro.shell.fdr import FdrEntry, FlightDataRecorder
from repro.sim import Engine, SEC


def bitstream(name="role", shell=None):
    return Bitstream(
        role_name=name,
        role_budget=ResourceBudget(alms=1000),
        clock_mhz=175.0,
        shell_version=shell or ShellVersion(),
    )


class EchoRole(Role):
    name = "echo"

    def handle(self, packet):
        yield self.shell.engine.timeout(500.0)
        yield self.send(packet.response_to(16, "ok"))


def build_pod(seed=9):
    eng = Engine(seed=seed)
    pod = Pod(eng, topology=TorusTopology(width=3, height=4))
    return eng, pod


def configure_all(eng, pod):
    from repro.host import FpgaDriver

    # The driver protocol (NMI masking) keeps hosts alive (§3.4).
    events = [FpgaDriver(s).reconfigure(bitstream()) for s in pod.all_servers()]
    for event in events:
        eng.run_until(event)
    pod.release_all_rx_halts()


# --- partial reconfiguration -------------------------------------------------


def test_partial_reconfig_needs_live_shell():
    eng, pod = build_pod()
    server = pod.server_at((0, 0))
    with pytest.raises(ReconfigError):
        server.fpga.partial_reconfigure(bitstream())  # unconfigured


def test_partial_reconfig_is_fast_and_keeps_device_up():
    eng, pod = build_pod()
    configure_all(eng, pod)
    server = pod.server_at((0, 0))
    start = eng.now
    done = server.shell.partial_reconfigure(bitstream("new-role"))
    eng.run_until(done)
    assert eng.now - start == pytest.approx(PARTIAL_RECONFIG_NS)
    assert PARTIAL_RECONFIG_NS < FULL_RECONFIG_NS / 5
    assert server.fpga.configured_role == "new-role"
    assert server.fpga.partial_reconfig_count == 1


def test_partial_reconfig_raises_no_nmi():
    eng, pod = build_pod()
    configure_all(eng, pod)
    server = pod.server_at((1, 1))
    assert not server.nmi_masked  # no driver protocol involved
    done = server.shell.partial_reconfigure(bitstream("swap"))
    eng.run_until(done)
    assert server.state is ServerState.UP  # a full reconfig would crash
    assert server.crash_count == 0


def test_partial_reconfig_rejects_incompatible_shell():
    eng, pod = build_pod()
    configure_all(eng, pod)
    server = pod.server_at((0, 1))
    with pytest.raises(ReconfigError):
        server.fpga.partial_reconfigure(bitstream("v2", shell=ShellVersion(2, 0)))


def test_partial_reconfig_rejects_concurrent_reload():
    eng, pod = build_pod()
    configure_all(eng, pod)
    server = pod.server_at((0, 1))
    server.fpga.partial_reconfigure(bitstream("a"))
    with pytest.raises(ReconfigError):
        server.fpga.partial_reconfigure(bitstream("b"))


def test_traffic_routes_through_node_during_partial_reconfig():
    """The shell keeps routing while its role region reloads."""
    eng = Engine(seed=9)
    # 5-wide: (0,0) -> (2,0) must route EAST through (1,0) under DOR.
    pod = Pod(eng, topology=TorusTopology(width=5, height=2))
    configure_all(eng, pod)
    middle = pod.server_at((1, 0))
    pod.server_at((2, 0)).shell.attach_role(EchoRole())
    middle.shell.partial_reconfigure(bitstream("mid-swap"))

    from repro.host import SlotClient

    client = SlotClient(pod.server_at((0, 0)))
    lease = client.lease()
    results = []

    def thread():
        response = yield from lease.request(
            dst=(2, 0), size_bytes=1024, timeout_ns=1 * SEC
        )
        results.append(response)

    eng.process(thread())
    eng.run()
    assert results and results[0].payload == "ok"
    assert middle.fpga.role_reloading is False  # finished by drain time


def test_full_reconfig_by_contrast_blocks_through_traffic():
    """Sanity contrast: a FULL reconfiguration darkens the node's links."""
    eng = Engine(seed=9)
    pod = Pod(eng, topology=TorusTopology(width=5, height=2))
    configure_all(eng, pod)
    middle = pod.server_at((1, 0))
    pod.server_at((2, 0)).shell.attach_role(EchoRole())
    middle.driver = None
    middle.nmi_masked = True
    middle.shell.safe_reconfigure(bitstream("full-swap"))

    from repro.host import SlotClient

    client = SlotClient(pod.server_at((0, 0)))
    lease = client.lease()
    outcome = []

    def thread():
        try:
            yield from lease.request(dst=(2, 0), size_bytes=1024, timeout_ns=0.2 * SEC)
            outcome.append("ok")
        except Exception:
            outcome.append("timeout")

    eng.process(thread())
    eng.run()
    # The request needed (1,0)'s links mid-reconfig: dropped, timed out.
    assert outcome == ["timeout"]


# --- FDR extended history ------------------------------------------------------


def entry(i):
    return FdrEntry(
        timestamp_ns=float(i),
        trace_id=i % 7,
        size_bytes=64,
        direction="north->role",
        kind="request",
        queue_lengths=(),
    )


def test_fdr_spill_extends_history():
    fdr = FlightDataRecorder(capacity=100, spill_to_dram=True)
    for i in range(1_000):
        fdr.record(entry(i))
    assert len(fdr) == 100
    history = fdr.extended_history()
    assert len(history) == 1_000
    assert history[0].timestamp_ns == 0.0
    assert fdr.dropped == 0


def test_fdr_spill_respects_dram_budget():
    fdr = FlightDataRecorder(
        capacity=100, spill_to_dram=True, dram_budget_entries=200
    )
    for i in range(1_000):
        fdr.record(entry(i))
    assert len(fdr.extended_history()) == 300  # 200 spilled + 100 on-chip
    assert fdr.dropped == 700


def test_fdr_no_spill_preserves_old_behavior():
    fdr = FlightDataRecorder(capacity=100)
    for i in range(250):
        fdr.record(entry(i))
    assert len(fdr) == 100
    assert fdr.dropped == 150
    assert len(fdr.extended_history()) == 100


def test_fdr_trace_search_covers_spilled_entries():
    fdr = FlightDataRecorder(capacity=10, spill_to_dram=True)
    for i in range(100):
        fdr.record(entry(i))
    matches = fdr.entries_for_trace(3)
    assert len(matches) == len([i for i in range(100) if i % 7 == 3])
