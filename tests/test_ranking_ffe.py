"""Tests for the FFE stack: AST, compiler, assembler, processor."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranking.ffe import (
    BinOp,
    Const,
    Feature,
    FfeCompiler,
    FfeProcessor,
    IfThenElse,
    Metafeature,
    Opcode,
    UnOp,
    assemble,
)
from repro.ranking.ffe.compiler import CompileError
from repro.ranking.ffe.assembler import cluster_of

compiler = FfeCompiler()


def run_single(expr, features=None, slot=0):
    """Compile one expression, run it alone, return its output value."""
    program = assemble([compiler.compile(expr, slot)], core_count=1, threads_per_core=1)
    result = FfeProcessor(program).execute(features or {})
    return result.outputs[slot], result


# --- functional equivalence -----------------------------------------------------


def test_constant():
    value, _ = run_single(Const(3.5))
    assert value == 3.5


def test_feature_read_and_default_zero():
    value, _ = run_single(Feature(7), {7: 2.25})
    assert value == 2.25
    value, _ = run_single(Feature(8), {7: 2.25})
    assert value == 0.0


def test_arithmetic():
    expr = (Feature(0) + Const(2.0)) * (Feature(1) - Const(1.0))
    value, _ = run_single(expr, {0: 3.0, 1: 5.0})
    assert value == (3.0 + 2.0) * (5.0 - 1.0)


def test_divide_by_zero_is_hardware_safe():
    value, _ = run_single(Feature(0) / Feature(1), {0: 5.0, 1: 0.0})
    assert value == 0.0


def test_ln_of_nonpositive_is_zero():
    value, _ = run_single(UnOp("ln", Const(-3.0)))
    assert value == 0.0
    value, _ = run_single(UnOp("ln", Const(math.e)))
    assert value == pytest.approx(1.0)


def test_pow_expansion_matches_semantics():
    expr = BinOp("pow", Feature(0), Const(2.5))
    value, _ = run_single(expr, {0: 3.0})
    assert value == pytest.approx(3.0**2.5)
    # pow(0, x) must be 0, not exp(x*ln(0)).
    value, _ = run_single(expr, {0: 0.0})
    assert value == 0.0


def test_idiv_and_mod_expansions():
    value, _ = run_single(BinOp("idiv", Const(17.0), Const(5.0)))
    assert value == 3.0
    value, _ = run_single(BinOp("mod", Const(17.0), Const(5.0)))
    assert value == pytest.approx(2.0)


def test_conditional_predication():
    expr = IfThenElse("lt", Feature(0), Const(5.0), Const(100.0), Const(-100.0))
    assert run_single(expr, {0: 3.0})[0] == 100.0
    assert run_single(expr, {0: 7.0})[0] == -100.0


def test_metafeature_reads_upstream_slot():
    from repro.ranking.ffe.expr import METAFEATURE_BASE

    expr = Metafeature(4) + Const(1.0)
    value, _ = run_single(expr, {METAFEATURE_BASE + 4: 9.0})
    assert value == 10.0


# Random-expression strategy for the equivalence property test.
def expr_strategy(depth=3):
    leaf = st.one_of(
        st.builds(Const, st.floats(-8, 8, allow_nan=False, width=16)),
        st.builds(Feature, st.integers(0, 9)),
    )
    if depth == 0:
        return leaf
    sub = expr_strategy(depth - 1)
    return st.one_of(
        leaf,
        st.builds(
            BinOp,
            st.sampled_from(["add", "sub", "mul", "div", "min", "max", "pow"]),
            sub,
            sub,
        ),
        st.builds(UnOp, st.sampled_from(["ln", "exp", "neg", "abs", "ftoi"]), sub),
        st.builds(
            IfThenElse, st.sampled_from(["lt", "le", "eq"]), sub, sub, sub, sub
        ),
    )


@settings(max_examples=150, deadline=None)
@given(
    expr=expr_strategy(3),
    feature_values=st.lists(st.floats(-10, 10, allow_nan=False, width=16), min_size=10, max_size=10),
)
def test_compiled_matches_ast_evaluation(expr, feature_values):
    """Property: the compiled ISA reproduces AST semantics exactly."""
    features = dict(enumerate(feature_values))
    expected = expr.evaluate(features)
    actual, _ = run_single(expr, features)
    if math.isinf(expected) or math.isinf(actual):
        assert math.isinf(expected) == math.isinf(actual)
    else:
        assert actual == pytest.approx(expected, rel=1e-9, abs=1e-9)


def test_compiler_expands_pow_into_primitives():
    compiled = compiler.compile(BinOp("pow", Feature(0), Feature(1)), 0)
    ops = {instr.op for instr in compiled.instructions}
    assert Opcode.LN in ops and Opcode.EXP in ops and Opcode.MUL in ops


def test_constant_folding():
    compiled = compiler.compile(BinOp("add", Const(2.0), Const(3.0)), 0)
    # One LDC plus the RET: the add happened at compile time.
    assert [i.op for i in compiled.instructions] == [Opcode.LDC, Opcode.RET]
    assert compiled.instructions[0].imm == 5.0


def test_register_overflow_raises():
    """A right-nested comb holds one live register per open level;
    past 32 levels the allocator must refuse and suggest metafeatures."""
    expr = Feature(0)
    for i in range(40):
        expr = BinOp("add", Feature(i % 10), expr)  # a + (b + (c + ...))
    with pytest.raises(CompileError):
        compiler.compile(expr, 0)


def test_left_leaning_chain_fits_registers():
    """((a + b) + c) + ... frees registers as it goes - no overflow."""
    expr = Feature(0)
    for i in range(200):
        expr = BinOp("add", expr, Feature(i % 10))
    compiled = compiler.compile(expr, 0)
    assert compiled.instruction_count > 200


# --- assembler -------------------------------------------------------------------


def compiled_with_latency(latency, slot):
    """Fabricate a compiled expression with a given expected latency."""
    expr = Const(1.0)
    for _ in range(latency):
        expr = BinOp("add", expr, Const(1.0))
    return compiler.compile(expr, slot)


def test_assembler_longest_to_slot0():
    exprs = [compiled_with_latency(n, slot=n) for n in (1, 5, 10, 2)]
    program = assemble(exprs, core_count=2, threads_per_core=2)
    # Longest (slot id 10) lands on core 0 thread 0.
    assert program.thread(0, 0).expressions[0].output_slot == 10
    assert program.thread(1, 0).expressions[0].output_slot == 5
    assert program.thread(0, 1).expressions[0].output_slot == 2
    assert program.thread(1, 1).expressions[0].output_slot == 1


def test_assembler_remainder_appends_round_robin():
    exprs = [compiled_with_latency(10 - n, slot=n) for n in range(6)]
    program = assemble(exprs, core_count=2, threads_per_core=2)
    assert program.expression_count == 6
    # 4 slots filled first, then 2 appended starting at slot 0.
    assert len(program.thread(0, 0).expressions) == 2
    assert len(program.thread(1, 0).expressions) == 2
    assert len(program.thread(0, 1).expressions) == 1
    assert len(program.thread(1, 1).expressions) == 1


def test_assembler_validation():
    with pytest.raises(ValueError):
        assemble([], core_count=0)


def test_cluster_mapping():
    assert cluster_of(0) == 0
    assert cluster_of(5) == 0
    assert cluster_of(6) == 1
    assert cluster_of(59) == 9


# --- processor timing -------------------------------------------------------------


def test_multithreading_hides_complex_latency():
    """4 threads on one core beat 1 thread running the same 4 exprs."""
    def heavy(slot):
        return compiler.compile(
            UnOp("ln", BinOp("div", Feature(0), Const(3.0))), slot
        )

    exprs = [heavy(i) for i in range(4)]
    four_threads = assemble(exprs, core_count=1, threads_per_core=4)
    one_thread = assemble(exprs, core_count=1, threads_per_core=1)
    t4 = FfeProcessor(four_threads).execute({0: 5.0})
    t1 = FfeProcessor(one_thread).execute({0: 5.0})
    assert t4.outputs == t1.outputs
    assert t4.cycles < t1.cycles  # latency hiding


def test_complex_block_contention_within_cluster():
    """Six cores sharing one complex block serialize their divides."""
    def divider(slot):
        return compiler.compile(BinOp("div", Feature(0), Const(2.0)), slot)

    exprs = [divider(i) for i in range(6)]
    shared = assemble(exprs, core_count=6, threads_per_core=1)
    result = FfeProcessor(shared).execute({0: 8.0})
    assert result.complex_ops == 6
    assert result.complex_stall_cycles > 0  # arbitration happened


def test_parallel_cores_scale_throughput():
    def heavy(slot):
        expr = Feature(0)
        for _ in range(20):
            expr = BinOp("mul", expr, Const(1.01))
        return compiler.compile(expr, slot)

    exprs = [heavy(i) for i in range(12)]
    wide = assemble(exprs, core_count=12, threads_per_core=1)
    narrow = assemble(exprs, core_count=1, threads_per_core=1)
    t_wide = FfeProcessor(wide).execute({0: 1.0})
    t_narrow = FfeProcessor(narrow).execute({0: 1.0})
    assert t_wide.cycles * 4 < t_narrow.cycles


def test_execute_and_evaluate_only_agree():
    exprs = [
        compiler.compile(BinOp("mul", Feature(i), Const(2.0)), 100 + i)
        for i in range(10)
    ]
    program = assemble(exprs, core_count=3, threads_per_core=2)
    features = {i: float(i) for i in range(10)}
    timed = FfeProcessor(program).execute(features)
    functional = FfeProcessor(program).evaluate_only(features)
    assert timed.outputs == functional


def test_timing_data_independent():
    exprs = [
        compiler.compile(BinOp("pow", Feature(i), Feature(i + 1)), i)
        for i in range(8)
    ]
    program = assemble(exprs, core_count=2, threads_per_core=4)
    a = FfeProcessor(program).execute({i: 1.0 for i in range(10)})
    b = FfeProcessor(program).execute({i: 123.456 for i in range(10)})
    assert a.cycles == b.cycles  # predication: no data-dependent timing
