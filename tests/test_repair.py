"""Tests for the hardware-lifecycle subsystem: service tickets, timed
repair, and rolling in-place upgrades.

The paper's §3.5 failure handling is a loop — map out the bad hardware,
raise a service ticket, swap the card, return the capacity to the pool.
These tests close the loop end-to-end: a killed ring's slot is
cordoned, ticketed, repaired on the policy's clock, un-cordoned, and
re-placed onto — with zero manual ``uncordon()`` calls.  On the same
machinery, ``handle.upgrade(new_spec)`` rolls every replica onto a new
service definition one at a time while the rest keep serving.
"""

import pytest

from repro.cluster import (
    ClusterFailureInjector,
    ClusterManager,
    RepairPolicy,
    RepairQueue,
    RingSlot,
    ServiceSpec,
    echo_service,
)
from repro.fabric import Datacenter, TorusTopology
from repro.fabric.server import ServerState
from repro.hardware.fpga import FpgaState
from repro.services import FailureInjector, FailureKind
from repro.sim import Engine
from repro.sim.rng import RngStreams
from repro.sim.units import DAY, HOUR, SEC
from repro.workloads import OpenLoopInjector, PoissonArrivals


def managed_cluster(seed=7, pods=2, width=2, height=3, repair_policy=None):
    eng = Engine(seed=seed)
    dc = Datacenter(eng, num_pods=pods, topology=TorusTopology(width=width, height=height))
    return eng, dc, ClusterManager(dc, repair_policy=repair_policy)


def echo_spec(**overrides) -> ServiceSpec:
    defaults = dict(service=echo_service(), replicas=2, health_period_ns=0.2 * SEC)
    defaults.update(overrides)
    return ServiceSpec(**defaults)


FAST_REPAIR = RepairPolicy(distribution="fixed", mean_ns=2 * SEC)


# --- RepairPolicy ---------------------------------------------------------------------


def test_repair_policy_validates_fields():
    with pytest.raises(ValueError):
        RepairPolicy(distribution="whenever")
    with pytest.raises(ValueError):
        RepairPolicy(mean_ns=0.0)
    with pytest.raises(ValueError):
        RepairPolicy(sigma=-1.0)
    with pytest.raises(ValueError):
        RepairPolicy(batch_period_ns=0.0)


def test_fixed_policy_is_exact():
    policy = RepairPolicy(distribution="fixed", mean_ns=3 * HOUR)
    rng = RngStreams(0).stream("repair")
    assert policy.repair_delay_ns(rng, now_ns=123.0) == 3 * HOUR


def test_lognormal_policy_is_deterministic_and_calibrated():
    policy = RepairPolicy(distribution="lognormal", mean_ns=4 * HOUR, sigma=0.5)
    draws_a = [
        policy.repair_delay_ns(RngStreams(9).stream("repair"), 0.0)
        for _ in range(1)
    ]
    draws_b = [
        policy.repair_delay_ns(RngStreams(9).stream("repair"), 0.0)
        for _ in range(1)
    ]
    assert draws_a == draws_b  # same seed, same stream, same delay
    rng = RngStreams(3).stream("repair")
    mean = sum(policy.repair_delay_ns(rng, 0.0) for _ in range(4000)) / 4000
    assert 0.9 * 4 * HOUR < mean < 1.1 * 4 * HOUR  # E[X] parameterisation


def test_batched_policy_waits_for_the_truck():
    policy = RepairPolicy(distribution="batched", batch_period_ns=7 * DAY)
    rng = RngStreams(0).stream("repair")
    # Mid-week: the ticket closes at the next weekly visit...
    assert policy.repair_delay_ns(rng, now_ns=2 * DAY) == 5 * DAY
    # ...and a ticket opened exactly at a visit waits a full period.
    assert policy.repair_delay_ns(rng, now_ns=7 * DAY) == 7 * DAY


# --- tickets --------------------------------------------------------------------------


def test_cordon_opens_ticket_and_capacity_report_sees_it():
    eng, dc, manager = managed_cluster(repair_policy=FAST_REPAIR)
    slot = RingSlot(0, 1)
    manager.scheduler.cordon(slot, reason="burn-in")
    (ticket,) = manager.repairs.open_tickets
    assert ticket.slot == slot
    assert ticket.reason == "burn-in"
    assert ticket.due_ns == eng.now + FAST_REPAIR.mean_ns
    report = manager.scheduler.capacity_report()
    assert report.cordoned_rings == 1
    assert report.open_tickets == 1
    assert report.next_repair_due_ns == ticket.due_ns
    assert report.serviceable_rings == report.total_rings
    # Cordoning the same slot again does not open a duplicate ticket.
    manager.scheduler.cordon(slot, reason="again")
    assert len(manager.repairs.tickets) == 1


def test_repair_resets_hardware_and_uncordons():
    eng, dc, manager = managed_cluster(repair_policy=FAST_REPAIR)
    pod = dc.pod(0)
    injector = FailureInjector(pod)
    victims = pod.topology.ring(1)[:2]
    for node in victims:
        injector.inject(FailureKind.FPGA_HARDWARE_FAULT, node)
    injector.inject(FailureKind.CABLE_ASSEMBLY_FAILURE, victims[0])
    manager.scheduler.cordon(RingSlot(0, 1), reason="faulted")
    # Keep the clock moving past the due time (daemon repair needs a
    # bounded run; nothing else is scheduled).
    eng.run(until=FAST_REPAIR.mean_ns + 1.0)
    (ticket,) = manager.repairs.tickets
    assert not ticket.open
    assert ticket.outcome == "repaired"
    assert ticket.components_serviced >= 3  # two cards + the assembly
    assert RingSlot(0, 1) not in manager.scheduler.cordoned_slots
    for node in victims:
        server = pod.server_at(node)
        assert server.state is ServerState.UP
        assert server.fpga.state is FpgaState.UNCONFIGURED
        assert server.fpga.pll_locked
    assert not any(assembly.failed for assembly in pod.assemblies.values())


def test_manual_uncordon_cancels_ticket():
    eng, dc, manager = managed_cluster(repair_policy=FAST_REPAIR)
    slot = RingSlot(1, 0)
    manager.scheduler.cordon(slot)
    manager.scheduler.uncordon(slot)  # operator got there first
    (ticket,) = manager.repairs.tickets
    assert ticket.outcome == "cancelled"
    # The stale repair timer fires harmlessly: no double-uncordon.
    eng.run(until=FAST_REPAIR.mean_ns + 1.0)
    assert manager.repairs.tickets == [ticket]
    assert slot not in manager.scheduler.cordoned_slots


def test_attach_queue_tickets_preexisting_cordons():
    eng, dc, manager = managed_cluster()  # no policy: manual mode
    slot = RingSlot(0, 0)
    manager.scheduler.cordon(slot, reason="old wound")
    queue = RepairQueue(eng, dc, manager.scheduler, policy=FAST_REPAIR)
    manager.scheduler.attach_repair_queue(queue)
    (ticket,) = queue.open_tickets
    assert ticket.slot == slot
    assert ticket.reason == "old wound"
    with pytest.raises(RuntimeError):
        manager.scheduler.attach_repair_queue(
            RepairQueue(eng, dc, manager.scheduler, policy=FAST_REPAIR)
        )


def test_manufacturing_report_skips_occupied_slots():
    """Regression: a failed card on an already-serving ring must not
    crash ticketing (the slot cannot be cordoned out from under its
    deployment) — the card is flagged and left to the failure loop."""
    from repro.fabric.datacenter import ManufacturingReport

    eng, dc, manager = managed_cluster(repair_policy=FAST_REPAIR)
    handle = manager.apply(echo_spec(replicas=1))
    occupied = manager.scheduler.slot_of(handle.deployments[0])
    spare_node = handle.deployments[0].assignment.spare_nodes[0]
    free = RingSlot(1, 1)
    report = ManufacturingReport(
        total_cards=dc.total_servers,
        failed_cards=2,
        total_links=dc.total_links,
        failed_links=0,
        failed_card_sites=((occupied, spare_node), (free, (free.ring_x, 0))),
    )
    tickets = manager.repairs.open_from_manufacturing(report)
    # Only the free slot was cordoned + ticketed; the occupied one was
    # flagged (FPGA failed) for the health loop to handle.
    assert [t.slot for t in tickets] == [free]
    assert manager.scheduler.cordoned_slots == [free]
    assert dc.pod(occupied.pod_id).server_at(spare_node).fpga.state is FpgaState.FAILED


def test_manufacturing_report_opens_tickets():
    eng, dc, manager = managed_cluster(pods=4, repair_policy=FAST_REPAIR)
    report = dc.manufacturing_test(card_failure_rate=0.08)
    assert report.failed_cards > 0
    tickets = manager.repairs.open_from_manufacturing(report)
    assert {t.slot for t in tickets} == set(report.failed_card_slots)
    # Defective cards are physically failed until the swap...
    slot, node = report.failed_card_sites[0]
    assert dc.pod(slot.pod_id).server_at(node).fpga.state is FpgaState.FAILED
    assert set(manager.scheduler.cordoned_slots) == set(report.failed_card_slots)
    # ...and the swap returns every ring to the pool, cards reset.
    eng.run(until=eng.now + FAST_REPAIR.mean_ns + 1.0)
    assert manager.scheduler.cordoned_slots == []
    assert dc.pod(slot.pod_id).server_at(node).fpga.state is FpgaState.UNCONFIGURED
    assert all(t.outcome == "repaired" for t in manager.repairs.tickets)


# --- the closed loop ------------------------------------------------------------------


def test_killed_ring_heals_without_operator():
    eng, dc, manager = managed_cluster(repair_policy=FAST_REPAIR)
    handle = manager.apply(echo_spec(replicas=2))
    initial = manager.scheduler.capacity_report()
    ClusterFailureInjector(dc).kill_ring(handle.deployments[0])
    eng.run(until=eng.now + 1.0 * SEC)  # watchdog sweeps, sheds, replaces
    mid = manager.scheduler.capacity_report()
    assert mid.cordoned_rings == 1
    assert mid.open_tickets == 1
    assert handle.status().ready_replicas == 2  # replica already re-placed
    eng.run(until=eng.now + 3.0 * SEC)  # repair due passes
    healed = manager.scheduler.capacity_report()
    assert healed.cordoned_rings == 0
    assert healed.free_rings + healed.occupied_rings == initial.total_rings
    assert manager.repairs.repaired_count == 1


def test_shortfall_replica_replaced_after_repair():
    # Exactly as many rings as replicas: losing one leaves nowhere to
    # re-place until the repair returns the slot.
    eng, dc, manager = managed_cluster(pods=1, repair_policy=FAST_REPAIR)
    handle = manager.apply(echo_spec(replicas=2))
    assert manager.scheduler.capacity_report().free_rings == 0
    ClusterFailureInjector(dc).kill_ring(handle.deployments[0])
    eng.run(until=eng.now + 1.0 * SEC)
    assert handle.status().ready_replicas == 1  # degraded: no free slot
    assert any(
        action.kind == "shortfall"
        for report in manager.reconcile_reports
        for action in report.actions
    )
    eng.run(until=eng.now + 3.0 * SEC)
    # The repair callback reconciled the shortfall away — no operator,
    # no manual uncordon, no watchdog luck required.
    assert handle.status().ready_replicas == 2
    assert manager.scheduler.cordoned_slots == []
    assert manager.repairs.repaired_count == 1


def test_repaired_slot_redeploys_under_traffic():
    quick_repair = RepairPolicy(distribution="fixed", mean_ns=1 * SEC)
    eng, dc, manager = managed_cluster(pods=1, repair_policy=quick_repair)
    handle = manager.apply(echo_spec(replicas=2, request_timeout_ns=0.04 * SEC))
    pool = [object() for _ in range(8)]
    traffic = OpenLoopInjector(
        eng,
        handle,
        PoissonArrivals(1_500.0),
        pool,
        timeout_ns=0.04 * SEC,
        max_queue_depth=64,
    )
    done = traffic.run(9_000)  # ~6 s of arrivals; the repair lands mid-run
    killed = False
    while not done.triggered:
        eng.run(until=eng.now + 0.05 * SEC)
        if not killed and eng.now >= 0.3 * SEC:
            ClusterFailureInjector(dc).kill_ring(handle.deployments[0])
            killed = True
    stats = done.value
    # The run survived the outage, the repair landed mid-run, and the
    # service finished at full strength on the recovered capacity.
    assert manager.repairs.repaired_count == 1
    assert handle.status().ready_replicas == 2
    assert stats.completed > 0.8 * stats.offered
    assert stats.offered == stats.admitted + stats.rejected


# --- rolling in-place upgrades --------------------------------------------------------


def new_echo(payload="v2", delay_ns=15_000.0):
    return echo_service(payload=payload, delay_ns=delay_ns)


def test_upgrade_swaps_every_replica():
    eng, dc, manager = managed_cluster()
    handle = manager.apply(echo_spec(replicas=3))
    old_deployments = list(handle.deployments)
    new_spec = echo_spec(service=new_echo(), replicas=3)
    report = handle.upgrade(new_spec)
    assert handle.spec is new_spec
    assert len(handle.deployments) == 3
    assert all(d.service is new_spec.service for d in handle.deployments)
    assert all(d.released for d in old_deployments)
    releases = [a for a in report.actions if a.kind == "upgrade_release"]
    places = [a for a in report.actions if a.kind == "upgrade_place"]
    assert len(releases) == 3 and len(places) == 3
    # Rolling invariant: at most ONE replica out of rotation at a time.
    out = 0
    for action in report.actions:
        if action.kind == "upgrade_release":
            out += 1
        elif action.kind == "upgrade_place":
            out -= 1
        assert out <= 1
    assert handle.status().ready_replicas == 3


def test_upgrade_can_rescale_and_reshape():
    eng, dc, manager = managed_cluster()
    handle = manager.apply(echo_spec(replicas=3))
    report = handle.upgrade(echo_spec(service=new_echo(), replicas=2))
    assert len(handle.deployments) == 2
    assert all(d.service.name == "echo-service" for d in handle.deployments)
    assert report.converged
    # And back up: the upgrade path honours scale-up too.
    handle.upgrade(echo_spec(service=new_echo("v3"), replicas=4))
    assert len(handle.deployments) == 4


def test_unplaceable_upgrade_keeps_service_serving():
    """Regression: rolling onto a spec whose shape cannot be placed
    must keep the old replicas in rotation (shortfall recorded), not
    release every replica and take a healthy service dark."""
    eng, dc, manager = managed_cluster(pods=1)  # 2 rings total
    handle = manager.apply(echo_spec(replicas=2))
    old_service = handle.spec.service
    report = handle.upgrade(
        echo_spec(service=new_echo(), replicas=2, rings_per_replica=3)
    )
    # Nothing could be rolled: both old replicas still serve.
    assert len(handle.deployments) == 2
    assert all(d.service is old_service for d in handle.deployments)
    assert handle.status().ready_replicas == 2
    assert any(a.kind == "shortfall" for a in report.actions)
    assert not any(a.kind == "upgrade_release" for a in report.actions)


def test_upgrade_validates_input():
    eng, dc, manager = managed_cluster()
    handle = manager.apply(echo_spec(replicas=1))
    with pytest.raises(ValueError):
        handle.upgrade(echo_spec(service=echo_service(name="other"), replicas=1))
    # apply() still refuses a changed definition (one whose serialized
    # fingerprint differs — a new role image), pointing at upgrade().
    with pytest.raises(ValueError, match="upgrade"):
        manager.apply(
            echo_spec(service=echo_service(role_name="echo-v2"), replicas=1)
        )
    manager.drain(handle)
    with pytest.raises(RuntimeError):
        handle.upgrade(echo_spec(replicas=1))


def test_upgrade_keeps_serving_under_traffic():
    eng, dc, manager = managed_cluster()
    handle = manager.apply(
        echo_spec(replicas=3, request_timeout_ns=0.04 * SEC)
    )
    pool = [object() for _ in range(8)]
    traffic = OpenLoopInjector(
        eng,
        handle,
        PoissonArrivals(1_500.0),
        pool,
        timeout_ns=0.04 * SEC,
        max_queue_depth=64,
    )
    done = traffic.run(9_000)  # ~6 s of arrivals; the roll takes ~3.5 s
    eng.run(until=0.3 * SEC)
    before = (traffic.stats.admitted, traffic.stats.completed)
    handle.upgrade(echo_spec(service=new_echo(), replicas=3))
    during = (traffic.stats.admitted, traffic.stats.completed)
    # Arrivals kept flowing AND completing during the roll: no
    # total-outage window while replicas were being reconfigured.
    assert during[0] > before[0]
    assert during[1] > before[1]
    eng.run_until(done)
    stats = traffic.stats
    assert all(d.service.name == "echo-service" for d in handle.deployments)
    assert handle.status().ready_replicas == 3
    assert stats.completed > 0.9 * stats.offered
