"""Tests for the cluster layer: scheduler, deployments, load balancer."""

import pytest

from repro.cluster import (
    ClusterScheduler,
    Deployment,
    InsufficientClusterCapacity,
    LoadBalancer,
    NoHealthyDeployment,
    RequestAdapter,
    RingSlot,
)
from repro.core import CatapultFabric
from repro.fabric import Datacenter, TorusTopology
from repro.hardware import Bitstream, ResourceBudget
from repro.services.mapping_manager import RoleSpec, ServiceDefinition
from repro.shell import PacketKind, Role
from repro.shell.role import PassthroughRole
from repro.sim import Engine
from repro.workloads import OpenLoopInjector, PoissonArrivals


class ClusterEchoRole(Role):
    """Head role of the test service: scores a request after a delay."""

    name = "echo"

    def handle(self, packet):
        yield self.shell.engine.timeout(2_000.0)
        if packet.kind is PacketKind.REQUEST:
            yield self.send(packet.response_to(size_bytes=64, payload="scored"))


def echo_service(name="echo-service") -> ServiceDefinition:
    def bitstream(role):
        return Bitstream(
            role_name=role, role_budget=ResourceBudget(alms=1000), clock_mhz=175.0
        )

    return ServiceDefinition(
        name=name,
        roles=(
            RoleSpec(
                name="echo",
                bitstream=bitstream("echo"),
                factory=lambda assignment, name: ClusterEchoRole(),
            ),
        ),
        spare=RoleSpec(
            name="spare",
            bitstream=bitstream("spare"),
            factory=lambda assignment, name: PassthroughRole(),
        ),
    )


def small_datacenter(seed=3, pods=2):
    eng = Engine(seed=seed)
    return eng, Datacenter(eng, num_pods=pods, topology=TorusTopology(width=2, height=3))


@pytest.fixture
def request_pool():
    return [object() for _ in range(8)]


# --- scheduler placement -----------------------------------------------------------


def test_spread_policy_alternates_pods():
    _eng, dc = small_datacenter()
    scheduler = ClusterScheduler(dc, policy="spread")
    scheduler.deploy(echo_service(), rings=4)
    pods = [decision.slot.pod_id for decision in scheduler.decisions]
    assert pods == [0, 1, 0, 1]


def test_pack_policy_fills_first_pod():
    _eng, dc = small_datacenter()
    scheduler = ClusterScheduler(dc, policy="pack")
    scheduler.deploy(echo_service(), rings=3)
    slots = [(d.slot.pod_id, d.slot.ring_x) for d in scheduler.decisions]
    assert slots == [(0, 0), (0, 1), (1, 0)]


def test_spread_cursor_persists_across_deploy_calls():
    _eng, dc = small_datacenter()
    scheduler = ClusterScheduler(dc, policy="spread")
    scheduler.deploy(echo_service("a"), rings=1)
    scheduler.deploy(echo_service("b"), rings=1)
    # Incremental scale-up must keep rotating pods, not restart at pod 0.
    assert [d.slot.pod_id for d in scheduler.decisions] == [0, 1]


def test_unknown_policy_rejected():
    _eng, dc = small_datacenter()
    with pytest.raises(ValueError):
        ClusterScheduler(dc, policy="random")


def test_capacity_exhaustion_raises():
    _eng, dc = small_datacenter()  # 2 pods x 2 rings
    scheduler = ClusterScheduler(dc)
    scheduler.deploy(echo_service(), rings=4)
    with pytest.raises(InsufficientClusterCapacity):
        scheduler.deploy(echo_service("second"), rings=1)


def test_capacity_report_and_release():
    _eng, dc = small_datacenter()
    scheduler = ClusterScheduler(dc)
    deployments = scheduler.deploy(echo_service(), rings=2)
    report = scheduler.capacity_report()
    assert (report.total_rings, report.occupied_rings, report.free_rings) == (4, 2, 2)
    # 3-node ring, 1 active role -> 2 spares per ring.
    assert report.total_spare_nodes == 4
    assert report.utilization == pytest.approx(0.5)

    freed = scheduler.release(deployments[0])
    assert freed == RingSlot(0, 0)
    assert scheduler.capacity_report().occupied_rings == 1
    assert RingSlot(0, 0) in scheduler.free_slots()
    # The stale assignment must leave the mapping manager, so later
    # failure reports no longer act on the released ring.
    assert deployments[0].assignment not in (
        scheduler.mapping_manager(0).assignments
    )
    # spread placed deployments[1] on pod 1; its assignment survives.
    assert deployments[1].assignment in scheduler.mapping_manager(1).assignments
    with pytest.raises(KeyError):
        scheduler.release(deployments[0])


# --- cordon accounting (repair-loop regressions) -------------------------------------


def test_cordon_rejects_occupied_and_unknown_slots():
    """Regression: cordoning an occupied ring would leave it in both
    ``_occupied`` and the cordon set, double-subtracting from
    ``free_rings``; an unknown slot is a caller bug either way."""
    _eng, dc = small_datacenter()
    scheduler = ClusterScheduler(dc)
    (deployment,) = scheduler.deploy(echo_service(), rings=1)
    occupied_slot = scheduler.slot_of(deployment)
    with pytest.raises(ValueError):
        scheduler.cordon(occupied_slot)
    with pytest.raises(ValueError):
        scheduler.cordon(RingSlot(99, 0))
    # The rejected calls left the books untouched.
    report = scheduler.capacity_report()
    assert report.cordoned_rings == 0
    assert report.free_rings == report.total_rings - 1


def test_uncordon_rejects_unknown_slot():
    """Regression: ``uncordon`` silently ``discard``-ed slots that were
    never cordoned, letting typos pass unnoticed mid-experiment."""
    _eng, dc = small_datacenter()
    scheduler = ClusterScheduler(dc)
    with pytest.raises(KeyError):
        scheduler.uncordon(RingSlot(0, 1))
    scheduler.cordon(RingSlot(0, 1), reason="flaky card")
    assert scheduler.cordon_reason(RingSlot(0, 1)) == "flaky card"
    scheduler.uncordon(RingSlot(0, 1))
    with pytest.raises(KeyError):
        scheduler.uncordon(RingSlot(0, 1))  # second uncordon is a bug too


def test_capacity_report_invariant_under_cordon_churn():
    """free + occupied + cordoned == total, and free never negative,
    through deploy / cordon / release / uncordon churn."""
    _eng, dc = small_datacenter()
    scheduler = ClusterScheduler(dc)

    def check():
        report = scheduler.capacity_report()
        assert report.free_rings >= 0
        assert (
            report.free_rings + report.occupied_rings + report.cordoned_rings
            == report.total_rings
        )
        return report

    deployments = scheduler.deploy(echo_service(), rings=2)
    check()
    scheduler.cordon(RingSlot(1, 1))
    check()
    freed = scheduler.release(deployments[0])
    check()
    scheduler.cordon(freed)
    report = check()
    assert report.cordoned_rings == 2
    scheduler.uncordon(freed)
    scheduler.uncordon(RingSlot(1, 1))
    report = check()
    assert report.cordoned_rings == 0


def test_ring_slot_enumeration_is_lazy():
    _eng, dc = small_datacenter()
    assert len(dc.ring_slots()) == dc.total_rings == 4
    assert dc.rings_per_pod == 2
    assert dc.built_pods == []  # enumeration must not build pods


# --- deployment dispatch ------------------------------------------------------------


def test_submit_roundtrip_and_accounting(request_pool):
    eng, dc = small_datacenter()
    scheduler = ClusterScheduler(dc)
    (deployment,) = scheduler.deploy(echo_service(), rings=1)
    results = []

    def driver():
        response = yield from deployment.submit(request_pool[0])
        results.append(response)

    eng.process(driver())
    eng.run()
    assert len(results) == 1
    assert results[0].payload == "scored"
    assert deployment.completed == 1
    assert deployment.outstanding == 0
    assert len(deployment.latencies_ns) == 1


def test_timed_out_lease_is_quarantined_until_slot_drains():
    eng, dc = small_datacenter()
    scheduler = ClusterScheduler(dc)
    (deployment,) = scheduler.deploy(echo_service(), rings=1, slots_per_server=1)
    server = deployment.injection_servers()[0]
    results = []

    def driver():
        # 1 ns timeout: guaranteed RequestTimeout; the late response
        # must NOT be swallowed as the second request's response.
        first = yield from deployment.submit(object(), server=server, timeout_ns=1.0)
        second = yield from deployment.submit(object(), server=server)
        results.append((first, second))

    eng.process(driver())
    eng.run()
    first, second = results[0]
    assert first is None
    assert deployment.timeouts == 1
    assert second is not None and second.payload == "scored"
    assert deployment.completed == 1
    assert deployment.outstanding == 0


def test_submit_before_deploy_raises():
    eng, dc = small_datacenter()
    deployment = Deployment(eng, dc.pod(0), echo_service())
    with pytest.raises(RuntimeError):
        next(deployment.submit(object()))


def test_health_weight_tracks_exclusions():
    _eng, dc = small_datacenter()
    scheduler = ClusterScheduler(dc)
    (deployment,) = scheduler.deploy(echo_service(), rings=1)
    assert deployment.health_weight() == pytest.approx(1.0)
    spare_node = deployment.assignment.spare_nodes[0]
    deployment.assignment.exclude(spare_node)
    assert deployment.health_weight() == pytest.approx(2 / 3)


def test_default_adapter_passthrough():
    adapter = RequestAdapter()
    sentinel = object()
    assert adapter.payload_for(sentinel) is sentinel
    assert adapter.size_of(sentinel) == 64
    assert list(adapter.prep(None)) == []


# --- load balancer policies ----------------------------------------------------------


class StubDeployment:
    def __init__(self, name, outstanding=0, weight=1.0):
        self.name = name
        self.outstanding = outstanding
        self._weight = weight

    def health_weight(self):
        return self._weight


def test_round_robin_cycles_and_skips_unhealthy():
    eng = Engine()
    a, b, c = (
        StubDeployment("a"),
        StubDeployment("b", weight=0.0),
        StubDeployment("c"),
    )
    balancer = LoadBalancer(eng, [a, b, c], policy="round_robin")
    picks = [balancer.pick().name for _ in range(4)]
    assert picks == ["a", "c", "a", "c"]


def test_least_outstanding_picks_minimum():
    eng = Engine()
    a = StubDeployment("a", outstanding=5)
    b = StubDeployment("b", outstanding=1)
    c = StubDeployment("c", outstanding=3)
    balancer = LoadBalancer(eng, [a, b, c], policy="least_outstanding")
    assert balancer.pick().name == "b"
    assert balancer.outstanding == 9


def test_weighted_health_prefers_healthy():
    eng = Engine(seed=9)
    healthy = StubDeployment("healthy", weight=1.0)
    degraded = StubDeployment("degraded", weight=0.05)
    balancer = LoadBalancer(eng, [healthy, degraded], policy="weighted_health")
    picks = [balancer.pick().name for _ in range(200)]
    assert picks.count("healthy") > picks.count("degraded") * 5


def test_no_healthy_deployment_raises():
    eng = Engine()
    balancer = LoadBalancer(eng, [StubDeployment("a", weight=0.0)])
    with pytest.raises(NoHealthyDeployment):
        balancer.pick()


def test_balancer_validates_inputs():
    eng = Engine()
    with pytest.raises(ValueError):
        LoadBalancer(eng, [])
    with pytest.raises(ValueError):
        LoadBalancer(eng, [StubDeployment("a")], policy="fastest")


def test_balancer_spreads_load_end_to_end(request_pool):
    eng, dc = small_datacenter(seed=5)
    scheduler = ClusterScheduler(dc)
    deployments = scheduler.deploy(echo_service(), rings=4)
    balancer = LoadBalancer(eng, deployments, policy="least_outstanding")
    injector = OpenLoopInjector(
        eng, balancer, PoissonArrivals(100_000.0), request_pool
    )
    stats = eng.run_until(injector.run(80))
    assert stats.completed == 80
    assert balancer.completed == 80
    # Every ring took a share of the load.
    assert all(d.completed > 0 for d in deployments)
    assert sum(d.completed for d in deployments) == 80


# --- determinism (same seed => byte-identical results) -------------------------------


def full_cluster_run(seed):
    eng, dc = small_datacenter(seed=seed)
    scheduler = ClusterScheduler(dc, policy="spread")
    deployments = scheduler.deploy(echo_service(), rings=4)
    balancer = LoadBalancer(eng, deployments, policy="least_outstanding")
    pool = [object() for _ in range(8)]
    injector = OpenLoopInjector(
        eng, balancer, PoissonArrivals(150_000.0), pool, max_queue_depth=32
    )
    stats = eng.run_until(injector.run(120))
    placements = [(d.service, d.slot.pod_id, d.slot.ring_x) for d in scheduler.decisions]
    return placements, stats


def test_cluster_run_is_deterministic():
    placements_a, stats_a = full_cluster_run(seed=1234)
    placements_b, stats_b = full_cluster_run(seed=1234)
    assert placements_a == placements_b
    # Byte-identical latency samples, not merely statistically close.
    assert stats_a.latencies_ns == stats_b.latencies_ns
    assert (stats_a.admitted, stats_a.rejected, stats_a.completed) == (
        stats_b.admitted,
        stats_b.rejected,
        stats_b.completed,
    )


def test_different_seed_changes_arrivals():
    _, stats_a = full_cluster_run(seed=1)
    _, stats_b = full_cluster_run(seed=2)
    assert stats_a.latencies_ns != stats_b.latencies_ns


def repair_loop_run(seed):
    """A failure + timed-repair scenario, summarised for comparison."""
    from repro.cluster import (
        ClusterFailureInjector,
        ClusterManager,
        RepairPolicy,
        ServiceSpec,
    )
    from repro.cluster import echo_service as shared_echo_service
    from repro.sim.units import SEC

    eng, dc = small_datacenter(seed=seed)
    manager = ClusterManager(
        dc,
        repair_policy=RepairPolicy(
            distribution="lognormal", mean_ns=1.5 * SEC, sigma=0.6
        ),
    )
    handle = manager.apply(
        ServiceSpec(
            service=shared_echo_service(),
            replicas=2,
            health_period_ns=0.2 * SEC,
        )
    )
    injector = ClusterFailureInjector(dc)
    injector.kill_ring(handle.deployments[0])
    eng.run(until=10 * SEC)
    tickets = [
        (t.slot, t.opened_ns, t.due_ns, t.closed_ns, t.outcome)
        for t in manager.repairs.tickets
    ]
    placements = [
        (d.service, d.slot.pod_id, d.slot.ring_x)
        for d in manager.scheduler.decisions
    ]
    return tickets, placements


def test_repair_loop_is_deterministic():
    """Same seed => identical ticket open/close times AND identical
    post-repair placements; the repair timers draw from the engine's
    named RNG streams like everything else."""
    tickets_a, placements_a = repair_loop_run(seed=77)
    tickets_b, placements_b = repair_loop_run(seed=77)
    assert tickets_a == tickets_b
    assert placements_a == placements_b
    assert tickets_a  # the scenario actually opened (and closed) tickets
    assert all(outcome == "repaired" for *_rest, outcome in tickets_a)


def test_repair_times_vary_with_seed():
    tickets_a, _ = repair_loop_run(seed=5)
    tickets_b, _ = repair_loop_run(seed=6)
    assert [t[2] - t[1] for t in tickets_a] != [t[2] - t[1] for t in tickets_b]


# --- ranking on the cluster layer ----------------------------------------------------


def test_ranking_cluster_integration():
    fabric = CatapultFabric(
        pods=2, topology=TorusTopology(width=2, height=8), seed=17
    )
    cluster = fabric.deploy_ranking_cluster(
        rings=2, placement_policy="spread", model_scale=0.1
    )
    assert [d.slot.pod_id for d in cluster.scheduler.decisions] == [0, 1]

    from repro.ranking.pipeline import RankingPipeline

    # RankingPipeline is now a thin adapter over the same Deployment.
    assert issubclass(RankingPipeline, Deployment)

    from repro.workloads.traces import TraceGenerator

    generator = TraceGenerator(seed=23)
    pool = [generator.request() for _ in range(12)]
    for request in pool:
        cluster.scoring_engine.score(
            request.document, cluster.library[request.document.model_id]
        )
    injector = OpenLoopInjector(
        fabric.engine, cluster.balancer, PoissonArrivals(30_000.0), pool
    )
    stats = fabric.engine.run_until(injector.run(40))
    assert stats.completed == 40
    assert all(d.completed > 0 for d in cluster.deployments)
