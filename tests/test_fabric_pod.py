"""Tests for servers, Ethernet, pods and the datacenter deployment."""

import pytest

from repro.fabric import (
    Datacenter,
    EthernetNetwork,
    Pod,
    RpcTimeout,
    Server,
    ServerState,
    TorusTopology,
)
from repro.fabric.cables import WiringPlan
from repro.host import FpgaDriver, SlotClient
from repro.hardware import Bitstream, ResourceBudget
from repro.hardware.fpga import FpgaState
from repro.shell import PacketKind, Port, Role
from repro.sim import Engine, SEC, US


def bitstream(name="role"):
    return Bitstream(
        role_name=name, role_budget=ResourceBudget(alms=1000), clock_mhz=175.0
    )


class EchoRole(Role):
    name = "echo"

    def handle(self, packet):
        yield self.shell.engine.timeout(1_000.0)
        yield self.send(packet.response_to(size_bytes=16, payload="ok"))


# --- Ethernet -----------------------------------------------------------------


def test_rpc_roundtrip():
    eng = Engine()
    net = EthernetNetwork(eng)
    net.register("m1", lambda msg: f"echo:{msg}")

    def caller(eng, net):
        response = yield net.rpc("m1", "hello")
        return response

    proc = eng.process(caller(eng, net))
    eng.run()
    assert proc.value == "echo:hello"
    assert eng.now == pytest.approx(2 * net.one_way_latency_ns)


def test_rpc_timeout_on_unregistered():
    eng = Engine()
    net = EthernetNetwork(eng)

    def caller(eng, net):
        try:
            yield net.rpc("ghost", "ping", timeout_ns=1 * SEC)
            return "answered"
        except RpcTimeout:
            return "timeout"

    proc = eng.process(caller(eng, net))
    eng.run()
    assert proc.value == "timeout"
    assert net.rpcs_timed_out == 1


def test_rpc_timeout_on_raising_handler():
    eng = Engine()
    net = EthernetNetwork(eng)

    def bad_handler(msg):
        raise RuntimeError("crashed")

    net.register("m1", bad_handler)

    def caller(eng, net):
        try:
            yield net.rpc("m1", "ping")
            return "answered"
        except RpcTimeout:
            return "timeout"

    proc = eng.process(caller(eng, net))
    eng.run()
    assert proc.value == "timeout"


# --- Server --------------------------------------------------------------------


def test_server_reboot_ladder():
    eng = Engine()
    server = Server(eng, "m0", (0, 0))
    done = server.soft_reboot()
    assert server.state is ServerState.SOFT_REBOOTING
    assert not server.is_responsive
    eng.run_until(done)
    assert server.state is ServerState.UP
    assert eng.now == pytest.approx(Server.SOFT_REBOOT_NS)


def test_hard_reboot_clears_fpga_config():
    eng = Engine()
    server = Server(eng, "m0", (0, 0))
    done = server.fpga.reconfigure(bitstream())
    eng.run_until(done)
    assert server.fpga.state is FpgaState.CONFIGURED
    reboot = server.hard_reboot()
    eng.run_until(reboot)
    assert server.fpga.state is FpgaState.UNCONFIGURED


def test_dead_server_cannot_reboot():
    eng = Engine()
    server = Server(eng, "m0", (0, 0))
    server.mark_dead()
    with pytest.raises(RuntimeError):
        server.soft_reboot()
    server.replace()
    assert server.is_responsive


def test_unmasked_nmi_crashes_server():
    eng = Engine()
    server = Server(eng, "m0", (0, 0))
    done = server.fpga.reconfigure(bitstream())  # no driver protocol!
    eng.run_until(done)
    assert server.state is ServerState.CRASHED
    assert server.crash_count == 1


def test_driver_masks_nmi_during_reconfiguration():
    eng = Engine()
    server = Server(eng, "m0", (0, 0))
    driver = FpgaDriver(server)
    done = driver.reconfigure(bitstream())
    eng.run_until(done)
    assert server.state is ServerState.UP
    assert server.crash_count == 0
    assert not server.nmi_masked  # unmasked afterwards
    assert driver.reconfigurations == 1


def test_health_rpc_handler():
    eng = Engine()
    server = Server(eng, "m0", (0, 0))
    assert server.health_rpc_handler("ping") == "pong"
    health = server.health_rpc_handler("health")
    assert health["machine_id"] == "m0"
    server.crash()
    assert server.health_rpc_handler("ping") is None


def test_run_on_core_contends():
    eng = Engine()
    server = Server(eng, "m0", (0, 0))
    finish_times = []

    def job(eng, server):
        yield from server.run_on_core(1000.0)
        finish_times.append(eng.now)

    for _ in range(server.CORE_COUNT + 1):
        eng.process(job(eng, server))
    eng.run()
    # 12 jobs run at once; the 13th waits for a free core.
    assert finish_times.count(1000.0) == server.CORE_COUNT
    assert finish_times[-1] == pytest.approx(2000.0)


# --- Pod ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_pod_engine():
    """A 3x4 pod (cheap) used by several read-only tests."""
    eng = Engine(seed=11)
    pod = Pod(eng, topology=TorusTopology(width=3, height=4))
    return eng, pod


def test_pod_builds_all_servers_and_links(small_pod_engine):
    _eng, pod = small_pod_engine
    assert len(pod.servers) == 12
    assert len(pod.links) == 24
    assert len(pod.assemblies) == 3 + 4  # columns + rows


def test_pod_routing_tables_complete(small_pod_engine):
    _eng, pod = small_pod_engine
    for server in pod.servers.values():
        assert len(server.shell.router.routing_table) == 11


def test_pod_ring(small_pod_engine):
    _eng, pod = small_pod_engine
    ring = pod.ring(1)
    assert [s.node_id for s in ring] == [(1, 0), (1, 1), (1, 2), (1, 3)]


def test_pod_neighbor_ids_match_topology(small_pod_engine):
    _eng, pod = small_pod_engine
    server = pod.server_at((0, 0))
    east_neighbor = pod.topology.neighbor((0, 0), Port.EAST)
    assert server.shell.neighbor_id(Port.EAST) == pod.machine_id(east_neighbor)


def test_pod_end_to_end_request_response():
    eng = Engine(seed=7)
    pod = Pod(eng, topology=TorusTopology(width=3, height=4))
    pod.release_all_rx_halts()
    dst_server = pod.server_at((2, 3))
    dst_server.shell.attach_role(EchoRole())
    client = SlotClient(pod.server_at((0, 0)))
    lease = client.lease()
    results = []

    def thread(eng):
        response = yield from lease.request(dst=(2, 3), size_bytes=4096)
        results.append(response)

    eng.process(thread(eng))
    eng.run()
    assert len(results) == 1
    assert results[0].payload == "ok"
    assert results[0].kind is PacketKind.RESPONSE
    assert client.latencies_ns and client.latencies_ns[0] < 100 * US


def test_pod_rx_halt_blocks_until_release():
    eng = Engine(seed=7)
    pod = Pod(eng, topology=TorusTopology(width=3, height=4))
    # NOT releasing RX halts: fabric traffic must be discarded.
    dst_server = pod.server_at((1, 0))
    role = EchoRole()
    dst_server.shell.attach_role(role)
    client = SlotClient(pod.server_at((0, 0)))
    lease = client.lease()
    outcome = []

    def thread(eng):
        try:
            yield from lease.request(dst=(1, 0), size_bytes=512, timeout_ns=5_000_000.0)
            outcome.append("response")
        except Exception:
            outcome.append("timeout")

    eng.process(thread(eng))
    eng.run()
    assert outcome == ["timeout"]
    assert role.packets_handled == 0


def test_miswired_pod_detected_by_neighbor_ids():
    eng = Engine(seed=7)
    topology = TorusTopology(width=3, height=4)
    wiring = WiringPlan(topology)
    wiring.swap(0, 2)  # cross-connect two east-west cables
    pod = Pod(eng, topology=topology, wiring=wiring)
    mismatches = []
    for node, server in pod.servers.items():
        for port in server.shell.endpoints:
            seen = server.shell.neighbor_id(port)
            expected = pod.machine_id(topology.neighbor(node, port))
            if seen != expected:
                mismatches.append((node, port.value, expected, seen))
    assert mismatches  # the Health Monitor would flag these


def test_cable_assembly_failure_breaks_column():
    eng = Engine(seed=7)
    pod = Pod(eng, topology=TorusTopology(width=3, height=4))
    assembly = next(a for name, a in pod.assemblies.items() if "col0" in name)
    assembly.fail()
    assert all(link.broken for link in assembly.links)
    server = pod.server_at((0, 0))
    assert server.shell.neighbor_id(Port.SOUTH) is None
    assembly.repair()
    assert server.shell.neighbor_id(Port.SOUTH) is not None


def test_link_between_adjacent_nodes(small_pod_engine):
    _eng, pod = small_pod_engine
    link = pod.link_between((0, 0), (1, 0))
    assert link is not None
    assert pod.link_between((0, 0), (0, 1)) is not None


# --- Datacenter ----------------------------------------------------------------------


def test_datacenter_dimensions():
    eng = Engine()
    dc = Datacenter(eng)
    assert dc.total_servers == 1_632
    assert dc.total_links == 3_264
    assert dc.racks == 17
    assert dc.num_pods == 34


def test_datacenter_lazy_pod_build():
    eng = Engine()
    dc = Datacenter(eng, num_pods=4, topology=TorusTopology(width=2, height=2))
    assert dc.built_pods == []
    pod = dc.pod(2)
    assert pod.pod_id == 2
    assert dc.pod(2) is pod  # cached
    assert len(dc.built_pods) == 1
    with pytest.raises(ValueError):
        dc.pod(9)


def test_manufacturing_test_matches_paper_scale():
    eng = Engine(seed=2014)
    dc = Datacenter(eng)
    report = dc.manufacturing_test()
    # Expect ~7 failed cards and ~1 failed link; allow Monte Carlo spread.
    assert 1 <= report.failed_cards <= 16
    assert 0 <= report.failed_links <= 5
    assert report.card_failure_rate == pytest.approx(0.004, abs=0.006)


def test_manufacturing_test_deterministic():
    a = Datacenter(Engine(seed=1)).manufacturing_test()
    b = Datacenter(Engine(seed=1)).manufacturing_test()
    assert (a.failed_cards, a.failed_links) == (b.failed_cards, b.failed_links)
