"""Integration tests: two full shells wired back-to-back over SL3."""


from repro.hardware import Bitstream, Fpga, ResourceBudget
from repro.shell import (
    Packet,
    PacketKind,
    PassthroughRole,
    Port,
    Role,
    Shell,
    ShellConfig,
)
from repro.shell.sl3 import Sl3Link
from repro.sim import Engine, SEC, US


def bitstream(name="role"):
    return Bitstream(
        role_name=name, role_budget=ResourceBudget(alms=1000), clock_mhz=175.0
    )


class EchoRole(Role):
    """Returns a response (half the request size) to the injector."""

    name = "echo"

    def handle(self, packet):
        yield self.shell.engine.timeout(1_000.0)  # 1 us of "work"
        response = packet.response_to(size_bytes=16, payload=("echo", packet.trace_id))
        yield self.send(response)


def build_pair(eng, config=None):
    """Two shells A(0,0) <-> B(1,0) wired east/west, configured, released."""
    config = config or ShellConfig()
    fpga_a = Fpga(eng, "fpga-a", reconfig_ns=0.1 * SEC)
    fpga_b = Fpga(eng, "fpga-b", reconfig_ns=0.1 * SEC)
    shell_a = Shell(eng, fpga_a, (0, 0), "machine-a", config=config)
    shell_b = Shell(eng, fpga_b, (1, 0), "machine-b", config=config)
    east = shell_a.create_endpoint(Port.EAST)
    west = shell_b.create_endpoint(Port.WEST)
    Sl3Link(eng, east, west, config=config.sl3, name="a-b")
    shell_a.router.set_route((1, 0), Port.EAST)
    shell_b.router.set_route((0, 0), Port.WEST)
    # Bring-up: configure both, then release RX halt (Mapping Manager).
    done_a = fpga_a.reconfigure(bitstream("src"))
    done_b = fpga_b.reconfigure(bitstream("echo"))
    eng.run_until(done_a)
    eng.run_until(done_b)
    shell_a.release_rx_halt()
    shell_b.release_rx_halt()
    return shell_a, shell_b


def test_host_to_remote_role_roundtrip():
    eng = Engine()
    shell_a, shell_b = build_pair(eng)
    shell_b.attach_role(EchoRole())
    results = []

    def host(eng, shell_a):
        request = Packet(
            kind=PacketKind.REQUEST, src=(0, 0), dst=(1, 0), size_bytes=4096
        )
        yield shell_a.buffers.fill_input(5, request)
        response = yield shell_a.buffers.consume_output(5)
        results.append((eng.now, response.payload))

    start = eng.now
    eng.process(host(eng, shell_a))
    eng.run()
    assert len(results) == 1
    _when, payload = results[0]
    assert payload[0] == "echo"
    # Round trip: two DMAs, two link hops, 1 us of role work — O(10 us).
    assert results[0][0] - start < 50 * US


def test_roles_exchange_traffic_both_ways():
    eng = Engine()
    shell_a, shell_b = build_pair(eng)
    shell_a.attach_role(PassthroughRole(next_hop=(1, 0)))
    shell_b.attach_role(EchoRole())
    received = []

    def injector(eng, shell_a):
        # Request addressed to A itself: role forwards it to B.
        request = Packet(
            kind=PacketKind.REQUEST, src=(0, 0), dst=(0, 0), size_bytes=512
        )
        yield shell_a.buffers.fill_input(0, request)
        response = yield shell_a.buffers.consume_output(0)
        received.append(response)

    eng.process(injector(eng, shell_a))
    eng.run()
    assert len(received) == 1
    assert received[0].kind is PacketKind.RESPONSE


def test_safe_reconfigure_does_not_corrupt_neighbor():
    eng = Engine()
    shell_a, shell_b = build_pair(eng)
    role_b = EchoRole()
    shell_b.attach_role(role_b)

    done = shell_a.safe_reconfigure(bitstream("new-role"))
    eng.run_until(done)
    eng.run(until=eng.now + 1 * SEC)
    assert not role_b.corrupted
    assert shell_a.fpga.configured_role == "new-role"
    # A comes back up RX-halted until the Mapping Manager releases it.
    assert all(ep.rx_halt for ep in shell_a.endpoints.values())


def test_unsafe_reconfigure_corrupts_unprotected_neighbor():
    eng = Engine(seed=2)
    shell_a, shell_b = build_pair(eng)
    role_b = EchoRole()
    shell_b.attach_role(role_b)

    done = shell_a.unsafe_reconfigure(bitstream("new-role"))
    eng.run_until(done)
    eng.run(until=eng.now + 1 * SEC)
    assert role_b.corrupted  # garbage reached the role


def test_rx_halt_shields_neighbor_from_unsafe_reconfig():
    eng = Engine(seed=2)
    shell_a, shell_b = build_pair(eng)
    role_b = EchoRole()
    shell_b.attach_role(role_b)
    # Mapping Manager has NOT released B yet.
    for endpoint in shell_b.endpoints.values():
        endpoint.rx_halt = True

    done = shell_a.unsafe_reconfigure(bitstream("new-role"))
    eng.run_until(done)
    eng.run(until=eng.now + 1 * SEC)
    assert not role_b.corrupted


def test_reconfiguration_raises_nmi_through_pcie():
    eng = Engine()
    shell_a, _shell_b = build_pair(eng)
    nmis = []
    shell_a.pcie.on_nmi = lambda: nmis.append(eng.now)
    done = shell_a.safe_reconfigure(bitstream("next"))
    eng.run_until(done)
    assert len(nmis) == 1  # driver must mask this in production


def test_neighbor_id_reports_peer_machine():
    eng = Engine()
    shell_a, shell_b = build_pair(eng)
    assert shell_a.neighbor_id(Port.EAST) == "machine-b"
    assert shell_b.neighbor_id(Port.WEST) == "machine-a"
    assert shell_a.neighbor_id(Port.NORTH) is None  # not wired


def test_neighbor_id_none_when_cable_broken():
    eng = Engine()
    shell_a, _shell_b = build_pair(eng)
    shell_a.endpoints[Port.EAST].link.break_cable()
    assert shell_a.neighbor_id(Port.EAST) is None


def test_health_snapshot_structure():
    eng = Engine()
    shell_a, shell_b = build_pair(eng)
    shell_b.attach_role(EchoRole())
    health = shell_b.health_snapshot()
    assert health["machine_id"] == "machine-b"
    assert health["fpga_state"] == "configured"
    assert health["pll_locked"] is True
    assert health["app_error"] is False
    assert "west" in health["links"]
    assert health["neighbors"]["west"] == "machine-a"
    assert len(health["dram"]) == 2


def test_seu_scrubber_repairs_upsets():
    eng = Engine()
    shell_a, _shell_b = build_pair(eng)
    shell_a.fpga.inject_seu()
    shell_a.fpga.inject_seu()
    eng.run(until=eng.now + 1 * SEC)  # scrubber period is 100 ms
    assert shell_a.fpga.seu.upsets_scrubbed == 2


def test_send_from_role_with_no_route_is_dropped_not_fatal():
    eng = Engine()
    shell_a, _shell_b = build_pair(eng)
    role = PassthroughRole(next_hop=(9, 9))  # unroutable
    shell_a.attach_role(role)

    def injector(eng, shell_a):
        request = Packet(
            kind=PacketKind.REQUEST, src=(0, 0), dst=(0, 0), size_bytes=64
        )
        yield shell_a.buffers.fill_input(0, request)

    eng.process(injector(eng, shell_a))
    eng.run()
    assert shell_a.router.dropped_no_route == 1
