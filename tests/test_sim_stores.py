"""Unit and property tests for stores and resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, PriorityStore, Resource, Store, StoreFull


def run_to_completion(eng):
    eng.run()


def test_store_fifo_order():
    eng = Engine()
    store = Store(eng)
    got = []

    def producer(eng, store):
        for i in range(5):
            yield store.put(i)
            yield eng.timeout(1.0)

    def consumer(eng, store):
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    eng.process(producer(eng, store))
    eng.process(consumer(eng, store))
    eng.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    eng = Engine()
    store = Store(eng)
    times = []

    def consumer(eng, store):
        item = yield store.get()
        times.append((eng.now, item))

    def producer(eng, store):
        yield eng.timeout(42.0)
        yield store.put("late")

    eng.process(consumer(eng, store))
    eng.process(producer(eng, store))
    eng.run()
    assert times == [(42.0, "late")]


def test_bounded_store_applies_backpressure():
    eng = Engine()
    store = Store(eng, capacity=2)
    put_times = []

    def producer(eng, store):
        for i in range(4):
            yield store.put(i)
            put_times.append(eng.now)

    def consumer(eng, store):
        yield eng.timeout(10.0)
        for _ in range(4):
            yield store.get()
            yield eng.timeout(10.0)

    eng.process(producer(eng, store))
    eng.process(consumer(eng, store))
    eng.run()
    # First two puts are immediate; the rest wait for consumer drains.
    assert put_times[0] == 0.0
    assert put_times[1] == 0.0
    assert put_times[2] == 10.0
    assert put_times[3] == 20.0


def test_store_capacity_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        Store(eng, capacity=0)


def test_try_put_full_raises():
    eng = Engine()
    store = Store(eng, capacity=1)
    store.try_put("a")
    with pytest.raises(StoreFull):
        store.try_put("b")


def test_try_get_empty_returns_none():
    eng = Engine()
    store = Store(eng)
    assert store.try_get() is None
    store.try_put("x")
    assert store.try_get() == "x"


def test_multiple_getters_served_in_order():
    eng = Engine()
    store = Store(eng)
    got = []

    def consumer(eng, store, name):
        item = yield store.get()
        got.append((name, item))

    eng.process(consumer(eng, store, "first"))
    eng.process(consumer(eng, store, "second"))

    def producer(eng, store):
        yield eng.timeout(1.0)
        yield store.put("a")
        yield store.put("b")

    eng.process(producer(eng, store))
    eng.run()
    assert got == [("first", "a"), ("second", "b")]


def test_priority_store_orders_items():
    eng = Engine()
    store = PriorityStore(eng)
    got = []

    def producer(eng, store):
        for priority in [5, 1, 3]:
            yield store.put((priority, f"p{priority}"))

    def consumer(eng, store):
        yield eng.timeout(1.0)
        for _ in range(3):
            item = yield store.get()
            got.append(item[1])

    eng.process(producer(eng, store))
    eng.process(consumer(eng, store))
    eng.run()
    assert got == ["p1", "p3", "p5"]


@settings(max_examples=50, deadline=None)
@given(items=st.lists(st.integers(), min_size=1, max_size=40))
def test_store_preserves_all_items_any_capacity(items):
    """Property: everything put is got, in FIFO order, for capacity 1."""
    eng = Engine()
    store = Store(eng, capacity=1)
    got = []

    def producer(eng, store):
        for item in items:
            yield store.put(item)

    def consumer(eng, store):
        for _ in items:
            value = yield store.get()
            got.append(value)

    eng.process(producer(eng, store))
    eng.process(consumer(eng, store))
    eng.run()
    assert got == items


@settings(max_examples=50, deadline=None)
@given(
    priorities=st.lists(
        st.tuples(st.integers(0, 100), st.integers()), min_size=1, max_size=40
    )
)
def test_priority_store_delivers_sorted(priorities):
    eng = Engine()
    store = PriorityStore(eng)
    got = []
    for i, (prio, payload) in enumerate(priorities):
        store.try_put((prio, i, payload))

    def consumer(eng, store):
        for _ in priorities:
            item = yield store.get()
            got.append(item)

    eng.process(consumer(eng, store))
    eng.run()
    assert got == sorted(got)


def test_resource_grants_up_to_capacity():
    eng = Engine()
    core = Resource(eng, capacity=2, name="core")
    timeline = []

    def job(eng, core, name, hold):
        grant = core.request()
        yield grant
        timeline.append(("start", name, eng.now))
        yield eng.timeout(hold)
        core.release()
        timeline.append(("end", name, eng.now))

    for name in ["a", "b", "c"]:
        eng.process(job(eng, core, name, 10.0))
    eng.run()
    starts = {name: t for kind, name, t in timeline if kind == "start"}
    assert starts["a"] == 0.0
    assert starts["b"] == 0.0
    assert starts["c"] == 10.0  # waits for a unit


def test_resource_release_without_grant_raises():
    eng = Engine()
    core = Resource(eng, capacity=1)
    with pytest.raises(RuntimeError):
        core.release()


def test_resource_capacity_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        Resource(eng, capacity=0)


def test_resource_queue_length():
    eng = Engine()
    core = Resource(eng, capacity=1)
    core.request()
    core.request()
    core.request()
    assert core.queue_length == 2
    assert core.available == 0
