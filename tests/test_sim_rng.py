"""Tests for deterministic named RNG streams."""

from repro.sim import RngStreams
from repro.sim.units import cycles_to_ns, transfer_time_ns

import pytest


def test_same_name_same_stream_object():
    rng = RngStreams(7)
    assert rng.stream("link") is rng.stream("link")


def test_streams_reproducible_across_factories():
    a = RngStreams(7).stream("x")
    b = RngStreams(7).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_independent():
    rng = RngStreams(7)
    xs = [rng.stream("x").random() for _ in range(5)]
    ys = [rng.stream("y").random() for _ in range(5)]
    assert xs != ys


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random()
    b = RngStreams(2).stream("x").random()
    assert a != b


def test_adding_stream_does_not_perturb_existing():
    rng1 = RngStreams(3)
    s = rng1.stream("only")
    first = [s.random() for _ in range(5)]

    rng2 = RngStreams(3)
    rng2.stream("extra")  # interleaved creation must not matter
    t = rng2.stream("only")
    second = [t.random() for _ in range(5)]
    assert first == second


def test_fork_derives_independent_space():
    root = RngStreams(5)
    child = root.fork("pod0")
    assert child.root_seed != root.root_seed
    # Deterministic fork
    assert RngStreams(5).fork("pod0").root_seed == child.root_seed


def test_cycles_to_ns():
    assert cycles_to_ns(150, 150.0) == pytest.approx(1000.0)
    assert cycles_to_ns(1, 200.0) == pytest.approx(5.0)


def test_cycles_to_ns_rejects_bad_clock():
    with pytest.raises(ValueError):
        cycles_to_ns(10, 0)


def test_transfer_time():
    # 20 Gb/s moves 2.5 bytes per ns
    assert transfer_time_ns(2.5, 20.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        transfer_time_ns(10, 0)
