"""Tests for the 43 feature machines, layout, and extractor."""

import pytest

from repro.hardware.constants import MAX_DYNAMIC_FEATURES
from repro.ranking.documents import CompressedDocument, HitTuple, StreamHits
from repro.ranking.features import (
    ALL_MACHINES,
    FeatureExtractor,
    FeatureLayout,
    GLOBAL_MACHINES,
    PER_STREAM_MACHINES,
    PER_TERM_MACHINES,
    stream_pass,
)
from repro.workloads import TraceGenerator


def simple_doc():
    # Stream 0: term 0 at positions 10, 20, 21; term 1 at position 30.
    return CompressedDocument(
        doc_id=1,
        doc_length=100,
        num_query_terms=2,
        model_id=0,
        software_features=[(2, 4.5)],
        streams=[
            StreamHits(
                0,
                100,
                [
                    HitTuple(10, 0),
                    HitTuple(10, 0),
                    HitTuple(1, 0),
                    HitTuple(9, 1),
                ],
            )
        ],
    )


def test_there_are_exactly_43_machines():
    assert len(ALL_MACHINES) == 43
    assert len(PER_TERM_MACHINES) == 32
    assert len(PER_STREAM_MACHINES) == 10
    assert len(GLOBAL_MACHINES) == 1
    assert len({m.name for m in ALL_MACHINES}) == 43


def test_layout_fits_4484_slot_budget():
    layout = FeatureLayout()
    assert layout.dynamic_slots <= MAX_DYNAMIC_FEATURES
    assert layout.dynamic_slots == 32 * 128 + 10 * 8 + 1  # 4177


def test_layout_slot_uniqueness():
    layout = FeatureLayout()
    slots = set()
    for machine in PER_TERM_MACHINES:
        for stream in range(8):
            for term in range(16):
                slots.add(layout.per_term_slot(machine.name, stream, term))
    for machine in PER_STREAM_MACHINES:
        for stream in range(8):
            slots.add(layout.per_stream_slot(machine.name, stream))
    slots.add(layout.global_slot("QueryTermCount"))
    assert len(slots) == layout.dynamic_slots


def test_software_slot_above_dynamic_space():
    assert FeatureLayout.software_slot(0) == MAX_DYNAMIC_FEATURES
    with pytest.raises(ValueError):
        FeatureLayout.software_slot(64)


def test_stream_pass_aggregates():
    doc = simple_doc()
    agg = stream_pass(doc.streams[0])
    term0 = agg.terms[0]
    assert term0.count == 3
    assert term0.first_pos == 10
    assert term0.last_pos == 21
    assert term0.min_gap == 1
    assert term0.max_gap == 10
    assert agg.tuple_count == 4
    assert agg.adjacent_pairs == 1


def test_extractor_known_values():
    layout = FeatureLayout()
    extractor = FeatureExtractor(layout)
    values = extractor.extract(simple_doc())
    occurrences = layout.per_term_slot("NumberOfOccurrences", 0, 0)
    assert values[occurrences] == 3.0
    occurrences_t1 = layout.per_term_slot("NumberOfOccurrences", 0, 1)
    assert values[occurrences_t1] == 1.0
    first = layout.per_term_slot("FirstOccurrence", 0, 0)
    assert values[first] == pytest.approx(0.1)
    coverage = layout.per_stream_slot("StreamCoverage", 0)
    assert values[coverage] == pytest.approx(2 / 16)
    qterms = layout.global_slot("QueryTermCount")
    assert values[qterms] == pytest.approx(2 / 16)
    sw = FeatureLayout.software_slot(2)
    assert values[sw] == 4.5


def test_extractor_emits_only_nonzero():
    extractor = FeatureExtractor()
    values = extractor.extract(simple_doc())
    assert all(v != 0.0 for v in values.values())


def test_extractor_deterministic_on_trace():
    gen = TraceGenerator(seed=11)
    request = gen.request()
    a = FeatureExtractor().extract(request.document)
    b = FeatureExtractor().extract(request.document)
    assert a == b
    assert len(a) > 50  # realistic docs light up many features


def test_extraction_tokens_counts_tuples():
    extractor = FeatureExtractor()
    assert extractor.extraction_tokens(simple_doc()) == 4


def test_machines_tolerate_empty_streams():
    doc = CompressedDocument(
        doc_id=2,
        doc_length=10,
        num_query_terms=1,
        model_id=0,
        software_features=[],
        streams=[StreamHits(0, 10, [])],
    )
    values = FeatureExtractor().extract(doc)
    # Stream-level constants still fire (length), term features do not.
    assert values  # StreamLength is non-zero
