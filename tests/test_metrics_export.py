"""Tests for exported observability: canonical status documents, the
MetricsRegistry sampler, and byte-identical same-seed series files.

Every ``to_dict`` under test is *canonical* — JSON-serializable as-is,
string-keyed, sorted — because the export's determinism guarantee
(same seed, byte-identical file) rests on it.
"""

import json

import pytest

from repro.cluster import (
    ClusterFailureInjector,
    ClusterManager,
    MetricsRegistry,
    RepairPolicy,
    ServiceSpec,
    echo_service,
    read_series,
)
from repro.cluster.metrics import dumps_canonical
from repro.fabric import Datacenter, TorusTopology
from repro.sim import Engine
from repro.sim.units import MS
from repro.workloads import OpenLoopInjector, PoissonArrivals


def small_cluster(seed=3, pods=2):
    eng = Engine(seed=seed)
    dc = Datacenter(eng, num_pods=pods, topology=TorusTopology(width=2, height=3))
    return eng, dc, ClusterManager(dc, repair_policy=RepairPolicy(mean_ns=5e8))


def echo_spec(**overrides) -> ServiceSpec:
    defaults = dict(service=echo_service(), replicas=2, health_period_ns=5e9)
    defaults.update(overrides)
    return ServiceSpec(**defaults)


def drive(eng, sink, arrivals=80, seed_tag="m"):
    pool = [object() for _ in range(8)]
    injector = OpenLoopInjector(
        eng, sink, PoissonArrivals(100_000.0), pool, seed_tag=seed_tag
    )
    eng.run_until(injector.run(arrivals))
    return injector


# --- canonical documents -------------------------------------------------------------


def test_capacity_report_document_is_canonical():
    _eng, _dc, manager = small_cluster()
    manager.apply(echo_spec())
    document = manager.scheduler.capacity_report().to_dict()
    json.dumps(document)  # plain JSON types throughout
    assert document["total_rings"] == 4
    assert document["occupied_rings"] == 2
    assert document["serviceable_rings"] == document["total_rings"]
    # per_pod is string-keyed (JSON objects cannot carry int keys),
    # sorted, and sums to the datacenter totals.
    assert list(document["per_pod"]) == ["0", "1"]
    assert (
        sum(pod["total_rings"] for pod in document["per_pod"].values())
        == document["total_rings"]
    )


def test_service_status_document_is_canonical_and_wired():
    eng, _dc, manager = small_cluster()
    handle = manager.apply(echo_spec())
    drive(eng, manager.endpoint("echo-service"))
    status = manager.status_of(handle)
    document = status.to_dict()
    json.dumps(document)
    assert document["service"] == "echo-service"
    assert document["ready_replicas"] == 2
    assert document["converged"] is True
    # Front-end aggregates come from the balancer...
    assert document["dispatched"] == document["completed"] == 80
    assert document["latency"]["count"] == 80
    assert document["latency"]["p99"] >= document["latency"]["p50"] > 0
    # ...and the per-ring breakdowns are the balancer's own, exported
    # in sorted ring order with plain values.
    assert len(document["per_ring_latency"]) == 2
    assert list(document["per_ring_latency"]) == sorted(document["per_ring_latency"])
    assert list(document["per_ring_throughput"]) == sorted(
        document["per_ring_throughput"]
    )
    assert (
        sum(ring["completed"] for ring in document["rings"])
        == document["completed"]
    )
    for ring in document["rings"]:
        assert ring["slot"].startswith("pod")


def test_manager_status_is_sorted_by_service():
    _eng, _dc, manager = small_cluster()
    manager.apply(echo_spec(service=echo_service(name="zeta"), replicas=1))
    manager.apply(echo_spec(service=echo_service(name="alpha"), replicas=1))
    assert list(manager.status()) == ["alpha", "zeta"]


# --- the registry --------------------------------------------------------------------


def test_registry_samples_on_a_period(tmp_path):
    eng, _dc, manager = small_cluster()
    manager.apply(echo_spec())
    path = tmp_path / "series.jsonl"
    registry = MetricsRegistry(manager, path=path)
    registry.start(10 * MS)
    eng.run(until=eng.now + 55 * MS)
    registry.stop()
    assert len(registry.snapshots) == 5
    series = read_series(path)
    assert [snap["t_ns"] for snap in series] == [
        snap["t_ns"] for snap in registry.snapshots
    ]
    times = [snap["t_ns"] for snap in series]
    assert all(b - a == 10 * MS for a, b in zip(times, times[1:]))
    first = series[0]
    assert set(first) == {"t_ns", "services", "capacity"}
    assert "echo-service" in first["services"]
    # The datacenter-wide capacity block appears once per snapshot,
    # not once per service.
    assert "capacity" not in first["services"]["echo-service"]


def test_registry_validates_and_guards_double_start():
    _eng, _dc, manager = small_cluster()
    registry = MetricsRegistry(manager)
    with pytest.raises(ValueError, match="period must be positive"):
        registry.start(0)
    registry.start(10 * MS)
    with pytest.raises(RuntimeError, match="already running"):
        registry.start(10 * MS)
    registry.stop()
    registry.start(10 * MS)  # restart after stop is fine
    registry.stop()


def test_attached_workload_exports_admission_counters(tmp_path):
    eng, _dc, manager = small_cluster()
    manager.apply(echo_spec())
    registry = MetricsRegistry(manager, path=tmp_path / "series.jsonl")
    endpoint = manager.endpoint("echo-service")
    registry.start(10 * MS)
    injector = drive(eng, endpoint)
    registry.attach_workload("echo-service", injector)
    snapshot = registry.sample()
    exported = snapshot["services"]["echo-service"]["workload"]
    assert exported == injector.stats.to_dict()
    assert exported["offered"] == 80
    assert exported["completed"] == 80
    registry.stop()


def test_sample_on_demand_composes_with_the_sampler(tmp_path):
    eng, _dc, manager = small_cluster()
    manager.apply(echo_spec())
    path = tmp_path / "series.jsonl"
    registry = MetricsRegistry(manager, path=path)
    registry.start(10 * MS)
    eng.run(until=eng.now + 25 * MS)
    registry.sample()  # explicit final sample, off-period
    registry.stop()
    series = read_series(path)
    assert len(series) == 3
    assert series[-1]["t_ns"] == eng.now


# --- determinism ---------------------------------------------------------------------


def run_failure_week(path):
    eng, dc, manager = small_cluster(seed=2014)
    handle = manager.apply(echo_spec(health_period_ns=50 * MS))
    injector = ClusterFailureInjector(dc)
    registry = MetricsRegistry(manager, path=path)
    endpoint = manager.endpoint("echo-service")
    pool = [object() for _ in range(8)]
    traffic = OpenLoopInjector(
        eng, endpoint, PoissonArrivals(5_000.0), pool, max_queue_depth=64
    )
    registry.attach_workload("echo-service", traffic)
    registry.start(5 * MS)
    done = traffic.run(400)
    killed = False
    while not done.triggered:
        eng.run(until=eng.now + 5 * MS)
        if not killed and traffic.stats.completed > 100 and handle.deployments:
            injector.kill_ring(handle.deployments[0])
            killed = True
    registry.sample()
    registry.stop()
    return read_series(path)


def test_same_seed_series_is_byte_identical(tmp_path):
    first = tmp_path / "a.jsonl"
    second = tmp_path / "b.jsonl"
    run_failure_week(first)
    run_failure_week(second)
    assert first.read_bytes() == second.read_bytes()
    assert first.read_bytes()  # non-trivial series
    series = read_series(first)
    # The file is line-for-line canonical JSON.
    lines = first.read_text().splitlines()
    assert lines == [dumps_canonical(snap) for snap in series]
    # The series actually recorded the failure-and-repair arc: ready
    # replicas dip below the declared count, tickets open, and the
    # workload counters reach the exported file.
    ready = [snap["services"]["echo-service"]["ready_replicas"] for snap in series]
    assert min(ready) < 2
    assert any(snap["capacity"]["open_tickets"] > 0 for snap in series)
    final = series[-1]["services"]["echo-service"]["workload"]
    assert final["offered"] == 400
    assert final["offered"] == final["admitted"] + final["rejected"]
