"""Tests for composite multi-ring services and the total-outage fixes.

Tentpole: a replica may span several rings (``rings_per_replica``) —
gang placement is all-or-nothing and link-aware, the member rings chain
into one request path (:class:`CompositeDeployment`), and a member ring
exhausting its spares fails the whole replica, which the watchdog
re-places as a gang.

Satellites: the open-loop injector sheds (instead of crashing) when
every ring is momentarily unservable; a partial gang placement rolls
back instead of leaking capacity; the contended-lease deadline is
disarmed once the lease arrives; a round-robin policy bug raises
instead of masquerading as weighted balancing; the spread cursor wraps
past the last pod; a freed slot is redeployable by a different
composite service.
"""

import pytest

from repro.cluster import (
    ClusterFailureInjector,
    ClusterManager,
    ClusterScheduler,
    CompositeDeployment,
    LoadBalancer,
    PlacementFailed,
    RingSlot,
    ServiceSpec,
    echo_service,
)
from repro.fabric import Datacenter, TorusTopology
from repro.services import FailureInjector, FailureKind
from repro.sim import Engine
from repro.sim.units import MS, SEC
from repro.workloads import OpenLoopInjector, PoissonArrivals


def small_cluster(seed=3, pods=2, width=2, height=3):
    eng = Engine(seed=seed)
    dc = Datacenter(
        eng, num_pods=pods, topology=TorusTopology(width=width, height=height)
    )
    return eng, dc, ClusterManager(dc)


def composite_spec(rings=2, **overrides) -> ServiceSpec:
    defaults = dict(
        service=echo_service(),
        replicas=1,
        rings_per_replica=rings,
        health_period_ns=5e9,
    )
    defaults.update(overrides)
    return ServiceSpec(**defaults)


def drive(eng, handle, arrivals, rate=50_000.0, seed_tag="t", **kwargs):
    pool = [object() for _ in range(8)]
    injector = OpenLoopInjector(
        eng, handle, PoissonArrivals(rate), pool, seed_tag=seed_tag, **kwargs
    )
    return eng.run_until(injector.run(arrivals))


def wreck_ring(dc, pod_id, ring_x):
    pod = dc.pod(pod_id)
    injector = FailureInjector(pod)
    for node in pod.topology.ring(ring_x):
        injector.inject(FailureKind.FPGA_HARDWARE_FAULT, node)


# --- the inter-pod link model -------------------------------------------------------


def test_pod_distance_and_inter_pod_links():
    eng = Engine(seed=1)
    dc = Datacenter(eng, num_pods=4, topology=TorusTopology(width=2, height=3))
    assert dc.pod_distance(0, 0) == 0
    assert dc.pod_distance(0, 1) == 1
    assert dc.pod_distance(0, 2) == 2
    assert dc.pod_distance(0, 3) == 1  # wraparound: the pods form a loop
    assert dc.inter_pod_links() == [(0, 1), (1, 2), (2, 3), (3, 0)]
    with pytest.raises(ValueError):
        dc.pod_distance(0, 4)
    two = Datacenter(eng, num_pods=2, topology=TorusTopology(width=2, height=3))
    assert two.inter_pod_links() == [(0, 1)]  # single run, no wrap pair
    one = Datacenter(eng, num_pods=1, topology=TorusTopology(width=2, height=3))
    assert one.inter_pod_links() == []


def test_spec_validates_rings_per_replica():
    with pytest.raises(ValueError):
        composite_spec(rings=0)
    spec = composite_spec(rings=3)
    assert spec.rings_per_replica == 3
    assert spec.with_replicas(2).rings_per_replica == 3


# --- gang placement -----------------------------------------------------------------


def test_choose_gang_pack_prefers_a_single_pod():
    eng, dc, _ = small_cluster(pods=3)
    scheduler = ClusterScheduler(dc)
    chosen = scheduler._choose_gang(2, "pack")
    assert [slot.pod_id for slot in chosen] == [0, 0]


def test_choose_gang_pack_spans_adjacent_pods_when_forced():
    eng, dc, _ = small_cluster(pods=4)
    scheduler = ClusterScheduler(dc)
    # Occupy pods 0 and 1 entirely; a 3-ring gang must span pods 2+3.
    scheduler.deploy(echo_service("filler"), rings=4, policy="pack")
    chosen = scheduler._choose_gang(3, "pack")
    assert sorted(slot.pod_id for slot in chosen) == [2, 2, 3]
    # Consecutive members sit at most one inter-pod hop apart.
    assert all(
        dc.pod_distance(a.pod_id, b.pod_id) <= 1
        for a, b in zip(chosen, chosen[1:], strict=False)
    )


def test_choose_gang_pack_wraps_the_pod_loop():
    eng, dc, _ = small_cluster(pods=4)
    scheduler = ClusterScheduler(dc)
    # Only pods 3 and 0 have free rings: adjacency is via the wraparound
    # link of the pod loop, not the long way across pods 1 and 2.
    for slot in dc.ring_slots():
        if slot.pod_id in (1, 2):
            scheduler.cordon(slot)
    chosen = scheduler._choose_gang(3, "pack")
    assert {slot.pod_id for slot in chosen} == {0, 3}
    assert all(
        dc.pod_distance(a.pod_id, b.pod_id) <= 1
        for a, b in zip(chosen, chosen[1:], strict=False)
    )


def test_choose_gang_spread_uses_consecutive_pods():
    eng, dc, _ = small_cluster(pods=3)
    scheduler = ClusterScheduler(dc)
    first = scheduler._choose_gang(2, "spread")
    assert [slot.pod_id for slot in first] == [0, 1]
    # The cursor advanced: the next gang starts after the last member.
    second = scheduler._choose_gang(2, "spread")
    assert [slot.pod_id for slot in second] == [2, 0]


def test_deploy_gang_is_all_or_nothing():
    eng, dc, _ = small_cluster(pods=1)
    scheduler = ClusterScheduler(dc)
    wreck_ring(dc, 0, 1)
    with pytest.raises(PlacementFailed) as info:
        scheduler.deploy_gang(echo_service(), rings=2, policy="pack")
    assert info.value.slot == RingSlot(0, 1)
    # The gang rolled back: nothing occupied, the good ring redeployable.
    assert scheduler.capacity_report().occupied_rings == 0
    assert RingSlot(0, 0) in scheduler.free_slots()
    (again,) = scheduler.deploy(echo_service(), rings=1, policy="pack")
    assert scheduler.slot_of(again) == RingSlot(0, 0)


def test_deploy_partial_failure_rolls_back_instead_of_leaking():
    """Regression: deploy() raising PlacementFailed after k successful
    placements stranded those k deployments in ``_occupied`` without
    returning them — leaked capacity on every partial failure."""
    eng = Engine(seed=7)
    dc = Datacenter(eng, num_pods=1, topology=TorusTopology(width=3, height=3))
    scheduler = ClusterScheduler(dc)
    wreck_ring(dc, 0, 1)  # hardware fails configure on the 2nd of 3 rings
    with pytest.raises(PlacementFailed) as info:
        scheduler.deploy(echo_service(), rings=3, policy="pack")
    assert info.value.slot == RingSlot(0, 1)
    report = scheduler.capacity_report()
    assert report.occupied_rings == 0
    assert RingSlot(0, 0) in scheduler.free_slots()
    assert RingSlot(0, 2) in scheduler.free_slots()


def test_spread_cursor_wraps_past_the_last_pod():
    """Satellite: with ``_next_pod_id`` beyond every pod id, the spread
    scan must wrap to pod 0 rather than scanning off the end."""
    eng, dc, _ = small_cluster(pods=2)
    scheduler = ClusterScheduler(dc)
    scheduler.deploy(echo_service("a"), rings=2)  # pods 0, 1
    assert scheduler._next_pod_id == 2  # past the last pod
    (third,) = scheduler.deploy(echo_service("b"), rings=1)
    assert scheduler.slot_of(third).pod_id == 0
    # The gang chooser handles an arbitrarily stale cursor the same way.
    scheduler._next_pod_id = 7
    chosen = scheduler._choose_gang(1, "spread")
    assert chosen[0].pod_id in (0, 1)


# --- the composite request path -----------------------------------------------------


def test_apply_composite_places_and_serves_end_to_end():
    eng, dc, manager = small_cluster()
    handle = manager.apply(composite_spec(rings=2, replicas=2))
    status = handle.status()
    assert status.ready_replicas == 2
    assert all(len(ring.member_slots) == 2 for ring in status.rings)
    assert manager.scheduler.capacity_report().occupied_rings == 4
    replica = handle.deployments[0]
    assert isinstance(replica, CompositeDeployment)
    # Spread gangs: member rings of one replica on consecutive pods.
    assert [slot.pod_id for slot in status.rings[0].member_slots] == [0, 1]

    stats = drive(eng, handle, arrivals=40)
    assert stats.completed == 40
    # Every member ring of every replica took traffic: the chain is real.
    for replica in handle.deployments:
        assert replica.completed > 0
        for member in replica.members:
            assert member.completed >= replica.completed


def test_composite_chains_responses_and_measures_end_to_end():
    eng, dc, manager = small_cluster()
    handle = manager.apply(composite_spec(rings=2))
    (replica,) = handle.deployments
    results = []

    def driver():
        response = yield from replica.submit(object())
        results.append(response)

    eng.process(driver())
    eng.run()
    # The final response is ring 1's answer to ring 0's response.
    assert results[0].payload == "scored"
    assert replica.completed == 1
    # End-to-end latency covers both stages: at least the sum of the
    # members' own measured stage latencies.
    assert replica.latencies_ns[0] >= sum(
        member.latencies_ns[0] for member in replica.members
    )


def test_chain_handoffs_pay_the_inter_pod_cable_runs():
    """Gang placement's link-awareness is observable: the same chain
    costs more end to end when its members sit on different pods."""
    eng, dc, manager = small_cluster(pods=3)
    packed_members = manager.scheduler.deploy_gang(
        echo_service("packed"), rings=2, policy="pack"
    )
    packed = CompositeDeployment(eng, packed_members, datacenter=dc)
    assert packed.hop_delays_ns == [0.0]  # same pod: no cable run

    spread = manager.apply(composite_spec(rings=2)).deployments[0]
    pods = [member.pod.pod_id for member in spread.members]
    expected = Datacenter.INTER_POD_HOP_NS * dc.pod_distance(*pods)
    assert spread.hop_delays_ns == [expected]
    assert expected > 0.0

    for chain in (packed, spread):
        eng.process(chain.submit(object()))
        eng.run()
    # The cross-pod chain is slower by exactly the charged cable run.
    assert spread.latencies_ns[0] == pytest.approx(
        packed.latencies_ns[0] + expected
    )


def test_reapply_with_new_rings_per_replica_reshapes_replicas():
    """Regression: re-applying a spec with a changed rings_per_replica
    was silently ignored — reconcile saw the replica count satisfied
    and left the old single-ring replicas serving forever."""
    eng, dc, manager = small_cluster(pods=3)
    service = echo_service()
    handle = manager.apply(
        ServiceSpec(service=service, replicas=2, health_period_ns=5e9)
    )
    assert all(
        not isinstance(replica, CompositeDeployment)
        for replica in handle.deployments
    )
    manager.apply(
        ServiceSpec(
            service=service,
            replicas=2,
            rings_per_replica=2,
            health_period_ns=5e9,
        )
    )
    assert all(
        isinstance(replica, CompositeDeployment)
        and len(replica.members) == 2
        for replica in handle.deployments
    )
    status = handle.status()
    assert status.ready_replicas == 2
    assert manager.scheduler.capacity_report().occupied_rings == 4
    kinds = [
        action.kind
        for report in manager.reconcile_reports
        for action in report.actions
    ]
    assert "reshape" in kinds
    stats = drive(eng, handle, arrivals=20, seed_tag="reshaped")
    assert stats.completed == 20


def test_in_flight_request_drains_before_gang_release():
    """A request in flight when its gang is reshaped away now *drains*:
    the roll step takes the replica out of rotation, waits for in-flight
    requests to resolve (bounded by the spec's request timeout), and
    only then releases the rings — the request completes instead of
    being diverted.  (Originally a crash regression: mid-hop release
    raised RuntimeError('submit() after release').)"""
    eng, dc, manager = small_cluster(pods=3)
    service = echo_service()
    handle = manager.apply(
        ServiceSpec(
            service=service,
            replicas=1,
            rings_per_replica=2,
            health_period_ns=5e9,
        )
    )
    (replica,) = handle.deployments
    replica.hop_delays_ns = [5 * MS]  # stretch the between-stages window
    results = []

    def driver():
        response = yield from replica.submit(object(), timeout_ns=20 * MS)
        results.append(response)

    started = eng.now
    eng.process(driver())
    eng.run(until=started + 1 * MS)  # stage 0 done, mid-hop
    manager.apply(  # reshape to single rings: releases the gang
        ServiceSpec(service=service, replicas=1, health_period_ns=5e9)
    )
    assert replica.members[0].released
    eng.run()
    # The drain let the in-flight request finish before the release.
    assert len(results) == 1 and results[0] is not None
    assert replica.timeouts == 0
    assert replica.outstanding == 0


def test_in_flight_request_diverts_when_drain_bound_expires():
    """Regression (the §3.2 divert path): a request that outlives the
    drain bound is released mid-hop and must divert as a timeout — not
    crash with RuntimeError('submit() after release')."""
    eng, dc, manager = small_cluster(pods=3)
    service = echo_service()
    handle = manager.apply(
        ServiceSpec(
            service=service,
            replicas=1,
            rings_per_replica=2,
            health_period_ns=5e9,
            request_timeout_ns=10 * MS,  # the reshape drain bound
        )
    )
    (replica,) = handle.deployments
    replica.hop_delays_ns = [30 * MS]  # longer than the drain bound
    results = []

    def driver():
        # The caller granted more budget than the spec's bound; the
        # drain gives up first and the release finds the request still
        # between stages.
        response = yield from replica.submit(object(), timeout_ns=50 * MS)
        results.append(response)

    started = eng.now
    eng.process(driver())
    eng.run(until=started + 1 * MS)  # stage 0 done, mid-hop
    manager.apply(  # reshape to single rings: releases the gang
        ServiceSpec(
            service=service,
            replicas=1,
            health_period_ns=5e9,
            request_timeout_ns=10 * MS,
        )
    )
    assert replica.members[0].released
    eng.run()
    assert results == [None]
    assert replica.timeouts == 1
    assert replica.outstanding == 0


def test_shrink_and_reshape_converge_in_one_pass():
    """Scale-down runs before reshape, so a re-apply that shrinks both
    the replica count and the shape converges immediately — the freed
    surplus slots feed the gang placement."""
    eng, dc, manager = small_cluster(pods=1)  # 2 rings total
    service = echo_service()
    handle = manager.apply(
        ServiceSpec(service=service, replicas=2, health_period_ns=5e9)
    )
    manager.apply(
        ServiceSpec(
            service=service,
            replicas=1,
            rings_per_replica=2,
            health_period_ns=5e9,
        )
    )
    (replica,) = handle.deployments
    assert isinstance(replica, CompositeDeployment)
    assert len(replica.members) == 2
    assert handle.status().ready_replicas == 1
    stats = drive(eng, handle, arrivals=20, seed_tag="shrunk")
    assert stats.completed == 20


def test_unplaceable_reshape_keeps_the_old_shape_serving():
    """An unsatisfiable rings_per_replica re-apply must not take a
    healthy service dark: the pre-flight keeps the old-shape replica
    serving and records the shortfall."""
    eng, dc, manager = small_cluster(pods=1)  # 2 rings total
    service = echo_service()
    handle = manager.apply(
        ServiceSpec(service=service, replicas=1, health_period_ns=5e9)
    )
    manager.apply(
        ServiceSpec(
            service=service,
            replicas=1,
            rings_per_replica=3,  # more rings than the datacenter has
            health_period_ns=5e9,
        )
    )
    # The old single-ring replica is still placed and still serves.
    assert len(handle.deployments) == 1
    assert not isinstance(handle.deployments[0], CompositeDeployment)
    assert handle.status().ready_replicas == 1
    assert any(
        action.kind == "shortfall" and "reshape" in action.detail
        for report in manager.reconcile_reports
        for action in report.actions
    )
    stats = drive(eng, handle, arrivals=20, seed_tag="kept")
    assert stats.completed == 20


def test_composite_health_weight_is_min_over_members():
    eng, dc, manager = small_cluster()
    handle = manager.apply(composite_spec(rings=2))
    (replica,) = handle.deployments
    assert replica.health_weight() == 1.0
    injector = ClusterFailureInjector(dc)
    injector.inject_spare(replica.members[1], FailureKind.FPGA_HARDWARE_FAULT)
    eng.run_until(manager.sweep(handle))
    assert replica.members[0].health_weight() == 1.0
    assert replica.members[1].health_weight() == pytest.approx(2 / 3)
    assert replica.health_weight() == pytest.approx(2 / 3)


def test_member_death_fails_replica_and_watchdog_replaces_the_gang():
    """The §2.3 composite failure story: one member ring exhausting its
    spares makes the whole replica unservable; reconciliation releases
    the gang (cordoning only the dead member's slot) and re-places it
    all-or-nothing on free capacity."""
    eng, dc, manager = small_cluster(pods=3)  # 6 rings
    handle = manager.apply(composite_spec(rings=2))
    (replica,) = handle.deployments
    dead_member = replica.members[1]
    healthy_member = replica.members[0]
    dead_slot = manager.scheduler.slot_of(dead_member)
    healthy_slot = manager.scheduler.slot_of(healthy_member)

    ClusterFailureInjector(dc).kill_ring(dead_member)
    eng.run(until=eng.now + 12e9)  # the watchdog sweeps and reconciles

    status = handle.status()
    assert status.ready_replicas == 1
    assert replica not in handle.deployments
    assert replica in handle.retired
    # Only the dead member's hardware is held out for manual service;
    # the healthy member's slot went straight back to the free pool.
    assert manager.scheduler.cordoned_slots == [dead_slot]
    assert healthy_slot not in manager.scheduler.cordoned_slots
    (new_replica,) = handle.deployments
    assert isinstance(new_replica, CompositeDeployment)
    assert len(new_replica.members) == 2
    assert dead_slot not in {
        manager.scheduler.slot_of(member) for member in new_replica.members
    }
    kinds = [
        action.kind
        for report in manager.reconcile_reports
        for action in report.actions
    ]
    assert "release_unservable" in kinds
    assert "release_gang_member" in kinds
    assert "replace" in kinds
    # The replacement gang serves.
    stats = drive(eng, handle, arrivals=20, seed_tag="after")
    assert stats.completed == 20


def test_composite_timeout_budget_is_end_to_end():
    eng, dc, manager = small_cluster()
    handle = manager.apply(composite_spec(rings=2, slots_per_server=1))
    handle.stop_watchdog()
    (replica,) = handle.deployments
    # Sever the SECOND member's ring: stage 0 answers, stage 1 never does.
    ClusterFailureInjector(dc).inject_role(
        replica.members[1], FailureKind.CABLE_ASSEMBLY_FAILURE
    )
    # Skip the head as injection server so the request must cross the
    # severed column cables instead of being delivered node-locally.
    replica.members[1]._next_injection_server()
    results = []

    def driver():
        response = yield from replica.submit(object(), timeout_ns=2 * MS)
        results.append(response)

    started = eng.now
    eng.process(driver())
    eng.run()
    assert results == [None]
    assert replica.timeouts == 1
    assert replica.outstanding == 0
    # The chain honoured the single end-to-end budget: stage 1 received
    # only the remaining time, not a fresh 2 ms of its own.
    assert eng.now - started < 2 * 2 * MS


# --- open-loop total-outage shedding (satellite) ------------------------------------


def test_openloop_sheds_instead_of_crashing_during_total_outage():
    """Regression: a kill_ring mid-run used to crash the arrival child
    process with an unhandled NoHealthyDeployment while every ring was
    unservable (mid sweep-and-replace); the run must instead shed those
    arrivals and finish."""
    eng, dc, manager = small_cluster(pods=1)  # 2 rings: 1 serving, 1 free
    handle = manager.apply(
        ServiceSpec(
            service=echo_service(),
            replicas=1,
            health_period_ns=0.5 * MS,
            request_timeout_ns=10 * MS,
        )
    )
    pool = [object() for _ in range(8)]
    traffic = OpenLoopInjector(
        eng,
        handle,
        PoissonArrivals(200_000.0),
        pool,
        timeout_ns=10 * MS,
        seed_tag="outage",
    )
    done = traffic.run(800)  # arrivals span ~4 ms
    eng.run(until=eng.now + 1 * MS)
    ClusterFailureInjector(dc).kill_ring(handle.deployments[0])
    stats = eng.run_until(done)  # crashes here without the fix
    assert stats.completed > 0  # traffic before the failure
    assert stats.rejected > 0  # shed at the front door during the outage
    assert stats.offered == 800
    # Shed arrivals are reclassified, not double-counted.
    assert stats.offered == stats.admitted + stats.rejected
    assert stats.admitted == stats.completed + stats.timeouts
    # The watchdog re-placed the replica on the free ring meanwhile.
    assert handle.status().ready_replicas == 1


# --- contended-lease deadline disarm (satellite) ------------------------------------


def test_contended_lease_deadline_disarmed_after_grant():
    """Regression: the 5 s lease-wait deadline stayed armed after the
    lease arrived, keeping a bare ``engine.run()`` alive (and the event
    heap populated) seconds past the last real event."""
    eng, dc, manager = small_cluster(pods=1)
    handle = manager.apply(
        ServiceSpec(service=echo_service(), replicas=1, slots_per_server=1)
    )
    handle.stop_watchdog()
    (deployment,) = handle.deployments
    server = deployment.injection_servers()[1]
    finished = []

    def driver():
        response = yield from deployment.submit(object(), server=server)
        assert response is not None
        finished.append(eng.now)

    started = eng.now
    eng.process(driver())
    eng.process(driver())  # contends: one slot lease, two submitters
    ended_at = eng.run()
    assert len(finished) == 2
    # run() returned at the last real event, not 5 s later when the
    # abandoned deadlines (lease wait + fabric wait) would have fired.
    assert ended_at == finished[-1]
    assert ended_at - started < 0.1 * SEC


# --- round-robin fall-through (satellite) -------------------------------------------


def test_round_robin_fallthrough_is_loud():
    """A ring whose health flips between the healthy filter and the
    scan exposes the old silent fall-through into weighted-random; it
    must raise instead."""

    class FlappingRing:
        name = "flapping"
        outstanding = 0
        # simlint: allow-unbounded-accum -- stub ring attribute the
        # balancer introspects; this test never appends to it.
        latencies_ns: list = []

        def __init__(self):
            self.calls = 0

        def health_weight(self):
            self.calls += 1
            return 1.0 if self.calls == 1 else 0.0

    eng = Engine(seed=1)
    balancer = LoadBalancer(eng, [FlappingRing()], policy="round_robin")
    with pytest.raises(AssertionError):
        balancer.pick()


# --- release-then-redeploy by a different composite (satellite) ---------------------


def test_freed_gang_slots_redeployed_by_a_different_composite_service():
    eng, dc, manager = small_cluster()
    first = manager.apply(composite_spec(rings=2, replicas=2))
    assert manager.scheduler.capacity_report().free_rings == 0
    freed = manager.drain(first)
    assert len(freed) == 4

    second = manager.apply(
        ServiceSpec(
            service=echo_service("svc-b", role_name="upper", payload="b"),
            replicas=1,
            rings_per_replica=2,
            health_period_ns=5e9,
        )
    )
    (replica,) = second.deployments
    member_slots = {
        manager.scheduler.slot_of(member) for member in replica.members
    }
    assert member_slots <= set(freed)
    stats = drive(eng, second, arrivals=20, seed_tag="svc-b")
    assert stats.completed == 20
