"""Tests for the Health Monitor, Mapping Manager, and failure handling."""

import pytest

from repro.fabric import CrashSeverity, Pod, ServerState, TorusTopology
from repro.hardware import Bitstream, ResourceBudget
from repro.services import (
    FailureInjector,
    FailureKind,
    HealthMonitor,
    InsufficientRingCapacity,
    MappingManager,
    RingAssignment,
    RoleSpec,
    ServiceDefinition,
)
from repro.shell import Packet, PacketKind, Role
from repro.shell.router import Port
from repro.sim import Engine, SEC


def bitstream(name):
    return Bitstream(
        role_name=name, role_budget=ResourceBudget(alms=1000), clock_mhz=175.0
    )


class RelayRole(Role):
    """Forwards requests downstream; the tail returns a response."""

    def __init__(self, assignment: RingAssignment, role_name: str):
        super().__init__()
        self.name = role_name
        self.assignment = assignment

    def handle(self, packet):
        yield self.shell.engine.timeout(500.0)
        downstream = self.assignment.downstream_of(self.name)
        if downstream is None:
            # Tail stage: answer back to the injector.
            yield self.send(packet.response_to(16, payload=("scored", packet.trace_id)))
        else:
            forwarded = Packet(
                kind=PacketKind.REQUEST,
                src=packet.src,
                dst=downstream,
                size_bytes=packet.size_bytes,
                payload=packet.payload,
                trace_id=packet.trace_id,
                injected_at_ns=packet.injected_at_ns,
                slot_id=packet.slot_id,
            )
            yield self.send(forwarded)


class SpareRole(Role):
    name = "spare"

    def __init__(self, assignment=None, role_name="spare"):
        super().__init__()

    def handle(self, packet):
        if False:
            yield


def relay_service(num_stages=3):
    roles = tuple(
        RoleSpec(name=f"stage{i}", bitstream=bitstream(f"stage{i}"), factory=RelayRole)
        for i in range(num_stages)
    )
    return ServiceDefinition(
        name="relay",
        roles=roles,
        spare=RoleSpec(name="spare", bitstream=bitstream("spare"), factory=SpareRole),
    )


def build_pod(seed=3):
    eng = Engine(seed=seed)
    pod = Pod(eng, topology=TorusTopology(width=3, height=4))
    return eng, pod


def send_through_pipeline(eng, pod, assignment, src_node=(0, 0)):
    """Inject one request at the pipeline head; return the response list."""
    from repro.host import SlotClient

    client = SlotClient(pod.server_at(src_node))
    lease = client.lease()
    responses = []

    def thread(eng):
        try:
            response = yield from lease.request(
                dst=assignment.head_node(), size_bytes=1024, timeout_ns=1 * SEC
            )
            responses.append(response)
        except Exception:
            responses.append(None)

    eng.process(thread(eng))
    eng.run()
    return responses


# --- deployment -----------------------------------------------------------------


def test_deploy_assigns_roles_in_ring_order():
    eng, pod = build_pod()
    manager = MappingManager(eng, pod)
    done = manager.deploy(relay_service(), ring_x=1)
    assignment = eng.run_until(done)
    assert assignment.node_of("stage0") == (1, 0)
    assert assignment.node_of("stage1") == (1, 1)
    assert assignment.node_of("stage2") == (1, 2)
    assert assignment.spare_nodes == [(1, 3)]
    for node in assignment.ring_nodes:
        server = pod.server_at(node)
        assert server.fpga.state.value == "configured"
        assert server.shell.role is not None


def test_deploy_releases_rx_halt_only_after_all_configured():
    eng, pod = build_pod()
    manager = MappingManager(eng, pod)
    done = manager.deploy(relay_service(), ring_x=0)
    # Mid-deployment: still reconfiguring, halts must be on.
    eng.run(until=0.5 * SEC)
    ring_servers = pod.ring(0)
    assert all(
        ep.rx_halt
        for server in ring_servers
        for ep in server.shell.endpoints.values()
    )
    assignment = eng.run_until(done)
    assert assignment is not None
    assert all(
        not ep.rx_halt
        for server in ring_servers
        for ep in server.shell.endpoints.values()
    )


def test_pipeline_processes_request_end_to_end():
    eng, pod = build_pod()
    manager = MappingManager(eng, pod)
    assignment = eng.run_until(manager.deploy(relay_service(), ring_x=1))
    responses = send_through_pipeline(eng, pod, assignment)
    assert len(responses) == 1 and responses[0] is not None
    assert responses[0].payload[0] == "scored"


def test_service_definition_rejects_duplicate_names():
    spec = RoleSpec(name="x", bitstream=bitstream("x"), factory=RelayRole)
    with pytest.raises(ValueError):
        ServiceDefinition(name="bad", roles=(spec, spec), spare=spec)


def test_ring_too_small_rejected():
    eng, pod = build_pod()
    manager = MappingManager(eng, pod)
    with pytest.raises(InsufficientRingCapacity):
        manager.deploy(relay_service(num_stages=5), ring_x=0)  # ring of 4


# --- health monitor ------------------------------------------------------------------


def test_healthy_pod_reports_clean():
    eng, pod = build_pod()
    monitor = HealthMonitor(eng, pod)
    report = eng.run_until(monitor.investigate([(0, 0), (1, 0)]))
    assert report.failed_machines == []
    assert all(not d.flags.any_error for d in report.diagnoses)


def test_crashed_server_recovered_by_soft_reboot():
    eng, pod = build_pod()
    monitor = HealthMonitor(eng, pod)
    server = pod.server_at((0, 1))
    server.crash()
    report = eng.run_until(monitor.investigate([(0, 1)]))
    diagnosis = report.diagnoses[0]
    assert diagnosis.reboots_performed == 1
    assert not diagnosis.marked_dead
    assert server.state is ServerState.UP
    assert diagnosis.flags.unresponsive  # it WAS unresponsive


def test_stubborn_crash_needs_hard_reboot():
    eng, pod = build_pod()
    monitor = HealthMonitor(eng, pod)
    server = pod.server_at((0, 1))
    server.crash(CrashSeverity.NEEDS_HARD_REBOOT)
    report = eng.run_until(monitor.investigate([(0, 1)]))
    assert report.diagnoses[0].reboots_performed == 2
    assert server.state is ServerState.UP


def test_permanent_failure_marked_dead():
    eng, pod = build_pod()
    monitor = HealthMonitor(eng, pod)
    server = pod.server_at((0, 1))
    server.crash(CrashSeverity.PERMANENT)
    report = eng.run_until(monitor.investigate([(0, 1)]))
    assert report.diagnoses[0].marked_dead
    assert server.state is ServerState.DEAD
    assert "pod0-s03" in monitor.failed_machine_list


def test_error_vector_flags_injected_failures():
    eng, pod = build_pod()
    injector = FailureInjector(pod)
    monitor = HealthMonitor(eng, pod)

    injector.inject(FailureKind.DRAM_CALIBRATION, (1, 1))
    injector.inject(FailureKind.LINK_FAILURE, (2, 2), port=Port.EAST)
    report = eng.run_until(monitor.investigate([(1, 1), (2, 2)]))
    flags_a, flags_b = report.diagnoses[0].flags, report.diagnoses[1].flags
    assert flags_a.dram_calibration_failed and flags_a.needs_relocation
    assert flags_b.link_down == ("east",) and flags_b.needs_relocation


def test_fpga_fault_flags_relocation_and_pll():
    eng, pod = build_pod()
    FailureInjector(pod).inject(FailureKind.FPGA_HARDWARE_FAULT, (0, 2))
    monitor = HealthMonitor(eng, pod)
    report = eng.run_until(monitor.investigate([(0, 2)]))
    flags = report.diagnoses[0].flags
    assert flags.fpga_failed and flags.pll_unlocked
    assert flags.needs_relocation


def test_temp_shutdown_reported_in_error_vector():
    # Regression: temperature shutdowns used to be dropped by _analyze,
    # silently excluding them from relocation decisions (§3.5).
    eng, pod = build_pod()
    FailureInjector(pod).inject(FailureKind.TEMP_SHUTDOWN, (1, 2))
    monitor = HealthMonitor(eng, pod)
    report = eng.run_until(monitor.investigate([(1, 2)]))
    flags = report.diagnoses[0].flags
    assert flags.temp_shutdown
    assert flags.needs_relocation
    assert any(f.temp_shutdown for f in monitor.failed_machine_list.values())


def test_map_out_exhaustion_marks_unservable():
    # Unlike exclude(), map_out() tolerates running out of spares: the
    # assignment goes unservable for the control plane to reconcile.
    eng, pod = build_pod()
    manager = MappingManager(eng, pod)
    assignment = eng.run_until(manager.deploy(relay_service(), ring_x=1))
    assert assignment.map_out((1, 3)) is True
    assert assignment.servable
    assert assignment.map_out((1, 2)) is False
    assert not assignment.servable
    assert (1, 2) in assignment.excluded


def test_watchdog_exhaustion_is_graceful():
    # A health report that exhausts a ring's spares must not crash the
    # monitor's process chain; the assignment is left unservable.
    eng, pod = build_pod()
    manager = MappingManager(eng, pod)
    monitor = HealthMonitor(eng, pod, mapping_manager=manager)
    assignment = eng.run_until(manager.deploy(relay_service(), ring_x=1))
    injector = FailureInjector(pod)
    for node in [(1, 2), (1, 3)]:
        injector.inject(FailureKind.FPGA_HARDWARE_FAULT, node)
    report = eng.run_until(monitor.investigate([(1, 2), (1, 3)]))
    assert len(report.failed_machines) == 2
    assert not assignment.servable
    assert manager.ring_exhaustions == 1


def test_deploy_pre_excludes_failed_hardware():
    # Deploying onto a ring with a known-dead FPGA maps the node out up
    # front instead of failing the configuration.
    eng, pod = build_pod()
    FailureInjector(pod).inject(FailureKind.FPGA_HARDWARE_FAULT, (1, 0))
    manager = MappingManager(eng, pod)
    assignment = eng.run_until(manager.deploy(relay_service(), ring_x=1))
    assert (1, 0) in assignment.excluded
    assert assignment.servable
    assert (1, 0) not in assignment.role_to_node.values()


def test_miswiring_reported_as_neighbor_mismatch():
    eng = Engine(seed=5)
    topology = TorusTopology(width=3, height=4)
    from repro.fabric.cables import WiringPlan

    wiring = WiringPlan(topology)
    wiring.swap(0, 2)
    pod = Pod(eng, topology=topology, wiring=wiring)
    monitor = HealthMonitor(eng, pod)
    report = eng.run_until(monitor.investigate(list(pod.servers)))
    mismatched = [d for d in report.diagnoses if d.flags.neighbor_mismatch]
    assert mismatched


# --- failure handling end-to-end ---------------------------------------------------------


def test_ring_rotation_after_fpga_failure():
    eng, pod = build_pod()
    manager = MappingManager(eng, pod)
    monitor = HealthMonitor(eng, pod, mapping_manager=manager)
    assignment = eng.run_until(manager.deploy(relay_service(), ring_x=1))
    victim = assignment.node_of("stage1")

    FailureInjector(pod).inject(FailureKind.FPGA_HARDWARE_FAULT, victim)
    eng.run_until(monitor.investigate([victim]))

    assert manager.relocations == 1
    assert victim in assignment.excluded
    assert assignment.node_of("stage1") != victim
    # The rotated pipeline still works end to end.
    responses = send_through_pipeline(eng, pod, assignment)
    assert responses[0] is not None
    assert responses[0].payload[0] == "scored"


def test_app_hang_reconfigures_in_place():
    eng, pod = build_pod()
    manager = MappingManager(eng, pod)
    monitor = HealthMonitor(eng, pod, mapping_manager=manager)
    assignment = eng.run_until(manager.deploy(relay_service(), ring_x=1))
    victim = assignment.node_of("stage2")
    server = pod.server_at(victim)
    reconfigs_before = server.fpga.reconfig_count

    FailureInjector(pod).inject(FailureKind.APP_HANG, victim)
    eng.run_until(monitor.investigate([victim]))

    assert manager.in_place_reconfigs == 1
    assert manager.relocations == 0
    assert victim not in assignment.excluded  # same node, fresh image
    assert server.fpga.reconfig_count == reconfigs_before + 1
    assert not server.shell.role.app_error  # cleared by reconfiguration


def test_too_many_failures_exhausts_ring():
    eng, pod = build_pod()
    manager = MappingManager(eng, pod)
    assignment = eng.run_until(manager.deploy(relay_service(), ring_x=1))
    assignment.exclude((1, 3))
    with pytest.raises(InsufficientRingCapacity):
        assignment.exclude((1, 2))


def test_spare_failure_needs_no_role_move():
    eng, pod = build_pod()
    manager = MappingManager(eng, pod)
    monitor = HealthMonitor(eng, pod, mapping_manager=manager)
    assignment = eng.run_until(manager.deploy(relay_service(), ring_x=1))
    spare_node = assignment.spare_nodes[0]
    active_before = dict(assignment.role_to_node)

    FailureInjector(pod).inject(FailureKind.FPGA_HARDWARE_FAULT, spare_node)
    eng.run_until(monitor.investigate([spare_node]))

    # Active roles stay put; only the spare is mapped out.
    assert {k: v for k, v in assignment.role_to_node.items()} == active_before
    assert spare_node in assignment.excluded
