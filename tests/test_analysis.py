"""Tests for the analysis utilities: stats, meters, tables."""

import pytest

from repro.analysis import (
    LatencyStats,
    ThroughputMeter,
    cdf_points,
    format_series,
    format_table,
    percentile,
)
from repro.sim import Engine


def test_percentile_interpolation():
    samples = [10.0, 20.0, 30.0, 40.0]
    assert percentile(samples, 0) == 10.0
    assert percentile(samples, 100) == 40.0
    assert percentile(samples, 50) == 25.0
    assert percentile(samples, 25) == pytest.approx(17.5)


def test_percentile_single_sample():
    assert percentile([7.0], 95) == 7.0


def test_percentile_unsorted_input():
    assert percentile([30.0, 10.0, 20.0], 50) == 20.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)


def test_latency_stats_fields():
    samples = [float(i) for i in range(1, 1001)]
    stats = LatencyStats.from_samples(samples)
    assert stats.count == 1000
    assert stats.mean == pytest.approx(500.5)
    assert stats.p50 == pytest.approx(500.5)
    assert stats.p95 == pytest.approx(950.05, rel=0.01)
    assert stats.p99 == pytest.approx(990.01, rel=0.01)
    assert stats.max == 1000.0


def test_latency_stats_empty_rejected():
    with pytest.raises(ValueError):
        LatencyStats.from_samples([])


def test_latency_stats_scaled():
    stats = LatencyStats.from_samples([2.0, 4.0]).scaled(0.5)
    assert stats.mean == pytest.approx(1.5)
    assert stats.max == 2.0


def test_cdf_points_monotone():
    points = cdf_points([5.0, 1.0, 3.0], points=10)
    values = [v for v, _ in points]
    fracs = [f for _, f in points]
    assert values == sorted(values)
    assert fracs[-1] == 1.0
    with pytest.raises(ValueError):
        cdf_points([])


def test_throughput_meter_basic():
    eng = Engine()
    meter = ThroughputMeter(eng)

    def worker(eng, meter):
        for _ in range(10):
            yield eng.timeout(1e8)  # one per 0.1 s
            meter.record()

    eng.process(worker(eng, meter))
    eng.run()
    assert meter.count == 10
    assert meter.per_second == pytest.approx(10.0, rel=0.01)


def test_throughput_meter_warmup_window():
    eng = Engine()
    meter = ThroughputMeter(eng)

    def worker(eng, meter):
        for i in range(10):
            yield eng.timeout(1e8)
            meter.record()
            if i == 4:
                meter.start_measurement()

    eng.process(worker(eng, meter))
    eng.run()
    assert meter.warm_count == 5
    assert meter.per_second == pytest.approx(10.0, rel=0.01)


def test_format_table_alignment():
    table = format_table(["a", "long_header"], [[1, 2.5], ["xx", 0.001]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "long_header" in lines[0]
    assert set(lines[1]) <= {"-", " "}


def test_format_table_title_and_floats():
    table = format_table(["x"], [[1234.5678], [0.004]], title="T")
    assert table.startswith("T\n")
    assert "1.23e+03" in table or "1234" in table


def test_format_series_columns():
    out = format_series("n", {"a": [1, 2], "b": [3, 4]}, [10, 20], title="S")
    lines = out.splitlines()
    assert lines[0] == "S"
    assert lines[1].split() == ["n", "a", "b"]
    assert lines[3].split() == ["10", "1", "3"]


# -- ReservoirSample -----------------------------------------------------


def test_reservoir_exact_below_capacity():
    from repro.analysis import ReservoirSample

    rs = ReservoirSample(capacity=100)
    values = [float(v) for v in range(50)]
    rs.extend(values)
    assert rs == values  # holds every observation, in arrival order
    assert len(rs) == 50
    assert rs.count == 50
    assert rs.total == sum(values)
    assert rs.max == 49.0
    assert rs.percentile(50) == percentile(values, 50)
    summary = rs.summary()
    assert summary.count == 50
    assert summary.p99 == percentile(values, 99)


def test_reservoir_bounded_above_capacity():
    from repro.analysis import ReservoirSample

    rs = ReservoirSample(capacity=200, seed=7)
    n = 20_000
    rs.extend(float(v) for v in range(n))
    assert rs.count == n  # exact counters survive sampling
    assert rs.total == float(sum(range(n)))
    assert rs.max == float(n - 1)
    assert rs.sample_size == 200  # flat memory
    assert abs(rs.mean - (n - 1) / 2) < 1e-9
    # Quantiles are estimates from a uniform sample: loose tolerance.
    assert abs(rs.percentile(50) - n / 2) < 0.15 * n


def test_reservoir_same_seed_is_reproducible():
    from repro.analysis import ReservoirSample

    a = ReservoirSample(capacity=64, seed=3)
    b = ReservoirSample(capacity=64, seed=3)
    for v in range(5_000):
        a.append(float(v))
        b.append(float(v))
    assert a == b
    assert a.percentile(99) == b.percentile(99)


def test_reservoir_clear_resets_rng():
    from repro.analysis import ReservoirSample

    rs = ReservoirSample(capacity=32, seed=11)
    values = [float(v) for v in range(1_000)]
    rs.extend(values)
    first = list(rs)
    rs.clear()
    assert rs.count == 0
    assert not rs
    rs.extend(values)
    assert list(rs) == first  # RNG reset: same replacement decisions


def test_reservoir_empty_summary_and_validation():
    from repro.analysis import ReservoirSample

    with pytest.raises(ValueError):
        ReservoirSample(capacity=0)
    empty = ReservoirSample()
    assert empty.summary().count == 0
    assert empty.summary().p99 == 0.0
