"""Tests for workload generation: Zipf sampling, query properties, and
the open-loop arrival processes."""

import random

import pytest

from repro.sim import Engine, SEC
from repro.workloads.openloop import (
    BurstyArrivals,
    DiurnalArrivals,
    OpenLoopInjector,
    PoissonArrivals,
)
from repro.workloads.traces import TraceGenerator, ZipfSampler


def fixed_rng(seed: int) -> random.Random:
    # simlint: allow-rng -- distribution tests drive the samplers with a
    # pinned local stream; no engine (hence no RngStreams root) exists.
    return random.Random(seed)

def test_zipf_head_is_heavier():
    sampler = ZipfSampler(1_000, fixed_rng(1))
    draws = [sampler.sample() for _ in range(5_000)]
    head = sum(1 for d in draws if d < 10)
    tail = sum(1 for d in draws if d >= 500)
    assert head > tail * 3


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0, fixed_rng(1))


def test_zipf_covers_range():
    sampler = ZipfSampler(50, fixed_rng(2))
    draws = {sampler.sample() for _ in range(5_000)}
    assert min(draws) == 0
    assert max(draws) < 50


def test_queries_have_unique_terms():
    gen = TraceGenerator(seed=3)
    for _ in range(50):
        query = gen.query()
        assert len(set(query.terms)) == len(query.terms)
        assert 1 <= len(query.terms) <= 8


def test_document_model_matches_query_model():
    gen = TraceGenerator(seed=4, model_mix={2: 1.0})
    request = gen.request()
    assert request.query.model_id == 2
    assert request.document.model_id == 2


def test_documents_have_increasing_ids():
    gen = TraceGenerator(seed=5)
    ids = [gen.request().document.doc_id for _ in range(5)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5


def test_tuple_mix_has_all_three_sizes():
    gen = TraceGenerator(seed=6)
    sizes = set()
    for request in gen.requests(20):
        for stream in request.document.streams:
            for hit in stream.tuples:
                sizes.add(hit.encoded_size)
    assert sizes == {2, 4, 6}


def test_zipf_sample_hits_first_index_on_tiny_u():
    sampler = ZipfSampler(100, fixed_rng(7))
    sampler.rng = fixed_rng(7)
    # bisect path must clamp into [0, vocabulary).
    assert all(0 <= sampler.sample() < 100 for _ in range(2_000))


def test_model_mix_must_be_non_empty():
    with pytest.raises(ValueError):
        TraceGenerator(seed=1, model_mix={})


def test_model_mix_weights_must_be_positive():
    with pytest.raises(ValueError):
        TraceGenerator(seed=1, model_mix={0: 0.5, 1: -0.1})
    with pytest.raises(ValueError):
        TraceGenerator(seed=1, model_mix={0: 0.0})


# --- arrival processes ---------------------------------------------------------


def test_poisson_mean_interarrival_matches_rate():
    arrivals = PoissonArrivals(10_000.0)
    rng = fixed_rng(5)
    gaps = [arrivals.interarrival_ns(rng, 0.0) for _ in range(20_000)]
    mean = sum(gaps) / len(gaps)
    assert mean == pytest.approx(SEC / 10_000.0, rel=0.05)


def test_poisson_rejects_bad_rate():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0)


def test_bursty_rate_alternates_with_phase():
    arrivals = BurstyArrivals(
        base_rate_per_s=1_000.0, burst_rate_per_s=9_000.0, period_s=1.0, duty=0.25
    )
    assert arrivals.rate_at(0.1 * SEC) == 9_000.0
    assert arrivals.rate_at(0.5 * SEC) == 1_000.0
    assert arrivals.rate_at(1.1 * SEC) == 9_000.0  # wraps each period


def test_bursty_validation():
    with pytest.raises(ValueError):
        BurstyArrivals(0.0, 100.0, 1.0)
    with pytest.raises(ValueError):
        BurstyArrivals(100.0, 200.0, 1.0, duty=1.5)


def test_diurnal_rate_bounded_by_amplitude():
    arrivals = DiurnalArrivals(1_000.0, amplitude=0.5, period_s=1.0)
    rates = [arrivals.rate_at(t * 0.01 * SEC) for t in range(100)]
    assert max(rates) <= 1_500.0 + 1e-6
    assert min(rates) >= 500.0 - 1e-6
    assert max(rates) > 1_400.0 and min(rates) < 600.0


def test_diurnal_validation():
    with pytest.raises(ValueError):
        DiurnalArrivals(1_000.0, amplitude=1.5)


# --- open-loop injector ---------------------------------------------------------


class ImmediateSink:
    """Accepts every request instantly (no simulated service time)."""

    def __init__(self):
        self.outstanding = 0
        self.seen = []

    def submit(self, request, timeout_ns):
        self.seen.append(request)
        if False:  # pragma: no cover - generator protocol
            yield
        return request


class SaturatedSink(ImmediateSink):
    def __init__(self):
        super().__init__()
        self.outstanding = 1_000


def test_open_loop_offers_and_completes():
    eng = Engine(seed=8)
    sink = ImmediateSink()
    injector = OpenLoopInjector(
        eng, sink, PoissonArrivals(1_000_000.0), pool=["a", "b", "c"]
    )
    stats = eng.run_until(injector.run(30))
    assert stats.offered == stats.admitted == stats.completed == 30
    assert stats.rejected == 0
    assert sink.seen[:3] == ["a", "b", "c"]  # pool cycles in order
    assert stats.admission_fraction == 1.0


def test_open_loop_admission_control_sheds():
    eng = Engine(seed=8)
    sink = SaturatedSink()
    injector = OpenLoopInjector(
        eng, sink, PoissonArrivals(1_000_000.0), pool=["a"], max_queue_depth=10
    )
    stats = eng.run_until(injector.run(25))
    assert stats.offered == 25
    assert stats.admitted == 0
    assert stats.rejected == 25


def test_open_loop_stats_survive_zero_arrival_window():
    """Regression: summarising a window with zero arrivals (or a total
    outage that shed every arrival) must report zeros, not raise."""
    from repro.workloads.openloop import OpenLoopStats

    empty = OpenLoopStats()
    assert empty.admission_fraction == 0.0
    assert empty.completion_fraction == 0.0
    summary = empty.stats()
    assert summary.count == 0
    assert summary.p99 == 0.0

    all_shed = OpenLoopStats(offered=10, admitted=0, rejected=10)
    assert all_shed.admission_fraction == 0.0
    assert all_shed.stats().count == 0


def test_open_loop_validates_inputs():
    eng = Engine()
    sink = ImmediateSink()
    with pytest.raises(ValueError):
        OpenLoopInjector(eng, sink, PoissonArrivals(1.0), pool=[])
    with pytest.raises(ValueError):
        OpenLoopInjector(eng, sink, PoissonArrivals(1.0), pool=["a"], max_queue_depth=0)
    injector = OpenLoopInjector(eng, sink, PoissonArrivals(1.0), pool=["a"])
    with pytest.raises(ValueError):
        injector.run(0)


# -- perf-overhaul behavior: determinism, completion gate, batching -----


class EchoService:
    """Generator sink with real service time plus a per-request guard
    deadline that is disarmed on completion — the cluster submit shape,
    concentrated on the timer queue."""

    def __init__(self, engine, service_ns=1_500.0):
        self.engine = engine
        self.service_ns = service_ns
        self.outstanding = 0

    def submit(self, request, timeout_ns):
        engine = self.engine
        self.outstanding += 1
        try:
            deadline = engine.timeout(timeout_ns)
            yield engine.timeout(self.service_ns)
            deadline.cancel()
            return request
        finally:
            self.outstanding -= 1


def _mixed_openloop_run(timer_wheel):
    """Poisson phase then bursty phase on one engine, echo service with
    guard-deadline churn throughout."""
    eng = Engine(seed=123, timer_wheel=timer_wheel)
    sink = EchoService(eng)
    poisson = OpenLoopInjector(
        eng, sink, PoissonArrivals(2_000_000.0), pool=list(range(8))
    )
    stats_a = eng.run_until(poisson.run(400))
    bursty = OpenLoopInjector(
        eng,
        sink,
        BurstyArrivals(500_000.0, 4_000_000.0, period_s=0.0002),
        pool=list(range(8)),
        seed_tag="bursty",
    )
    stats_b = eng.run_until(bursty.run(300))
    return eng, stats_a, stats_b


def test_timer_wheel_same_seed_matches_heap_only():
    """The banded timer queue must be invisible to results: same seed,
    same arrivals, identical completion counts, latency samples, event
    order (via dispatch count), and final clock."""
    wheel, wa, wb = _mixed_openloop_run(timer_wheel=True)
    heap, ha, hb = _mixed_openloop_run(timer_wheel=False)
    assert (wa.offered, wa.completed, wa.rejected) == (
        ha.offered,
        ha.completed,
        ha.rejected,
    )
    assert (wb.offered, wb.completed, wb.rejected) == (
        hb.offered,
        hb.completed,
        hb.rejected,
    )
    # Sub-capacity reservoirs hold every observation: bit-identical.
    assert list(wa.latencies_ns) == list(ha.latencies_ns)
    assert list(wb.latencies_ns) == list(hb.latencies_ns)
    assert wa.stats().p99 == ha.stats().p99
    assert wheel.now == heap.now
    assert wheel.events_dispatched == heap.events_dispatched


def test_counter_gate_fires_after_last_inflight_resolves():
    eng = Engine(seed=5)
    sink = EchoService(eng, service_ns=10_000.0)
    injector = OpenLoopInjector(eng, sink, PoissonArrivals(5_000_000.0), pool=["r"])
    stats = eng.run_until(injector.run(50))
    assert stats.completed == 50
    assert sink.outstanding == 0  # gate held until every handler resolved
    # The injector is reusable: a fresh gate per run, cumulative stats.
    stats2 = eng.run_until(injector.run(10))
    assert stats2 is stats
    assert stats.offered == 60
    assert stats.completed == 60


def test_second_run_while_in_flight_is_rejected():
    eng = Engine(seed=5)
    injector = OpenLoopInjector(
        eng, EchoService(eng), PoissonArrivals(1_000_000.0), pool=["r"]
    )
    injector.run(5)
    with pytest.raises(RuntimeError):
        injector.run(5)


def test_batched_admission_same_load_fewer_scheduler_events():
    """A batch window must not change what is offered or completed —
    only how many scheduler wakeups it takes to admit it."""
    outcomes = []
    scheduled = []
    for window_ns in (0.0, 50_000.0):
        eng = Engine(seed=9)
        sink = EchoService(eng)
        injector = OpenLoopInjector(
            eng,
            sink,
            PoissonArrivals(1_000_000.0),
            pool=list(range(4)),
            batch_window_ns=window_ns,
        )
        stats = eng.run_until(injector.run(500))
        outcomes.append(
            (stats.offered, stats.admitted, stats.completed, stats.rejected)
        )
        scheduled.append(eng._seq)
    assert outcomes[0] == outcomes[1]
    assert scheduled[1] < scheduled[0]


def test_open_loop_latencies_are_reservoir_bounded():
    from repro.analysis import ReservoirSample
    from repro.workloads.openloop import OpenLoopStats

    stats = OpenLoopStats()
    reservoir = stats.latencies_ns
    assert isinstance(reservoir, ReservoirSample)
    for value in range(reservoir.capacity + 500):
        reservoir.append(float(value))
    assert reservoir.count == reservoir.capacity + 500
    assert reservoir.sample_size == reservoir.capacity  # memory stays flat
    assert stats.stats().count == reservoir.capacity + 500
