"""Tests for workload generation: Zipf sampling and query properties."""

import random

import pytest

from repro.workloads.traces import TraceGenerator, ZipfSampler


def test_zipf_head_is_heavier():
    sampler = ZipfSampler(1_000, random.Random(1))
    draws = [sampler.sample() for _ in range(5_000)]
    head = sum(1 for d in draws if d < 10)
    tail = sum(1 for d in draws if d >= 500)
    assert head > tail * 3


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0, random.Random(1))


def test_zipf_covers_range():
    sampler = ZipfSampler(50, random.Random(2))
    draws = {sampler.sample() for _ in range(5_000)}
    assert min(draws) == 0
    assert max(draws) < 50


def test_queries_have_unique_terms():
    gen = TraceGenerator(seed=3)
    for _ in range(50):
        query = gen.query()
        assert len(set(query.terms)) == len(query.terms)
        assert 1 <= len(query.terms) <= 8


def test_document_model_matches_query_model():
    gen = TraceGenerator(seed=4, model_mix={2: 1.0})
    request = gen.request()
    assert request.query.model_id == 2
    assert request.document.model_id == 2


def test_documents_have_increasing_ids():
    gen = TraceGenerator(seed=5)
    ids = [gen.request().document.doc_id for _ in range(5)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5


def test_tuple_mix_has_all_three_sizes():
    gen = TraceGenerator(seed=6)
    sizes = set()
    for request in gen.requests(20):
        for stream in request.document.streams:
            for hit in stream.tuples:
                sizes.add(hit.encoded_size)
    assert sizes == {2, 4, 6}
