"""Cross-cutting property tests (hypothesis) on system invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.torus import TorusTopology, dor_routes, yx_routes
from repro.ranking.compression import CompressionMap
from repro.ranking.documents import HitTuple
from repro.ranking.ffe import BinOp, Const, Feature, FfeCompiler, assemble
from repro.ranking.scoring import BoostedTreeScorer, DecisionTree, TreeNode
from repro.shell.router import Port
from repro.sim import Engine, Store


# --- torus geometry ---------------------------------------------------------------

torus_strategy = st.builds(
    TorusTopology, width=st.integers(2, 8), height=st.integers(2, 10)
)
_OPPOSITE = {
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
}


@settings(max_examples=60, deadline=None)
@given(topo=torus_strategy, data=st.data())
def test_neighbor_is_involutive(topo, data):
    """Stepping through a port and back through its opposite returns home."""
    x = data.draw(st.integers(0, topo.width - 1))
    y = data.draw(st.integers(0, topo.height - 1))
    for port in (Port.EAST, Port.WEST, Port.NORTH, Port.SOUTH):
        there = topo.neighbor((x, y), port)
        back = topo.neighbor(there, _OPPOSITE[port])
        assert back == (x, y)


@settings(max_examples=60, deadline=None)
@given(topo=torus_strategy, data=st.data())
def test_hop_distance_symmetric_and_triangle(topo, data):
    def node():
        return (
            data.draw(st.integers(0, topo.width - 1)),
            data.draw(st.integers(0, topo.height - 1)),
        )

    a, b, c = node(), node(), node()
    assert topo.hop_distance(a, b) == topo.hop_distance(b, a)
    assert topo.hop_distance(a, c) <= topo.hop_distance(a, b) + topo.hop_distance(b, c)


@settings(max_examples=40, deadline=None)
@given(topo=torus_strategy, data=st.data())
def test_both_routing_policies_realize_shortest_paths(topo, data):
    src = (
        data.draw(st.integers(0, topo.width - 1)),
        data.draw(st.integers(0, topo.height - 1)),
    )
    dst = (
        data.draw(st.integers(0, topo.width - 1)),
        data.draw(st.integers(0, topo.height - 1)),
    )
    if src == dst:
        return
    for policy in (dor_routes, yx_routes):
        node = src
        hops = 0
        while node != dst:
            node = topo.neighbor(node, policy(topo, node)[dst])
            hops += 1
            assert hops <= topo.width + topo.height
        assert hops == topo.hop_distance(src, dst)


# --- wire codec size selection ------------------------------------------------------


@settings(max_examples=200)
@given(
    delta=st.integers(0, (1 << 24) - 1),
    term=st.integers(0, 63),
    props=st.integers(0, (1 << 16) - 1),
)
def test_tuple_encoding_is_minimal(delta, term, props):
    """The encoder always picks the smallest format that fits (§4.1)."""
    hit = HitTuple(delta, term, props)
    size = hit.encoded_size
    fits_2 = delta < (1 << 10) and term < 16 and props == 0
    fits_4 = delta < (1 << 16) and props < (1 << 8)
    if fits_2:
        assert size == 2
    elif fits_4:
        assert size == 4
    else:
        assert size == 6


# --- scorer banks --------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    n_trees=st.integers(1, 40),
    values=st.lists(st.floats(-4, 4, allow_nan=False, width=16), min_size=3, max_size=3),
)
def test_tree_banks_partition_exactly(n_trees, values):
    def leaf(v):
        return TreeNode(value=v)

    trees = [
        DecisionTree(
            TreeNode(feature=0, threshold=0.5, left=leaf(v), right=leaf(-v))
        )
        for v in (values * ((n_trees // 3) + 1))[:n_trees]
    ]
    scorer = BoostedTreeScorer(trees)
    # Every tree is in exactly one bank.
    assert sum(len(scorer.bank(i)) for i in range(3)) == n_trees
    # simlint: allow-id-ordering -- identity used only to count distinct
    # objects; nothing orders or keys simulation state by it.
    seen = [id(t) for i in range(3) for t in scorer.bank(i)]
    assert len(set(seen)) == n_trees
    # Partials always reassemble the full score.
    packed = [0.25]
    assert sum(scorer.evaluate_bank(i, packed) for i in range(3)) == pytest.approx(
        scorer.evaluate(packed)
    )


# --- FFE assembler ---------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    n_exprs=st.integers(1, 120),
    cores=st.integers(1, 16),
    threads=st.integers(1, 4),
)
def test_assembler_assigns_every_expression_exactly_once(n_exprs, cores, threads):
    compiler = FfeCompiler()
    exprs = [
        compiler.compile(BinOp("add", Feature(0), Const(float(i))), slot)
        for i, slot in enumerate(range(n_exprs))
    ]
    program = assemble(exprs, core_count=cores, threads_per_core=threads)
    slots_out = [
        e.output_slot for thread in program.threads for e in thread.expressions
    ]
    assert sorted(slots_out) == list(range(n_exprs))
    # Static priority: thread heads are sorted by descending latency
    # across the slot-0 threads in core order.
    heads = [
        thread.expressions[0].expected_latency
        for thread in program.threads
        if thread.slot == 0 and thread.expressions
    ]
    assert heads == sorted(heads, reverse=True)


# --- compression map -----------------------------------------------------------------


@settings(max_examples=60)
@given(
    slots=st.sets(st.integers(0, 5_000), min_size=1, max_size=200),
    data=st.data(),
)
def test_compression_pack_preserves_values(slots, data):
    cmap = CompressionMap(slots)
    values = {
        slot: data.draw(st.floats(-100, 100, allow_nan=False, width=16))
        for slot in data.draw(st.sets(st.sampled_from(sorted(slots)), max_size=50))
    }
    packed = cmap.pack(values)
    assert len(packed) == len(cmap)
    for slot, value in values.items():
        assert packed[cmap.index_of[slot]] == value
    # Unreferenced slots read zero.
    for i, slot in enumerate(cmap.slots):
        if slot not in values:
            assert packed[i] == 0.0


# --- store under interleaved producers ----------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    batches=st.lists(
        st.lists(st.integers(), min_size=1, max_size=5), min_size=1, max_size=6
    )
)
def test_store_multi_producer_conservation(batches):
    """No loss, no duplication, per-producer FIFO order preserved."""
    eng = Engine()
    store = Store(eng, capacity=3)
    received = []
    total = sum(len(batch) for batch in batches)

    def producer(eng, store, tag, items):
        for item in items:
            yield store.put((tag, item))
            yield eng.timeout(1.0)

    def consumer(eng, store):
        for _ in range(total):
            value = yield store.get()
            received.append(value)

    for tag, batch in enumerate(batches):
        eng.process(producer(eng, store, tag, batch))
    eng.process(consumer(eng, store))
    eng.run()
    assert len(received) == total
    for tag, batch in enumerate(batches):
        mine = [item for t, item in received if t == tag]
        assert mine == batch  # per-producer order held
