"""Setup shim.

Kept as a classic setup.py (with metadata in setup.cfg) so that
``pip install -e .`` works in offline environments: the legacy editable
path needs no build-isolation downloads.
"""

from setuptools import setup

setup()
