"""Engine throughput on the reference open-loop scenario.

One million open-loop arrivals are offered to a cluster of echo
servers; every request is admission-checked, queued, served, and raced
against a per-request guard deadline that is disarmed on completion —
the exact shape of the production submit paths, concentrated on the
simulation kernel.  This is the scenario the timer-queue overhaul was
built for: the guard deadlines (one per request, cancelled
microseconds later, due seconds out) are pure churn that the banded
timer wheel absorbs at O(1) per request, and the completion gate plus
reservoir statistics keep run memory flat no matter how many arrivals
are offered.

The result is written to ``BENCH_engine.json`` at the repo root —
events/sec, wall-clock per simulated day, and the peak event-queue
length — and committed, so regressions are caught by comparing a fresh
run against the committed numbers (``--smoke`` runs a reduced arrival
count and fails on a >30% events/sec regression; that is the CI gate).

Run ``python benchmarks/bench_engine_perf.py`` for the full committed
measurement, ``--smoke`` (or ``BENCH_SMOKE=1``) for the CI check.
"""

import argparse
import json
import os
import pathlib
import time

from repro.sim import AnyOf, Engine, Store
from repro.sim.units import SEC
from repro.workloads import OpenLoopInjector, PoissonArrivals

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

ARRIVALS = 1_000_000
SMOKE_ARRIVALS = 50_000
RATE_PER_S = 200_000.0
SERVICE_NS = 2_000.0
SERVERS = 8
REQUEST_TIMEOUT_NS = 5 * SEC  # the guard deadline: armed always, used never
MAX_QUEUE_DEPTH = 4_096
POOL = 64
SEED = 2014
REGRESSION_TOLERANCE = 0.30  # smoke fails below 70% of committed events/sec

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"


class EchoServer:
    """One echo worker: drain the queue, serve, complete."""

    def __init__(self, engine, service_ns):
        self.engine = engine
        self.queue = Store(engine, name="echo-q")
        engine.process(self._serve(service_ns), name="echo.worker", daemon=True)

    def _serve(self, service_ns):
        engine = self.engine
        queue = self.queue
        while True:
            payload, done = yield queue.get()
            yield engine.timeout(service_ns)
            done.succeed(payload)


class EchoCluster:
    """Round-robin front door over the echo servers (sink protocol).

    Every request races its response against a guard deadline, disarmed
    on completion — the request-timeout pattern of the cluster layer,
    which is what fills the timer queue with cancelled entries.
    """

    def __init__(self, engine, servers, service_ns):
        self.engine = engine
        self.servers = [EchoServer(engine, service_ns) for _ in range(servers)]
        self.outstanding = 0
        self._next = 0

    def submit(self, request, timeout_ns):
        engine = self.engine
        self.outstanding += 1
        try:
            server = self.servers[self._next]
            self._next = (self._next + 1) % len(self.servers)
            done = engine.event(name="echo-done")
            yield server.queue.put((request, done))
            deadline = engine.timeout(timeout_ns)
            yield AnyOf(engine, [done, deadline])
            if not done.triggered:
                return None
            deadline.cancel()
            return done.value
        finally:
            self.outstanding -= 1


def run_scenario(arrivals: int) -> dict:
    engine = Engine(seed=SEED)
    cluster = EchoCluster(engine, SERVERS, SERVICE_NS)
    pool = list(range(POOL))
    traffic = OpenLoopInjector(
        engine,
        cluster,
        PoissonArrivals(RATE_PER_S),
        pool,
        max_queue_depth=MAX_QUEUE_DEPTH,
        timeout_ns=REQUEST_TIMEOUT_NS,
    )
    # simlint: allow-wall-clock -- this benchmark measures the host
    # wall-clock cost of running the simulator itself.
    t0 = time.perf_counter()
    done = traffic.run(arrivals)
    stats = engine.run_until(done)
    wall_s = time.perf_counter() - t0  # simlint: allow-wall-clock -- harness timing

    sim_s = engine.now / SEC
    scheduled = engine._seq  # total scheduled entries: comparable across versions
    summary = stats.stats()
    return {
        "arrivals": arrivals,
        "wall_s": round(wall_s, 3),
        "sim_s": round(sim_s, 6),
        "events_per_sec": round(scheduled / wall_s),
        "arrivals_per_sec": round(arrivals / wall_s),
        "wall_per_sim_day_s": round(wall_s * 86_400.0 / sim_s, 1),
        "peak_queue_length": getattr(engine, "peak_queue_length", None),
        "events_dispatched": getattr(engine, "events_dispatched", None),
        "events_dropped": getattr(engine, "events_dropped", None),
        "offered": stats.offered,
        "completed": stats.completed,
        "rejected": stats.rejected,
        "timeouts": stats.timeouts,
        "p50_ns": round(summary.p50, 1),
        "p99_ns": round(summary.p99, 1),
    }


def check_regression(result: dict, committed: dict) -> None:
    """Raise if events/sec fell more than the tolerance vs the committed run."""
    committed_rate = committed["result"]["events_per_sec"]
    floor = (1.0 - REGRESSION_TOLERANCE) * committed_rate
    measured = result["events_per_sec"]
    if measured < floor:
        raise SystemExit(
            f"REGRESSION: {measured:,} events/sec is below {floor:,.0f} "
            f"(70% of committed {committed_rate:,}); "
            f"see {RESULT_PATH.name} for the committed run"
        )
    print(
        f"regression gate OK: {measured:,} events/sec >= {floor:,.0f} "
        f"(70% of committed {committed_rate:,})"
    )


def payload(result: dict) -> dict:
    return {
        "scenario": {
            "description": "open-loop Poisson arrivals vs echo-server cluster "
            "with per-request guard deadlines",
            "arrivals": result["arrivals"],
            "rate_per_s": RATE_PER_S,
            "servers": SERVERS,
            "service_ns": SERVICE_NS,
            "request_timeout_ns": REQUEST_TIMEOUT_NS,
            "max_queue_depth": MAX_QUEUE_DEPTH,
            "seed": SEED,
        },
        "result": result,
    }


def test_engine_perf_smoke(record):
    """Reduced run: sanity of the scenario plus the regression gate."""
    result = run_scenario(SMOKE_ARRIVALS)
    assert result["offered"] == SMOKE_ARRIVALS
    assert result["offered"] == result["completed"] + result["rejected"] + result["timeouts"]
    assert result["completed"] > 0.9 * SMOKE_ARRIVALS
    record(
        "engine_perf_smoke",
        "\n".join(f"{key} = {value}" for key, value in sorted(result.items())),
    )
    if RESULT_PATH.exists():
        check_regression(result, json.loads(RESULT_PATH.read_text()))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced arrival count + regression gate (CI)",
    )
    parser.add_argument(
        "--arrivals", type=int, default=None, help="override the arrival count"
    )
    args = parser.parse_args()
    smoke = args.smoke or SMOKE
    arrivals = args.arrivals or (SMOKE_ARRIVALS if smoke else ARRIVALS)
    result = run_scenario(arrivals)
    for key, value in sorted(result.items()):
        print(f"{key} = {value}")
    if smoke:
        if RESULT_PATH.exists():
            check_regression(result, json.loads(RESULT_PATH.read_text()))
        else:
            print(f"no committed {RESULT_PATH.name}; skipping regression gate")
    else:
        RESULT_PATH.write_text(json.dumps(payload(result), indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
