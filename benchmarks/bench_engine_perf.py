"""Engine throughput on the reference open-loop scenario, both modes.

One million open-loop arrivals are offered to a cluster of echo
servers; every request is admission-checked, queued, served, and
completion-gated — the exact shape of the production submit paths,
concentrated on the simulation kernel.  Two kernel-level economies
keep the discrete hot path lean:

* **guard skip** — the per-request guard deadline is only allocated
  when it could actually fire first.  With deterministic service the
  worst-case sojourn is bounded by the queue depth ahead of the
  request, so when ``(depth + 2) * service_ns <= timeout_ns`` the
  submit path awaits the completion event directly: no guard
  ``Timeout``, no ``AnyOf``, no lazily-dropped timer entry.  On this
  scenario that eliminates one million pure-churn guard events.
* **slab recycling** — completion events come from a bounded freelist
  (:class:`repro.sim.Slab`) instead of a fresh allocation per request,
  with resurrection checks that refuse to recycle an event the engine
  still references.

The same scenario also runs in **fluid fast-forward** mode
(``Engine(fluid=True)`` + ``OpenLoopInjector(fluid=True)``): steady
stretches are credited analytically through a virtual M/D/c queue and
the clock jumps across each window in a single event.  Same seed, same
counters, a tiny fraction of the events — the fluid figure of merit is
*events-equivalent per second*: the discrete run's scheduled-entry
count divided by the fluid run's wall clock.

The result is written to ``BENCH_engine.json`` at the repo root with
both modes recorded, and committed; ``--smoke`` runs a reduced arrival
count and fails on a >30% regression of either mode's rate (that is
the CI gate).  ``--fluid-only`` / ``--discrete-only`` restrict a run.

Run ``python benchmarks/bench_engine_perf.py`` for the full committed
measurement, ``--smoke`` (or ``BENCH_SMOKE=1``) for the CI check.
"""

import argparse
import json
import os
import pathlib
import time

from repro.sim import AnyOf, Engine, Slab, Store
from repro.sim.fluid import FluidProfile
from repro.sim.units import SEC
from repro.workloads import OpenLoopInjector, PoissonArrivals

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

ARRIVALS = 1_000_000
SMOKE_ARRIVALS = 50_000
RATE_PER_S = 200_000.0
SERVICE_NS = 2_000.0
SERVERS = 8
REQUEST_TIMEOUT_NS = 5 * SEC  # the guard deadline: armed rarely, used never
MAX_QUEUE_DEPTH = 4_096
POOL = 64
SEED = 2014
REGRESSION_TOLERANCE = 0.30  # smoke fails below 70% of a committed rate

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"


class EchoServer:
    """One echo worker: drain the queue, serve, complete."""

    def __init__(self, engine, service_ns):
        self.engine = engine
        self.queue = Store(engine, name="echo-q")
        engine.process(self._serve(service_ns), name="echo.worker", daemon=True)

    def _serve(self, service_ns):
        engine = self.engine
        queue = self.queue
        while True:
            payload, done = yield queue.get()
            yield engine.timeout(service_ns)
            done.succeed(payload)


class EchoCluster:
    """Round-robin front door over the echo servers (sink protocol).

    The per-request guard deadline is *skipped* whenever the queue
    depth bounds the sojourn below the timeout — deterministic service
    makes that bound exact — so the common case allocates no guard
    ``Timeout`` and no ``AnyOf``.  Completion events are recycled
    through a slab; a completed request releases its event back to the
    freelist (resurrection-checked) instead of dropping it to the GC.
    """

    def __init__(self, engine, servers, service_ns):
        self.engine = engine
        self.service_ns = service_ns
        self.servers = [EchoServer(engine, service_ns) for _ in range(servers)]
        self.outstanding = 0
        self._next = 0
        self._done_slab = Slab.for_events(engine, name="echo-done")
        self.guards_armed = 0
        self.guards_skipped = 0

    def submit(self, request, timeout_ns):
        engine = self.engine
        slab = self._done_slab
        self.outstanding += 1
        try:
            server = self.servers[self._next]
            self._next = (self._next + 1) % len(self.servers)
            done = slab.acquire()
            yield server.queue.put((request, done))
            # Worst-case sojourn: every queued request ahead, plus the
            # one in service, plus this one, each at the deterministic
            # service time.  When that bound clears the timeout, the
            # guard deadline can never fire first — skip it entirely.
            if (len(server.queue.items) + 2) * self.service_ns <= timeout_ns:
                self.guards_skipped += 1
                yield done
                value = done.value
                slab.release(done)
                return value
            self.guards_armed += 1
            deadline = engine.timeout(timeout_ns)
            yield AnyOf(engine, [done, deadline])
            if not done.triggered:
                # Timed out: the worker still holds `done` and will fire
                # it later — recycling it now would be a resurrection.
                return None
            deadline.cancel()
            value = done.value
            slab.release(done)
            return value
        finally:
            self.outstanding -= 1

    # -- fluid fast-forward protocol ------------------------------------

    def fluid_profile(self):
        """Deterministic-service M/D/c profile: the fluid model is exact."""
        return FluidProfile(
            servers=len(self.servers),
            service_ns=self.service_ns,
            cursor=self._next,
        )

    def note_fluid(self, window):
        # Keep the round-robin cursor in step with the virtual queue so
        # a discrete interlude resumes on the same server a discrete
        # run would have reached.
        self._next = (self._next + window.admitted) % len(self.servers)


def run_scenario(arrivals: int, fluid: bool = False) -> dict:
    engine = Engine(seed=SEED, fluid=fluid)
    cluster = EchoCluster(engine, SERVERS, SERVICE_NS)
    pool = list(range(POOL))
    traffic = OpenLoopInjector(
        engine,
        cluster,
        PoissonArrivals(RATE_PER_S),
        pool,
        max_queue_depth=MAX_QUEUE_DEPTH,
        timeout_ns=REQUEST_TIMEOUT_NS,
        fluid=fluid,
    )
    # simlint: allow-wall-clock -- this benchmark measures the host
    # wall-clock cost of running the simulator itself.
    t0 = time.perf_counter()
    done = traffic.run(arrivals)
    stats = engine.run_until(done)
    wall_s = time.perf_counter() - t0  # simlint: allow-wall-clock -- harness timing

    sim_s = engine.now / SEC
    scheduled = engine._seq  # total scheduled entries: comparable across versions
    summary = stats.stats()
    return {
        "mode": "fluid" if fluid else "discrete",
        "arrivals": arrivals,
        "wall_s": round(wall_s, 6),
        "sim_s": round(sim_s, 6),
        "events_scheduled": scheduled,
        "events_per_sec": round(scheduled / wall_s),
        "arrivals_per_sec": round(arrivals / wall_s),
        "wall_per_sim_day_s": round(wall_s * 86_400.0 / sim_s, 3),
        "peak_queue_length": getattr(engine, "peak_queue_length", None),
        "events_dispatched": getattr(engine, "events_dispatched", None),
        "events_dropped": getattr(engine, "events_dropped", None),
        "guards_armed": cluster.guards_armed,
        "guards_skipped": cluster.guards_skipped,
        "offered": stats.offered,
        "completed": stats.completed,
        "rejected": stats.rejected,
        "timeouts": stats.timeouts,
        "p50_ns": round(summary.p50, 1),
        "p99_ns": round(summary.p99, 1),
    }


def run_pair(arrivals: int, modes=("discrete", "fluid")) -> dict:
    """Run the scenario in the requested modes; derive the fluid rate.

    The fluid figure of merit is events-*equivalent* per second: the
    discrete run's scheduled-entry count over the fluid wall clock
    (the work the fluid run made unnecessary, per second it took).
    """
    results = {}
    if "discrete" in modes:
        results["discrete"] = run_scenario(arrivals, fluid=False)
    if "fluid" in modes:
        fluid = run_scenario(arrivals, fluid=True)
        discrete = results.get("discrete")
        if discrete is not None:
            equivalent = discrete["events_scheduled"]
            fluid["events_equivalent_per_sec"] = round(
                equivalent / fluid["wall_s"]
            )
            fluid["speedup_vs_discrete"] = round(
                discrete["wall_s"] / fluid["wall_s"], 2
            )
        results["fluid"] = fluid
    return results


def check_regression(results: dict, committed: dict) -> None:
    """Raise if either mode's rate fell more than the tolerance."""
    gates = {
        "discrete": "events_per_sec",
        "fluid": "events_equivalent_per_sec",
    }
    failures = []
    for mode, key in gates.items():
        fresh = results.get(mode)
        baseline = committed.get(mode)
        if fresh is None or baseline is None or key not in fresh:
            continue
        committed_rate = baseline[key]
        floor = (1.0 - REGRESSION_TOLERANCE) * committed_rate
        measured = fresh[key]
        if measured < floor:
            failures.append(
                f"{mode}: {measured:,} {key} is below {floor:,.0f} "
                f"(70% of committed {committed_rate:,})"
            )
        else:
            print(
                f"regression gate OK [{mode}]: {measured:,} {key} >= "
                f"{floor:,.0f} (70% of committed {committed_rate:,})"
            )
    if failures:
        raise SystemExit(
            "REGRESSION: "
            + "; ".join(failures)
            + f"; see {RESULT_PATH.name} for the committed run"
        )


def payload(results: dict) -> dict:
    arrivals = next(iter(results.values()))["arrivals"]
    out = {
        "scenario": {
            "description": "open-loop Poisson arrivals vs echo-server cluster "
            "with guard-skipped deadlines and slab-recycled completions; "
            "fluid mode fast-forwards steady stretches analytically",
            "arrivals": arrivals,
            "rate_per_s": RATE_PER_S,
            "servers": SERVERS,
            "service_ns": SERVICE_NS,
            "request_timeout_ns": REQUEST_TIMEOUT_NS,
            "max_queue_depth": MAX_QUEUE_DEPTH,
            "seed": SEED,
        },
    }
    out.update(results)
    return out


def _load_committed() -> dict | None:
    if not RESULT_PATH.exists():
        return None
    committed = json.loads(RESULT_PATH.read_text())
    if "result" in committed and "discrete" not in committed:
        # Pre-fluid schema: a single discrete measurement under "result".
        return {"discrete": committed["result"]}
    return committed


def test_engine_perf_smoke(record):
    """Reduced dual-mode run: scenario sanity plus both regression gates."""
    results = run_pair(SMOKE_ARRIVALS)
    discrete, fluid = results["discrete"], results["fluid"]
    for result in (discrete, fluid):
        assert result["offered"] == SMOKE_ARRIVALS
        assert (
            result["offered"]
            == result["completed"] + result["rejected"] + result["timeouts"]
        )
        assert result["completed"] > 0.9 * SMOKE_ARRIVALS
    # Same seed, same answers: the fluid run must agree exactly on the
    # traffic counters while scheduling far fewer events.
    for key in ("offered", "completed", "rejected", "timeouts", "sim_s"):
        assert fluid[key] == discrete[key], (key, fluid[key], discrete[key])
    assert fluid["events_scheduled"] < discrete["events_scheduled"] / 100
    record(
        "engine_perf_smoke",
        "\n".join(
            f"{mode}.{key} = {value}"
            for mode, result in sorted(results.items())
            for key, value in sorted(result.items())
        ),
    )
    committed = _load_committed()
    if committed is not None:
        check_regression(results, committed)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced arrival count + regression gates (CI)",
    )
    parser.add_argument(
        "--arrivals", type=int, default=None, help="override the arrival count"
    )
    parser.add_argument(
        "--discrete-only", action="store_true", help="skip the fluid run"
    )
    parser.add_argument(
        "--fluid-only", action="store_true",
        help="skip the discrete run (no events-equivalent rate)",
    )
    args = parser.parse_args()
    smoke = args.smoke or SMOKE
    arrivals = args.arrivals or (SMOKE_ARRIVALS if smoke else ARRIVALS)
    modes = ("discrete", "fluid")
    if args.discrete_only:
        modes = ("discrete",)
    elif args.fluid_only:
        modes = ("fluid",)
    results = run_pair(arrivals, modes=modes)
    for mode, result in sorted(results.items()):
        for key, value in sorted(result.items()):
            print(f"{mode}.{key} = {value}")
    if smoke:
        committed = _load_committed()
        if committed is not None:
            check_regression(results, committed)
        else:
            print(f"no committed {RESULT_PATH.name}; skipping regression gate")
    else:
        RESULT_PATH.write_text(json.dumps(payload(results), indent=2) + "\n")
        print(f"wrote {RESULT_PATH}")
