"""Figure 4: cumulative distribution of compressed document sizes.

Paper: over a 210 Kdoc production sample, compressed documents average
6.5 KB, p99 = 53 KB, and only ~300 (0.14 %) exceed the 64 KB
truncation threshold.
"""

from repro.analysis import format_table, percentile
from repro.workloads import DocumentSizeDistribution

import random

SAMPLES = 210_000  # the paper's sample size


def run_experiment():
    # simlint: allow-rng -- engine-free standalone sampling run with a
    # pinned seed, replicating the paper's 210k-sample figure.
    rng = random.Random(2014)
    dist = DocumentSizeDistribution(rng)
    return dist.sample_many(SAMPLES)


def test_fig04_document_size_cdf(benchmark, record):
    sizes = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    mean = sum(sizes) / len(sizes)
    rows = []
    for pct in (25, 50, 75, 90, 95, 99, 99.9):
        rows.append((f"p{pct}", round(percentile(sizes, pct) / 1024.0, 1)))
    over_64k = sum(1 for s in sizes if s > 64 * 1024)
    rows.append(("mean (KB)", round(mean / 1024.0, 2)))
    rows.append(("docs > 64KB", over_64k))
    rows.append(("frac > 64KB", round(over_64k / len(sizes), 5)))
    table = format_table(
        ["statistic", "value"],
        rows,
        title=(
            "Figure 4 — compressed document size distribution "
            f"({SAMPLES} docs)\npaper: mean 6.5 KB, p99 53 KB, ~300 docs > 64 KB"
        ),
    )
    record("fig04_document_sizes", table)

    # Shape assertions against the paper's anchors.
    assert 5.0 * 1024 <= mean <= 8.0 * 1024
    assert 35 * 1024 <= percentile(sizes, 99) <= 70 * 1024
    assert over_64k / len(sizes) < 0.006
