"""Multi-tenant rings: packing, priority preemption, and the bitstream cache.

The paper dedicates one 8-FPGA ring per service (§2.3) — right for
planet-scale ranking, wasteful for small services that need two or
three role nodes.  The tenancy layer carves a ring into regions so
several services co-reside; this benchmark quantifies the three claims
the subsystem makes:

packing
    Four half-ring tenants on two rings: every ring hosts >= 2
    services, and aggregate throughput at equal hardware meets or
    beats the dedicated-ring baseline — which can place only two of
    the four services at all.

preemption
    With every ring full, applying a latency-class tenant evicts a
    batch tenant *within one reconcile pass*; the victim is re-placed
    onto surviving capacity in the same pass, and the co-resident
    latency tenant it shared nothing with is never disturbed.

cache
    Re-placing a service onto a ring that recently ran its images
    downgrades every node's reconfiguration to a ~250 µs model reload
    (the staged-DRAM fast path) instead of the cold flash path — the
    hit/miss counters in CapacityReport attribute the speedup.

Set ``BENCH_SMOKE=1`` (or pass ``--smoke``) for the reduced CI
configuration.
"""

import json
import os
import pathlib

from repro.analysis import format_table
from repro.cluster import (
    BitstreamCache,
    ClusterManager,
    ClusterScheduler,
    InsufficientClusterCapacity,
    ServiceSpec,
    echo_service,
)
from repro.fabric import Datacenter, TorusTopology
from repro.hardware.constants import MODEL_RELOAD_WORST_NS
from repro.sim import Engine
from repro.sim.units import SEC, US
from repro.workloads import OpenLoopInjector, PoissonArrivals

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

ARRIVALS = 150 if SMOKE else 600  # per tenant
RATE_PER_S = 40_000.0  # per tenant
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def make_dc(seed, width=2, height=8):
    eng = Engine(seed=seed)
    dc = Datacenter(
        eng, num_pods=1, topology=TorusTopology(width=width, height=height)
    )
    return eng, dc


def region_spec(name, fraction, priority="batch"):
    return ServiceSpec(
        service=echo_service(name),
        replicas=1,
        regions=fraction,
        priority=priority,
        health_period_ns=5e9,
    )


def drive_all(eng, handles, arrivals=ARRIVALS, rate=RATE_PER_S):
    """Open-loop traffic into every handle concurrently; aggregate stats."""
    pool = [object() for _ in range(32)]
    start = eng.now
    dones = []
    for index, handle in enumerate(handles):
        injector = OpenLoopInjector(
            eng, handle, PoissonArrivals(rate), pool, seed_tag=f"tenant{index}"
        )
        dones.append(injector.run(arrivals))
    for done in dones:
        if not done.triggered:
            eng.run_until(done)
    elapsed_s = (eng.now - start) / SEC
    stats = [done.value for done in dones]
    return {
        "tenants": len(handles),
        "completed": sum(s.completed for s in stats),
        "offered": sum(s.offered for s in stats),
        "elapsed_s": elapsed_s,
        "throughput_per_s": sum(s.completed for s in stats) / elapsed_s,
    }


# --- scenario 1: packing -------------------------------------------------------------


def run_packing() -> dict:
    """Four small services on two rings: dedicated vs region-packed."""
    # Dedicated baseline: whole-ring placement fits only two services.
    eng, dc = make_dc(seed=42)
    manager = ClusterManager(dc)
    dedicated = []
    placed_dedicated = 0
    for i in range(4):
        try:
            dedicated.append(
                manager.apply(
                    ServiceSpec(
                        service=echo_service(f"ded{i}"),
                        replicas=1,
                        health_period_ns=5e9,
                    )
                )
            )
            placed_dedicated += 1
        except InsufficientClusterCapacity:
            pass
    dedicated_run = drive_all(eng, dedicated)

    # Packed: the same four services as half-ring region tenants.
    eng, dc = make_dc(seed=42)
    manager = ClusterManager(dc)
    packed = [manager.apply(region_spec(f"ten{i}", 0.5)) for i in range(4)]
    report = manager.scheduler.capacity_report()
    tenants_per_ring = report.tenant_regions / report.occupied_rings
    packed_run = drive_all(eng, packed)
    return {
        "rings": dc.total_rings,
        "dedicated_placed": placed_dedicated,
        "dedicated": dedicated_run,
        "packed_placed": len(packed),
        "packed": packed_run,
        "tenants_per_ring": tenants_per_ring,
        "throughput_gain": (
            packed_run["throughput_per_s"] / dedicated_run["throughput_per_s"]
        ),
    }


# --- scenario 2: priority preemption -------------------------------------------------


def run_preemption() -> dict:
    """A latency tenant evicts a batch tenant in one reconcile pass."""
    _eng, dc = make_dc(seed=7, width=3)
    manager = ClusterManager(dc)
    victim = manager.apply(region_spec("victim", 0.75, priority="batch"))
    keeper = manager.apply(region_spec("keeper", 0.5, priority="latency"))
    keeper_before = keeper.deployments[0]
    # The third ring has a bad node run: held out, not free.
    spoiled = [s for s in dc.ring_slots() if s.ring_x == 2][0]
    bad = [server.node_id for server in dc.ring_servers(spoiled)][:2]
    manager.scheduler.cordon_region(spoiled, bad, reason="bad cable")

    passes_before = len(manager.reconcile_reports)
    urgent = manager.apply(region_spec("urgent", 1.0, priority="latency"))
    report = manager.reconcile_reports[-1]
    kinds = [action.kind for action in report.actions]
    return {
        "reconcile_passes": len(manager.reconcile_reports) - passes_before,
        "actions": kinds,
        "preemptions": kinds.count("preempt"),
        "urgent_ready": urgent.status().ready_replicas,
        "victim_ready": victim.status().ready_replicas,
        "victim_slot": str(manager.scheduler.slot_of(victim.deployments[0])),
        "urgent_slot": str(manager.scheduler.slot_of(urgent.deployments[0])),
        "keeper_undisturbed": keeper.deployments[0] is keeper_before,
    }


# --- scenario 3: bitstream cache -----------------------------------------------------


def run_cache() -> dict:
    """Cold vs warm re-placement of a region tenant onto the same ring."""
    timings = {}
    counters = {}
    for label, cache in (("cold", None), ("warm", BitstreamCache())):
        eng, dc = make_dc(seed=11)
        scheduler = ClusterScheduler(dc, bitstream_cache=cache)
        service = echo_service("tenant")
        first = scheduler.deploy_region(service, 0.5)
        scheduler.release(first)
        start = eng.now
        scheduler.deploy_region(service, 0.5)
        timings[label] = eng.now - start
        report = scheduler.capacity_report()
        counters[label] = (report.bitstream_hits, report.bitstream_misses)
    return {
        "cold_ns": timings["cold"],
        "warm_ns": timings["warm"],
        "speedup": timings["cold"] / timings["warm"],
        "model_reload_ns": MODEL_RELOAD_WORST_NS,
        "hits": counters["warm"][0],
        "misses": counters["warm"][1],
    }


# --- harness -------------------------------------------------------------------------


def run_experiment() -> dict:
    return {
        "packing": run_packing(),
        "preemption": run_preemption(),
        "cache": run_cache(),
    }


def build_table(r: dict) -> str:
    packing, preempt, cache = r["packing"], r["preemption"], r["cache"]
    rows = [
        ("rings (equal hardware)", packing["rings"]),
        ("services placed dedicated / packed",
         f"{packing['dedicated_placed']} / {packing['packed_placed']}"),
        ("tenants per occupied ring (packed)",
         f"{packing['tenants_per_ring']:.1f}"),
        ("aggregate throughput dedicated (docs/s)",
         f"{packing['dedicated']['throughput_per_s']:,.0f}"),
        ("aggregate throughput packed (docs/s)",
         f"{packing['packed']['throughput_per_s']:,.0f}"),
        ("packed / dedicated throughput", f"{packing['throughput_gain']:.2f}x"),
        ("preemption reconcile passes", preempt["reconcile_passes"]),
        ("batch tenants evicted", preempt["preemptions"]),
        ("latency tenant ready / victim re-placed",
         f"{preempt['urgent_ready']} / {preempt['victim_ready']}"),
        ("victim re-placed onto", preempt["victim_slot"]),
        ("co-resident latency tenant undisturbed",
         str(preempt["keeper_undisturbed"])),
        ("cold re-placement", f"{cache['cold_ns'] / US:,.0f} us"),
        ("warm re-placement", f"{cache['warm_ns'] / US:,.0f} us"),
        ("cache speedup", f"{cache['speedup']:,.0f}x"),
        ("cache hits / misses", f"{cache['hits']} / {cache['misses']}"),
    ]
    return format_table(
        ["quantity", "value"],
        rows,
        title=(
            "Multi-tenant rings — region packing beats dedicated rings at\n"
            "equal hardware, latency preempts batch in one reconcile pass,\n"
            "and the bitstream cache turns re-placement into a model reload"
        ),
    )


def check(r: dict) -> None:
    packing, preempt, cache = r["packing"], r["preemption"], r["cache"]
    # (a) >= 2 tenants per ring; packed aggregate >= dedicated baseline.
    assert packing["tenants_per_ring"] >= 2
    assert packing["packed_placed"] > packing["dedicated_placed"]
    assert (
        packing["packed"]["throughput_per_s"]
        >= packing["dedicated"]["throughput_per_s"]
    )
    # (b) one pass, one eviction, nobody dropped below replica count.
    assert preempt["reconcile_passes"] == 1
    assert preempt["preemptions"] == 1
    assert preempt["urgent_ready"] == 1
    assert preempt["victim_ready"] == 1
    assert preempt["keeper_undisturbed"]
    # (c) warm re-placement is model-reload-class, counters tie out.
    assert cache["warm_ns"] == MODEL_RELOAD_WORST_NS
    assert cache["warm_ns"] < cache["cold_ns"] / 50
    assert cache["hits"] == 4  # every node of the half-ring region was staged
    assert cache["misses"] > 0


def write_json(r: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "multi_tenant.json").write_text(
        json.dumps(r, indent=2, sort_keys=True) + "\n"
    )


def test_multi_tenant_rings(benchmark, record):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    check(r)
    record("multi_tenant", build_table(r))
    write_json(r)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="reduced configuration (CI)"
    )
    args = parser.parse_args()
    if args.smoke and not SMOKE:
        SMOKE = True
        ARRIVALS = 150
    r = run_experiment()
    check(r)
    print(build_table(r))
    write_json(r)
