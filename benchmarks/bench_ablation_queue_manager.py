"""§4.3 ablation: Queue Manager policy — model batching vs FIFO.

Paper: "Model Reload ... is an order of magnitude slower than
processing a single document, so the queue manager's role in
minimizing model reloads among queries is crucial to achieving high
performance."  We compare the paper's per-model batched queues against
a strawman FIFO that reloads on every model change.
"""

from bench_harness import build_ring
from repro.analysis import format_table

REQUESTS = 96
MODEL_MIX = {0: 0.4, 1: 0.3, 2: 0.3}


def run_policy(policy: str):
    eng, pod, pipeline, _pool = build_ring(seed=20, qm_policy=policy)
    pool = pipeline.make_request_pool(32, seed=55, model_mix=MODEL_MIX)
    from bench_harness import warm_engine

    warm_engine(pipeline, pool)
    pipeline.meter.start_measurement()
    done, stats = pipeline.spawn_injector(
        pod.server_at((1, 2)),
        threads=12,
        pool=pool,
        requests_per_thread=REQUESTS // 12,
        include_prep=False,
    )
    eng.run_until(done)
    qm = pipeline.stage_role("fe").queue_manager
    return {
        "throughput": pipeline.meter.per_second,
        "reloads": qm.reload_count,
        "completed": stats.completed,
        "mean_latency_us": sum(stats.latencies_ns) / len(stats.latencies_ns) / 1e3,
    }


def run_experiment():
    return {policy: run_policy(policy) for policy in ("batch", "fifo")}


def test_queue_manager_policy_ablation(benchmark, record):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    batch, fifo = results["batch"], results["fifo"]
    table = format_table(
        ["policy", "model reloads", "throughput (docs/s)", "mean latency (us)"],
        [
            ("batch (paper)", batch["reloads"], round(batch["throughput"]), round(batch["mean_latency_us"], 1)),
            ("fifo (strawman)", fifo["reloads"], round(fifo["throughput"]), round(fifo["mean_latency_us"], 1)),
        ],
        title=(
            "§4.3 ablation — Queue Manager policy under a 3-model query mix\n"
            "(reload ~100-250 us vs ~10 us/document: batching is crucial)"
        ),
    )
    record("ablation_queue_manager", table)

    assert batch["completed"] == fifo["completed"]
    assert fifo["reloads"] > 2 * batch["reloads"]
    assert batch["throughput"] > fifo["throughput"]
