"""Figure 8: per-stage injection throughput in PCIe and SL3 loopback.

Paper: every pipeline stage measured standalone on one FPGA, single-
and 12-threaded, requests over PCIe only vs routed through a loopback
SAS cable.  Scoring stages achieve very high rates; the pipeline is
limited by Feature Extraction's throughput.
"""

from bench_harness import build_ring  # noqa: F401  (shared import path)
from repro.analysis import format_table
from repro.core import LoopbackHarness, LoopbackMode
from repro.ranking.engine import ScoringEngine
from repro.ranking.models import ModelLibrary
from repro.sim import Engine
from repro.workloads import TraceGenerator

STAGES = ["fe", "ffe0", "ffe1", "compress", "score0", "score1", "score2", "spare"]


def run_experiment():
    library = ModelLibrary.default(scale=1.0)
    results = {}
    pool = [TraceGenerator(seed=41).request() for _ in range(24)]
    for stage in STAGES:
        stage_results = {}
        for mode in (LoopbackMode.PCIE, LoopbackMode.SL3):
            for threads in (1, 12):
                eng = Engine(seed=8)
                scoring = ScoringEngine(library)
                for request in pool:
                    scoring.score(request.document, library[request.document.model_id])
                harness = LoopbackHarness(eng, stage, scoring)
                rate = harness.measure_throughput(
                    pool, mode, threads=threads, requests_per_thread=12
                )
                stage_results[(mode.value, threads)] = rate
        results[stage] = stage_results
    return results


def test_fig08_per_stage_injection_throughput(benchmark, record):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    baseline = min(r[("sl3", 1)] for r in results.values())  # slowest 1-thread SL3
    rows = []
    for stage in STAGES:
        r = results[stage]
        rows.append(
            (
                stage,
                round(r[("pcie", 1)] / baseline, 2),
                round(r[("sl3", 1)] / baseline, 2),
                round(r[("pcie", 12)] / baseline, 2),
                round(r[("sl3", 12)] / baseline, 2),
            )
        )
    table = format_table(
        ["stage", "1t PCIe", "1t SL3", "12t PCIe", "12t SL3"],
        rows,
        title=(
            "Figure 8 — per-stage injection throughput, normalized to the\n"
            "slowest single-threaded SL3 stage (paper: FE is the bottleneck;\n"
            "scoring stages achieve very high rates)"
        ),
    )
    record("fig08_stage_throughput", table)

    by_stage_12t = {s: results[s][("sl3", 12)] for s in STAGES}
    assert min(by_stage_12t, key=by_stage_12t.get) == "fe"  # FE slowest
    assert by_stage_12t["score0"] > 2.0 * by_stage_12t["fe"]
    assert by_stage_12t["spare"] > by_stage_12t["fe"]
    for stage in STAGES:  # multithreading helps every stage
        assert results[stage][("pcie", 12)] > results[stage][("pcie", 1)]
