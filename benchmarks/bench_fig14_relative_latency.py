"""Figure 14: FPGA/software latency ratio vs. injection rate.

Paper: for production-representative injection rates, the FPGA ranker
achieves lower average and tail latencies than software, and the
advantage grows with load — software latency variability rises with
memory-hierarchy contention while the FPGA stays stable.  At rate 1.0
the FPGA's 95th-percentile latency is ~29 % lower (ratio ~0.71).
"""

from bench_harness import (
    RATE_ONE_PER_S,
    build_ring,
    latency_stats,
    open_loop_fpga,
    open_loop_software,
)
from repro.analysis import format_series

RATES = [0.5, 1.0, 1.5, 2.0]
SAMPLES_PER_POINT = 1_600


def run_experiment():
    ratios = {"avg": [], "p95": [], "p99": [], "p999": []}
    for rate in RATES:
        per_server = rate * RATE_ONE_PER_S
        # FPGA: all eight ring servers inject (production operation).
        eng, pod, pipeline, pool = build_ring(seed=14)
        fpga_lat = open_loop_fpga(
            eng,
            pipeline,
            pod.ring(0),
            pool,
            per_server,
            SAMPLES_PER_POINT,
            seed_tag=f"f{rate}",
        )
        fpga = latency_stats(fpga_lat)
        # Software: one server at the same per-server rate.
        eng2, pod2, pipeline2, pool2 = build_ring(seed=15)
        sw_lat = open_loop_software(
            eng2,
            pod2.server_at((1, 3)),
            pipeline2.scoring_engine,
            pool2,
            per_server,
            SAMPLES_PER_POINT,
            seed_tag=f"s{rate}",
        )
        software = latency_stats(sw_lat)
        ratios["avg"].append(fpga.mean / software.mean)
        ratios["p95"].append(fpga.p95 / software.p95)
        ratios["p99"].append(fpga.p99 / software.p99)
        ratios["p999"].append(fpga.p999 / software.p999)
    return ratios


def test_fig14_fpga_vs_software_latency(benchmark, record):
    ratios = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_series(
        "injection rate",
        {
            "avg (FPGA/SW)": [round(v, 3) for v in ratios["avg"]],
            "95%": [round(v, 3) for v in ratios["p95"]],
            "99%": [round(v, 3) for v in ratios["p99"]],
            "99.9%": [round(v, 3) for v in ratios["p999"]],
        },
        RATES,
        title=(
            "Figure 14 — relative latency (FPGA/software) vs injection rate\n"
            "(paper: all ratios < 1 and falling with load; ~0.71 at the 95th\n"
            "percentile for rate 1.0)"
        ),
    )
    record("fig14_relative_latency", table)

    index_rate_1 = RATES.index(1.0)
    # FPGA is faster everywhere.
    assert all(v < 1.0 for series in ratios.values() for v in series)
    # The paper reports a 29 % p95 reduction at rate 1.0 (ratio 0.71);
    # our software baseline carries less non-scoring overhead than
    # Bing's production stack, so the measured ratio is deeper — the
    # claim we hold is FPGA-faster with a big margin (see EXPERIMENTS.md).
    assert ratios["p95"][index_rate_1] <= 0.85
    # The advantage grows (ratio falls) with injection rate at the tail.
    assert ratios["p99"][-1] < ratios["p99"][0]
