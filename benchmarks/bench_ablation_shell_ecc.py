"""§3.2 ablations: shell area share and the SL3 ECC bandwidth tax.

Paper: the shell consumes 23 % of each FPGA; ECC on the SL3 links
costs 20 % of peak bandwidth but turns flit errors into corrected (or
cleanly dropped) packets instead of silent corruption.
"""


from repro.analysis import format_table
from repro.hardware.bitstream import shell_budget
from repro.hardware.constants import SL3_PEAK_GBPS, STRATIX_V_D5
from repro.shell.messages import Packet, PacketKind
from repro.shell.sl3 import Sl3Config, Sl3Endpoint, Sl3Link
from repro.sim import Engine

PACKETS = 300
PACKET_BYTES = 4_096
ERROR_RATE = 0.002  # per-flit single-bit-error probability


def measure_link(ecc_enabled: bool):
    eng = Engine(seed=33)
    config = Sl3Config(
        ecc_enabled=ecc_enabled,
        flit_single_error_rate=ERROR_RATE,
        flit_double_error_rate=ERROR_RATE / 50,
    )
    a = Sl3Endpoint(eng, "a", config)
    b = Sl3Endpoint(eng, "b", config)
    Sl3Link(eng, a, b, config=config, name=f"ecc-{ecc_enabled}")
    a.rx_halt = False
    b.rx_halt = False
    good, corrupted = [], []
    b.deliver = lambda p: (
        corrupted if p.kind is PacketKind.GARBAGE else good
    ).append(p)

    def sender():
        for _ in range(PACKETS):
            yield a.send(
                Packet(
                    kind=PacketKind.REQUEST,
                    src=(0, 0),
                    dst=(1, 0),
                    size_bytes=PACKET_BYTES,
                )
            )

    eng.process(sender())
    eng.run()
    elapsed_s = eng.now / 1e9
    goodput_gbps = len(good) * PACKET_BYTES * 8 / max(elapsed_s, 1e-12) / 1e9
    return {
        "delivered": len(good),
        "corrupted": len(corrupted),
        "dropped": b.stats.dropped_crc,
        "corrected_flits": b.stats.corrected_flits,
        "goodput_gbps": goodput_gbps,
        "effective_gbps": config.effective_gbps,
    }


def run_experiment():
    return {True: measure_link(True), False: measure_link(False)}


def test_shell_area_and_ecc_tradeoff(benchmark, record):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    shell = shell_budget(STRATIX_V_D5)
    shell_pct = shell.alms / STRATIX_V_D5.alms * 100
    on, off = results[True], results[False]
    table = format_table(
        ["configuration", "peak Gb/s", "delivered", "corrupted", "dropped", "corrected flits"],
        [
            (
                "ECC on (paper)",
                round(on["effective_gbps"], 1),
                on["delivered"],
                on["corrupted"],
                on["dropped"],
                on["corrected_flits"],
            ),
            (
                "ECC off",
                round(off["effective_gbps"], 1),
                off["delivered"],
                off["corrupted"],
                off["dropped"],
                off["corrected_flits"],
            ),
        ],
        title=(
            "§3.2 ablation — SL3 ECC: 20 % bandwidth tax vs silent corruption\n"
            f"(shell area share: {shell_pct:.0f} % of the D5; paper: 23 %)"
        ),
    )
    record("ablation_shell_ecc", table)

    assert abs(shell_pct - 23.0) < 0.5
    assert on["effective_gbps"] == SL3_PEAK_GBPS * 0.8  # the 20 % tax
    assert off["effective_gbps"] == SL3_PEAK_GBPS
    assert on["corrupted"] == 0  # ECC: corrected or cleanly dropped
    assert on["corrected_flits"] > 0
    assert off["corrupted"] > 0  # without ECC: silent garbage reaches the role
