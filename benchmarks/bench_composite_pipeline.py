"""Composite multi-ring replicas: chained latency, and surviving a
mid-run member-ring kill.

The paper's ranking accelerator spans one 8-FPGA ring, but §2.3
composes services from *groups* of FPGAs over the torus — larger
accelerators span multiple rings.  This benchmark measures that shape
end to end through the declarative control plane: ``ServiceSpec
(rings_per_replica=2)`` → gang placement → ``CompositeDeployment``
chains the member rings into one request path behind the front-end
``LoadBalancer``, driven by the ``OpenLoopInjector``.

Three configurations at the same offered load:

``1-ring``
    The baseline single-ring replica.

``2-ring chain``
    One replica spanning two rings on adjacent pods; per-request
    latency pays both stages (plus the inter-pod hop), throughput is
    bounded by one stage's capacity.

``2-ring chain + member kill``
    A mid-run ``kill_ring`` on one member exhausts its spares.  The
    whole replica fails as a unit (health = min over members), so the
    service is momentarily unservable: arrivals during the outage are
    SHED at the front door (``stats.rejected``), not crashed; the
    watchdog releases the gang (cordoning only the dead member's slot)
    and re-places it all-or-nothing on free rings; throughput recovers.

The service is a single-stage 20 µs echo per ring — the quantities
here (chain latency, outage shed, gang re-place time) are control-plane
and fabric timescales that do not depend on pipeline depth.  Set
``BENCH_SMOKE=1`` for the reduced CI configuration.
"""

import os

from repro.analysis import format_table, percentile
from repro.cluster import (
    ClusterFailureInjector,
    ClusterManager,
    ServiceSpec,
    echo_service,
)
from repro.fabric import Datacenter, TorusTopology
from repro.sim import Engine
from repro.sim.units import MS, SEC, US
from repro.workloads import OpenLoopInjector, PoissonArrivals

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

RATE_PER_S = 6_000.0
RUN_SECONDS = 1.8  # arrivals span: steady + outage + recovery + tail
FAIL_AT_NS = 0.25 * SEC  # deliberately not a watchdog-period multiple
WATCHDOG_PERIOD_NS = 0.15 * SEC
REQUEST_TIMEOUT_NS = 40 * MS
SAMPLE_NS = 50 * MS

CONFIGS = ["1-ring", "2-ring chain", "2-ring chain + member kill"]
if SMOKE:
    CONFIGS = ["1-ring", "2-ring chain + member kill"]


def run_one(config: str) -> dict:
    rings_per_replica = 1 if config == "1-ring" else 2
    kill_member = "kill" in config
    engine = Engine(seed=17 + rings_per_replica)
    datacenter = Datacenter(
        engine, num_pods=3, topology=TorusTopology(width=2, height=3)
    )
    manager = ClusterManager(datacenter)
    handle = manager.apply(
        ServiceSpec(
            service=echo_service(delay_ns=20_000.0),  # 20 us per stage
            replicas=1,
            rings_per_replica=rings_per_replica,
            request_timeout_ns=REQUEST_TIMEOUT_NS,
            health_period_ns=WATCHDOG_PERIOD_NS,
        )
    )
    injector = ClusterFailureInjector(datacenter)
    pool = [object() for _ in range(32)]
    arrivals = int(RATE_PER_S * RUN_SECONDS)
    traffic = OpenLoopInjector(
        engine,
        handle,
        PoissonArrivals(RATE_PER_S),
        pool,
        max_queue_depth=256,
        timeout_ns=REQUEST_TIMEOUT_NS,
    )
    started = engine.now
    done = traffic.run(arrivals)

    samples = [(0.0, 0)]  # (ns since start, cumulative completed)
    failed_at = None
    recovered_at = None
    while not done.triggered:
        engine.run(until=engine.now + SAMPLE_NS)
        elapsed = engine.now - started
        samples.append((elapsed, handle.balancer.completed))
        if kill_member and failed_at is None and elapsed >= FAIL_AT_NS:
            # Exhaust one member ring's spares: the whole composite
            # replica fails as a unit and the service goes dark until
            # the watchdog re-places the gang.
            injector.kill_ring(handle.deployments[0].members[1])
            failed_at = elapsed
        if (
            failed_at is not None
            and recovered_at is None
            and manager.scheduler.cordoned_slots
            and handle.status().ready_replicas == handle.spec.replicas
        ):
            recovered_at = elapsed
    stats = done.value

    arrival_end = arrivals / RATE_PER_S * SEC
    rates = [
        ((t0 + t1) / 2, (c1 - c0) * SEC / (t1 - t0))
        for (t0, c0), (t1, c1) in zip(samples, samples[1:], strict=False)
        if t1 > t0
    ]
    steady_end = failed_at if failed_at is not None else arrival_end
    steady = [r for t, r in rates if 2 * SAMPLE_NS <= t <= steady_end]
    steady_rate = sum(steady) / len(steady)
    outage_end = recovered_at if recovered_at is not None else arrival_end
    after = [r for t, r in rates if outage_end < t <= arrival_end - SAMPLE_NS]
    return {
        "config": config,
        "steady_per_s": steady_rate,
        "p50_us": percentile(stats.latencies_ns, 50) / US,
        "p99_us": percentile(stats.latencies_ns, 99) / US,
        "completed": stats.completed,
        "timeouts": stats.timeouts,
        "rejected": stats.rejected,
        "recovery_s": (
            (recovered_at - failed_at) / SEC if recovered_at is not None else None
        ),
        "recovered_per_s": (sum(after) / len(after)) if after else None,
        "ready": handle.status().ready_replicas,
        "cordoned": len(manager.scheduler.cordoned_slots),
    }


def run_experiment():
    return {config: run_one(config) for config in CONFIGS}


def test_composite_pipeline(benchmark, record):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for config in CONFIGS:
        r = results[config]
        rows.append(
            (
                config,
                f"{r['steady_per_s']:,.0f}",
                f"{r['p50_us']:.0f}",
                f"{r['p99_us']:.0f}",
                r["rejected"],
                f"{r['recovery_s']:.2f}" if r["recovery_s"] is not None else "-",
                f"{r['recovered_per_s']:,.0f}" if r["recovered_per_s"] else "-",
            )
        )
    table = format_table(
        [
            "replica shape",
            "steady thr (req/s)",
            "p50 (us)",
            "p99 (us)",
            "shed",
            "recovery (s)",
            "post-recovery thr",
        ],
        rows,
        title=(
            f"Composite 2-ring replicas vs a single ring — {RATE_PER_S:,.0f}"
            " req/s offered,\nmid-run member-ring kill re-placed as a gang"
            " (paper: services span groups\nof FPGAs over the torus, §2.3)"
        ),
    )
    record("composite_pipeline", table)

    single = results["1-ring"]
    assert single["rejected"] == 0 and single["timeouts"] == 0
    if "2-ring chain" in results:
        chained = results["2-ring chain"]
        # The chain pays both 20 us stages (plus hops and interrupt
        # wakes): clearly more than one stage, bounded by ~2x + overhead.
        assert chained["p50_us"] > 1.5 * single["p50_us"]
        assert chained["rejected"] == 0
        # Throughput still tracks the offered rate (capacity-bound by
        # one stage, and 6 K/s is far below a ring's saturation).
        assert chained["steady_per_s"] > 0.9 * single["steady_per_s"]

    killed = results["2-ring chain + member kill"]
    # The outage window shed load at the front door instead of crashing
    # the open-loop run...
    assert killed["rejected"] > 0
    assert killed["completed"] > 0
    # ...the gang was re-placed (only the dead member's slot cordoned)...
    assert killed["ready"] == 1
    assert killed["cordoned"] == 1
    assert killed["recovery_s"] is not None
    assert killed["recovery_s"] < 3.0
    # ...and throughput recovered to the steady rate.
    assert killed["recovered_per_s"] is not None
    assert killed["recovered_per_s"] > 0.8 * killed["steady_per_s"]
