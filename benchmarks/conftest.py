"""Shared fixtures for the benchmark harness.

Every benchmark writes its paper-style table/series into
``benchmarks/results/<name>.txt`` (and prints it, visible with ``-s``),
so the regenerated rows survive the pytest run.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record():
    """Persist (and print) one benchmark's output table."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _record
