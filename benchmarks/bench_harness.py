"""Shared experiment machinery for the benchmark suite.

Builds deployed ranking rings, runs closed-loop (thread-count) and
open-loop (Poisson arrival) injection experiments, and the software-
baseline equivalents — the methodology of §5.
"""

from __future__ import annotations

import itertools

from repro.analysis import LatencyStats, ReservoirSample
from repro.fabric import Pod, TorusTopology
from repro.host.slots import SlotClient
from repro.ranking.models import ModelLibrary
from repro.ranking.pipeline import (
    HOST_PREP_CPU_NS,
    RankingPipeline,
    SSD_LOOKUP_NS,
)
from repro.ranking.software_ranker import SoftwareRanker
from repro.ranking.stages import RankingPayload
from repro.sim import AllOf, Engine, Store
from repro.sim.units import SEC

# Empirical anchors from the calibration run (see EXPERIMENTS.md):
# the 8-FPGA ring saturates at ~77 K docs/s (FE-bound at 1 cycle per
# hit-vector token), i.e. ~9.6 K docs/s per server when all eight ring
# servers share it; a software server saturates at ~7.2 K docs/s
# nominal, ~5.5 K effective once memory-hierarchy contention inflates
# service times.  Per-server capacity ratio at the latency bound:
# ~1.9x (paper: 1.95x).  "Injection rate 1.0" normalizes so both
# systems remain stable through the paper's rate-2.0 sweep (Figure 14).
SOFTWARE_SATURATION_PER_S = 7_200.0
FPGA_PER_SERVER_SATURATION_PER_S = 9_600.0
RATE_ONE_PER_S = 2_600.0


def build_ring(
    seed: int = 1, model_scale: float = 1.0, qm_policy: str = "batch"
) -> tuple[Engine, Pod, RankingPipeline, list]:
    """A deployed 8-FPGA ranking ring on a 2x8 pod plus a request pool."""
    eng = Engine(seed=seed)
    pod = Pod(eng, topology=TorusTopology(width=2, height=8))
    library = ModelLibrary.default(scale=model_scale)
    pipeline = RankingPipeline(eng, pod, library, ring_x=0, qm_policy=qm_policy)
    pipeline.deploy()
    pool = pipeline.make_request_pool(48, seed=seed + 100)
    warm_engine(pipeline, pool)
    return eng, pod, pipeline, pool


def warm_engine(pipeline: RankingPipeline, pool: list) -> None:
    """Pre-compute functional results so timing runs are pure timing."""
    for request in pool:
        model = pipeline.library[request.document.model_id]
        pipeline.scoring_engine.score(request.document, model)


# --- open-loop (Poisson) injection ------------------------------------------------


def open_loop_fpga(
    eng: Engine,
    pipeline: RankingPipeline,
    servers: list,
    pool: list,
    rate_per_server_s: float,
    samples: int,
    seed_tag: str = "",
) -> ReservoirSample:
    """Poisson arrivals on each server; returns all recorded latencies.

    Each arrival waits for a free slot lease (64 per server), performs
    the software portion (SSD + hit-vector prep), injects, and sleeps
    until the score returns — the production flow of §4.
    """
    latencies = ReservoirSample()
    interarrival_ns = 1e9 / rate_per_server_s
    per_server = max(1, samples // len(servers))
    procs = []
    for server in servers:
        client = SlotClient(server)
        leases = Store(eng, name=f"leases:{server.machine_id}")
        for lease in client.leases(48):
            leases.try_put(lease)
        rng = eng.rng.stream(f"openloop:{seed_tag}:{server.machine_id}")
        pool_cycle = itertools.cycle(pool)

        def handle(arrived_ns, request, leases=leases, server=server):
            lease = yield leases.get()
            try:
                yield server.engine.timeout(SSD_LOOKUP_NS)
                yield from server.run_on_core(HOST_PREP_CPU_NS)
                payload = RankingPayload(document=request.document)
                yield from lease.request(
                    dst=pipeline.head_node,
                    size_bytes=request.size_bytes,
                    payload=payload,
                    timeout_ns=5 * SEC,
                )
                latencies.append(eng.now - arrived_ns)
            finally:
                yield leases.put(lease)

        def arrivals(rng=rng, pool_cycle=pool_cycle, handle=handle):
            children = []
            for _ in range(per_server):
                yield eng.timeout(rng.expovariate(1.0) * interarrival_ns)
                children.append(eng.process(handle(eng.now, next(pool_cycle))))
            yield AllOf(eng, children)

        procs.append(eng.process(arrivals()))
    eng.run_until(AllOf(eng, procs))
    return latencies


def open_loop_software(
    eng: Engine,
    server,
    scoring_engine,
    pool: list,
    rate_per_s: float,
    samples: int,
    seed_tag: str = "",
) -> ReservoirSample:
    """Poisson arrivals scored entirely in software on one server."""
    ranker = SoftwareRanker(server, scoring_engine)
    interarrival_ns = 1e9 / rate_per_s
    rng = eng.rng.stream(f"swloop:{seed_tag}:{server.machine_id}")
    pool_cycle = itertools.cycle(pool)
    latencies = ReservoirSample()

    def handle(arrived_ns, request):
        yield from ranker.score_request(request)
        latencies.append(eng.now - arrived_ns)

    def arrivals():
        children = []
        for _ in range(samples):
            yield eng.timeout(rng.expovariate(1.0) * interarrival_ns)
            children.append(eng.process(handle(eng.now, next(pool_cycle))))
        yield AllOf(eng, children)

    eng.run_until(eng.process(arrivals()))
    return latencies


def latency_stats(latencies: list) -> LatencyStats:
    return LatencyStats.from_samples(latencies)
