"""Table 1: FPGA area utilization and clock frequency per ranking stage.

Paper values (Stratix V D5, shell included):

    stage    logic%  ram%  dsp%  clock MHz
    FE         74     49    12     150
    FFE0       86     50    29     125
    FFE1       86     50    29     125
    Comp       20     64     0     180
    Score0     47     88     0     166
    Score1     47     88     0     166
    Score2     48     90     1     166
    Spare      10     15     0     175
"""

from repro.analysis import format_table
from repro.ranking.pipeline import ranking_bitstreams

PAPER = {
    "fe": (74, 49, 12, 150),
    "ffe0": (86, 50, 29, 125),
    "ffe1": (86, 50, 29, 125),
    "compress": (20, 64, 0, 180),
    "score0": (47, 88, 0, 166),
    "score1": (47, 88, 0, 166),
    "score2": (48, 90, 1, 166),
    "spare": (10, 15, 0, 175),
}


def run_experiment():
    return {role: report for role, (_bs, report) in ranking_bitstreams().items()}


def test_tab01_area_and_clock(benchmark, record):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for role, (p_logic, p_ram, p_dsp, p_clock) in PAPER.items():
        r = reports[role]
        rows.append(
            (
                role,
                round(r.logic_pct), p_logic,
                round(r.ram_pct), p_ram,
                round(r.dsp_pct), p_dsp,
                round(r.clock_mhz), p_clock,
            )
        )
    table = format_table(
        [
            "stage",
            "logic%", "(paper)",
            "ram%", "(paper)",
            "dsp%", "(paper)",
            "MHz", "(paper)",
        ],
        rows,
        title="Table 1 — FPGA area usage and clock frequency per ranking stage",
    )
    record("tab01_area_frequency", table)

    for role, (p_logic, p_ram, p_dsp, p_clock) in PAPER.items():
        r = reports[role]
        # Area within ~12 points of the paper (the shell floor makes
        # compress/spare logic report 23 % against the paper's 20/10).
        assert abs(r.logic_pct - p_logic) <= 14, role
        assert abs(r.ram_pct - p_ram) <= 12, role
        assert abs(r.dsp_pct - p_dsp) <= 6, role
        assert abs(r.clock_mhz - p_clock) <= 25, role
    # Orderings the paper's numbers imply.
    assert reports["ffe0"].logic_pct > reports["fe"].logic_pct
    assert reports["score2"].ram_pct > 80
    assert reports["compress"].dsp_pct == 0
    assert reports["ffe0"].clock_mhz < reports["compress"].clock_mhz
