"""§4.3 Model Reload timing.

Paper: worst case — all 2,014 M20K RAMs reloaded from DRAM at
DDR3-1333 — takes up to 250 µs: an order of magnitude slower than
processing a document, but much faster than FPGA reconfiguration
(milliseconds to seconds).  Actual reloads are far below worst case
because not every stage touches every memory.
"""

from repro.analysis import format_table
from repro.hardware.constants import (
    FULL_RECONFIG_NS,
    MODEL_RELOAD_WORST_NS,
    STRATIX_V_D5,
)
from repro.hardware.dram import DramController
from repro.ranking.models import ModelLibrary
from repro.sim import Engine
from repro.sim.units import US


def run_experiment():
    eng = Engine(seed=4)
    dram = DramController(eng)
    library = ModelLibrary.default(scale=1.0)
    worst_bytes = STRATIX_V_D5.total_bram_bits // 8
    worst_ns = dram.transfer_time_ns(worst_bytes, sequential=True)
    stage_times = {}
    model = library[0]
    for stage in ("fe", "ffe0", "ffe1", "compress", "score0", "score1", "score2"):
        stage_bytes = model.footprint.stage_bytes(stage)
        stage_times[stage] = dram.transfer_time_ns(stage_bytes, sequential=True)
    return worst_ns, stage_times


def test_model_reload_times(benchmark, record):
    worst_ns, stage_times = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [("worst case (all 2,014 M20Ks)", round(worst_ns / US, 1), "<=250 (paper)")]
    for stage, t in stage_times.items():
        rows.append((stage, round(t / US, 2), "<< worst case"))
    table = format_table(
        ["reload", "time (us)", "paper"],
        rows,
        title="§4.3 — Model Reload from DRAM (DDR3-1333, unified controllers)",
    )
    record("model_reload", table)

    # Worst case lands on the paper's 250 us (+-12 %).
    assert worst_ns <= MODEL_RELOAD_WORST_NS * 1.12
    assert worst_ns >= MODEL_RELOAD_WORST_NS * 0.5
    # Real reloads are much cheaper than worst case...
    assert all(t < worst_ns for t in stage_times.values())
    # ...slower than a document (~10 us) for the big stages...
    assert stage_times["fe"] > 10 * US * 0.3
    # ...and far faster than full reconfiguration.
    assert worst_ns < FULL_RECONFIG_NS / 100
