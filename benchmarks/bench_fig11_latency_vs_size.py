"""Figure 11: unloaded hardware pipeline latency vs. document size.

Paper: end-to-end hardware latency (normalized to the smallest
measured value) is proportional to the compressed document size —
buffering/streaming of control and data tokens plus a variable
computation time — reaching ~30x the minimum near 60 KB.
"""

from bench_harness import build_ring
from repro.analysis import format_series
from repro.workloads import TraceGenerator

SIZES = [512, 2_048, 6_500, 16_384, 32_768, 49_152, 65_536]


def run_experiment():
    eng, pod, pipeline, _pool = build_ring(seed=11)
    generator = TraceGenerator(seed=300)
    latencies = {}
    injector = pod.server_at((1, 0))
    for size in SIZES:
        requests = [generator.request(target_size=size) for _ in range(3)]
        for request in requests:
            model = pipeline.library[request.document.model_id]
            pipeline.scoring_engine.score(request.document, model)
        done, stats = pipeline.spawn_injector(
            injector,
            threads=1,  # unloaded: one request in flight at a time
            pool=requests,
            requests_per_thread=3,
            include_prep=False,  # pure hardware pipeline latency
        )
        eng.run_until(done)
        latencies[size] = sum(stats.latencies_ns) / len(stats.latencies_ns)
    return latencies


def test_fig11_latency_vs_document_size(benchmark, record):
    latencies = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    minimum = min(latencies.values())
    normalized = [round(latencies[s] / minimum, 2) for s in SIZES]
    table = format_series(
        "doc size (B)",
        {"latency (x min)": normalized},
        SIZES,
        title=(
            "Figure 11 — unloaded hardware pipeline latency vs compressed\n"
            "document size (paper: proportional to size, up to ~30x min)"
        ),
    )
    record("fig11_latency_vs_size", table)

    # Monotone growth, substantial dynamic range.  (The paper reaches
    # ~30x min; our fixed floor — DMA both ways plus the constant FFE /
    # scoring stage latencies — compresses the ratio; see EXPERIMENTS.md.)
    ordered = [latencies[s] for s in SIZES]
    assert all(b >= a * 0.95 for a, b in zip(ordered, ordered[1:], strict=False))
    assert latencies[65_536] > 3.5 * latencies[512]
