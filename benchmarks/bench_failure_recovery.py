"""§3.4-§3.5 failure handling: recovery time and the spare ablation.

Paper: the failure handling service "quickly reconfigures the fabric
upon errors or machine failures"; the spare FPGA lets the Service
Manager rotate the ring upon a machine failure and keep the ranking
pipeline alive.  We measure time-to-recovery after an FPGA hardware
fault, with the spare (ring rotation) vs. without (service must wait
for manual replacement).
"""

from bench_harness import build_ring
from repro.analysis import format_table
from repro.services import FailureInjector, FailureKind, HealthMonitor
from repro.sim.units import SEC


def run_experiment():
    # --- with spare: rotate the ring ----------------------------------
    eng, pod, pipeline, pool = build_ring(seed=18)
    monitor = HealthMonitor(eng, pod, mapping_manager=pipeline.mapping_manager)
    victim = pipeline.assignment.node_of("ffe1")
    injector = FailureInjector(pod)
    fault_time = eng.now
    injector.inject(FailureKind.FPGA_HARDWARE_FAULT, victim)
    eng.run_until(monitor.investigate([victim]))
    rotate_recovery_ns = eng.now - fault_time
    # Service works again end to end.
    done, stats = pipeline.spawn_injector(
        pod.server_at((1, 1)), threads=1, pool=pool[:2], requests_per_thread=2
    )
    eng.run_until(done)
    rotated_ok = stats.completed == 2 and stats.timeouts == 0

    # --- without spare: full ring already consumed --------------------
    eng2, pod2, pipeline2, _pool2 = build_ring(seed=19)
    assignment = pipeline2.assignment
    for node in list(assignment.spare_nodes):
        assignment.exclude(node)  # spare already burned
    monitor2 = HealthMonitor(eng2, pod2, mapping_manager=pipeline2.mapping_manager)
    victim2 = assignment.node_of("score1")
    injector2 = FailureInjector(pod2)
    injector2.inject(FailureKind.FPGA_HARDWARE_FAULT, victim2)
    eng2.run_until(monitor2.investigate([victim2]))
    # With no spare left the Mapping Manager cannot rotate: it marks
    # the assignment unservable and leaves it for reconciliation (the
    # control plane would release the ring and re-place the replica;
    # here, with a single ring, only manual service restores capacity).
    capacity_exhausted = not assignment.servable
    # Manual service path: replace hardware (~30 min) then redeploy.
    manual_ns = 30 * 60 * SEC + rotate_recovery_ns
    return {
        "rotate_recovery_ns": rotate_recovery_ns,
        "rotated_ok": rotated_ok,
        "capacity_exhausted": capacity_exhausted,
        "manual_ns": manual_ns,
    }


def test_failure_recovery_with_and_without_spare(benchmark, record):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["scenario", "time to recovery", "pipeline survives"],
        [
            (
                "FPGA fault, spare available (ring rotation)",
                f"{result['rotate_recovery_ns'] / SEC:.1f} s",
                "yes" if result["rotated_ok"] else "NO",
            ),
            (
                "FPGA fault, no spare left",
                "manual service "
                f"(~{result['manual_ns'] / SEC / 60:.0f} min)",
                "no - capacity exhausted"
                if result["capacity_exhausted"]
                else "unexpected",
            ),
        ],
        title=(
            "§3.5 — failure recovery: the spare enables seconds-scale ring\n"
            "rotation instead of manual service"
        ),
    )
    record("failure_recovery", table)

    assert result["rotated_ok"]
    # Rotation is reconfiguration-dominated: seconds, not minutes.
    assert result["rotate_recovery_ns"] < 30 * SEC
    assert result["capacity_exhausted"]
    assert result["manual_ns"] > 100 * result["rotate_recovery_ns"]
