"""Cluster scaling: throughput and p99 vs declared replicas at fixed load.

The production claim (§2.3, §6): the service scales by deploying more
rings across more pods, with the front end spreading query load over
them.  At a fixed open-loop Poisson offered load well above one ring's
saturation point (~77 K docs/s), aggregate completed throughput must
grow with the replica count — admission control sheds the excess at one
ring, and four rings across two pods absorb the full offered load —
while per-ring p99 stays balanced under the least-outstanding policy.

Runs on the declarative control plane: each configuration is one
``ServiceSpec`` applied through the ``ClusterManager``; traffic drives
the returned handle and the per-ring numbers come from
``handle.status()``.  Set ``BENCH_SMOKE=1`` for the reduced CI
configuration.
"""

import os

from repro.analysis import format_series, percentile
from repro.core import CatapultFabric
from repro.fabric import TorusTopology
from repro.sim.units import SEC, US
from repro.workloads import OpenLoopInjector, PoissonArrivals
from repro.workloads.traces import TraceGenerator

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

RING_COUNTS = [1, 2, 4]
OFFERED_PER_S = 150_000.0  # ~2x one ring's saturation throughput
ARRIVALS = 1_200 if SMOKE else 3_000
MAX_QUEUE_DEPTH = 256


def run_one(rings: int) -> dict:
    fabric = CatapultFabric(
        pods=2, topology=TorusTopology(width=2, height=8), seed=21
    )
    cluster = fabric.deploy_ranking_cluster(
        rings=rings,
        placement_policy="spread",
        balancing_policy="least_outstanding",
        model_scale=0.1,
    )
    handle = cluster.handle
    generator = TraceGenerator(seed=77)
    pool = [generator.request() for _ in range(48)]
    for request in pool:  # pre-compute functional scores: pure-timing run
        cluster.scoring_engine.score(
            request.document, cluster.library[request.document.model_id]
        )
    injector = OpenLoopInjector(
        fabric.engine,
        handle,
        PoissonArrivals(OFFERED_PER_S),
        pool,
        max_queue_depth=MAX_QUEUE_DEPTH,
    )
    started = fabric.engine.now
    stats = fabric.engine.run_until(injector.run(ARRIVALS))
    window_ns = fabric.engine.now - started
    status = handle.status()
    return {
        "rings": rings,
        "ready": status.ready_replicas,
        "pods_used": len({ring.slot.pod_id for ring in status.rings}),
        "throughput_per_s": stats.completed * SEC / window_ns,
        "rejected": stats.rejected,
        "agg_p99_us": stats.stats().p99 / US,
        "ring_p99_us": {
            ring.name: ring.p99_us
            for ring in status.rings
            if ring.p99_us is not None
        },
    }


def run_experiment():
    return {rings: run_one(rings) for rings in RING_COUNTS}


def test_cluster_scaling(benchmark, record):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_series(
        "#rings declared",
        {
            "aggregate throughput (docs/s)": [
                round(results[r]["throughput_per_s"]) for r in RING_COUNTS
            ],
            "rejected at admission": [results[r]["rejected"] for r in RING_COUNTS],
            "aggregate p99 (us)": [
                round(results[r]["agg_p99_us"]) for r in RING_COUNTS
            ],
            "worst ring p99 (us)": [
                round(max(results[r]["ring_p99_us"].values())) for r in RING_COUNTS
            ],
        },
        RING_COUNTS,
        title=(
            "Cluster scaling — open-loop Poisson at 150 K docs/s offered,\n"
            "least-outstanding balancing, replicas spread across 2 pods\n"
            "(paper: service capacity scales with deployed rings, §6)"
        ),
    )
    record("cluster_scaling", table)

    for r in RING_COUNTS:
        assert results[r]["ready"] == r  # every declared replica servable
    one, four = results[1], results[4]
    # One ring saturates: admission control must shed load...
    assert one["rejected"] > 0
    # ...and adding rings across >= 2 pods recovers the offered load.
    assert four["pods_used"] >= 2
    assert four["throughput_per_s"] > 1.5 * one["throughput_per_s"]
    assert four["agg_p99_us"] < one["agg_p99_us"]
    # Least-outstanding keeps the rings balanced: no ring's p99 above
    # 2x the median ring p99.
    ring_p99s = sorted(four["ring_p99_us"].values())
    median = percentile(ring_p99s, 50)
    assert max(ring_p99s) <= 2.0 * median
