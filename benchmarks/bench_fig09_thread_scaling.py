"""Figure 9: pipeline throughput vs. number of injecting CPU threads.

Paper: a single node (FE) injects with 1..32 threads; throughput rises
and saturates around 12 threads, where it is limited by the slowest
stage (FE).
"""

from bench_harness import build_ring
from repro.analysis import format_series

THREAD_COUNTS = [1, 2, 4, 8, 12, 16, 24, 32]


def run_experiment():
    throughputs = {}
    for threads in THREAD_COUNTS:
        eng, pod, pipeline, pool = build_ring(seed=9)
        injector = pod.server_at(pipeline.head_node)  # inject at FE's node
        pipeline.meter.start_measurement()
        # Paper methodology: "inject scoring requests collected from
        # real-world traces" — pre-encoded, no SSD/prep in the loop.
        done, _stats = pipeline.spawn_injector(
            injector,
            threads=threads,
            pool=pool,
            requests_per_thread=24,
            include_prep=False,
        )
        eng.run_until(done)
        throughputs[threads] = pipeline.meter.per_second
    return throughputs


def test_fig09_throughput_vs_threads(benchmark, record):
    throughputs = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    base = throughputs[1]
    normalized = [round(throughputs[t] / base, 2) for t in THREAD_COUNTS]
    table = format_series(
        "threads",
        {"throughput (x 1-thread)": normalized},
        THREAD_COUNTS,
        title=(
            "Figure 9 — pipeline throughput vs #CPU threads injecting\n"
            "(paper: saturation at ~12 threads, limited by FE)"
        ),
    )
    record("fig09_thread_scaling", table)

    # Rising then flat: 12 threads much better than 1; 32 barely
    # better than 12 (saturated).
    assert throughputs[12] > 3.0 * throughputs[1]
    assert throughputs[32] < 1.35 * throughputs[12]
    assert throughputs[2] > 1.5 * throughputs[1]
