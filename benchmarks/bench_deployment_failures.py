"""§2.3 deployment statistics: manufacturing failures at scale.

Paper: of 1,632 deployed servers, 7 cards (0.4 %) had hardware
failures and 1 of 3,264 cable-assembly links (0.03 %) was defective;
no further hardware failures over several months.

Part two feeds those manufacturing results into the control plane the
way operations would: every ring containing a failed card is cordoned
before service placement, and a ``ServiceSpec`` applied through the
``ClusterManager`` lands only on clean rings — the §2.3 "failures were
detected at deployment time and the machines serviced" workflow.
"""

from repro.analysis import format_table
from repro.cluster import ClusterManager, ServiceSpec, echo_service
from repro.fabric import Datacenter, TorusTopology
from repro.sim import Engine

TRIALS = 40


def run_experiment():
    reports = []
    for trial in range(TRIALS):
        dc = Datacenter(Engine(seed=trial))
        reports.append(dc.manufacturing_test())
    return reports


def test_deployment_failure_statistics(benchmark, record):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    mean_cards = sum(r.failed_cards for r in reports) / len(reports)
    mean_links = sum(r.failed_links for r in reports) / len(reports)
    table = format_table(
        ["statistic", "measured (mean of 40 deployments)", "paper"],
        [
            ("servers deployed", reports[0].total_cards, 1_632),
            ("links deployed", reports[0].total_links, 3_264),
            ("failed cards", round(mean_cards, 2), 7),
            ("failed links", round(mean_links, 2), 1),
            ("card failure rate", f"{mean_cards / 1_632:.4%}", "0.43%"),
            ("link failure rate", f"{mean_links / 3_264:.4%}", "0.03%"),
        ],
        title="§2.3 — deployment-time manufacturing failures",
    )
    record("deployment_failures", table)

    assert reports[0].total_cards == 1_632
    assert reports[0].total_links == 3_264
    assert 4.0 <= mean_cards <= 10.0  # ~7 expected
    assert 0.2 <= mean_links <= 2.5  # ~1 expected


def test_manufacturing_failures_cordon_placement(record):
    """Failed cards found at deployment time keep their rings out of
    the placement pool until serviced; the spec still converges on the
    remaining capacity."""
    engine = Engine(seed=13)
    # Small datacenter, exaggerated failure rate so several rings are hit.
    dc = Datacenter(engine, num_pods=4, topology=TorusTopology(width=2, height=3))
    report = dc.manufacturing_test(card_failure_rate=0.08)
    assert report.failed_cards > 0
    bad_slots = report.failed_card_slots

    manager = ClusterManager(dc)
    for slot in bad_slots:
        manager.scheduler.cordon(slot)
    capacity = manager.scheduler.capacity_report()
    assert capacity.cordoned_rings == len(bad_slots)

    replicas = min(3, capacity.free_rings)
    handle = manager.apply(
        ServiceSpec(
            service=echo_service(name="burn-in", role_name="head"),
            replicas=replicas,
        )
    )
    status = handle.status()
    assert status.ready_replicas == replicas
    placed = {ring.slot for ring in status.rings}
    assert not placed & set(bad_slots)  # no replica on a defective ring

    table = format_table(
        ["quantity", "value"],
        [
            ("rings total", capacity.total_rings),
            ("rings cordoned (failed cards)", capacity.cordoned_rings),
            ("replicas declared", replicas),
            ("replicas placed on clean rings", status.ready_replicas),
        ],
        title=(
            "§2.3 + control plane — manufacturing failures cordon rings;\n"
            "placement converges on the remaining clean capacity"
        ),
    )
    record("deployment_failures_cordon", table)
