"""§2.3 deployment statistics: manufacturing failures at scale.

Paper: of 1,632 deployed servers, 7 cards (0.4 %) had hardware
failures and 1 of 3,264 cable-assembly links (0.03 %) was defective;
no further hardware failures over several months.
"""

from repro.analysis import format_table
from repro.fabric import Datacenter
from repro.sim import Engine

TRIALS = 40


def run_experiment():
    reports = []
    for trial in range(TRIALS):
        dc = Datacenter(Engine(seed=trial))
        reports.append(dc.manufacturing_test())
    return reports


def test_deployment_failure_statistics(benchmark, record):
    reports = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    mean_cards = sum(r.failed_cards for r in reports) / len(reports)
    mean_links = sum(r.failed_links for r in reports) / len(reports)
    table = format_table(
        ["statistic", "measured (mean of 40 deployments)", "paper"],
        [
            ("servers deployed", reports[0].total_cards, 1_632),
            ("links deployed", reports[0].total_links, 3_264),
            ("failed cards", round(mean_cards, 2), 7),
            ("failed links", round(mean_links, 2), 1),
            ("card failure rate", f"{mean_cards / 1_632:.4%}", "0.43%"),
            ("link failure rate", f"{mean_links / 3_264:.4%}", "0.03%"),
        ],
        title="§2.3 — deployment-time manufacturing failures",
    )
    record("deployment_failures", table)

    assert reports[0].total_cards == 1_632
    assert reports[0].total_links == 3_264
    assert 4.0 <= mean_cards <= 10.0  # ~7 expected
    assert 0.2 <= mean_links <= 2.5  # ~1 expected
