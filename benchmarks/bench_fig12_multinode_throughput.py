"""Figure 12: aggregate throughput vs. number of injecting nodes.

Paper: with one thread per node, aggregate pipeline throughput grows
almost linearly with the number of injecting servers until the eight-
node pipeline saturates at FE's processing rate.
"""

from bench_harness import build_ring
from repro.analysis import format_series

NODE_COUNTS = [1, 2, 3, 4, 5, 6, 7, 8]


def run_experiment():
    throughputs = {}
    for nodes in NODE_COUNTS:
        eng, pod, pipeline, pool = build_ring(seed=12)
        ring_servers = pod.ring(0)
        pipeline.meter.start_measurement()
        injections = [
            pipeline.spawn_injector(
                server, threads=1, pool=pool, requests_per_thread=24
            )[0]
            for server in ring_servers[:nodes]
        ]
        from repro.sim import AllOf

        eng.run_until(AllOf(eng, injections))
        throughputs[nodes] = pipeline.meter.per_second
    return throughputs


def test_fig12_aggregate_throughput_vs_nodes(benchmark, record):
    throughputs = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    base = throughputs[1]
    normalized = [round(throughputs[n] / base, 2) for n in NODE_COUNTS]
    table = format_series(
        "#nodes injecting",
        {"aggregate throughput (x 1 node)": normalized},
        NODE_COUNTS,
        title=(
            "Figure 12 — aggregate throughput vs #injecting nodes, one\n"
            "thread each (paper: almost linear up to 8-node saturation)"
        ),
    )
    record("fig12_multinode_throughput", table)

    assert throughputs[4] > 3.0 * base  # near-linear early scaling
    assert throughputs[8] > 5.0 * base
    assert all(
        throughputs[b] >= throughputs[a] * 0.98
        for a, b in zip(NODE_COUNTS, NODE_COUNTS[1:], strict=False)
    )
