"""Figure 15: 95th-percentile latency vs. throughput — the headline.

Paper: bounding latency at Bing's 95th-percentile target, the FPGA
ranker sustains **95 % more throughput per server** than software
(the points at x = 1.0 on the paper's axis); equivalently, at equal
throughput it cuts p95 latency by 29 %.

The latency target is where an operator would place it: the point
where software's latency-throughput curve turns — we allow 2x p95
inflation over the nominal (rate-1.0) operating point, which lands on
software's knee.  The FPGA rides flat until FE saturates the ring.
"""

from bench_harness import (
    FPGA_PER_SERVER_SATURATION_PER_S,
    RATE_ONE_PER_S,
    build_ring,
    latency_stats,
    open_loop_fpga,
    open_loop_software,
)
from repro.analysis import format_table

SW_RATES = [1.0, 1.2, 1.4, 1.6, 1.8, 2.0]
FPGA_RATES = [1.0, 1.5, 2.0, 2.5, 3.0, 3.4, 3.7]
SAMPLES_PER_POINT = 1_000
TARGET_INFLATION = 2.0  # max tolerated p95 = 2x the nominal p95


def sweep_software():
    curve = []
    for rate in SW_RATES:
        eng, pod, pipeline, pool = build_ring(seed=16)
        latencies = open_loop_software(
            eng,
            pod.server_at((1, 3)),
            pipeline.scoring_engine,
            pool,
            rate * RATE_ONE_PER_S,
            SAMPLES_PER_POINT,
            seed_tag=f"sw{rate}",
        )
        curve.append((rate, latency_stats(latencies).p95))
    return curve


def sweep_fpga():
    curve = []
    for rate in FPGA_RATES:
        eng, pod, pipeline, pool = build_ring(seed=17)
        latencies = open_loop_fpga(
            eng,
            pipeline,
            pod.ring(0),
            pool,
            rate * RATE_ONE_PER_S,
            SAMPLES_PER_POINT,
            seed_tag=f"fp{rate}",
        )
        curve.append((rate, latency_stats(latencies).p95))
    return curve


def run_experiment():
    return sweep_software(), sweep_fpga()


def max_rate_within(curve, latency_bound):
    eligible = [rate for rate, p95 in curve if p95 <= latency_bound]
    return max(eligible) if eligible else 0.0


def test_fig15_throughput_at_latency_bound(benchmark, record):
    sw_curve, fpga_curve = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    nominal_p95 = dict(sw_curve)[1.0]
    target = TARGET_INFLATION * nominal_p95
    sw_max = max_rate_within(sw_curve, target)
    fpga_max = max_rate_within(fpga_curve, target)
    gain = fpga_max / sw_max - 1.0
    capacity_ratio = FPGA_PER_SERVER_SATURATION_PER_S / (
        sw_max * RATE_ONE_PER_S
    )

    rows = [
        ("software", rate, round(p95 / target, 3)) for rate, p95 in sw_curve
    ] + [("FPGA", rate, round(p95 / target, 3)) for rate, p95 in fpga_curve]
    table = format_table(
        ["system", "throughput (normalized)", "p95 latency (x target)"],
        rows,
        title=(
            "Figure 15 — 95th-percentile latency vs throughput\n"
            f"max throughput within p95 target: software {sw_max:.1f}, "
            f"FPGA {fpga_max:.1f} -> gain {gain:+.0%} (paper: +95 %)\n"
            f"per-server capacity at the bound: FPGA "
            f"{FPGA_PER_SERVER_SATURATION_PER_S:.0f}/s vs software "
            f"{sw_max * RATE_ONE_PER_S:.0f}/s = {capacity_ratio:.2f}x "
            "(paper: 1.95x)"
        ),
    )
    record("fig15_throughput_gain", table)

    # The headline claim: ~2x per-server throughput at equal p95.
    assert 0.50 <= gain <= 1.60
    assert 1.4 <= capacity_ratio <= 2.6
    # Software's p95 curve rises with rate (contention); the FPGA's
    # stays far below the target well past software's limit.
    assert sw_curve[-1][1] > sw_curve[0][1]
    assert dict(fpga_curve)[3.0] < target
