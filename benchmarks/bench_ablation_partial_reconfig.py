"""§4.3 / §3.2 ablation: the role-swap mechanism hierarchy.

The paper orders three mechanisms for changing what an FPGA computes:
Model Reload (≤250 µs), partial reconfiguration (milliseconds, future
work — implemented here), and full reconfiguration (seconds).  Each
step up costs ~an order of magnitude more time and more disruption:
model reload keeps everything alive; partial reconfiguration takes the
role offline but keeps the shell routing (no NMI, no TX/RX-Halt);
full reconfiguration darkens the node and needs the whole §3.4
protocol.
"""

from repro.analysis import format_table
from repro.fabric import Pod, TorusTopology
from repro.hardware import Bitstream, ResourceBudget
from repro.hardware.constants import FULL_RECONFIG_NS, MODEL_RELOAD_WORST_NS
from repro.hardware.dram import DramController
from repro.host import FpgaDriver
from repro.sim import Engine
from repro.sim.units import MS, US


def bitstream(name):
    return Bitstream(role_name=name, role_budget=ResourceBudget(alms=1000), clock_mhz=175.0)


def run_experiment():
    eng = Engine(seed=44)
    pod = Pod(eng, topology=TorusTopology(width=2, height=2))
    server = pod.server_at((0, 0))
    driver = FpgaDriver(server)
    eng.run_until(driver.reconfigure(bitstream("initial")))

    # 1. Model reload: worst case from DRAM.
    dram = DramController(eng)
    model_reload_ns = dram.transfer_time_ns(
        2014 * 20 * 1024 // 8, sequential=True
    )

    # 2. Partial reconfiguration: shell stays live.
    start = eng.now
    eng.run_until(server.shell.partial_reconfigure(bitstream("swap-a")))
    partial_ns = eng.now - start
    partial_crashes = server.crash_count

    # 3. Full reconfiguration with the §3.4 protocol.
    start = eng.now
    eng.run_until(driver.reconfigure(bitstream("swap-b")))
    full_ns = eng.now - start

    return {
        "model_reload_ns": model_reload_ns,
        "partial_ns": partial_ns,
        "full_ns": full_ns,
        "partial_crashes": partial_crashes,
        "total_crashes": server.crash_count,
    }


def test_role_swap_mechanism_hierarchy(benchmark, record):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["mechanism", "time", "role offline", "node dark", "needs NMI mask"],
        [
            (
                "Model Reload (§4.3)",
                f"{result['model_reload_ns'] / US:.0f} us",
                "no", "no", "no",
            ),
            (
                "partial reconfiguration (future work)",
                f"{result['partial_ns'] / MS:.0f} ms",
                "yes", "no", "no",
            ),
            (
                "full reconfiguration (§3.4 protocol)",
                f"{result['full_ns'] / MS:.0f} ms",
                "yes", "yes", "yes",
            ),
        ],
        title="§4.3 ablation — the role-swap mechanism hierarchy",
    )
    record("ablation_partial_reconfig", table)

    # Each step is ~an order of magnitude (or more) costlier.
    assert result["model_reload_ns"] <= MODEL_RELOAD_WORST_NS * 1.12
    assert result["partial_ns"] > 50 * result["model_reload_ns"]
    assert result["full_ns"] >= 5 * result["partial_ns"]
    assert result["full_ns"] >= FULL_RECONFIG_NS
    # Partial reconfiguration crashed nothing (no NMI raised).
    assert result["partial_crashes"] == 0
    assert result["total_crashes"] == 0
