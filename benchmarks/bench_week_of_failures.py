"""A week of failures, zero operator calls: the repair loop end-to-end.

The paper's production fleet ran for months with hardware failing at a
trickle (§2.3: 7 bad cards at deployment; §3.5: map out, raise a
service ticket, swap, return to the pool).  Before the repair loop
existed here, every cordoned slot was cordoned *forever* unless an
operator called ``uncordon()`` — long experiments bled capacity
monotonically.  This benchmark runs a compressed "week" under open-loop
traffic with one ring killed per "day" and a lognormal repair-time
distribution, and shows the loop closing by itself: each failure dips
pool capacity (free + occupied rings), each ticket expiry heals it back
to >= 95% of initial, and the declared replica count is restored after
every repair — with zero manual ``uncordon()`` calls anywhere.

Midweek, the service is also *upgraded in place*:
``handle.upgrade(new_spec)`` rolls every replica onto a new
ServiceDefinition one ring at a time — the paper's headline
reconfigurability story (same machines, new accelerator) — while
offered traffic keeps being admitted and completed throughout (no
total-outage window).

Time is compressed: one "day" is 1.5 simulated seconds (the quantities
under test — cordon, ticket timer, reconfigure ~1 s, re-place — do not
change with the day length, only the event count does).  Set
``BENCH_SMOKE=1`` (or pass ``--smoke``) for the reduced CI
configuration.
"""

import os

from repro.analysis import format_table
from repro.cluster import (
    ClusterFailureInjector,
    ClusterManager,
    RepairPolicy,
    ServiceSpec,
    echo_service,
)
from repro.fabric import Datacenter, TorusTopology
from repro.sim import Engine
from repro.sim.units import MS, SEC
from repro.workloads import OpenLoopInjector, PoissonArrivals

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

DAY_NS = 1.5 * SEC  # one compressed "day"
DAYS = 3 if SMOKE else 7
RATE_PER_S = 1_500.0 if SMOKE else 3_000.0
REPLICAS = 3
# Kill one ring per day, early in the day, so its repair (mean 0.5
# "days", lognormal) lands within the same day or the next.
FAIL_AT_FRACTION = 0.15
REPAIR = RepairPolicy(distribution="lognormal", mean_ns=0.5 * DAY_NS, sigma=0.5)
UPGRADE_DAY = 1 if SMOKE else 3  # roll the new image midweek
WATCHDOG_PERIOD_NS = 0.15 * SEC
REQUEST_TIMEOUT_NS = 40 * MS
SAMPLE_NS = 50 * MS


def capacity_fraction(manager) -> float:
    report = manager.scheduler.capacity_report()
    return (report.free_rings + report.occupied_rings) / report.total_rings


def run_week() -> dict:
    engine = Engine(seed=2014)
    datacenter = Datacenter(
        engine, num_pods=2, topology=TorusTopology(width=3, height=3)
    )
    manager = ClusterManager(datacenter, repair_policy=REPAIR)
    handle = manager.apply(
        ServiceSpec(
            service=echo_service(delay_ns=20_000.0),
            replicas=REPLICAS,
            balancing="weighted_health",
            request_timeout_ns=REQUEST_TIMEOUT_NS,
            health_period_ns=WATCHDOG_PERIOD_NS,
        )
    )
    injector = ClusterFailureInjector(datacenter)
    pool = [object() for _ in range(32)]
    # The week starts once the service is up (apply() spends ~1 s of
    # simulated time per replica on ring reconfiguration).
    start_ns = engine.now
    horizon_ns = DAYS * DAY_NS
    arrivals = int(RATE_PER_S * horizon_ns / SEC)
    traffic = OpenLoopInjector(
        engine,
        handle,
        PoissonArrivals(RATE_PER_S),
        pool,
        max_queue_depth=256,
        timeout_ns=REQUEST_TIMEOUT_NS,
    )
    done = traffic.run(arrivals)

    initial_capacity = capacity_fraction(manager)
    # simlint: allow-unbounded-accum -- bounded time-series: one row per
    # SAMPLE_NS tick over a fixed one-week horizon, not per-observation.
    samples = []  # (t_ns, capacity_fraction, open_tickets, admitted, completed)
    failures_injected = 0
    next_fail_day = 0
    upgrade_span = None
    new_service = echo_service(payload="scored-v2", delay_ns=15_000.0)
    while not done.triggered:
        engine.run(until=engine.now + SAMPLE_NS)
        now = engine.now
        elapsed = now - start_ns
        samples.append(
            (now, capacity_fraction(manager),
             len(manager.repairs.open_tickets), traffic.stats.admitted,
             traffic.stats.completed)
        )
        # One ring killed per day, threshold-based (a reconciliation
        # pass can fast-forward the clock across a day boundary, so an
        # equality check on the current day would skip that day's kill);
        # the last two days stay quiet so every ticket's repair fits
        # inside the measured horizon.
        if (
            next_fail_day < DAYS - 2
            and elapsed >= (next_fail_day + FAIL_AT_FRACTION) * DAY_NS
            and handle.deployments
        ):
            injector.kill_ring(handle.deployments[0])
            failures_injected += 1
            next_fail_day += 1
        if upgrade_span is None and elapsed >= (UPGRADE_DAY + 0.5) * DAY_NS:
            before = (now, traffic.stats.admitted, traffic.stats.completed)
            report = handle.upgrade(
                ServiceSpec(
                    service=new_service,
                    replicas=REPLICAS,
                    balancing="weighted_health",
                    request_timeout_ns=REQUEST_TIMEOUT_NS,
                    health_period_ns=WATCHDOG_PERIOD_NS,
                )
            )
            upgrade_span = {
                "start_s": before[0] / SEC,
                "end_s": engine.now / SEC,
                "admitted": traffic.stats.admitted - before[1],
                "completed": traffic.stats.completed - before[2],
                "releases": sum(
                    1 for a in report.actions if a.kind == "upgrade_release"
                ),
                "places": sum(
                    1 for a in report.actions if a.kind == "upgrade_place"
                ),
            }
    stats = done.value

    tickets = manager.repairs.tickets
    # Capacity after each repair *window*: the first sample at or after
    # the ticket's close with no ticket open — back-to-back failures
    # can overlap repairs, so "after the window" means the pool is out
    # of the shop entirely, not just that one ticket closed.
    post_repair = []
    for ticket in tickets:
        if ticket.closed_ns is None:
            continue
        later = [
            c for t, c, open_count, _a, _co in samples
            if t >= ticket.closed_ns and open_count == 0
        ]
        if later:
            post_repair.append(later[0])
    return {
        "initial_capacity": initial_capacity,
        "samples": samples,
        "stats": stats,
        "failures": failures_injected,
        "tickets": tickets,
        "post_repair": post_repair,
        "min_capacity": min(c for _t, c, _open, _a, _co in samples),
        "final_capacity": capacity_fraction(manager),
        "upgrade": upgrade_span,
        "ready": handle.status().ready_replicas,
        "manager": manager,
        "handle": handle,
        "new_service": new_service,
    }


def run_experiment():
    return run_week()


def test_week_of_failures_heals_without_operator(benchmark, record):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    stats = r["stats"]
    closed = [t for t in r["tickets"] if not t.open]
    mean_repair_days = (
        sum((t.closed_ns - t.opened_ns) for t in closed) / len(closed) / DAY_NS
        if closed
        else 0.0
    )
    rows = [
        ("days simulated", DAYS),
        ("rings (total pool)", r["manager"].scheduler.capacity_report().total_rings),
        ("rings killed (1/day)", r["failures"]),
        ("tickets opened", len(r["tickets"])),
        ("tickets repaired", r["manager"].repairs.repaired_count),
        ("mean repair time (days)", f"{mean_repair_days:.2f}"),
        ("manual uncordon() calls", 0),
        ("capacity min", f"{r['min_capacity']:.0%}"),
        ("capacity after each repair", " ".join(f"{c:.0%}" for c in r["post_repair"])),
        ("capacity end of week", f"{r['final_capacity']:.0%}"),
        ("offered / admitted / completed",
         f"{stats.offered:,} / {stats.admitted:,} / {stats.completed:,}"),
        ("admission fraction", f"{stats.admission_fraction:.1%}"),
        ("upgrade roll (replicas swapped)",
         f"{r['upgrade']['releases']} out + {r['upgrade']['places']} in, "
         f"{r['upgrade']['start_s']:.2f}s-{r['upgrade']['end_s']:.2f}s"),
        ("admitted during upgrade roll", f"{r['upgrade']['admitted']:,}"),
        ("completed during upgrade roll", f"{r['upgrade']['completed']:,}"),
    ]
    table = format_table(
        ["quantity", "value"],
        rows,
        title=(
            "A week of failures, zero operator calls — service tickets with a\n"
            "lognormal repair distribution heal every capacity dip; a midweek\n"
            "rolling upgrade swaps all replicas under traffic (§3.5 repair loop)"
        ),
    )
    record("week_of_failures", table)

    # The loop closed by itself: every ticket opened by a cordon was
    # repaired inside the horizon, with zero manual uncordon calls.
    assert r["failures"] >= (1 if SMOKE else 5)
    assert len(r["tickets"]) == r["failures"]
    assert r["manager"].repairs.repaired_count == len(r["tickets"])
    assert r["manager"].scheduler.cordoned_slots == []
    # Capacity dipped on each failure and returned to >= 95% of initial
    # after each repair window.
    assert r["min_capacity"] < r["initial_capacity"]
    assert r["post_repair"]
    assert all(c >= 0.95 * r["initial_capacity"] for c in r["post_repair"])
    assert r["final_capacity"] >= 0.95 * r["initial_capacity"]
    # The declared replica count survived the week.
    assert r["ready"] == REPLICAS
    # The rolling upgrade swapped every replica onto the new definition
    # while traffic kept flowing: no total-outage window.
    assert all(
        d.service is r["new_service"] for d in r["handle"].deployments
    )
    assert r["upgrade"]["admitted"] > 0
    assert r["upgrade"]["completed"] > 0
    # Offered arrivals are fully accounted for across the whole week.
    assert stats.offered == stats.admitted + stats.rejected
    assert stats.completed > 0.8 * stats.offered


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="reduced configuration (CI)"
    )
    args = parser.parse_args()
    if args.smoke and not SMOKE:
        SMOKE = True
        DAYS = 3
        RATE_PER_S = 1_500.0
        UPGRADE_DAY = 1
    r = run_week()
    stats = r["stats"]
    print(
        f"days={DAYS} failures={r['failures']} "
        f"repaired={r['manager'].repairs.repaired_count} "
        f"capacity min={r['min_capacity']:.0%} end={r['final_capacity']:.0%} "
        f"completed={stats.completed:,}/{stats.offered:,}"
    )
