"""A week of failures, zero operator calls: the repair loop end-to-end.

The paper's production fleet ran for months with hardware failing at a
trickle (§2.3: 7 bad cards at deployment; §3.5: map out, raise a
service ticket, swap, return to the pool).  Before the repair loop
existed here, every cordoned slot was cordoned *forever* unless an
operator called ``uncordon()`` — long experiments bled capacity
monotonically.  This benchmark runs a compressed "week" under open-loop
traffic with one ring killed per "day" and a lognormal repair-time
distribution, and shows the loop closing by itself: each failure dips
pool capacity (free + occupied rings), each ticket expiry heals it back
to >= 95% of initial, and the declared replica count is restored after
every repair — with zero manual ``uncordon()`` calls anywhere.

Midweek, the service is also *upgraded in place*:
``handle.upgrade(new_spec)`` rolls every replica onto a new
ServiceDefinition one ring at a time — the paper's headline
reconfigurability story (same machines, new accelerator) — while
offered traffic keeps being admitted and completed throughout (no
total-outage window).

Every capacity/throughput figure below comes from the *exported*
metrics series, not from in-process counters: a
:class:`~repro.cluster.metrics.MetricsRegistry` samples the cluster on
a simulated-time period into ``results/week_of_failures_metrics.jsonl``
(one canonical JSON object per line — byte-identical across same-seed
runs), and the analysis re-reads that file the way an external
dashboard would.  Traffic submits through the service's stable virtual
endpoint (``manager.endpoint(...)``), which rides out every
re-placement and the midweek upgrade without rewiring.

Time is compressed: one "day" is 1.5 simulated seconds (the quantities
under test — cordon, ticket timer, reconfigure ~1 s, re-place — do not
change with the day length, only the event count does).  Set
``BENCH_SMOKE=1`` (or pass ``--smoke``) for the reduced CI
configuration.
"""

import json
import os
import pathlib
import time

from repro.analysis import format_table
from repro.cluster import (
    ClusterFailureInjector,
    ClusterManager,
    MetricsRegistry,
    RepairPolicy,
    ServiceSpec,
    echo_service,
    read_series,
)
from repro.fabric import Datacenter, TorusTopology
from repro.sim import Engine, ScheduledTransients
from repro.sim.units import MS, SEC
from repro.workloads import OpenLoopInjector, PoissonArrivals

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

DAY_NS = 1.5 * SEC  # one compressed "day"
DAYS = 3 if SMOKE else 7
RATE_PER_S = 1_500.0 if SMOKE else 3_000.0
REPLICAS = 3
SERVICE = "echo-service"
# Kill one ring per day, early in the day, so its repair (mean 0.5
# "days", lognormal) lands within the same day or the next.
FAIL_AT_FRACTION = 0.15
REPAIR = RepairPolicy(distribution="lognormal", mean_ns=0.5 * DAY_NS, sigma=0.5)
UPGRADE_DAY = 1 if SMOKE else 3  # roll the new image midweek
WATCHDOG_PERIOD_NS = 0.15 * SEC
REQUEST_TIMEOUT_NS = 40 * MS
SAMPLE_NS = 50 * MS
METRICS_PATH = pathlib.Path(__file__).parent / "results" / (
    "week_of_failures_metrics.jsonl"
)
# The fluid run exports its own series (the discrete series above is a
# committed artifact) and the mode comparison lands next to it.
FLUID_METRICS_PATH = METRICS_PATH.with_name("week_of_failures_metrics_fluid.jsonl")
FLUID_RESULT_PATH = METRICS_PATH.with_name("week_of_failures_fluid.json")


def capacity_fraction_of(capacity: dict) -> float:
    """In-pool share of the ring fleet, from one exported snapshot."""
    return (
        capacity["free_rings"] + capacity["occupied_rings"]
    ) / capacity["total_rings"]


def run_week(fluid: bool = False) -> dict:
    engine = Engine(seed=2014, fluid=fluid)
    datacenter = Datacenter(
        engine, num_pods=2, topology=TorusTopology(width=3, height=3)
    )
    manager = ClusterManager(datacenter, repair_policy=REPAIR)
    handle = manager.apply(
        ServiceSpec(
            service=echo_service(),
            replicas=REPLICAS,
            balancing="weighted_health",
            request_timeout_ns=REQUEST_TIMEOUT_NS,
            health_period_ns=WATCHDOG_PERIOD_NS,
        )
    )
    injector = ClusterFailureInjector(datacenter)
    pool = [object() for _ in range(32)]
    # The week starts once the service is up (apply() spends ~1 s of
    # simulated time per replica on ring reconfiguration).
    start_ns = engine.now
    horizon_ns = DAYS * DAY_NS
    arrivals = int(RATE_PER_S * horizon_ns / SEC)
    if engine.fluid is not None:
        # The driver below mutates the cluster *between* run(until=...)
        # chunks — kills at day thresholds, the midweek upgrade.  The
        # engine's run deadline already stops every fluid window at the
        # chunk edge; registering the planned instants as well gives the
        # coordinator the guard lead, so the simulation is back to
        # exact discrete mode before each mutation, not just paused.
        planned = ScheduledTransients(
            [start_ns + (day + FAIL_AT_FRACTION) * DAY_NS for day in range(DAYS - 2)]
            + [start_ns + (UPGRADE_DAY + 0.5) * DAY_NS]
        )
        engine.fluid.register(planned)
    # Traffic holds the stable VIP endpoint, never the handle: the
    # front door survives each day's re-placement and the midweek
    # rolling upgrade with no rewiring in the workload.
    traffic = OpenLoopInjector(
        engine,
        manager.endpoint(SERVICE),
        PoissonArrivals(RATE_PER_S),
        pool,
        max_queue_depth=256,
        timeout_ns=REQUEST_TIMEOUT_NS,
    )
    # Observability is *exported*: the registry samples every SAMPLE_NS
    # of simulated time into the committed JSON-lines series that the
    # analysis below (and any dashboard) reads back.
    metrics_path = FLUID_METRICS_PATH if fluid else METRICS_PATH
    metrics = MetricsRegistry(manager, path=metrics_path)
    metrics.attach_workload(SERVICE, traffic)
    metrics.start(SAMPLE_NS)
    done = traffic.run(arrivals)
    wall_start = time.perf_counter()  # simlint: allow-wall-clock -- harness timing

    initial_capacity = capacity_fraction_of(
        manager.scheduler.capacity_report().to_dict()
    )
    failures_injected = 0
    next_fail_day = 0
    upgrade_span = None
    new_service = echo_service(payload="scored-v2", delay_ns=15_000.0)
    while not done.triggered:
        engine.run(until=engine.now + SAMPLE_NS)
        elapsed = engine.now - start_ns
        # One ring killed per day, threshold-based (a reconciliation
        # pass can fast-forward the clock across a day boundary, so an
        # equality check on the current day would skip that day's kill);
        # the last two days stay quiet so every ticket's repair fits
        # inside the measured horizon.
        if (
            next_fail_day < DAYS - 2
            and elapsed >= (next_fail_day + FAIL_AT_FRACTION) * DAY_NS
            and handle.deployments
        ):
            injector.kill_ring(handle.deployments[0])
            failures_injected += 1
            next_fail_day += 1
        if upgrade_span is None and elapsed >= (UPGRADE_DAY + 0.5) * DAY_NS:
            before = (engine.now, traffic.stats.admitted, traffic.stats.completed)
            report = handle.upgrade(
                ServiceSpec(
                    service=new_service,
                    replicas=REPLICAS,
                    balancing="weighted_health",
                    request_timeout_ns=REQUEST_TIMEOUT_NS,
                    health_period_ns=WATCHDOG_PERIOD_NS,
                )
            )
            upgrade_span = {
                "start_s": before[0] / SEC,
                "end_s": engine.now / SEC,
                "admitted": traffic.stats.admitted - before[1],
                "completed": traffic.stats.completed - before[2],
                "releases": sum(
                    1 for a in report.actions if a.kind == "upgrade_release"
                ),
                "places": sum(
                    1 for a in report.actions if a.kind == "upgrade_place"
                ),
            }
    wall_s = time.perf_counter() - wall_start  # simlint: allow-wall-clock -- harness timing
    stats = done.value
    # One last explicit snapshot at run end, so the series' final line
    # reflects the converged week-end state (the periodic sampler's
    # last tick can precede the final repair by up to one period).
    metrics.sample()
    metrics.stop()

    # Everything below reads the exported series from disk — the same
    # view an external dashboard gets, not in-process objects.
    series = read_series(metrics_path)
    samples = [
        (
            snap["t_ns"],
            capacity_fraction_of(snap["capacity"]),
            snap["capacity"]["open_tickets"],
            snap["services"][SERVICE]["workload"]["admitted"],
            snap["services"][SERVICE]["workload"]["completed"],
        )
        for snap in series
    ]
    tickets = manager.repairs.tickets
    # Capacity after each repair *window*: the first sample at or after
    # the ticket's close with no ticket open — back-to-back failures
    # can overlap repairs, so "after the window" means the pool is out
    # of the shop entirely, not just that one ticket closed.
    post_repair = []
    for ticket in tickets:
        if ticket.closed_ns is None:
            continue
        later = [
            c for t, c, open_count, _a, _co in samples
            if t >= ticket.closed_ns and open_count == 0
        ]
        if later:
            post_repair.append(later[0])
    return {
        "initial_capacity": initial_capacity,
        "samples": samples,
        "series": series,
        "stats": stats,
        "failures": failures_injected,
        "tickets": tickets,
        "post_repair": post_repair,
        "min_capacity": min(c for _t, c, _open, _a, _co in samples),
        "final_capacity": samples[-1][1],
        "upgrade": upgrade_span,
        "ready": series[-1]["services"][SERVICE]["ready_replicas"],
        "manager": manager,
        "handle": handle,
        "new_service": new_service,
        "wall_s": wall_s,
        "events_dispatched": engine.events_dispatched,
        "fluid_windows": engine.fluid.windows if engine.fluid else 0,
        "fluid_covered": engine.fluid.covered_arrivals if engine.fluid else 0,
    }


def run_experiment():
    return run_week()


def mode_figures(r: dict) -> dict:
    """The headline week figures for one mode, JSON-serializable."""
    stats = r["stats"]
    final = r["series"][-1]["services"][SERVICE]
    return {
        "wall_s": round(r["wall_s"], 3),
        "events_dispatched": r["events_dispatched"],
        "fluid_windows": r["fluid_windows"],
        "fluid_covered_arrivals": r["fluid_covered"],
        "offered": stats.offered,
        "admitted": stats.admitted,
        "completed": stats.completed,
        "rejected": stats.rejected,
        "failures": r["failures"],
        "tickets_repaired": r["manager"].repairs.repaired_count,
        "capacity_min": round(r["min_capacity"], 4),
        "capacity_final": round(r["final_capacity"], 4),
        "ready_replicas": r["ready"],
        "p99_us": (
            round(final["latency"]["p99"] / 1e3, 1) if final["latency"] else None
        ),
    }


def compare_modes(discrete: dict, fluid: dict) -> dict:
    """Wall-clock + figure deltas of the fluid week vs the discrete week.

    The fluid endpoint path is flow/sampler-based (admission assumed in
    steady state, sojourns drawn from the balancer's empirical
    reservoir), so figures are *close*, not bit-equal — the deltas
    quantify the approximation alongside the speedup.
    """
    d, f = mode_figures(discrete), mode_figures(fluid)

    def rel(key):
        base = d[key]
        if not base:
            return None
        return round((f[key] - base) / base, 4)

    return {
        "scenario": {
            "days": DAYS,
            "rate_per_s": RATE_PER_S,
            "smoke": SMOKE,
            "seed": 2014,
        },
        "discrete": d,
        "fluid": f,
        "deltas": {
            "speedup_wall": round(d["wall_s"] / f["wall_s"], 2)
            if f["wall_s"]
            else None,
            "events_ratio": round(
                d["events_dispatched"] / f["events_dispatched"], 2
            )
            if f["events_dispatched"]
            else None,
            "offered_rel": rel("offered"),
            "completed_rel": rel("completed"),
            "capacity_min_rel": rel("capacity_min"),
            "capacity_final_rel": rel("capacity_final"),
            "p99_rel": rel("p99_us") if d["p99_us"] and f["p99_us"] else None,
        },
    }


def test_week_of_failures_heals_without_operator(benchmark, record):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    stats = r["stats"]
    series = r["series"]
    closed = [t for t in r["tickets"] if not t.open]
    mean_repair_days = (
        sum((t.closed_ns - t.opened_ns) for t in closed) / len(closed) / DAY_NS
        if closed
        else 0.0
    )
    final = series[-1]["services"][SERVICE]
    rows = [
        ("days simulated", DAYS),
        ("rings (total pool)", series[-1]["capacity"]["total_rings"]),
        ("rings killed (1/day)", r["failures"]),
        ("tickets opened", len(r["tickets"])),
        ("tickets repaired", r["manager"].repairs.repaired_count),
        ("mean repair time (days)", f"{mean_repair_days:.2f}"),
        ("manual uncordon() calls", 0),
        ("capacity min", f"{r['min_capacity']:.0%}"),
        ("capacity after each repair", " ".join(f"{c:.0%}" for c in r["post_repair"])),
        ("capacity end of week", f"{r['final_capacity']:.0%}"),
        ("offered / admitted / completed",
         f"{final['workload']['offered']:,} / {final['workload']['admitted']:,} "
         f"/ {final['workload']['completed']:,}"),
        ("admission fraction",
         f"{final['workload']['admitted'] / final['workload']['offered']:.1%}"),
        ("service p99 (exported, us)",
         f"{final['latency']['p99'] / 1e3:.0f}" if final["latency"] else "n/a"),
        ("upgrade roll (replicas swapped)",
         f"{r['upgrade']['releases']} out + {r['upgrade']['places']} in, "
         f"{r['upgrade']['start_s']:.2f}s-{r['upgrade']['end_s']:.2f}s"),
        ("admitted during upgrade roll", f"{r['upgrade']['admitted']:,}"),
        ("completed during upgrade roll", f"{r['upgrade']['completed']:,}"),
        ("metrics series (snapshots)", f"{len(series)} -> {METRICS_PATH.name}"),
    ]
    table = format_table(
        ["quantity", "value"],
        rows,
        title=(
            "A week of failures, zero operator calls — service tickets with a\n"
            "lognormal repair distribution heal every capacity dip; a midweek\n"
            "rolling upgrade swaps all replicas under traffic (§3.5 repair loop);\n"
            "all figures read back from the exported JSON metrics series"
        ),
    )
    record("week_of_failures", table)

    # The loop closed by itself: every ticket opened by a cordon was
    # repaired inside the horizon, with zero manual uncordon calls.
    assert r["failures"] >= (1 if SMOKE else 5)
    assert len(r["tickets"]) == r["failures"]
    assert r["manager"].repairs.repaired_count == len(r["tickets"])
    assert r["manager"].scheduler.cordoned_slots == []
    # Capacity dipped on each failure and returned to >= 95% of initial
    # after each repair window — all read from the exported series.
    assert r["min_capacity"] < r["initial_capacity"]
    assert r["post_repair"]
    assert all(c >= 0.95 * r["initial_capacity"] for c in r["post_repair"])
    assert r["final_capacity"] >= 0.95 * r["initial_capacity"]
    # The declared replica count survived the week.
    assert r["ready"] == REPLICAS
    # The rolling upgrade swapped every replica onto the new definition
    # while traffic kept flowing: no total-outage window.
    assert all(
        d.service is r["new_service"] for d in r["handle"].deployments
    )
    assert r["upgrade"]["admitted"] > 0
    assert r["upgrade"]["completed"] > 0
    # Offered arrivals are fully accounted for across the whole week,
    # and the exported workload counters agree with the in-process ones.
    assert stats.offered == stats.admitted + stats.rejected
    assert stats.completed > 0.8 * stats.offered
    assert final["workload"] == stats.to_dict()


def test_week_of_failures_fluid_smoke(record):
    """The same week with fluid fast-forward on: the repair loop must
    still close by itself and the headline figures must stay close to
    the discrete run's (the endpoint path is sampler-based, so close,
    not bit-equal)."""
    r = run_week(fluid=True)
    stats = r["stats"]
    record(
        "week_of_failures_fluid",
        "\n".join(f"{k} = {v}" for k, v in sorted(mode_figures(r).items())),
    )
    # The repair loop still closes with the analytic core engaged.
    assert r["manager"].repairs.repaired_count == len(r["tickets"])
    assert r["manager"].scheduler.cordoned_slots == []
    assert r["final_capacity"] >= 0.95 * r["initial_capacity"]
    assert r["ready"] == REPLICAS
    assert stats.offered == stats.admitted + stats.rejected
    assert stats.completed > 0.8 * stats.offered
    # Fluid actually engaged: analytic windows covered real traffic.
    assert r["fluid_windows"] > 0
    assert r["fluid_covered"] > 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="reduced configuration (CI)"
    )
    parser.add_argument(
        "--fluid",
        action="store_true",
        help="run the week in both modes and write the wall-clock + "
        "figure-delta comparison to results/week_of_failures_fluid.json",
    )
    args = parser.parse_args()
    if args.smoke and not SMOKE:
        SMOKE = True
        DAYS = 3
        RATE_PER_S = 1_500.0
        UPGRADE_DAY = 1
    if args.fluid:
        discrete = run_week(fluid=False)
        fluid = run_week(fluid=True)
        report = compare_modes(discrete, fluid)
        FLUID_RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        deltas = report["deltas"]
        print(
            f"discrete wall={report['discrete']['wall_s']}s "
            f"fluid wall={report['fluid']['wall_s']}s "
            f"speedup={deltas['speedup_wall']}x "
            f"events_ratio={deltas['events_ratio']}x"
        )
        print(
            f"figure deltas: offered={deltas['offered_rel']} "
            f"completed={deltas['completed_rel']} "
            f"capacity_final={deltas['capacity_final_rel']} "
            f"p99={deltas['p99_rel']}"
        )
        print(f"wrote {FLUID_RESULT_PATH}")
        raise SystemExit(0)
    r = run_week()
    stats = r["stats"]
    print(
        f"days={DAYS} failures={r['failures']} "
        f"repaired={r['manager'].repairs.repaired_count} "
        f"capacity min={r['min_capacity']:.0%} end={r['final_capacity']:.0%} "
        f"completed={stats.completed:,}/{stats.offered:,} "
        f"metrics={len(r['series'])} snapshots"
    )
