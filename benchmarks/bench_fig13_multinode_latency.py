"""Figure 13: per-node latency vs. number of injecting nodes.

Paper: as injectors increase 1..8, latency rises slightly due to
network contention; the Spare node sees slightly higher latency than
FE because it forwards its requests along a channel shared with
responses.
"""

from bench_harness import build_ring
from repro.analysis import format_series

NODE_COUNTS = [1, 2, 3, 4, 5, 6, 7, 8]


def run_experiment():
    fe_latency = {}
    spare_latency = {}
    for nodes in NODE_COUNTS:
        eng, pod, pipeline, pool = build_ring(seed=13)
        ring_servers = pod.ring(0)
        # Measure from the two ends: FE's server and the spare's server.
        fe_server = ring_servers[0]
        spare_server = ring_servers[7]
        injectors = [fe_server, spare_server] + [
            s for s in ring_servers[1:7]
        ][: max(0, nodes - 2)]
        injectors = injectors[:nodes] if nodes >= 2 else [fe_server]
        stats_by_server = {}
        done_events = []
        for server in injectors:
            done, stats = pipeline.spawn_injector(
                server, threads=1, pool=pool, requests_per_thread=24
            )
            done_events.append(done)
            stats_by_server[server.machine_id] = stats
        from repro.sim import AllOf

        eng.run_until(AllOf(eng, done_events))

        def mean(server):
            latencies = stats_by_server[server.machine_id].latencies_ns
            return sum(latencies) / len(latencies)

        fe_latency[nodes] = mean(fe_server)
        spare_latency[nodes] = mean(spare_server) if nodes >= 2 else None
    return fe_latency, spare_latency


def test_fig13_node_latency_vs_injectors(benchmark, record):
    fe_latency, spare_latency = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    base = fe_latency[1]
    fe_series = [round(fe_latency[n] / base, 3) for n in NODE_COUNTS]
    spare_series = [
        round(spare_latency[n] / base, 3) if spare_latency[n] else "-"
        for n in NODE_COUNTS
    ]
    table = format_series(
        "#nodes injecting",
        {"FE node (x FE 1-node)": fe_series, "Spare node": spare_series},
        NODE_COUNTS,
        title=(
            "Figure 13 — per-node latency vs #injecting nodes (paper: slight\n"
            "rise with contention; Spare slightly above FE — its requests\n"
            "share a channel with responses)"
        ),
    )
    record("fig13_multinode_latency", table)

    # Slight latency growth with contention, bounded (paper: < 2x).
    assert fe_latency[8] < 2.5 * fe_latency[1]
    assert fe_latency[8] > fe_latency[1] * 0.99
    # The spare pays a small penalty over FE at full load.
    assert spare_latency[8] > fe_latency[8] * 0.99
