"""Figure 10: request latency vs. number of injecting CPU threads.

Paper: user-level latency (injection to response) grows with thread
count because of queuing ahead of the saturated pipeline.
"""

from bench_harness import build_ring
from repro.analysis import format_series

THREAD_COUNTS = [1, 2, 4, 8, 12, 16, 24, 32]


def run_experiment():
    latencies = {}
    for threads in THREAD_COUNTS:
        eng, pod, pipeline, pool = build_ring(seed=10)
        injector = pod.server_at(pipeline.head_node)
        # Paper methodology: pre-collected requests, no prep in the loop.
        done, stats = pipeline.spawn_injector(
            injector,
            threads=threads,
            pool=pool,
            requests_per_thread=24,
            include_prep=False,
        )
        eng.run_until(done)
        latencies[threads] = sum(stats.latencies_ns) / len(stats.latencies_ns)
    return latencies


def test_fig10_latency_vs_threads(benchmark, record):
    latencies = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    base = latencies[1]
    normalized = [round(latencies[t] / base, 2) for t in THREAD_COUNTS]
    table = format_series(
        "threads",
        {"mean latency (x 1-thread)": normalized},
        THREAD_COUNTS,
        title=(
            "Figure 10 — request latency vs #CPU threads injecting\n"
            "(paper: latency grows with threads due to queuing)"
        ),
    )
    record("fig10_thread_latency", table)

    assert latencies[32] > 2.5 * latencies[1]  # queuing growth
    assert latencies[32] > latencies[12] > latencies[1]  # monotone-ish
