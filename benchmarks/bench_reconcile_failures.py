"""Reconciliation under mid-run ring failures: dip depth and recovery.

The production claim (§2.3, §3.5): the service keeps serving through
hardware failures because management software closes the loop — the
Health Monitor diagnoses, the Mapping Manager remaps, and enough ring
instances stay deployed.  This benchmark measures that loop end to end
on the declarative control plane: open-loop traffic drives a 3-replica
service, a cable assembly failure kills one ring mid-run, and the
``ClusterManager`` watchdog detects it, sheds the dead ring (slot
cordoned for manual service), and restores the declared replica count
on a free slot.  Reported per offered load: steady throughput, the
depth of the throughput dip while the dead ring was still taking
traffic, and the recovery time (failure to replica-count restored —
dominated by the ~1 s full-ring reconfiguration, as in §4.3).

The service under test is a single-stage 20 µs echo, not the ranking
pipeline: the quantities measured here (detection latency, cordon +
re-place, reconfiguration time) are control-plane timescales that do
not depend on pipeline depth, and the light service keeps the event
count tractable.  Set ``BENCH_SMOKE=1`` for the reduced CI
configuration.
"""

import os

from repro.analysis import format_table
from repro.cluster import (
    ClusterFailureInjector,
    ClusterManager,
    ServiceSpec,
    echo_service,
)
from repro.fabric import Datacenter, TorusTopology
from repro.services.failures import FailureKind
from repro.sim import Engine
from repro.sim.units import MS, SEC
from repro.workloads import OpenLoopInjector, PoissonArrivals

SMOKE = bool(os.environ.get("BENCH_SMOKE"))

RATES_PER_S = [6_000.0] if SMOKE else [6_000.0, 12_000.0]
# Kill one ring this far into the run — deliberately NOT a multiple of
# the watchdog period, so the dead ring takes traffic for a realistic
# fraction of a period before the sweep maps it out.
FAIL_AT_NS = 0.25 * SEC
RUN_SECONDS = 1.8  # arrivals span: steady + outage + recovery + tail
WATCHDOG_PERIOD_NS = 0.15 * SEC
REQUEST_TIMEOUT_NS = 40 * MS
SAMPLE_NS = 50 * MS


def run_one(rate_per_s: float) -> dict:
    engine = Engine(seed=int(rate_per_s) % 97)
    datacenter = Datacenter(
        engine, num_pods=2, topology=TorusTopology(width=2, height=3)
    )
    manager = ClusterManager(datacenter)
    handle = manager.apply(
        ServiceSpec(
            service=echo_service(delay_ns=20_000.0),  # 20 us service time
            replicas=3,
            balancing="weighted_health",
            request_timeout_ns=REQUEST_TIMEOUT_NS,
            health_period_ns=WATCHDOG_PERIOD_NS,
        )
    )
    injector = ClusterFailureInjector(datacenter)
    pool = [object() for _ in range(32)]
    arrivals = int(rate_per_s * RUN_SECONDS)
    traffic = OpenLoopInjector(
        engine,
        handle,
        PoissonArrivals(rate_per_s),
        pool,
        max_queue_depth=256,
        timeout_ns=REQUEST_TIMEOUT_NS,
    )
    started = engine.now
    done = traffic.run(arrivals)

    samples = [(0.0, 0)]  # (ns since start, cumulative completed)
    failed_at = None
    recovered_at = None
    while not done.triggered:
        engine.run(until=engine.now + SAMPLE_NS)
        elapsed = engine.now - started
        samples.append((elapsed, handle.balancer.completed))
        if failed_at is None and elapsed >= FAIL_AT_NS:
            injector.inject_role(
                handle.deployments[0], FailureKind.CABLE_ASSEMBLY_FAILURE
            )
            failed_at = elapsed
        if (
            failed_at is not None
            and recovered_at is None
            and manager.scheduler.cordoned_slots
            and handle.status().ready_replicas == handle.spec.replicas
        ):
            recovered_at = elapsed
    stats = done.value

    # Interval throughputs from the cumulative samples (intervals vary:
    # a reconciliation pass fast-forwards the clock while it replaces a
    # ring, so rates are computed over actual elapsed time).
    arrival_end = arrivals / rate_per_s * SEC
    rates = [
        ((t0 + t1) / 2, (c1 - c0) * SEC / (t1 - t0))
        for (t0, c0), (t1, c1) in zip(samples, samples[1:], strict=False)
        if t1 > t0
    ]
    steady = [r for t, r in rates if 2 * SAMPLE_NS <= t <= failed_at]
    steady_rate = sum(steady) / len(steady)
    outage_end = recovered_at if recovered_at is not None else arrival_end
    outage = [r for t, r in rates if failed_at <= t <= outage_end]
    min_rate = min(outage)
    after = [r for t, r in rates if outage_end < t <= arrival_end - SAMPLE_NS]
    return {
        "rate": rate_per_s,
        "steady_per_s": steady_rate,
        "dip_depth": 1.0 - min_rate / steady_rate,
        "recovery_s": (
            (recovered_at - failed_at) / SEC if recovered_at is not None else None
        ),
        "recovered_per_s": (sum(after) / len(after)) if after else None,
        "completed": stats.completed,
        "timeouts": stats.timeouts,
        "rejected": stats.rejected,
        "ready": handle.status().ready_replicas,
        "cordoned": len(manager.scheduler.cordoned_slots),
    }


def run_experiment():
    return {rate: run_one(rate) for rate in RATES_PER_S}


def test_reconcile_restores_replicas(benchmark, record):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for rate in RATES_PER_S:
        r = results[rate]
        rows.append(
            (
                f"{rate:,.0f}",
                f"{r['steady_per_s']:,.0f}",
                f"{r['dip_depth']:.0%}",
                f"{r['recovery_s']:.2f}" if r["recovery_s"] is not None else "-",
                f"{r['recovered_per_s']:,.0f}" if r["recovered_per_s"] else "-",
                r["timeouts"],
                r["rejected"],
            )
        )
    table = format_table(
        [
            "offered (docs/s)",
            "steady thr (docs/s)",
            "dip depth",
            "recovery (s)",
            "post-recovery thr",
            "timeouts",
            "shed",
        ],
        rows,
        title=(
            "Reconciliation under a mid-run cable-assembly failure —\n"
            "3 declared replicas, weighted-health front end, 150 ms watchdog\n"
            "(paper: failures handled by Health Monitor + Mapping Manager, §3.5)"
        ),
    )
    record("reconcile_failures", table)

    for rate in RATES_PER_S:
        r = results[rate]
        # The manager restored the declared replica count on a fresh
        # slot and cordoned the dead ring's slot.
        assert r["ready"] == 3
        assert r["cordoned"] == 1
        assert r["recovery_s"] is not None
        # Recovery is reconfiguration-dominated: ~1 s reload plus at
        # most one watchdog period of detection latency, well under 3 s.
        assert r["recovery_s"] < 3.0
        # The failure was visible (some requests timed out on the dead
        # ring before the sweep excluded it)...
        assert r["timeouts"] > 0
        assert r["dip_depth"] > 0.02
        # ...and throughput came back once the replica was re-placed.
        if r["recovered_per_s"] is not None:
            assert r["recovered_per_s"] > 0.8 * r["steady_per_s"]
