"""§5 power measurements: the power virus and the board budget.

Paper: a power-virus bitstream (maximum area and activity factor)
measured 22.7 W; the board stays under 20 W in normal operation and
under the 25 W PCIe power budget always (no jumper cables, §2.1).
"""

from repro.analysis import format_table
from repro.hardware import PowerModel, ThermalModel
from repro.hardware.constants import BOARD_LIMITS
from repro.ranking.pipeline import ranking_bitstreams


def run_experiment():
    model = PowerModel()
    virus = model.power_virus()
    roles = {}
    for role, (bitstream, report) in ranking_bitstreams().items():
        roles[role] = model.estimate(
            bitstream.role_budget, clock_mhz=report.clock_mhz, toggle_rate=0.25
        )
    return virus, roles


def test_power_virus_and_role_power(benchmark, record):
    virus, roles = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    thermal = ThermalModel(inlet_temp_c=68.0)  # worst-case CPU exhaust
    rows = [("power virus", round(virus.total_w, 1), "22.7 (paper)")]
    for role, report in sorted(roles.items()):
        rows.append((role, round(report.total_w, 1), "<20 (paper)"))
    table = format_table(
        ["configuration", "watts", "paper"],
        rows,
        title="§5 — board power: virus vs ranking roles (25 W PCIe budget)",
    )
    record("power_virus", table)

    assert abs(virus.total_w - BOARD_LIMITS.power_virus_w) <= 1.2
    assert virus.within_pcie_budget
    for role, report in roles.items():
        assert report.total_w < BOARD_LIMITS.normal_power_limit_w, role
        # Normal operation is thermally safe even in 68 C exhaust air.
        assert thermal.junction_temp_c(report.total_w) < 100.0, role
