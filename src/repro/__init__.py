"""Catapult reproduction: a reconfigurable fabric for accelerating
large-scale datacenter services (Putnam et al., ISCA 2014).

The package simulates the full Catapult system: FPGA boards with a
shell/role split, a 6x8 torus of SL3 links per 48-server pod, pod-level
management services, and the Bing ranking pipeline mapped onto rings of
eight FPGAs — plus the pure-software baseline it is compared against.

Start with :mod:`repro.core` (the high-level fabric API) or the
``examples/`` directory.
"""

__version__ = "1.0.0"
