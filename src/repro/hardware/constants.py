"""Named constants from the paper and the Stratix V handbook.

Every number used by the timing, area and power models lives here with a
pointer to where the paper (or the Altera Stratix V handbook the paper
cites) states it.
"""

from __future__ import annotations

import dataclasses
import enum


@dataclasses.dataclass(frozen=True)
class FpgaDevice:
    """Capacity of one FPGA device."""

    name: str
    alms: int  # adaptive logic modules ("Logic" in Table 1)
    m20k_blocks: int  # 20 Kb embedded RAM blocks ("RAM" in Table 1)
    dsp_blocks: int  # 18x18 DSP blocks ("DSP" in Table 1)
    m20k_bits: int = 20 * 1024  # capacity of one M20K block

    @property
    def total_bram_bits(self) -> int:
        return self.m20k_blocks * self.m20k_bits


# Altera Stratix V D5 (5SGSD5), the part on the Catapult board (§2.1).
# 172,600 ALMs, 2,014 M20K blocks (§4.3 gives the M20K count), 1,590
# 18x18 DSPs per the Stratix V handbook [3].
STRATIX_V_D5 = FpgaDevice(
    name="Stratix V D5",
    alms=172_600,
    m20k_blocks=2_014,
    dsp_blocks=1_590,
)

# Prototype device from §2: Xilinx Virtex 6 SX315T (six per daughtercard).
VIRTEX_6_SX315T = FpgaDevice(
    name="Virtex 6 SX315T",
    alms=49_200,  # slices, used only for the prototype comparison
    m20k_blocks=704,
    dsp_blocks=1_344,
)


@dataclasses.dataclass(frozen=True)
class BoardLimits:
    """Power/thermal budget of the daughtercard (§2.1)."""

    pcie_power_budget_w: float = 25.0  # PCIe bus alone powers the card
    normal_power_limit_w: float = 20.0  # thermal requirement in operation
    power_virus_w: float = 22.7  # measured max (§5)
    max_inlet_temp_c: float = 68.0  # CPU exhaust heats the FPGA
    max_junction_temp_c: float = 100.0  # industrial-grade part rating
    tco_limit_fraction: float = 0.30  # ≤30 % added TCO
    server_power_limit_fraction: float = 0.10  # ≤10 % added server power


BOARD_LIMITS = BoardLimits()


class DramSpeed(enum.Enum):
    """DDR3 operating points of the two SO-DIMMs (§2.1, §3.2).

    Dual-rank DIMMs run at DDR3-1333 (667 MHz) with the full 8 GB;
    single-rank operation trades capacity for DDR3-1600 speeds.
    """

    DDR3_1333_DUAL_RANK = ("ddr3-1333", 667.0, 8 * 2**30)
    DDR3_1600_SINGLE_RANK = ("ddr3-1600", 800.0, 4 * 2**30)

    def __init__(self, label: str, clock_mhz: float, capacity_bytes: int):
        self.label = label
        self.clock_mhz = clock_mhz
        self.capacity_bytes = capacity_bytes

    @property
    def peak_bandwidth_bytes_per_ns(self) -> float:
        """Peak transfer rate: DDR moves 8 bytes per channel per beat.

        DDR3-1333 -> 1333 MT/s * 8 B = 10.66 GB/s per DIMM.
        """
        transfers_per_ns = 2.0 * self.clock_mhz / 1_000.0
        return transfers_per_ns * 8.0


# --- Inter-FPGA network (§2.2, §3.2) ------------------------------------

SL3_LANE_GBPS = 10.0  # each high-speed signal
SL3_LANES_PER_LINK = 2  # pairs of signals per neighbour
SL3_PEAK_GBPS = SL3_LANE_GBPS * SL3_LANES_PER_LINK  # 20 Gb/s bidirectional
SL3_ECC_BANDWIDTH_TAX = 0.20  # ECC costs 20 % of peak bandwidth (§3.2)
SL3_HOP_LATENCY_NS = 400.0  # "sub-microsecond latency" per hop (§2.2)
SL3_FLIT_BYTES = 32  # 256-bit flits on the SL3 cores

# --- PCIe interface (§3.1) ------------------------------------------------

PCIE_SLOT_COUNT = 64
PCIE_SLOT_BYTES = 64 * 1024
PCIE_DMA_LATENCY_TARGET_NS = 10_000.0  # <10 us for <=16 KB transfers
PCIE_DMA_SETUP_NS = 1_200.0  # fixed per-transfer overhead
PCIE_GBPS = 32.0  # x8 gen2-equivalent effective payload rate

# --- Reconfiguration (§4.3) ----------------------------------------------

FULL_RECONFIG_NS = 1.0e9  # "milliseconds to seconds"; 1 s default
PARTIAL_RECONFIG_NS = 0.1e9
MODEL_RELOAD_WORST_NS = 250_000.0  # <=250 us (all 2,014 M20Ks from DRAM)

# --- Macropipeline (§4.2) -------------------------------------------------

MACROPIPELINE_STAGE_BUDGET_NS = 8_000.0  # 8 us per stage
MACROPIPELINE_TARGET_MHZ = 200.0  # 1,600 cycles per stage budget

# --- Shell (§3.2) ----------------------------------------------------------

SHELL_AREA_FRACTION = 0.23  # the shell consumes 23 % of each FPGA

# --- Documents (§4.1) -------------------------------------------------------

DOC_TRUNCATE_BYTES = 64 * 1024  # compressed documents truncated to 64 KB
DOC_MEAN_BYTES = 6.5 * 1024  # average compressed size (Fig. 4)
DOC_P99_BYTES = 53 * 1024  # 99th percentile size (Fig. 4)
SCORE_BYTES = 4  # single float score per request

# --- Torus (§2.2, §2.3) ------------------------------------------------------

TORUS_WIDTH = 6
TORUS_HEIGHT = 8
SERVERS_PER_POD = TORUS_WIDTH * TORUS_HEIGHT  # 48
PODS_DEPLOYED = 34
RACKS_DEPLOYED = 17
SERVERS_DEPLOYED = SERVERS_PER_POD * PODS_DEPLOYED  # 1,632
LINKS_DEPLOYED = 2 * SERVERS_DEPLOYED  # 3,264 (two links per node in 2-D torus)

# Deployment-time failure statistics (§2.3).
CARD_FAILURE_RATE = 7 / 1_632  # ~0.4 % of cards
LINK_FAILURE_RATE = 1 / 3_264  # ~0.03 % of cable-assembly links

# --- Ranking ring (§4) --------------------------------------------------------

RING_SIZE = 8  # seven active stages plus one spare
FE_STATE_MACHINES = 43
MAX_DYNAMIC_FEATURES = 4_484
FFE_CORE_COUNT = 60
FFE_THREADS_PER_CORE = 4
FFE_CORES_PER_CLUSTER = 6
FDR_CAPACITY = 512  # flight-data-recorder circular buffer entries
