"""Board power model (§2.1, §5).

The daughtercard must draw under 25 W (PCIe budget), stays under 20 W
in normal operation, and a "power virus" bitstream — maximum area and
activity factor — measures 22.7 W.  We model power as static leakage
plus dynamic CV²f-style terms per resource class, calibrated to those
three anchors.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.bitstream import ResourceBudget, shell_budget
from repro.hardware.constants import BOARD_LIMITS, STRATIX_V_D5, FpgaDevice


@dataclasses.dataclass(frozen=True)
class PowerReport:
    """Decomposed board power draw in watts."""

    static_w: float
    dynamic_w: float
    dram_w: float
    misc_w: float

    @property
    def total_w(self) -> float:
        return self.static_w + self.dynamic_w + self.dram_w + self.misc_w

    @property
    def within_pcie_budget(self) -> bool:
        return self.total_w <= BOARD_LIMITS.pcie_power_budget_w


class PowerModel:
    """Estimate board power for a role at an activity factor.

    Calibration anchors:
    * power virus (full device, toggle 1.0, 250 MHz) -> 22.7 W;
    * ranking roles at realistic toggle rates       -> <20 W.
    """

    STATIC_W = 6.0  # FPGA + board leakage and support rails
    DRAM_W = 3.0  # two SO-DIMMs active
    MISC_W = 1.0  # oscillator, flash, EMI, regulators loss
    VIRUS_CLOCK_MHZ = 250.0

    # Dynamic power coefficients per resource, per MHz, at toggle 1.0.
    # Calibrated so the full-device power virus lands on 22.7 W (§5).
    ALM_W_PER_MHZ = 1.70e-7
    M20K_W_PER_MHZ = 5.0e-6
    DSP_W_PER_MHZ = 7.4e-6

    def estimate(
        self,
        budget: ResourceBudget,
        clock_mhz: float,
        toggle_rate: float = 0.25,
        device: FpgaDevice = STRATIX_V_D5,
        include_shell: bool = True,
    ) -> PowerReport:
        """Power for a role's ``budget`` at ``clock_mhz`` and toggle rate."""
        if not 0.0 <= toggle_rate <= 1.0:
            raise ValueError(f"toggle rate must be in [0,1], got {toggle_rate}")
        total = budget + shell_budget(device) if include_shell else budget
        dynamic = toggle_rate * clock_mhz * (
            total.alms * self.ALM_W_PER_MHZ
            + total.m20k_blocks * self.M20K_W_PER_MHZ
            + total.dsp_blocks * self.DSP_W_PER_MHZ
        )
        return PowerReport(
            static_w=self.STATIC_W,
            dynamic_w=dynamic,
            dram_w=self.DRAM_W,
            misc_w=self.MISC_W,
        )

    def power_virus(self, device: FpgaDevice = STRATIX_V_D5) -> PowerReport:
        """The §5 experiment: max out area and activity factor."""
        full_device = ResourceBudget(
            alms=device.alms, m20k_blocks=device.m20k_blocks, dsp_blocks=device.dsp_blocks
        )
        return self.estimate(
            full_device,
            clock_mhz=self.VIRUS_CLOCK_MHZ,
            toggle_rate=1.0,
            device=device,
            include_shell=False,
        )
