"""DDR3 DRAM controllers with ECC (§2.1, §3.2).

The board carries two dual-rank DDR3-1600 SO-DIMMs that run at
DDR3-1333 with the full 8 GB, or at DDR3-1600 single-rank trading
capacity for bandwidth.  The two controllers can operate independently
or as a unified interface.  SECDED ECC corrects single-bit and detects
double-bit errors; datacenter-scale DRAM failure modes (bit errors,
calibration failures) feed the Health Monitor's error vector.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.constants import DramSpeed
from repro.hardware.ecc import DecodeStatus, SecDedCodec
from repro.sim import Engine, Event


class DramError(Exception):
    """Raised on out-of-range access or an uncorrectable ECC error."""


@dataclasses.dataclass
class DramHealth:
    """Error counters reported in the health vector (§3.5)."""

    corrected_errors: int = 0
    uncorrectable_errors: int = 0
    calibration_failed: bool = False


@dataclasses.dataclass(frozen=True)
class DramConfig:
    """Operating point for the pair of controllers."""

    speed: DramSpeed = DramSpeed.DDR3_1333_DUAL_RANK
    unified: bool = True  # operate the two controllers as one interface
    ecc_enabled: bool = True

    @property
    def total_capacity_bytes(self) -> int:
        return self.speed.capacity_bytes

    RANDOM_EFFICIENCY = 0.70
    SEQUENTIAL_EFFICIENCY = 0.95  # streaming bursts (Model Reload, §4.3)

    @property
    def bandwidth_bytes_per_ns(self) -> float:
        """Aggregate sustained bandwidth (both DIMMs, random-ish access)."""
        channels = 2 if self.unified else 1
        return (
            self.speed.peak_bandwidth_bytes_per_ns * channels * self.RANDOM_EFFICIENCY
        )

    @property
    def sequential_bandwidth_bytes_per_ns(self) -> float:
        """Streaming bandwidth for long sequential bursts."""
        channels = 2 if self.unified else 1
        return (
            self.speed.peak_bandwidth_bytes_per_ns
            * channels
            * self.SEQUENTIAL_EFFICIENCY
        )


class DramController:
    """Timing plus ECC model of the board DRAM.

    Data contents are modelled sparsely: a dict of 64-bit words keyed by
    word address.  Bulk transfers (queue buffers, model tables) use
    :meth:`transfer` for pure timing.
    """

    ROW_ACTIVATE_NS = 45.0  # tRCD+tRP-ish fixed access overhead

    def __init__(
        self,
        engine: Engine,
        name: str = "dram",
        config: DramConfig | None = None,
        error_rate: float = 0.0,
        double_error_rate: float = 0.0,
    ):
        self.engine = engine
        self.name = name
        self.config = config or DramConfig()
        self.health = DramHealth()
        self.error_rate = error_rate  # per-read single-bit-flip probability
        self.double_error_rate = double_error_rate  # per-read double-flip probability
        self._codec = SecDedCodec()
        self._words: dict[int, int] = {}  # address -> stored codeword
        self._rng = engine.rng.stream(f"dram:{name}")

    @property
    def capacity_words(self) -> int:
        return self.config.total_capacity_bytes // 8

    # -- word access (functional + ECC) ------------------------------------

    def write_word(self, address: int, data: int) -> None:
        """Store one 64-bit word (ECC-encoded if enabled)."""
        self._check_address(address)
        if self.config.ecc_enabled:
            self._words[address] = self._codec.encode(data)
        else:
            self._words[address] = data

    def read_word(self, address: int) -> int:
        """Read one 64-bit word, applying the soft-error/ECC pipeline."""
        self._check_address(address)
        stored = self._words.get(address, self._codec.encode(0) if self.config.ecc_enabled else 0)
        if self.double_error_rate and self._rng.random() < self.double_error_rate:
            stored = self._flip_random_bits(stored, 2)
        elif self.error_rate and self._rng.random() < self.error_rate:
            stored = self._flip_random_bits(stored, 1)
        if not self.config.ecc_enabled:
            return stored & ((1 << 64) - 1)
        result = self._codec.decode(stored)
        if result.status is DecodeStatus.CORRECTED:
            self.health.corrected_errors += 1
            self._words[address] = self._codec.encode(result.data)
        elif result.status is DecodeStatus.UNCORRECTABLE:
            self.health.uncorrectable_errors += 1
            raise DramError(f"{self.name}: uncorrectable ECC error at {address:#x}")
        return result.data

    def _flip_random_bits(self, word: int, count: int) -> int:
        width = 72 if self.config.ecc_enabled else 64
        for _ in range(count):
            word ^= 1 << self._rng.randrange(width)
        return word

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.capacity_words:
            raise DramError(f"{self.name}: address {address:#x} out of range")
        if self.health.calibration_failed:
            raise DramError(f"{self.name}: DIMM calibration failed")

    # -- bulk timing ---------------------------------------------------------

    def transfer(self, num_bytes: int, sequential: bool = False) -> Event:
        """Timing-only bulk transfer; returns a completion event."""
        if num_bytes < 0:
            raise DramError(f"negative transfer size {num_bytes}")
        duration = self.transfer_time_ns(num_bytes, sequential)
        return self.engine.timeout(duration, value=num_bytes)

    def transfer_time_ns(self, num_bytes: int, sequential: bool = False) -> float:
        """Closed-form transfer duration used by Model Reload estimates."""
        bandwidth = (
            self.config.sequential_bandwidth_bytes_per_ns
            if sequential
            else self.config.bandwidth_bytes_per_ns
        )
        return self.ROW_ACTIVATE_NS + num_bytes / bandwidth

    # -- failure injection ------------------------------------------------------

    def fail_calibration(self) -> None:
        """Inject a DIMM calibration failure (health-vector flag)."""
        self.health.calibration_failed = True

    def recalibrate(self) -> None:
        self.health.calibration_failed = False

    def __repr__(self) -> str:
        return f"<DramController {self.name} {self.config.speed.label}>"
