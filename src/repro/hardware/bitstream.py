"""Bitstreams and FPGA resource budgets.

A :class:`Bitstream` is what the Mapping Manager writes to a board's
configuration flash and loads into the FPGA.  It names the role it
implements, declares the resources the role needs (so synthesis can
check fit against the device), and carries a shell compatibility
version — mismatched shells are how "old data from FPGAs that have not
yet been reconfigured" (§3.4) arises.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.constants import FpgaDevice, SHELL_AREA_FRACTION


def _checked_fields(cls, document: dict) -> dict:
    """Validate a ``to_dict`` document against ``cls``'s field names.

    Shared by every ``from_dict`` in this module: unknown keys raise
    (a typo in a hand-written cluster file must not silently vanish),
    known keys pass through to the constructor so the dataclass's own
    validation applies identically to deserialized instances.
    """
    if not isinstance(document, dict):
        raise ValueError(
            f"{cls.__name__} document must be a mapping, got "
            f"{type(document).__name__}"
        )
    names = {field.name for field in dataclasses.fields(cls)}
    unknown = set(document) - names
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} fields: {sorted(unknown)} "
            f"(known: {sorted(names)})"
        )
    return dict(document)


@dataclasses.dataclass(frozen=True)
class ResourceBudget:
    """FPGA resources used by a design (role or shell)."""

    alms: int = 0
    m20k_blocks: int = 0
    dsp_blocks: int = 0

    def __add__(self, other: "ResourceBudget") -> "ResourceBudget":
        return ResourceBudget(
            alms=self.alms + other.alms,
            m20k_blocks=self.m20k_blocks + other.m20k_blocks,
            dsp_blocks=self.dsp_blocks + other.dsp_blocks,
        )

    def __sub__(self, other: "ResourceBudget") -> "ResourceBudget":
        """Headroom left after ``other`` — components may go negative;
        callers check :meth:`non_negative` (the region packer does)."""
        return ResourceBudget(
            alms=self.alms - other.alms,
            m20k_blocks=self.m20k_blocks - other.m20k_blocks,
            dsp_blocks=self.dsp_blocks - other.dsp_blocks,
        )

    @property
    def non_negative(self) -> bool:
        return self.alms >= 0 and self.m20k_blocks >= 0 and self.dsp_blocks >= 0

    def to_dict(self) -> dict:
        """Canonical JSON form (plain ints, stable keys)."""
        return {
            "alms": self.alms,
            "m20k_blocks": self.m20k_blocks,
            "dsp_blocks": self.dsp_blocks,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "ResourceBudget":
        return cls(**_checked_fields(cls, document))

    def scaled(self, factor: float) -> "ResourceBudget":
        return ResourceBudget(
            alms=round(self.alms * factor),
            m20k_blocks=round(self.m20k_blocks * factor),
            dsp_blocks=round(self.dsp_blocks * factor),
        )

    def fits(self, device: FpgaDevice) -> bool:
        return (
            self.alms <= device.alms
            and self.m20k_blocks <= device.m20k_blocks
            and self.dsp_blocks <= device.dsp_blocks
        )

    def fits_within(self, other: "ResourceBudget") -> bool:
        """Component-wise ``self <= other`` (budget vs budget)."""
        return (other - self).non_negative

    def utilization(self, device: FpgaDevice) -> dict[str, float]:
        """Fractional utilization per resource class.

        Devices can legitimately have zero of a resource class (DSP-less
        parts exist); demanding nothing of an absent resource is 0.0
        utilization, demanding anything of it is ``inf`` — never a
        ``ZeroDivisionError``.
        """

        def fraction(used: int, capacity: int) -> float:
            if capacity:
                return used / capacity
            return 0.0 if not used else float("inf")

        return {
            "logic": fraction(self.alms, device.alms),
            "ram": fraction(self.m20k_blocks, device.m20k_blocks),
            "dsp": fraction(self.dsp_blocks, device.dsp_blocks),
        }


def shell_budget(device: FpgaDevice) -> ResourceBudget:
    """The shell consumes 23 % of the FPGA (§3.2).

    We charge 23 % of logic, and a fixed complement of RAM/DSP for the
    DMA staging buffers, router queues and SL3 cores.
    """
    return ResourceBudget(
        alms=round(device.alms * SHELL_AREA_FRACTION),
        m20k_blocks=round(device.m20k_blocks * 0.10),
        dsp_blocks=0,
    )


@dataclasses.dataclass(frozen=True)
class ShellVersion:
    """Shell compatibility tag carried by every bitstream."""

    major: int = 1
    minor: int = 0

    def compatible_with(self, other: "ShellVersion") -> bool:
        return self.major == other.major

    def to_dict(self) -> dict:
        return {"major": self.major, "minor": self.minor}

    @classmethod
    def from_dict(cls, document: dict) -> "ShellVersion":
        return cls(**_checked_fields(cls, document))


@dataclasses.dataclass(frozen=True)
class Bitstream:
    """A configuration image for one FPGA.

    ``role_name`` identifies the application logic; ``role_budget`` is
    the role's resource demand *excluding* the shell; ``clock_mhz`` is
    the role clock closed by synthesis.
    """

    role_name: str
    role_budget: ResourceBudget
    clock_mhz: float
    shell_version: ShellVersion = ShellVersion()
    size_bytes: int = 21_000_000  # Stratix V D5 raw bitstream, ~21 MB

    def total_budget(self, device: FpgaDevice) -> ResourceBudget:
        """Role plus shell resources on ``device``."""
        return self.role_budget + shell_budget(device)

    def fits(self, device: FpgaDevice) -> bool:
        return self.total_budget(device).fits(device)

    def to_dict(self) -> dict:
        """Canonical JSON form — losslessly rebuildable by :meth:`from_dict`."""
        return {
            "role_name": self.role_name,
            "role_budget": self.role_budget.to_dict(),
            "clock_mhz": self.clock_mhz,
            "shell_version": self.shell_version.to_dict(),
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "Bitstream":
        fields = _checked_fields(cls, document)
        if "role_budget" in fields:
            fields["role_budget"] = ResourceBudget.from_dict(fields["role_budget"])
        if "shell_version" in fields:
            fields["shell_version"] = ShellVersion.from_dict(fields["shell_version"])
        return cls(**fields)

    def __str__(self) -> str:
        return f"bitstream<{self.role_name}@{self.clock_mhz:.0f}MHz>"
