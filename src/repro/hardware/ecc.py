"""Error-correcting codes used by the DRAM controllers and SL3 links.

The paper (§3.2) employs *single-bit error correction, double-bit error
detection* (SECDED) on DRAM and on SL3 flits, with a CRC check at end
of packet catching what the per-flit ECC misses.  This module provides
real codecs, not stand-ins: a (72,64) extended Hamming SECDED code and
a table-driven CRC-32.
"""

from __future__ import annotations

import dataclasses
import enum

DATA_BITS = 64
CODE_BITS = 72  # 64 data + 7 Hamming parity + 1 overall parity

# Positions 1..71 hold Hamming-coded bits; powers of two are parity.
_PARITY_POSITIONS = (1, 2, 4, 8, 16, 32, 64)
_DATA_POSITIONS = tuple(
    pos for pos in range(1, CODE_BITS) if pos not in _PARITY_POSITIONS
)
assert len(_DATA_POSITIONS) == DATA_BITS


class DecodeStatus(enum.Enum):
    """Outcome of a SECDED decode."""

    CLEAN = "clean"
    CORRECTED = "corrected"  # single-bit error, repaired
    UNCORRECTABLE = "uncorrectable"  # double-bit error, detected


@dataclasses.dataclass(frozen=True)
class SecDedResult:
    """Decoded word plus the error disposition."""

    data: int
    status: DecodeStatus
    flipped_position: int | None = None  # codeword bit that was repaired


class SecDedCodec:
    """A (72,64) extended Hamming code: corrects 1 bit, detects 2.

    Codewords are 72-bit integers.  Bit 0 is the overall parity bit;
    bits 1..71 form a (71,64) Hamming code with parity at power-of-two
    positions.
    """

    data_bits = DATA_BITS
    code_bits = CODE_BITS

    def encode(self, data: int) -> int:
        """Encode a 64-bit word into a 72-bit codeword."""
        if not 0 <= data < (1 << DATA_BITS):
            raise ValueError(f"data must be a 64-bit unsigned value, got {data:#x}")
        word = 0
        for i, pos in enumerate(_DATA_POSITIONS):
            if (data >> i) & 1:
                word |= 1 << pos
        # Hamming parity bits: parity over all positions containing that bit.
        for parity_pos in _PARITY_POSITIONS:
            parity = 0
            for pos in range(1, CODE_BITS):
                if pos & parity_pos and (word >> pos) & 1:
                    parity ^= 1
            if parity:
                word |= 1 << parity_pos
        # Overall parity (bit 0) makes total codeword parity even.
        if self._parity(word):
            word |= 1
        return word

    def decode(self, codeword: int) -> SecDedResult:
        """Decode a 72-bit codeword, correcting/classifying errors."""
        if not 0 <= codeword < (1 << CODE_BITS):
            raise ValueError(f"codeword must be 72 bits, got {codeword:#x}")
        syndrome = 0
        for pos in range(1, CODE_BITS):
            if (codeword >> pos) & 1:
                syndrome ^= pos
        overall_parity_bad = self._parity(codeword) == 1

        if syndrome == 0 and not overall_parity_bad:
            return SecDedResult(self._extract(codeword), DecodeStatus.CLEAN)
        if syndrome == 0 and overall_parity_bad:
            # The overall parity bit itself flipped; data is intact.
            return SecDedResult(
                self._extract(codeword), DecodeStatus.CORRECTED, flipped_position=0
            )
        if overall_parity_bad:
            # Odd number of flips with a nonzero syndrome: single-bit error.
            repaired = codeword ^ (1 << syndrome) if syndrome < CODE_BITS else codeword
            if syndrome >= CODE_BITS:
                return SecDedResult(0, DecodeStatus.UNCORRECTABLE)
            return SecDedResult(
                self._extract(repaired), DecodeStatus.CORRECTED, flipped_position=syndrome
            )
        # Even number of flips, nonzero syndrome: double-bit error.
        return SecDedResult(0, DecodeStatus.UNCORRECTABLE)

    @staticmethod
    def _extract(codeword: int) -> int:
        data = 0
        for i, pos in enumerate(_DATA_POSITIONS):
            if (codeword >> pos) & 1:
                data |= 1 << i
        return data

    @staticmethod
    def _parity(word: int) -> int:
        parity = 0
        while word:
            parity ^= 1
            word &= word - 1
        return parity


class Crc32:
    """Table-driven CRC-32 (IEEE 802.3 reflected polynomial).

    Used as the end-of-packet check on SL3 transfers: flits with three
    or more bit errors can slip past SECDED but are caught here with
    probability ~1 - 2^-32.
    """

    _POLY = 0xEDB88320

    def __init__(self) -> None:
        self._table = self._build_table()

    @classmethod
    def _build_table(cls) -> list[int]:
        table = []
        for byte in range(256):
            crc = byte
            for _ in range(8):
                crc = (crc >> 1) ^ cls._POLY if crc & 1 else crc >> 1
            table.append(crc)
        return table

    def checksum(self, payload: bytes) -> int:
        """CRC-32 of ``payload``."""
        crc = 0xFFFFFFFF
        for byte in payload:
            crc = (crc >> 8) ^ self._table[(crc ^ byte) & 0xFF]
        return crc ^ 0xFFFFFFFF

    def verify(self, payload: bytes, expected: int) -> bool:
        """True if ``payload`` matches the ``expected`` checksum."""
        return self.checksum(payload) == expected
