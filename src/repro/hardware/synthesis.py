"""A synthesis estimator: resource budgets and clock closure for roles.

The paper's Table 1 reports per-stage Logic/RAM/DSP utilization and
clock frequency.  Real synthesis is an FPGA-CAD problem; here we model
it as compositional resource accounting — each architectural component
(a feature state machine, an FFE core, a scorer bank) declares a cost,
and a role is the sum of its parts plus the shell.  Costs are calibrated
so the ranking roles land on Table 1's reported utilizations.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.bitstream import Bitstream, ResourceBudget, shell_budget
from repro.hardware.constants import STRATIX_V_D5, FpgaDevice


class SynthesisError(Exception):
    """Raised when a role cannot fit or close timing on the device."""


@dataclasses.dataclass(frozen=True)
class SynthesisReport:
    """Per-role synthesis outcome, mirroring one column of Table 1."""

    role_name: str
    device: FpgaDevice
    logic_pct: float
    ram_pct: float
    dsp_pct: float
    clock_mhz: float

    def as_row(self) -> dict[str, float | str]:
        return {
            "role": self.role_name,
            "logic_pct": round(self.logic_pct),
            "ram_pct": round(self.ram_pct),
            "dsp_pct": round(self.dsp_pct),
            "clock_mhz": round(self.clock_mhz),
        }


# Component cost library (calibrated against Table 1).  Units: one
# instance of the named component.
COMPONENT_COSTS: dict[str, ResourceBudget] = {
    # Feature extraction: one of the 43 feature state machines, with its
    # share of the stream-processing FSM and feature-gathering network.
    "fe.state_machine": ResourceBudget(alms=1_400, m20k_blocks=12, dsp_blocks=4),
    "fe.stream_processor": ResourceBudget(alms=12_000, m20k_blocks=120, dsp_blocks=20),
    "fe.gathering_network": ResourceBudget(alms=16_000, m20k_blocks=160, dsp_blocks=0),
    # FFE: one multithreaded core; one complex block per 6-core cluster.
    "ffe.core": ResourceBudget(alms=1_500, m20k_blocks=8, dsp_blocks=6),
    "ffe.complex_block": ResourceBudget(alms=1_800, m20k_blocks=20, dsp_blocks=10),
    "ffe.feature_store": ResourceBudget(alms=200, m20k_blocks=16, dsp_blocks=0),
    # Compression stage: mostly RAM for dictionaries plus light logic.
    "compress.engine": ResourceBudget(alms=0, m20k_blocks=1_090, dsp_blocks=0),
    # Scoring: model-table banks dominate RAM; modest evaluation logic.
    "score.tree_bank": ResourceBudget(alms=880, m20k_blocks=39, dsp_blocks=0),
    "score.evaluator": ResourceBudget(alms=6_000, m20k_blocks=20, dsp_blocks=4),
    # Spare: pass-through role (queue + forwarding only).
    "spare.passthrough": ResourceBudget(alms=0, m20k_blocks=100, dsp_blocks=0),
}


def role_budget(components: dict[str, int]) -> ResourceBudget:
    """Sum the costs of ``{component_name: count}``."""
    total = ResourceBudget()
    for name, count in components.items():
        if name not in COMPONENT_COSTS:
            raise SynthesisError(f"unknown component {name!r}")
        if count < 0:
            raise SynthesisError(f"negative count for {name!r}")
        total = total + COMPONENT_COSTS[name].scaled(count)
    return total


def estimate_clock(role_name: str, budget: ResourceBudget, device: FpgaDevice) -> float:
    """Achievable role clock: congestion degrades routing/timing closure.

    An empty device closes near the 200 MHz macropipeline target; timing
    degrades with the dominant congestion source (logic or RAM routing)
    plus a DSP-column penalty, matching the spread of clocks in Table 1
    (125–180 MHz).
    """
    full = (budget + shell_budget(device)).utilization(device)
    congestion = max(full["logic"], full["ram"] * 0.55)
    clock = 205.0 - 75.0 * congestion - 40.0 * full["dsp"]
    return max(clock, 50.0)


def synthesize(
    role_name: str,
    components: dict[str, int],
    device: FpgaDevice = STRATIX_V_D5,
    clock_override_mhz: float | None = None,
) -> tuple[Bitstream, SynthesisReport]:
    """'Synthesize' a role: check fit, estimate clock, emit a bitstream.

    Raises :class:`SynthesisError` if the role plus shell exceeds the
    device capacity — the condition that forces a service to span
    multiple FPGAs (the motivation for the fabric, §1).
    """
    budget = role_budget(components)
    total = budget + shell_budget(device)
    if not total.fits(device):
        util = total.utilization(device)
        raise SynthesisError(
            f"role {role_name!r} does not fit {device.name}: "
            f"logic {util['logic']:.0%}, ram {util['ram']:.0%}, "
            f"dsp {util['dsp']:.0%}"
        )
    clock = clock_override_mhz or estimate_clock(role_name, budget, device)
    util = total.utilization(device)
    report = SynthesisReport(
        role_name=role_name,
        device=device,
        logic_pct=util["logic"] * 100.0,
        ram_pct=util["ram"] * 100.0,
        dsp_pct=util["dsp"] * 100.0,
        clock_mhz=clock,
    )
    bitstream = Bitstream(role_name=role_name, role_budget=budget, clock_mhz=clock)
    return bitstream, report
