"""Thermal model and temperature sensors (§2.1).

The FPGA sits in the exhaust of both CPUs (Figure 1c), so its inlet air
can reach 68 °C; the industrial-grade part is rated to a 100 °C junction
temperature.  A temperature shutdown is one of the flags in the Health
Monitor's error vector (§3.5).
"""

from __future__ import annotations

import dataclasses

from repro.hardware.constants import BOARD_LIMITS


class TemperatureShutdown(Exception):
    """Raised when the junction temperature exceeds the part rating."""


@dataclasses.dataclass
class ThermalModel:
    """Steady-state junction temperature: T_j = T_inlet + R_theta * P.

    ``theta_ja_c_per_w`` is the effective junction-to-air resistance with
    the server's front-to-back airflow across the mezzanine card.
    """

    inlet_temp_c: float = 45.0
    theta_ja_c_per_w: float = 1.3
    shutdown_tripped: bool = False

    def junction_temp_c(self, power_w: float) -> float:
        """Junction temperature at the given power draw."""
        if power_w < 0:
            raise ValueError(f"negative power {power_w}")
        return self.inlet_temp_c + self.theta_ja_c_per_w * power_w

    def check(self, power_w: float) -> float:
        """Return T_j, tripping the shutdown flag if over the rating."""
        temp = self.junction_temp_c(power_w)
        if temp > BOARD_LIMITS.max_junction_temp_c:
            self.shutdown_tripped = True
            raise TemperatureShutdown(
                f"junction {temp:.1f}C exceeds "
                f"{BOARD_LIMITS.max_junction_temp_c:.0f}C rating"
            )
        return temp

    def worst_case_headroom_w(self) -> float:
        """Power at which a 68 °C inlet (worst case) hits the rating."""
        return (
            BOARD_LIMITS.max_junction_temp_c - BOARD_LIMITS.max_inlet_temp_c
        ) / self.theta_ja_c_per_w

    def clear(self) -> None:
        self.shutdown_tripped = False
