"""The FPGA device model: configuration state and reconfiguration.

Captures the behaviours the paper's resilience machinery exists for:

* full reconfiguration takes milliseconds-to-seconds (§4.3), during
  which the device reads a bitstream from flash and **emits garbage on
  its serial links** unless TX-Halt was asserted (§3.4);
* during reconfiguration the device disappears from PCIe, raising a
  non-maskable interrupt on the host unless the driver masked it;
* configuration SRAM is subject to single-event upsets, which the SEU
  scrubber repairs (§3.2).
"""

from __future__ import annotations

import collections.abc
import dataclasses
import enum

from repro.hardware.bitstream import Bitstream, ShellVersion
from repro.hardware.constants import (
    FULL_RECONFIG_NS,
    PARTIAL_RECONFIG_NS,
    STRATIX_V_D5,
    FpgaDevice,
)
from repro.sim import Engine, Event


class ReconfigError(Exception):
    """Raised for invalid reconfiguration requests."""


class FpgaState(enum.Enum):
    UNCONFIGURED = "unconfigured"
    RECONFIGURING = "reconfiguring"
    CONFIGURED = "configured"
    FAILED = "failed"  # hardware fault; needs manual service


@dataclasses.dataclass
class SeuCounters:
    """Soft-error bookkeeping exposed to the Health Monitor."""

    upsets_injected: int = 0
    upsets_scrubbed: int = 0
    uncorrected: int = 0


class Fpga:
    """One FPGA device with configuration and health state.

    The device does not execute gates; roles are Python objects attached
    by the shell once configuration completes.  What this class models
    is *state*: what is loaded, whether the part is mid-reconfiguration,
    and the error counters management software reads.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        device: FpgaDevice = STRATIX_V_D5,
        shell_version: ShellVersion | None = None,
        reconfig_ns: float = FULL_RECONFIG_NS,
    ):
        self.engine = engine
        self.name = name
        self.device = device
        self.shell_version = shell_version or ShellVersion()
        self.reconfig_ns = reconfig_ns
        self.state = FpgaState.UNCONFIGURED
        self.bitstream: Bitstream | None = None
        self.seu = SeuCounters()
        self.pll_locked = True
        self.temp_shutdown = False  # part shut itself down over-temperature
        self.reconfig_count = 0
        self.partial_reconfig_count = 0
        self.role_reloading = False  # partial reconfiguration in flight
        self._observers: list[collections.abc.Callable[[Fpga, FpgaState], None]] = []

    # -- observers -------------------------------------------------------

    def on_state_change(self, callback: collections.abc.Callable[["Fpga", FpgaState], None]) -> None:
        """Register for state transitions (used by PCIe/link models)."""
        self._observers.append(callback)

    def _set_state(self, state: FpgaState) -> None:
        self.state = state
        for callback in self._observers:
            callback(self, state)

    # -- configuration -----------------------------------------------------

    @property
    def configured_role(self) -> str | None:
        return self.bitstream.role_name if self.bitstream else None

    def reconfigure(self, bitstream: Bitstream) -> Event:
        """Begin loading ``bitstream``; returns a completion event.

        The caller (the driver) is responsible for the §3.4 protocol:
        masking the PCIe NMI and asserting TX-Halt *before* calling.
        """
        if self.state == FpgaState.FAILED:
            raise ReconfigError(f"{self.name}: device marked failed")
        if self.state == FpgaState.RECONFIGURING:
            raise ReconfigError(f"{self.name}: reconfiguration already in progress")
        if not bitstream.fits(self.device):
            raise ReconfigError(
                f"{self.name}: {bitstream} does not fit {self.device.name}"
            )
        done = self.engine.event(name=f"reconfig:{self.name}")
        self.engine.process(self._reconfigure_body(bitstream, done), name=f"rcfg.{self.name}")
        return done

    def _reconfigure_body(self, bitstream: Bitstream, done: Event) -> collections.abc.Generator:
        self._set_state(FpgaState.RECONFIGURING)
        self.bitstream = None
        yield self.engine.timeout(self.reconfig_ns)
        if self.state == FpgaState.FAILED:
            # The part died mid-flight (failure injection); stay dead.
            done.fail(ReconfigError(f"{self.name}: failed during reconfiguration"))
            return
        self.bitstream = bitstream
        self.reconfig_count += 1
        # Cleared configuration: any SEU damage is wiped by the reload.
        self.seu.uncorrected = 0
        self._set_state(FpgaState.CONFIGURED)
        done.succeed(bitstream)

    def partial_reconfigure(
        self, bitstream: Bitstream, reload_ns: float | None = None
    ) -> Event:
        """Swap only the role region; the shell stays live (§3.2).

        The paper's future-work path: "partial reconfiguration would
        allow for dynamic switching between roles while the shell
        remains active — even routing inter-FPGA traffic while a
        reconfiguration is taking place."  The device never leaves
        CONFIGURED, so PCIe stays on the bus (no NMI) and the router
        keeps forwarding.

        ``reload_ns`` overrides the region-write time: a bitstream
        cache hit skips the flash read and pays only the model-reload
        class cost (~250 µs) instead of the full partial write.
        """
        if self.state is not FpgaState.CONFIGURED:
            raise ReconfigError(
                f"{self.name}: partial reconfiguration needs a live shell "
                f"(state {self.state.value})"
            )
        if self.role_reloading:
            raise ReconfigError(f"{self.name}: role region already reloading")
        if not bitstream.shell_version.compatible_with(self.shell_version):
            raise ReconfigError(
                f"{self.name}: {bitstream} targets an incompatible shell"
            )
        if not bitstream.fits(self.device):
            raise ReconfigError(
                f"{self.name}: {bitstream} does not fit {self.device.name}"
            )
        done = self.engine.event(name=f"partial:{self.name}")
        self.role_reloading = True
        duration_ns = reload_ns if reload_ns is not None else PARTIAL_RECONFIG_NS

        def body():
            yield self.engine.timeout(duration_ns)
            if self.state is FpgaState.FAILED:
                self.role_reloading = False
                done.fail(ReconfigError(f"{self.name}: failed during partial reconfig"))
                return
            self.bitstream = bitstream
            self.partial_reconfig_count += 1
            self.role_reloading = False
            done.succeed(bitstream)

        self.engine.process(body(), name=f"prcfg.{self.name}")
        return done

    # -- faults -----------------------------------------------------------

    def inject_seu(self, correctable: bool = True) -> None:
        """Inject a configuration-memory soft error (cosmic ray)."""
        self.seu.upsets_injected += 1
        if not correctable:
            self.seu.uncorrected += 1

    def scrub(self) -> int:
        """One scrubber pass: repairs all pending correctable upsets.

        Returns the number of upsets repaired.
        """
        pending = self.seu.upsets_injected - self.seu.upsets_scrubbed - self.seu.uncorrected
        self.seu.upsets_scrubbed += max(pending, 0)
        return max(pending, 0)

    def mark_failed(self) -> None:
        """Hardware fault: the part needs manual service (§3.5)."""
        self._set_state(FpgaState.FAILED)
        self.pll_locked = False

    def repair(self) -> None:
        """Manual service/replacement completed; back to unconfigured."""
        self.seu = SeuCounters()
        self.pll_locked = True
        self.temp_shutdown = False
        self.bitstream = None
        self._set_state(FpgaState.UNCONFIGURED)

    @property
    def is_operational(self) -> bool:
        return self.state == FpgaState.CONFIGURED and self.pll_locked

    def __repr__(self) -> str:
        return f"<Fpga {self.name} {self.state.value} role={self.configured_role}>"
