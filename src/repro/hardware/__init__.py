"""Hardware models: FPGA, board memory, codecs, power and sensors.

Models the Catapult daughtercard of Section 2.1: an Altera Stratix V D5
FPGA, 8 GB of DDR3 with ECC, 32 MB of QSPI configuration flash, and the
board-level power/thermal envelope.
"""

from repro.hardware.constants import STRATIX_V_D5, BoardLimits, DramSpeed
from repro.hardware.ecc import (
    Crc32,
    DecodeStatus,
    SecDedCodec,
    SecDedResult,
)
from repro.hardware.bitstream import Bitstream, ResourceBudget, ShellVersion
from repro.hardware.synthesis import SynthesisReport, synthesize
from repro.hardware.fpga import Fpga, FpgaState, ReconfigError
from repro.hardware.dram import DramController, DramConfig, DramError
from repro.hardware.flash import ConfigFlash, FlashError
from repro.hardware.power import PowerModel
from repro.hardware.sensors import ThermalModel, TemperatureShutdown

__all__ = [
    "Bitstream",
    "BoardLimits",
    "ConfigFlash",
    "Crc32",
    "DecodeStatus",
    "DramConfig",
    "DramController",
    "DramError",
    "DramSpeed",
    "FlashError",
    "Fpga",
    "FpgaState",
    "PowerModel",
    "ReconfigError",
    "ResourceBudget",
    "SecDedCodec",
    "SecDedResult",
    "ShellVersion",
    "STRATIX_V_D5",
    "SynthesisReport",
    "synthesize",
    "TemperatureShutdown",
    "ThermalModel",
]
