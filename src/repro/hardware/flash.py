"""QSPI configuration flash (§2.1, Figure 3).

The board carries 32 MB of quad-SPI flash holding FPGA configurations.
The RSU (remote status update) unit in the shell reads and writes it.
Flash writes are slow (tens of seconds for a full image) but happen
off the critical path: the Mapping Manager stages images ahead of time.
"""

from __future__ import annotations

from repro.hardware.bitstream import Bitstream
from repro.sim import Engine, Event

FLASH_BYTES = 32 * 1024 * 1024
FLASH_WRITE_BYTES_PER_NS = 0.003  # ~3 MB/s QSPI program rate
FLASH_READ_BYTES_PER_NS = 0.05  # ~50 MB/s QSPI read rate


class FlashError(Exception):
    """Raised on capacity overflow or reading an absent slot."""


class ConfigFlash:
    """Bitstream storage with two image slots (golden + application).

    Real Catapult keeps a known-good "golden" image so a bad application
    image can never brick the board; we model the same two-slot layout.
    """

    GOLDEN_SLOT = "golden"
    APPLICATION_SLOT = "application"

    def __init__(self, engine: Engine, name: str = "flash"):
        self.engine = engine
        self.name = name
        self._slots: dict[str, Bitstream] = {}
        self.write_count = 0

    def stored(self, slot: str) -> Bitstream | None:
        return self._slots.get(slot)

    def write(self, slot: str, bitstream: Bitstream) -> Event:
        """Program ``bitstream`` into ``slot``; returns completion event.

        Compressed bitstreams are used in practice; we charge the image
        size at QSPI program rate.
        """
        if slot not in (self.GOLDEN_SLOT, self.APPLICATION_SLOT):
            raise FlashError(f"unknown flash slot {slot!r}")
        if bitstream.size_bytes > FLASH_BYTES:
            raise FlashError(
                f"bitstream {bitstream.size_bytes} B exceeds flash {FLASH_BYTES} B"
            )
        duration = bitstream.size_bytes / FLASH_WRITE_BYTES_PER_NS

        def body():
            yield self.engine.timeout(duration)
            self._slots[slot] = bitstream
            self.write_count += 1
            return bitstream

        proc = self.engine.process(body(), name=f"flash.write.{self.name}")
        return proc

    def read(self, slot: str) -> Event:
        """Stream an image out of flash (used during reconfiguration)."""
        if slot not in self._slots:
            raise FlashError(f"flash slot {slot!r} is empty")
        bitstream = self._slots[slot]
        duration = bitstream.size_bytes / FLASH_READ_BYTES_PER_NS
        return self.engine.timeout(duration, value=bitstream)

    def __repr__(self) -> str:
        return f"<ConfigFlash {self.name} slots={sorted(self._slots)}>"
