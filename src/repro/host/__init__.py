"""Host-side software: the FPGA driver and the user-level slot API (§3.1).

Applications never touch PCIe or DMA details directly; they link the
user-level library (:class:`SlotClient`) and, for deployment, the
driver's reconfiguration entry point (:class:`FpgaDriver`).
"""

from repro.host.driver import FpgaDriver
from repro.host.slots import SlotClient, SlotLease

__all__ = ["FpgaDriver", "SlotClient", "SlotLease"]
