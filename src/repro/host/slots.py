"""The user-level slot API (§3.1).

Thread safety comes from static ownership: the buffer is divided into
64 slots and each thread gets exclusive access to one or more of them.
A thread sends by filling its input slot and setting the full bit; it
then sleeps until the FPGA's response interrupt fills the matching
output slot.

:class:`SlotClient` hands out :class:`SlotLease` objects (one per
thread) and records per-request latency for the evaluation harness.
"""

from __future__ import annotations

import collections.abc
import dataclasses

from repro.analysis import ReservoirSample
from repro.fabric.server import Server
from repro.shell.messages import Packet, PacketKind
from repro.sim import AnyOf
from repro.sim.units import US

# §3.1: the FPGA "generates an interrupt to wake and notify the
# consumer thread".  Kernel interrupt delivery plus scheduler wakeup of
# a sleeping thread on a loaded 2012-era server.
INTERRUPT_WAKE_NS = 25 * US


class SlotExhausted(Exception):
    """More threads than slots — the static assignment cannot be made."""


@dataclasses.dataclass
class SlotLease:
    """Exclusive use of one input/output slot pair by one thread."""

    client: "SlotClient"
    slot_id: int
    requests_sent: int = 0
    responses_received: int = 0
    timeouts: int = 0

    def request(
        self, dst: tuple, size_bytes: int, payload: object = None,
        timeout_ns: float | None = None,
    ) -> collections.abc.Generator:
        """Send one request and wait for its response (generator).

        Yields the response packet's payload, or raises
        :class:`RequestTimeout` after ``timeout_ns`` — the §3.2 path
        for dropped packets: "the host will time out and divert the
        request to a higher-level failure handling protocol".
        """
        server = self.client.server
        engine = server.engine
        packet = Packet(
            kind=PacketKind.REQUEST,
            src=server.node_id,
            dst=dst,
            size_bytes=size_bytes,
            payload=payload,
            injected_at_ns=engine.now,
        )
        self.requests_sent += 1
        yield server.buffers.fill_input(self.slot_id, packet)
        consume = server.buffers.consume_output(self.slot_id)
        if timeout_ns is None:
            response = yield consume
        else:
            deadline = engine.timeout(timeout_ns)
            yield AnyOf(engine, [consume, deadline])
            if not consume.triggered:
                self.timeouts += 1
                raise RequestTimeout(packet.trace_id)
            # The response won the race: disarm the deadline so it does
            # not keep a bare run() alive for the full timeout.
            deadline.cancel()
            response = consume.value
        # The response interrupt must wake this sleeping thread (§3.1).
        yield engine.timeout(INTERRUPT_WAKE_NS)
        self.responses_received += 1
        latency = engine.now - packet.injected_at_ns
        self.client.latencies_ns.append(latency)
        return response


class RequestTimeout(Exception):
    """A request's response never arrived (packet dropped in fabric)."""


class SlotClient:
    """User-level interface to one server's Catapult board."""

    def __init__(self, server: Server):
        self.server = server
        self.latencies_ns = ReservoirSample()
        self._next_slot = 0

    def lease(self) -> SlotLease:
        """Allocate the next free slot to a new thread."""
        if self._next_slot >= self.server.buffers.slot_count:
            raise SlotExhausted(
                f"all {self.server.buffers.slot_count} slots are leased"
            )
        lease = SlotLease(self, self._next_slot)
        self._next_slot += 1
        return lease

    def leases(self, count: int) -> list[SlotLease]:
        """Allocate ``count`` slots (one per injecting thread)."""
        return [self.lease() for _ in range(count)]

    def lease_for(self, slot_id: int) -> SlotLease:
        """Lease a *specific* slot id (allocator-partitioned tenancy).

        Unlike :meth:`lease`, ownership is not tracked here: the caller
        (a :class:`SlotAllocator`) already guarantees exclusivity.
        """
        if not 0 <= slot_id < self.server.buffers.slot_count:
            raise SlotExhausted(
                f"slot {slot_id} out of range "
                f"(server has {self.server.buffers.slot_count})"
            )
        return SlotLease(self, slot_id)


class SlotAllocator:
    """Partitions one server's slot pool among co-resident tenants.

    A whole-ring deployment owns every slot of its injection servers by
    construction, so each builds a private :class:`SlotClient` starting
    at slot 0.  Region tenants *share* a ring's servers; without a
    common free-list two tenants would lease the same slot id and
    silently swallow each other's responses.  The allocator is the
    shared free-list — cached on the server so every tenant of that
    server sees the same one.
    """

    def __init__(self, server: Server):
        self.server = server
        self._free = list(range(server.buffers.slot_count))
        self.owners: dict[int, str] = {}
        # SimSanitizer lease tokens by slot id (sanitized engines only).
        self._tokens: dict[int, object] = {}

    @property
    def free_count(self) -> int:
        return len(self._free)

    def acquire(
        self, count: int, owner: str = "", owner_obj: object = None
    ) -> list[int]:
        """Take up to ``count`` slot ids; raises when none are left.

        ``owner_obj`` (e.g. the tenant :class:`Deployment`) is handed
        to the engine's sanitizer, when one is active, so a lease whose
        owner is released without returning its slots is reported as a
        leak with this call site.
        """
        if not self._free:
            raise SlotExhausted(
                f"{self.server.machine_id}: all "
                f"{self.server.buffers.slot_count} slots are owned"
            )
        taken = self._free[:count]
        del self._free[:count]
        for slot_id in taken:
            self.owners[slot_id] = owner
        sanitizer = getattr(self.server.engine, "sanitizer", None)
        if sanitizer is not None:
            for slot_id in taken:
                self._tokens[slot_id] = sanitizer.track_lease(
                    kind="slot-lease",
                    label=f"{self.server.machine_id}/slot{slot_id} ({owner})",
                    owner=owner_obj,
                )
        return taken

    def release(self, slot_ids: collections.abc.Iterable[int]) -> None:
        for slot_id in slot_ids:
            if self.owners.pop(slot_id, None) is not None:
                self._free.append(slot_id)
            token = self._tokens.pop(slot_id, None)
            if token is not None:
                token.close()
        self._free.sort()


def shared_slot_allocator(server: Server) -> SlotAllocator:
    """The server's (lazily created) shared allocator."""
    allocator = getattr(server, "slot_allocator", None)
    if allocator is None:
        allocator = SlotAllocator(server)
        server.slot_allocator = allocator
    return allocator
