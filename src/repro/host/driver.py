"""The kernel driver for the Catapult board (§3.1, §3.4).

User-level services initiate FPGA reconfigurations through a low-level
library call that lands here.  The driver's critical §3.4 duty: before
reconfiguring, it must disable the non-maskable interrupt for the FPGA's
PCIe device — a reconfiguring FPGA looks like a failed device, and an
unmasked NMI destabilizes the host.
"""

from __future__ import annotations

import collections.abc

from repro.fabric.server import Server
from repro.hardware.bitstream import Bitstream
from repro.sim import Event


class FpgaDriver:
    """Per-server driver exposing safe reconfiguration."""

    def __init__(self, server: Server):
        self.server = server
        self.reconfigurations = 0

    def reconfigure(self, bitstream: Bitstream) -> Event:
        """Reconfigure the local FPGA with the §3.4 protocol.

        Sequence: mask the PCIe NMI -> shell-level safe reconfiguration
        (TX-Halt, reload, RX-Halt + retrain) -> unmask.
        """
        server = self.server
        done = server.engine.event(name=f"driver-reconfig:{server.machine_id}")

        def body() -> collections.abc.Generator:
            server.nmi_masked = True
            try:
                finished = server.shell.safe_reconfigure(bitstream)
                try:
                    yield finished
                except Exception as exc:
                    done.fail(exc)
                    return
            finally:
                server.nmi_masked = False
            self.reconfigurations += 1
            done.succeed(bitstream)

        server.engine.process(body(), name=f"driver.{server.machine_id}")
        return done

    def reconfigure_unsafely(self, bitstream: Bitstream) -> Event:
        """Skip the protocol entirely — crashes the host via NMI and
        sprays garbage at the neighbours.  Exists to demonstrate why
        the protocol is necessary (tests/benchmarks only)."""
        self.reconfigurations += 1
        return self.server.shell.unsafe_reconfigure(bitstream)
