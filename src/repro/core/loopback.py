"""Node-level loopback harness (§5, Figure 8).

"We measure each stage of the pipeline on a single FPGA and inject
scoring requests collected from real-world traces ... in two loopback
modes: (1) requests and responses sent over PCIe and (2) requests and
responses routed through a loopback SAS cable."

* **PCIe mode** — the injecting host and the stage share one server:
  host -> DMA -> role -> DMA -> host; no SL3 traffic.
* **SL3 mode** — the injector sits on a neighbouring server one SAS
  cable away, so every request and response crosses the link, exposing
  SL3 serialization and hop latency.
"""

from __future__ import annotations

import collections.abc
import enum
import itertools

from repro.fabric.server import Server
from repro.hardware.bitstream import Bitstream
from repro.host.slots import SlotClient
from repro.ranking.engine import ScoringEngine
from repro.ranking.pipeline import ranking_bitstreams
from repro.ranking.stages import (
    CompressionRole,
    FeatureExtractionRole,
    FfeRole,
    RankingPayload,
    ScoringRole,
    SpareRankingRole,
)
from repro.shell.router import Port
from repro.shell.shell import ShellConfig
from repro.shell.sl3 import Sl3Link
from repro.sim import AllOf, Engine, Event

_STAGE_CLASSES = {
    "fe": FeatureExtractionRole,
    "ffe0": FfeRole,
    "ffe1": FfeRole,
    "compress": CompressionRole,
    "score0": ScoringRole,
    "score1": ScoringRole,
    "score2": ScoringRole,
    "spare": SpareRankingRole,
}


class LoopbackMode(enum.Enum):
    PCIE = "pcie"
    SL3 = "sl3"


class _LoopbackAssignment:
    """Stands in for a RingAssignment: one stage, nothing downstream."""

    loopback = True

    def __init__(self, scoring_engine: ScoringEngine, qm_policy: str = "batch"):
        self.scoring_engine = scoring_engine
        self.qm_policy = qm_policy

    def downstream_of(self, _role_name: str):
        return None


class LoopbackHarness:
    """One ranking stage on one FPGA, injectable from PCIe or SL3."""

    def __init__(
        self,
        engine: Engine,
        stage: str,
        scoring_engine: ScoringEngine,
        shell_config: ShellConfig | None = None,
    ):
        if stage not in _STAGE_CLASSES:
            raise ValueError(f"unknown ranking stage {stage!r}")
        self.engine = engine
        self.stage = stage
        self.scoring_engine = scoring_engine
        config = shell_config or ShellConfig()
        self.stage_server = Server(engine, "loop-stage", (0, 0), config)
        self.injector_server = Server(engine, "loop-host", (1, 0), config)
        # One SAS cable between the two servers (the SL3-mode path).
        east = self.stage_server.shell.create_endpoint(Port.EAST)
        west = self.injector_server.shell.create_endpoint(Port.WEST)
        Sl3Link(engine, east, west, config=config.sl3, name="loopback")
        self.stage_server.shell.router.set_route((1, 0), Port.EAST)
        self.injector_server.shell.router.set_route((0, 0), Port.WEST)
        east.release_rx_halt()
        west.release_rx_halt()
        # Configure and attach the stage role.
        bitstream: Bitstream = ranking_bitstreams()[stage][0]
        done = self.stage_server.fpga.reconfigure(bitstream)
        engine.run_until(done)
        assignment = _LoopbackAssignment(scoring_engine)
        self.role = _STAGE_CLASSES[stage](assignment, stage)
        self.stage_server.shell.attach_role(self.role)

    def measure_throughput(
        self,
        pool: list,
        mode: LoopbackMode,
        threads: int = 1,
        requests_per_thread: int = 20,
    ) -> float:
        """Closed-loop injection rate (requests/second) for this stage."""
        server = (
            self.stage_server if mode is LoopbackMode.PCIE else self.injector_server
        )
        client = SlotClient(server)
        pool_cycle = itertools.cycle(pool)
        started = self.engine.now
        completed = [0]

        def thread_body(lease) -> collections.abc.Generator:
            for _ in range(requests_per_thread):
                request = next(pool_cycle)
                payload = RankingPayload(document=request.document)
                yield from lease.request(
                    dst=(0, 0), size_bytes=request.size_bytes, payload=payload
                )
                completed[0] += 1

        procs = [
            self.engine.process(thread_body(lease))
            for lease in client.leases(threads)
        ]
        done: Event = AllOf(self.engine, procs)
        self.engine.run_until(done)
        elapsed_ns = self.engine.now - started
        return completed[0] * 1e9 / max(elapsed_ns, 1e-9)
