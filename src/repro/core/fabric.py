"""The :class:`CatapultFabric` facade."""

from __future__ import annotations

import dataclasses
import typing

from repro.cluster.load_balancer import LoadBalancer
from repro.cluster.scheduler import ClusterScheduler
from repro.fabric.datacenter import Datacenter
from repro.fabric.pod import Pod
from repro.fabric.torus import NodeId, TorusTopology
from repro.ranking.engine import ScoringEngine
from repro.ranking.models import ModelLibrary
from repro.ranking.pipeline import (
    RankingPipeline,
    RankingRequestAdapter,
    ranking_service,
)
from repro.services.health_monitor import HealthMonitor, HealthReport
from repro.services.mapping_manager import MappingManager
from repro.shell.shell import ShellConfig
from repro.sim import Engine


@dataclasses.dataclass
class RankingCluster:
    """A ranking service deployed across rings, behind a front end."""

    scheduler: ClusterScheduler
    balancer: LoadBalancer
    scoring_engine: ScoringEngine
    library: ModelLibrary

    @property
    def deployments(self):
        return self.balancer.deployments


class CatapultFabric:
    """A deployed reconfigurable fabric, ready for services.

    Typical use::

        fabric = CatapultFabric(pods=1, seed=7)
        pipeline = fabric.deploy_ranking(ring=0, model_scale=0.1)
        # ... inject requests via pipeline.spawn_injector(...)
        report = fabric.check_health(fabric.pod(0).topology.ring(0))
    """

    def __init__(
        self,
        pods: int = 1,
        topology: TorusTopology | None = None,
        shell_config: ShellConfig | None = None,
        seed: int = 0,
        engine: Engine | None = None,
    ):
        self.engine = engine or Engine(seed=seed)
        self.datacenter = Datacenter(
            self.engine,
            num_pods=pods,
            topology=topology or TorusTopology(),
            shell_config=shell_config or ShellConfig(),
        )
        self._mapping_managers: dict[int, MappingManager] = {}
        self._health_monitors: dict[int, HealthMonitor] = {}

    # -- infrastructure access ------------------------------------------------

    def pod(self, pod_id: int = 0) -> Pod:
        return self.datacenter.pod(pod_id)

    def mapping_manager(self, pod_id: int = 0) -> MappingManager:
        if pod_id not in self._mapping_managers:
            self._mapping_managers[pod_id] = MappingManager(self.engine, self.pod(pod_id))
        return self._mapping_managers[pod_id]

    def health_monitor(self, pod_id: int = 0) -> HealthMonitor:
        if pod_id not in self._health_monitors:
            self._health_monitors[pod_id] = HealthMonitor(
                self.engine,
                self.pod(pod_id),
                mapping_manager=self.mapping_manager(pod_id),
            )
        return self._health_monitors[pod_id]

    # -- service deployment ----------------------------------------------------

    def deploy_ranking(
        self,
        pod_id: int = 0,
        ring: int = 0,
        library: ModelLibrary | None = None,
        model_scale: float = 1.0,
        qm_policy: str = "batch",
    ) -> RankingPipeline:
        """Deploy the Bing ranking service (§4) onto one ring."""
        library = library or ModelLibrary.default(scale=model_scale)
        pipeline = RankingPipeline(
            self.engine, self.pod(pod_id), library, ring_x=ring, qm_policy=qm_policy
        )
        # Reuse the fabric's mapping manager so failure handling sees
        # this assignment.
        pipeline.mapping_manager = self.mapping_manager(pod_id)
        pipeline.deploy()
        return pipeline

    def deploy_ranking_cluster(
        self,
        rings: int = 1,
        placement_policy: str = "spread",
        balancing_policy: str = "least_outstanding",
        library: ModelLibrary | None = None,
        model_scale: float = 1.0,
        qm_policy: str = "batch",
    ) -> RankingCluster:
        """Deploy ranking on ``rings`` rings across pods, front-ended.

        Synthesizes the service once and shares its bitstreams and
        scoring engine across every ring; the scheduler places rings
        under ``placement_policy`` and the cluster's
        :class:`LoadBalancer` dispatches under ``balancing_policy``.
        ``model_scale`` applies only when no ``library`` is supplied.
        """
        library = library or ModelLibrary.default(scale=model_scale)
        scoring_engine = ScoringEngine(library)
        service = ranking_service(scoring_engine, qm_policy)
        scheduler = ClusterScheduler(self.datacenter, policy=placement_policy)
        deployments = scheduler.deploy(
            service, rings=rings, adapter=RankingRequestAdapter()
        )
        balancer = LoadBalancer(self.engine, deployments, policy=balancing_policy)
        return RankingCluster(
            scheduler=scheduler,
            balancer=balancer,
            scoring_engine=scoring_engine,
            library=library,
        )

    # -- operations ---------------------------------------------------------------

    def check_health(
        self, nodes: typing.Sequence[NodeId], pod_id: int = 0
    ) -> HealthReport:
        """Run a Health Monitor investigation and return its report."""
        done = self.health_monitor(pod_id).investigate(list(nodes))
        return self.engine.run_until(done)

    def run(self, until_ns: float | None = None) -> float:
        """Advance simulated time."""
        return self.engine.run(until=until_ns)

    def __repr__(self) -> str:
        return f"<CatapultFabric {self.datacenter!r}>"
