"""The :class:`CatapultFabric` facade."""

from __future__ import annotations

import collections.abc
import dataclasses

from repro.cluster.failures import ClusterFailureInjector
from repro.cluster.load_balancer import LoadBalancer
from repro.cluster.manager import ClusterManager, ServiceHandle
from repro.cluster.scheduler import ClusterScheduler
from repro.cluster.spec import ServiceSpec
from repro.fabric.datacenter import Datacenter
from repro.fabric.pod import Pod
from repro.fabric.torus import NodeId, TorusTopology
from repro.ranking.engine import ScoringEngine
from repro.ranking.models import ModelLibrary
from repro.ranking.pipeline import (
    RankingPipeline,
    RankingRequestAdapter,
    ranking_service,
)
from repro.services.health_monitor import HealthMonitor, HealthReport
from repro.services.mapping_manager import MappingManager
from repro.shell.shell import ShellConfig
from repro.sim import Engine
from repro.sim.units import SEC


@dataclasses.dataclass
class RankingCluster:
    """A ranking service under management, behind a front end.

    ``handle`` is the control-plane object (status / scale / submit);
    the other fields are conveniences for experiments that read the
    mechanism directly.
    """

    handle: ServiceHandle
    scheduler: ClusterScheduler
    balancer: LoadBalancer
    scoring_engine: ScoringEngine
    library: ModelLibrary

    @property
    def deployments(self):
        return self.balancer.deployments

    @property
    def spec(self) -> ServiceSpec:
        return self.handle.spec


class CatapultFabric:
    """A deployed reconfigurable fabric, ready for services.

    Typical use::

        fabric = CatapultFabric(pods=2, seed=7)
        cluster = fabric.deploy_ranking_cluster(rings=4, model_scale=0.1)
        # ... drive cluster.handle with an OpenLoopInjector ...
        print(cluster.handle.status())

    The cluster control plane (:class:`ClusterManager`) is created
    lazily and owns the scheduler, the per-pod mapping managers, and
    the per-pod health monitors — ``mapping_manager()`` and
    ``health_monitor()`` expose those shared instances, so a
    ``check_health`` that finds failures rotates the same assignments
    the cluster layer serves from.
    """

    def __init__(
        self,
        pods: int = 1,
        topology: TorusTopology | None = None,
        shell_config: ShellConfig | None = None,
        seed: int = 0,
        engine: Engine | None = None,
    ):
        self.engine = engine or Engine(seed=seed)
        self.datacenter = Datacenter(
            self.engine,
            num_pods=pods,
            topology=topology or TorusTopology(),
            shell_config=shell_config or ShellConfig(),
        )
        self._manager: ClusterManager | None = None
        self._injector: ClusterFailureInjector | None = None

    # -- infrastructure access ------------------------------------------------

    def pod(self, pod_id: int = 0) -> Pod:
        return self.datacenter.pod(pod_id)

    def manager(self) -> ClusterManager:
        """The (lazily created) cluster control plane."""
        if self._manager is None:
            self._manager = ClusterManager(self.datacenter)
        return self._manager

    def failure_injector(self) -> ClusterFailureInjector:
        """Datacenter-scoped failure injection for experiments."""
        if self._injector is None:
            self._injector = ClusterFailureInjector(self.datacenter)
        return self._injector

    def mapping_manager(self, pod_id: int = 0) -> MappingManager:
        return self.manager().scheduler.mapping_manager(pod_id)

    def health_monitor(self, pod_id: int = 0) -> HealthMonitor:
        return self.manager().health_monitor(pod_id)

    # -- service deployment ----------------------------------------------------

    def apply(self, spec: ServiceSpec) -> ServiceHandle:
        """Declare a service; the control plane converges onto it."""
        return self.manager().apply(spec)

    def deploy_ranking(
        self,
        pod_id: int = 0,
        ring: int = 0,
        library: ModelLibrary | None = None,
        model_scale: float = 1.0,
        qm_policy: str = "batch",
    ) -> RankingPipeline:
        """Deploy the Bing ranking service (§4) onto one ring."""
        library = library or ModelLibrary.default(scale=model_scale)
        pipeline = RankingPipeline(
            self.engine, self.pod(pod_id), library, ring_x=ring, qm_policy=qm_policy
        )
        # Reuse the fabric's mapping manager so failure handling sees
        # this assignment.
        pipeline.mapping_manager = self.mapping_manager(pod_id)
        pipeline.deploy()
        return pipeline

    def ranking_spec(
        self,
        replicas: int = 1,
        placement: str = "spread",
        balancing: str = "least_outstanding",
        library: ModelLibrary | None = None,
        model_scale: float = 1.0,
        qm_policy: str = "batch",
        health_period_ns: float = 10 * SEC,
    ) -> tuple[ServiceSpec, ScoringEngine, ModelLibrary]:
        """A :class:`ServiceSpec` for the ranking service.

        Synthesizes the service once (bitstreams and scoring engine are
        shared across every replica) and returns the spec together with
        the scoring engine and library the caller needs to warm request
        pools.  ``model_scale`` applies only when no ``library`` is
        supplied.
        """
        library = library or ModelLibrary.default(scale=model_scale)
        scoring_engine = ScoringEngine(library)
        spec = ServiceSpec(
            service=ranking_service(scoring_engine, qm_policy),
            replicas=replicas,
            placement=placement,
            balancing=balancing,
            adapter=RankingRequestAdapter(),
            health_period_ns=health_period_ns,
        )
        return spec, scoring_engine, library

    def deploy_ranking_cluster(
        self,
        rings: int = 1,
        placement_policy: str = "spread",
        balancing_policy: str = "least_outstanding",
        library: ModelLibrary | None = None,
        model_scale: float = 1.0,
        qm_policy: str = "batch",
        health_period_ns: float = 10 * SEC,
    ) -> RankingCluster:
        """Declare ranking on ``rings`` ring replicas, front-ended.

        Sugar over :meth:`ranking_spec` + :meth:`apply`: builds the
        spec, hands it to the control plane, and bundles the handle with
        the scoring engine and library for benchmark convenience.  One
        fabric manages one ranking service — re-declare through
        ``cluster.handle.scale(n)`` (or re-``apply`` the same spec)
        rather than calling this twice.
        """
        spec, scoring_engine, library = self.ranking_spec(
            replicas=rings,
            placement=placement_policy,
            balancing=balancing_policy,
            library=library,
            model_scale=model_scale,
            qm_policy=qm_policy,
            health_period_ns=health_period_ns,
        )
        handle = self.apply(spec)
        return RankingCluster(
            handle=handle,
            scheduler=self.manager().scheduler,
            balancer=handle.balancer,
            scoring_engine=scoring_engine,
            library=library,
        )

    # -- operations ---------------------------------------------------------------

    def check_health(
        self, nodes: collections.abc.Sequence[NodeId], pod_id: int = 0
    ) -> HealthReport:
        """Run a Health Monitor investigation and return its report."""
        done = self.health_monitor(pod_id).investigate(list(nodes))
        return self.engine.run_until(done)

    def run(self, until_ns: float | None = None) -> float:
        """Advance simulated time."""
        return self.engine.run(until=until_ns)

    def __repr__(self) -> str:
        return f"<CatapultFabric {self.datacenter!r}>"
