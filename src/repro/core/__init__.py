"""The high-level Catapult API: the paper's contribution as one object.

:class:`CatapultFabric` composes everything below it — pods of
FPGA-equipped servers wired into 6x8 tori, the shell on every board,
the Mapping Manager and Health Monitor — and exposes the operations a
datacenter operator performs: deploy a service onto rings, inject
work, watch health, survive failures.

:class:`LoopbackHarness` is the node-level methodology of §5: a single
stage role measured standalone in PCIe-only or SL3-loopback mode.
"""

from repro.core.fabric import CatapultFabric, RankingCluster
from repro.core.loopback import LoopbackHarness, LoopbackMode

__all__ = ["CatapultFabric", "LoopbackHarness", "LoopbackMode", "RankingCluster"]
