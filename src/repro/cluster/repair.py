"""The hardware-lifecycle subsystem: service tickets and timed repair.

The paper's §3.5 failure handling is a *loop*, not a one-way valve:
the Health Monitor diagnoses, the Mapping Manager maps out the bad
hardware, "a service ticket is raised to replace the faulty
components" — and once the technician swaps the card, the capacity
returns to the pool.  The control plane so far implemented only the
first half; a cordoned slot stayed cordoned until an operator called
``uncordon()`` by hand, so long experiments bled capacity forever.

This module closes the loop.  A :class:`RepairQueue` opens a
:class:`ServiceTicket` whenever a slot is cordoned (the scheduler
notifies an attached queue) or when deployment-time manufacturing
tests find failed cards.  Each ticket draws a repair time from a
configurable :class:`RepairPolicy` distribution — deterministic via
the sim RNG — and on expiry the queue performs the technician's visit:
it resets the slot's hardware
(:meth:`~repro.fabric.datacenter.Datacenter.service_ring`), un-cordons
the slot through the scheduler, and fires its ``on_repaired``
callbacks so the :class:`~repro.cluster.manager.ClusterManager` can
immediately reconcile shortfall replicas onto the recovered capacity.

Repair-time distributions:

``fixed``
    Every repair takes exactly ``mean_ns`` — the analytic baseline.

``lognormal``
    Right-skewed service times (most swaps are quick, a few wait on
    parts), parameterised so the distribution's mean is ``mean_ns``
    with log-space shape ``sigma``.

``batched``
    The "weekly truck roll": tickets wait until the next multiple of
    ``batch_period_ns`` on the simulation clock and are all serviced
    on that visit — the cheapest real-world staffing model.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import math
import typing

from repro.fabric.datacenter import Datacenter, ManufacturingReport, RingSlot
from repro.sim import Engine
from repro.sim.units import DAY, HOUR

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.scheduler import ClusterScheduler

REPAIR_DISTRIBUTIONS = ("fixed", "lognormal", "batched")


@dataclasses.dataclass(frozen=True)
class RepairPolicy:
    """How long cordoned hardware waits for its technician."""

    distribution: str = "fixed"
    mean_ns: float = 4 * HOUR
    sigma: float = 0.5  # lognormal log-space shape
    batch_period_ns: float = 7 * DAY  # truck-roll cadence

    def __post_init__(self) -> None:
        if self.distribution not in REPAIR_DISTRIBUTIONS:
            raise ValueError(
                f"unknown repair distribution {self.distribution!r}; "
                f"choose from {REPAIR_DISTRIBUTIONS}"
            )
        if self.mean_ns <= 0:
            raise ValueError(f"mean repair time must be positive, got {self.mean_ns}")
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if self.batch_period_ns <= 0:
            raise ValueError(
                f"batch period must be positive, got {self.batch_period_ns}"
            )

    def repair_delay_ns(self, rng, now_ns: float) -> float:
        """Time from ticket open until the repair completes."""
        if self.distribution == "fixed":
            return self.mean_ns
        if self.distribution == "lognormal":
            # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) = mean_ns.
            mu = math.log(self.mean_ns) - self.sigma * self.sigma / 2.0
            return rng.lognormvariate(mu, self.sigma)
        # batched: the next truck-roll instant strictly after now.
        remainder = now_ns % self.batch_period_ns
        return self.batch_period_ns - remainder


@dataclasses.dataclass
class ServiceTicket:
    """One open item of manual service: a ring awaiting its technician."""

    ticket_id: int
    slot: RingSlot
    reason: str
    opened_ns: float
    due_ns: float
    closed_ns: float | None = None
    outcome: str = ""  # "repaired" | "cancelled" once closed
    components_serviced: int = 0

    @property
    def open(self) -> bool:
        return self.closed_ns is None


class RepairQueue:
    """Opens, times, and resolves service tickets for cordoned slots."""

    def __init__(
        self,
        engine: Engine,
        datacenter: Datacenter,
        scheduler: "ClusterScheduler",
        policy: RepairPolicy | None = None,
        stream: str = "repair",
    ):
        self.engine = engine
        self.datacenter = datacenter
        self.scheduler = scheduler
        self.policy = policy or RepairPolicy()
        self.tickets: list[ServiceTicket] = []
        self.on_repaired: list[collections.abc.Callable[[ServiceTicket], None]] = []
        self._open_by_slot: dict[RingSlot, ServiceTicket] = {}
        self._rng = engine.rng.stream(stream)
        if engine.fluid is not None:
            # Ticket expiries mutate cluster state (hardware serviced,
            # slot uncordoned, replicas reconciled): guarded, so fluid
            # windows end early enough for discrete warm-up to rebuild
            # in-flight traffic before the capacity change lands.
            engine.fluid.register(self, guarded=True)

    # -- observation -----------------------------------------------------------

    @property
    def open_tickets(self) -> list[ServiceTicket]:
        return [ticket for ticket in self.tickets if ticket.open]

    @property
    def closed_tickets(self) -> list[ServiceTicket]:
        return [ticket for ticket in self.tickets if not ticket.open]

    @property
    def repaired_count(self) -> int:
        return sum(1 for t in self.tickets if t.outcome == "repaired")

    def next_due_ns(self) -> float | None:
        """When the earliest open ticket resolves (None when idle)."""
        pending = self.open_tickets
        return min(ticket.due_ns for ticket in pending) if pending else None

    def ticket_for(self, slot: RingSlot) -> ServiceTicket | None:
        """The open ticket covering ``slot``, if any."""
        return self._open_by_slot.get(slot)

    def next_transient_ns(self, now_ns: float) -> float:
        """Fluid :class:`~repro.sim.fluid.TransientSource` protocol:
        the earliest pending repair expiry strictly after ``now``."""
        pending = [t.due_ns for t in self.open_tickets if t.due_ns > now_ns]
        return min(pending) if pending else math.inf

    # -- lifecycle -------------------------------------------------------------

    def open_ticket(self, slot: RingSlot, reason: str = "") -> ServiceTicket:
        """Raise a service ticket for ``slot`` (idempotent per slot).

        The repair timer starts immediately; when it expires the queue
        services the ring's hardware, un-cordons the slot, and invokes
        the ``on_repaired`` callbacks.
        """
        existing = self._open_by_slot.get(slot)
        if existing is not None:
            return existing
        now = self.engine.now
        ticket = ServiceTicket(
            ticket_id=len(self.tickets),
            slot=slot,
            reason=reason,
            opened_ns=now,
            due_ns=now + self.policy.repair_delay_ns(self._rng, now),
        )
        self.tickets.append(ticket)
        self._open_by_slot[slot] = ticket
        # Daemon: a pending repair must not keep a bare run() alive
        # after the workload under test has finished.
        self.engine.process(
            self._repair_body(ticket),
            name=f"repair:{slot.pod_id}/{slot.ring_x}",
            daemon=True,
        )
        return ticket

    def cancel(self, slot: RingSlot) -> ServiceTicket | None:
        """Close ``slot``'s open ticket without servicing the hardware
        (an operator un-cordoned the slot out-of-band)."""
        ticket = self._open_by_slot.pop(slot, None)
        if ticket is not None:
            ticket.closed_ns = self.engine.now
            ticket.outcome = "cancelled"
        return ticket

    def open_from_manufacturing(
        self, report: ManufacturingReport, reason: str = "manufacturing test"
    ) -> list[ServiceTicket]:
        """Ticket every ring the deployment-time tests flagged (§2.3).

        Each failed card site is marked failed on the physical FPGA (so
        nothing can configure it meanwhile), its slot is cordoned, and
        a ticket is opened for the swap.  A flagged slot that is
        already *occupied* cannot be cordoned out from under its
        deployment; it is left to the ordinary failure loop — the
        health sweep will diagnose the failed card, map it out, and
        cordon (thereby ticketing) the slot if the ring exhausts its
        spares.
        """
        tickets = []
        for slot, node in report.failed_card_sites:
            server = self.datacenter.pod(slot.pod_id).server_at(node)
            server.fpga.mark_failed()
        for slot in report.failed_card_slots:
            if self.scheduler.is_occupied(slot):
                continue
            if slot not in self.scheduler.cordoned_slots:
                # cordon() notifies an attached queue; open_ticket()
                # below is then a deduplicating no-op.
                self.scheduler.cordon(slot, reason=reason)
            tickets.append(self.open_ticket(slot, reason=reason))
        return tickets

    # -- the technician --------------------------------------------------------

    def _repair_body(self, ticket: ServiceTicket) -> collections.abc.Generator:
        yield self.engine.timeout(ticket.due_ns - self.engine.now)
        if not ticket.open:
            return  # cancelled (manual uncordon) while waiting
        self._open_by_slot.pop(ticket.slot, None)
        ticket.closed_ns = self.engine.now
        ticket.outcome = "repaired"
        if self.engine.fluid is not None:
            self.engine.fluid.note_transient("repair")
        ticket.components_serviced = self.datacenter.service_ring(ticket.slot)
        if ticket.slot in self.scheduler.cordoned_slots:
            self.scheduler.uncordon(ticket.slot)
        # Serviced boards return with empty staging DRAM and good
        # hardware: drop the slot's cached images and lift any
        # region-granular cordons (shared-ring tenancy).
        self.scheduler.slot_serviced(ticket.slot)
        for callback in list(self.on_repaired):
            callback(ticket)

    def __repr__(self) -> str:
        return (
            f"<RepairQueue {self.policy.distribution} "
            f"open={len(self.open_tickets)} closed={len(self.closed_tickets)}>"
        )
