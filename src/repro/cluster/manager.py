"""The cluster control plane: desired-state service management.

The paper's service keeps running because management software closes a
loop (§2.3, §3.5): the Health Monitor diagnoses failures, the Mapping
Manager rotates rings onto spares, and operators keep enough ring
instances deployed.  :class:`ClusterManager` is that loop made
first-class.  Callers declare a :class:`~repro.cluster.spec.ServiceSpec`
and ``apply()`` it; the manager owns every mechanism underneath —
placement via the :class:`~repro.cluster.scheduler.ClusterScheduler`,
the front-end :class:`~repro.cluster.load_balancer.LoadBalancer`, and
per-pod :class:`~repro.services.health_monitor.HealthMonitor`s wired to
the shared per-pod :class:`~repro.services.mapping_manager
.MappingManager`s, so a failure report rotates the ring, the rotation
moves the ring's health weight, and the ``weighted_health`` policy sees
it — with no caller touching any of those objects directly.

``reconcile()`` converges observed state onto the spec: rings whose
failures exhausted their spares are released (their slots cordoned for
manual service) and replacement replicas are placed on free slots; the
per-service health watchdog automates the sweep-then-reconcile cadence
in simulated time.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis import percentile
from repro.cluster.composite import CompositeDeployment
from repro.cluster.deployment import Deployment
from repro.cluster.load_balancer import LoadBalancer
from repro.cluster.scheduler import (
    CapacityReport,
    ClusterScheduler,
    InsufficientClusterCapacity,
    PlacementFailed,
)
from repro.fabric.datacenter import Datacenter, RingSlot
from repro.services.health_monitor import HealthMonitor
from repro.sim import Engine
from repro.sim.units import US

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.spec import ServiceSpec


@dataclasses.dataclass(frozen=True)
class RingStatus:
    """Observed state of one replica (a ring, or a gang of rings).

    For a composite replica ``slot`` is the head member's ring and
    ``member_slots`` lists every ring of the gang in chain order; for a
    plain single-ring replica ``member_slots`` is ``(slot,)``.
    """

    name: str
    slot: RingSlot
    health: float
    outstanding: int
    completed: int
    timeouts: int
    throughput_per_s: float
    p99_us: float | None
    member_slots: tuple = ()


@dataclasses.dataclass(frozen=True)
class ServiceStatus:
    """Observed vs desired state of one service."""

    service: str
    desired_replicas: int
    ready_replicas: int
    degraded_replicas: int
    capacity: CapacityReport
    rings: tuple

    @property
    def converged(self) -> bool:
        return self.ready_replicas >= self.desired_replicas


@dataclasses.dataclass(frozen=True)
class ReconcileAction:
    """One convergence step: what the manager did and where."""

    service: str
    # release_unservable | release_gang_member | reshape | place |
    # replace | scale_down | cordon | shortfall
    kind: str
    slot: RingSlot | None = None
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class ReconcileReport:
    """Outcome of one reconciliation pass."""

    at_ns: float
    actions: tuple

    @property
    def converged(self) -> bool:
        return not any(action.kind == "shortfall" for action in self.actions)

    def __bool__(self) -> bool:
        return bool(self.actions)


class ServiceHandle:
    """A declared service under management.

    The handle is the only object callers need: it dispatches requests
    (it satisfies the open-loop injector's sink protocol), reports
    status, and rescales — everything else (balancer, monitors, mapping
    managers) stays inside the control plane.
    """

    def __init__(
        self, manager: "ClusterManager", spec: "ServiceSpec", balancer: LoadBalancer
    ):
        self.manager = manager
        self.spec = spec
        self.balancer = balancer
        self.retired: list[Deployment] = []  # released replicas (post-mortem)
        self.active = True
        self._watchdog = None
        self._last_report: ReconcileReport | None = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def deployments(self) -> list[Deployment]:
        return self.balancer.deployments

    # -- dispatch (open-loop sink protocol) ------------------------------------

    @property
    def outstanding(self) -> int:
        return self.balancer.outstanding

    def submit(
        self, request: object, timeout_ns: float | None = None
    ) -> typing.Generator:
        """Dispatch one request via the front end (a generator)."""
        if not self.active:
            raise RuntimeError(f"service {self.name!r} has been drained")
        timeout = timeout_ns if timeout_ns is not None else self.spec.request_timeout_ns
        return (yield from self.balancer.submit(request, timeout_ns=timeout))

    # -- lifecycle -------------------------------------------------------------

    def scale(self, replicas: int) -> ReconcileReport:
        """Declare a new replica count and converge onto it."""
        if not self.active:
            raise RuntimeError(f"service {self.name!r} has been drained")
        self.manager.apply(self.spec.with_replicas(replicas))
        return self.last_reconcile

    def reconcile(self) -> ReconcileReport:
        if not self.active:
            raise RuntimeError(f"service {self.name!r} has been drained")
        return self.manager.reconcile(self)

    def status(self) -> ServiceStatus:
        return self.manager.status_of(self)

    @property
    def last_reconcile(self) -> ReconcileReport:
        """The most recent reconciliation pass covering THIS service."""
        if self._last_report is not None:
            return self._last_report
        return ReconcileReport(at_ns=self.manager.engine.now, actions=())

    # -- health watchdog -------------------------------------------------------

    def start_watchdog(self, period_ns: float | None = None) -> None:
        self.manager.start_watchdog(self, period_ns)

    def stop_watchdog(self) -> None:
        if self._watchdog is not None and self._watchdog.is_alive:
            self._watchdog.kill()
        self._watchdog = None

    def __repr__(self) -> str:
        return (
            f"<ServiceHandle {self.name} {len(self.deployments)}/"
            f"{self.spec.replicas} replicas>"
        )


class ClusterManager:
    """Datacenter-wide, declarative service management."""

    def __init__(self, datacenter: Datacenter, default_placement: str = "spread"):
        self.datacenter = datacenter
        self.engine: Engine = datacenter.engine
        self.scheduler = ClusterScheduler(datacenter, policy=default_placement)
        self.handles: dict[str, ServiceHandle] = {}
        self.reconcile_reports: list[ReconcileReport] = []
        self._health_monitors: dict[int, HealthMonitor] = {}

    # -- wiring ----------------------------------------------------------------

    def health_monitor(self, pod_id: int) -> HealthMonitor:
        """The pod's Health Monitor, attached to its Mapping Manager.

        The attachment is the failure loop's first half: a report with
        failed machines invokes the Mapping Manager, which rotates the
        affected rings (moving their health weights).
        """
        if pod_id not in self._health_monitors:
            self._health_monitors[pod_id] = HealthMonitor(
                self.engine,
                self.datacenter.pod(pod_id),
                mapping_manager=self.scheduler.mapping_manager(pod_id),
            )
        return self._health_monitors[pod_id]

    # -- declarative lifecycle -------------------------------------------------

    def apply(self, spec: "ServiceSpec") -> ServiceHandle:
        """Converge the cluster onto ``spec``; returns the handle.

        First apply places ``spec.replicas`` rings and builds the front
        end.  Re-applying a spec for the same service updates the
        declaration in place — replica count and balancing policy take
        effect immediately via reconciliation; the placement policy
        governs future placements.
        """
        existing = self.handles.get(spec.name)
        if existing is not None and existing.active:
            if existing.spec.service is not spec.service:
                raise ValueError(
                    f"service {spec.name!r} is already applied with a "
                    "different ServiceDefinition; drain the old handle "
                    "first, or re-declare from the existing handle's spec "
                    "(e.g. spec.with_replicas(n))"
                )
            existing.spec = spec
            existing.balancer.policy = spec.balancing
            self.reconcile(existing)
            return existing
        deployments: list[Deployment] = []
        actions: list[ReconcileAction] = []
        while len(deployments) < spec.replicas:
            placed, place_actions = self._place_one(spec, kind="place")
            actions.extend(place_actions)
            if placed is None:
                break
            deployments.append(placed)
        if not deployments:
            raise InsufficientClusterCapacity(
                f"no servable ring for service {spec.name!r}"
            )
        balancer = LoadBalancer(
            self.engine, deployments, policy=spec.balancing, name=spec.name
        )
        handle = ServiceHandle(self, spec, balancer)
        self.handles[spec.name] = handle
        report = ReconcileReport(at_ns=self.engine.now, actions=tuple(actions))
        self.reconcile_reports.append(report)
        handle._last_report = report
        self.start_watchdog(handle)
        return handle

    def drain(self, handle: ServiceHandle) -> list[RingSlot]:
        """Tear a service down: release every ring, stop its watchdog."""
        handle.stop_watchdog()
        freed = []
        for replica in list(handle.balancer.deployments):
            freed.extend(self._release_replica(replica))
            handle.balancer.deployments.remove(replica)
            handle.retired.append(replica)
        handle.active = False
        self.handles.pop(handle.name, None)
        return freed

    # -- replica plumbing (single ring vs composite gang) ----------------------

    @staticmethod
    def _member_rings(replica) -> list[Deployment]:
        """The physical ring deployments behind one replica."""
        if isinstance(replica, CompositeDeployment):
            return replica.members
        return [replica]

    def _release_replica(self, replica) -> list[RingSlot]:
        """Free every ring a replica occupies; returns the slots."""
        return [
            self.scheduler.release(member)
            for member in self._member_rings(replica)
        ]

    # -- reconciliation --------------------------------------------------------

    def reconcile(self, handle: ServiceHandle | None = None) -> ReconcileReport:
        """One convergence pass: shed dead rings, restore replica count.

        A ring is dead when its health weight is zero — failures
        exhausted its spares (the Mapping Manager marked the assignment
        unservable).  Dead rings are released and their slots cordoned
        (the hardware needs manual service); replacements are placed on
        free slots under the spec's placement policy.  When the
        datacenter runs out of free rings the shortfall is recorded and
        the service keeps running degraded.
        """
        handles = [handle] if handle is not None else list(self.handles.values())
        actions: list[ReconcileAction] = []
        for one in handles:
            if one.active:
                actions.extend(self._reconcile_one(one))
        report = ReconcileReport(at_ns=self.engine.now, actions=tuple(actions))
        self.reconcile_reports.append(report)
        for one in handles:
            one._last_report = report
        return report

    def _reconcile_one(self, handle: ServiceHandle) -> list[ReconcileAction]:
        actions: list[ReconcileAction] = []
        spec = handle.spec
        balancer = handle.balancer
        # 1. Shed replicas that fell below servability.  A composite
        # replica fails as a unit (its weight is the min over members):
        # every member ring is released, but only the slots of members
        # that actually died are cordoned — healthy members sat on good
        # hardware and their slots return straight to the free pool.
        for replica in list(balancer.deployments):
            if replica.health_weight() > 0.0:
                continue
            for member in self._member_rings(replica):
                dead = member.health_weight() == 0.0
                slot = self.scheduler.release(member)
                if dead:
                    self.scheduler.cordon(slot)
                actions.append(
                    ReconcileAction(
                        spec.name,
                        "release_unservable" if dead else "release_gang_member",
                        slot,
                    )
                )
            balancer.deployments.remove(replica)
            handle.retired.append(replica)
        # 2. Scale down: release the least healthy replicas first.
        # Before reshaping, so surplus replicas are not pointlessly
        # rebuilt at the new shape and their slots are free for it.
        while len(balancer.deployments) > spec.replicas:
            victim = min(balancer.deployments, key=lambda d: d.health_weight())
            for slot in self._release_replica(victim):
                actions.append(ReconcileAction(spec.name, "scale_down", slot))
            balancer.deployments.remove(victim)
            handle.retired.append(victim)
        # 3. Reshape replicas whose member count no longer matches the
        # declaration (``rings_per_replica`` changed on re-apply) — one
        # at a time, release-then-immediately-re-place, with a capacity
        # pre-flight, so a new shape that cannot be placed degrades the
        # service by at most one replica instead of taking every
        # healthy old-shape replica dark at once.
        for replica in list(balancer.deployments):
            members = self._member_rings(replica)
            if len(members) == spec.rings_per_replica:
                continue
            free = len(self.scheduler.free_slots())
            if free + len(members) < spec.rings_per_replica:
                # The new shape cannot possibly fit even reusing this
                # replica's own slots: keep the old shape serving.
                actions.append(
                    ReconcileAction(
                        spec.name,
                        "shortfall",
                        None,
                        detail=(
                            f"reshape to {spec.rings_per_replica} rings "
                            f"needs more capacity ({free} free)"
                        ),
                    )
                )
                continue
            for slot in self._release_replica(replica):
                actions.append(ReconcileAction(spec.name, "reshape", slot))
            balancer.deployments.remove(replica)
            handle.retired.append(replica)
            placed, place_actions = self._place_one(spec, kind="replace")
            actions.extend(place_actions)
            if placed is None:
                break  # capacity raced away; step 4 records the rest
            balancer.deployments.append(placed)
        # 4. Scale up / replace until the declared count is restored.
        while len(balancer.deployments) < spec.replicas:
            placed, place_actions = self._place_one(spec, kind="replace")
            actions.extend(place_actions)
            if placed is None:
                break
            balancer.deployments.append(placed)
        return actions

    def _place_one(
        self, spec: "ServiceSpec", kind: str
    ) -> tuple[Deployment | CompositeDeployment | None, list[ReconcileAction]]:
        """Place one replica — a single ring, or a gang of
        ``rings_per_replica`` rings wrapped in a
        :class:`CompositeDeployment` — cordoning slots that fail at
        configure time and retrying until the replica sticks or
        capacity runs out.  Gangs are all-or-nothing: a configure
        failure rolls the partial gang back inside the scheduler, the
        bad slot is cordoned here, and the whole gang is retried."""
        actions: list[ReconcileAction] = []
        while True:
            try:
                if spec.rings_per_replica == 1:
                    (placed,) = self.scheduler.deploy(
                        spec.service,
                        rings=1,
                        adapter=spec.adapter,
                        slots_per_server=spec.slots_per_server,
                        policy=spec.placement,
                    )
                else:
                    members = self.scheduler.deploy_gang(
                        spec.service,
                        rings=spec.rings_per_replica,
                        adapter=spec.adapter,
                        slots_per_server=spec.slots_per_server,
                        policy=spec.placement,
                    )
                    placed = CompositeDeployment(
                        self.engine, members, datacenter=self.datacenter
                    )
            except PlacementFailed as failure:
                # The chosen slot turned out to have bad hardware the
                # scheduler had no record of; hold it out and retry.
                self.scheduler.cordon(failure.slot)
                actions.append(
                    ReconcileAction(
                        spec.name, "cordon", failure.slot, detail=str(failure.cause)
                    )
                )
                continue
            except InsufficientClusterCapacity as exc:
                actions.append(
                    ReconcileAction(spec.name, "shortfall", None, detail=str(exc))
                )
                return None, actions
            members = self._member_rings(placed)
            for member in members:
                self.health_monitor(member.pod.pod_id)
            slots = [self.scheduler.slot_of(member) for member in members]
            actions.append(
                ReconcileAction(
                    spec.name,
                    kind,
                    slots[0],
                    detail=(
                        " -> ".join(str(slot) for slot in slots)
                        if len(slots) > 1
                        else ""
                    ),
                )
            )
            return placed, actions

    # -- health watchdog -------------------------------------------------------

    def start_watchdog(
        self, handle: ServiceHandle, period_ns: float | None = None
    ) -> None:
        """Periodic sweep-then-reconcile for one service.

        In production the Health Monitor "is invoked when there is a
        suspected failure" by a machine higher in the hierarchy; the
        watchdog automates that trigger for the service's rings — every
        period it walks each replica's live nodes through the owning
        pod's Health Monitor (error vectors trigger Mapping Manager
        rotations) and reconciles afterwards so exhausted rings are
        replaced without an operator in the loop.
        """
        if handle._watchdog is not None and handle._watchdog.is_alive:
            raise RuntimeError(f"watchdog for {handle.name!r} already running")

        def body() -> typing.Generator:
            while handle.active:
                # Read the period from the live spec each cycle so a
                # re-applied declaration changes the cadence in place.
                yield self.engine.timeout(
                    period_ns
                    if period_ns is not None
                    else handle.spec.health_period_ns
                )
                if not handle.active:
                    return
                yield from self._sweep_body(handle)
                self.reconcile(handle)

        handle._watchdog = self.engine.process(
            body(), name=f"cluster.watchdog:{handle.name}", daemon=True
        )

    def sweep(self, handle: ServiceHandle):
        """One immediate health sweep + reconcile; returns a completion
        event (usable with ``engine.run_until``)."""
        done = self.engine.event(name=f"sweep:{handle.name}")

        def body() -> typing.Generator:
            yield from self._sweep_body(handle)
            report = self.reconcile(handle)
            done.succeed(report)

        self.engine.process(body(), name=f"cluster.sweep:{handle.name}")
        return done

    def _sweep_body(self, handle: ServiceHandle) -> typing.Generator:
        by_pod: dict[int, list] = {}
        for replica in list(handle.balancer.deployments):
            for member in self._member_rings(replica):
                assignment = member.assignment
                if assignment is None:
                    continue
                live = [
                    node
                    for node in assignment.ring_nodes
                    if node not in assignment.excluded
                ]
                by_pod.setdefault(member.pod.pod_id, []).extend(live)
        for pod_id in sorted(by_pod):
            report = yield self.health_monitor(pod_id).investigate(by_pod[pod_id])
            del report  # failures already routed to the mapping manager

    # -- observation -----------------------------------------------------------

    def status_of(self, handle: ServiceHandle) -> ServiceStatus:
        rings = []
        for replica in handle.balancer.deployments:
            slots = tuple(
                self.scheduler.slot_of(member)
                for member in self._member_rings(replica)
            )
            rings.append(
                RingStatus(
                    name=replica.name,
                    slot=slots[0],
                    health=replica.health_weight(),
                    outstanding=replica.outstanding,
                    completed=replica.completed,
                    timeouts=replica.timeouts,
                    throughput_per_s=replica.meter.per_second,
                    p99_us=(
                        percentile(replica.latencies_ns, 99) / US
                        if replica.latencies_ns
                        else None
                    ),
                    member_slots=slots,
                )
            )
        return ServiceStatus(
            service=handle.name,
            desired_replicas=handle.spec.replicas,
            ready_replicas=sum(1 for ring in rings if ring.health > 0.0),
            degraded_replicas=sum(1 for ring in rings if 0.0 < ring.health < 1.0),
            capacity=self.scheduler.capacity_report(),
            rings=tuple(rings),
        )

    def status(self) -> dict[str, ServiceStatus]:
        return {name: self.status_of(h) for name, h in self.handles.items()}

    def __repr__(self) -> str:
        return (
            f"<ClusterManager services={sorted(self.handles)} "
            f"{self.scheduler.capacity_report().occupied_rings} rings occupied>"
        )
