"""The cluster control plane: desired-state service management.

The paper's service keeps running because management software closes a
loop (§2.3, §3.5): the Health Monitor diagnoses failures, the Mapping
Manager rotates rings onto spares, and operators keep enough ring
instances deployed.  :class:`ClusterManager` is that loop made
first-class.  Callers declare a :class:`~repro.cluster.spec.ServiceSpec`
and ``apply()`` it; the manager owns every mechanism underneath —
placement via the :class:`~repro.cluster.scheduler.ClusterScheduler`,
the front-end :class:`~repro.cluster.load_balancer.LoadBalancer`, and
per-pod :class:`~repro.services.health_monitor.HealthMonitor`s wired to
the shared per-pod :class:`~repro.services.mapping_manager
.MappingManager`s, so a failure report rotates the ring, the rotation
moves the ring's health weight, and the ``weighted_health`` policy sees
it — with no caller touching any of those objects directly.

``reconcile()`` converges observed state onto the spec: rings whose
failures exhausted their spares are released (their slots cordoned for
manual service) and replacement replicas are placed on free slots; the
per-service health watchdog automates the sweep-then-reconcile cadence
in simulated time.

Constructed with a :class:`~repro.cluster.repair.RepairPolicy`, the
manager also closes the *repair* half of the §3.5 loop: every cordon
opens a :class:`~repro.cluster.repair.ServiceTicket`, the ticket's
timer models the technician, and on expiry the slot's hardware is
reset, the slot un-cordoned, and shortfall replicas re-placed — no
operator call anywhere.  ``handle.upgrade(new_spec)`` rides the same
machinery for rolling in-place upgrades.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import typing

from repro.analysis import LatencyStats, percentile
from repro.cluster.composite import CompositeDeployment
from repro.cluster.deployment import Deployment
from repro.cluster.endpoint import ServiceEndpoint
from repro.cluster.load_balancer import LoadBalancer
from repro.cluster.repair import RepairPolicy, RepairQueue, ServiceTicket
from repro.cluster.scheduler import (
    CapacityReport,
    ClusterScheduler,
    InsufficientClusterCapacity,
    PlacementFailed,
)
from repro.fabric.datacenter import Datacenter, RingSlot
from repro.services.health_monitor import HealthMonitor
from repro.sim import Engine
from repro.sim.units import US

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.spec import ServiceSpec


@dataclasses.dataclass(frozen=True)
class RingStatus:
    """Observed state of one replica (a ring, or a gang of rings).

    For a composite replica ``slot`` is the head member's ring and
    ``member_slots`` lists every ring of the gang in chain order; for a
    plain single-ring replica ``member_slots`` is ``(slot,)``.
    """

    name: str
    slot: RingSlot
    health: float
    outstanding: int
    completed: int
    timeouts: int
    throughput_per_s: float
    p99_us: float | None
    member_slots: tuple = ()

    def to_dict(self) -> dict:
        """Canonical JSON form; slots serialize as ``"podP/ringR"``."""
        return {
            "name": self.name,
            "slot": _slot_key(self.slot),
            "health": self.health,
            "outstanding": self.outstanding,
            "completed": self.completed,
            "timeouts": self.timeouts,
            "throughput_per_s": self.throughput_per_s,
            "p99_us": self.p99_us,
            "member_slots": [_slot_key(slot) for slot in self.member_slots],
        }


def _slot_key(slot: RingSlot) -> str:
    return f"pod{slot.pod_id}/ring{slot.ring_x}"


@dataclasses.dataclass(frozen=True)
class ServiceStatus:
    """Observed vs desired state of one service.

    Beyond the replica counts, the status carries the front end's
    aggregate view (dispatch counters, throughput, latency summary) and
    the per-ring breakdowns the balancer keeps internally
    (``per_ring_latency`` / ``per_ring_throughput``), so per-ring skew
    is observable without reaching into the
    :class:`~repro.cluster.load_balancer.LoadBalancer`.
    """

    service: str
    desired_replicas: int
    ready_replicas: int
    degraded_replicas: int
    capacity: CapacityReport
    rings: tuple
    outstanding: int = 0
    dispatched: int = 0
    completed: int = 0
    timeouts: int = 0
    throughput_per_s: float = 0.0
    latency: "LatencyStats | None" = None
    per_ring_latency: dict = dataclasses.field(default_factory=dict)
    per_ring_throughput: dict = dataclasses.field(default_factory=dict)

    @property
    def converged(self) -> bool:
        return self.ready_replicas >= self.desired_replicas

    def to_dict(self) -> dict:
        """Canonical JSON form: sorted, string-keyed, recursively plain.

        Nested dataclasses serialize through their own ``to_dict``;
        every mapping is emitted in sorted key order so the document is
        byte-stable for same-seed runs.
        """
        return {
            "service": self.service,
            "desired_replicas": self.desired_replicas,
            "ready_replicas": self.ready_replicas,
            "degraded_replicas": self.degraded_replicas,
            "converged": self.converged,
            "outstanding": self.outstanding,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "timeouts": self.timeouts,
            "throughput_per_s": self.throughput_per_s,
            "latency": self.latency.to_dict() if self.latency else None,
            "rings": [ring.to_dict() for ring in self.rings],
            "per_ring_latency": {
                name: self.per_ring_latency[name].to_dict()
                for name in sorted(self.per_ring_latency)
            },
            "per_ring_throughput": {
                name: self.per_ring_throughput[name]
                for name in sorted(self.per_ring_throughput)
            },
            "capacity": self.capacity.to_dict(),
        }


@dataclasses.dataclass(frozen=True)
class ReconcileAction:
    """One convergence step: what the manager did and where."""

    service: str
    # release_unservable | release_gang_member | reshape | place |
    # replace | scale_down | cordon | shortfall | upgrade_release |
    # upgrade_place
    kind: str
    slot: RingSlot | None = None
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class ReconcileReport:
    """Outcome of one reconciliation pass."""

    at_ns: float
    actions: tuple

    @property
    def converged(self) -> bool:
        return not any(action.kind == "shortfall" for action in self.actions)

    def __bool__(self) -> bool:
        return bool(self.actions)


class ServiceHandle:
    """A declared service under management.

    The handle is the only object callers need: it dispatches requests
    (it satisfies the open-loop injector's sink protocol), reports
    status, and rescales — everything else (balancer, monitors, mapping
    managers) stays inside the control plane.
    """

    def __init__(
        self, manager: "ClusterManager", spec: "ServiceSpec", balancer: LoadBalancer
    ):
        self.manager = manager
        self.spec = spec
        self.balancer = balancer
        self.retired: list[Deployment] = []  # released replicas (post-mortem)
        self.active = True
        self._watchdog = None
        self._watchdog_ticks = None  # fluid window bound while sweeping
        self._last_report: ReconcileReport | None = None
        self._upgrading = False  # rolling upgrade in flight; see upgrade()

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def deployments(self) -> list[Deployment]:
        return self.balancer.deployments

    # -- dispatch (open-loop sink protocol) ------------------------------------

    @property
    def outstanding(self) -> int:
        return self.balancer.outstanding

    def submit(
        self, request: object, timeout_ns: float | None = None
    ) -> collections.abc.Generator:
        """Dispatch one request via the front end (a generator)."""
        if not self.active:
            raise RuntimeError(f"service {self.name!r} has been drained")
        timeout = timeout_ns if timeout_ns is not None else self.spec.request_timeout_ns
        return (yield from self.balancer.submit(request, timeout_ns=timeout))

    # -- lifecycle -------------------------------------------------------------

    def scale(self, replicas: int) -> ReconcileReport:
        """Declare a new replica count and converge onto it."""
        if not self.active:
            raise RuntimeError(f"service {self.name!r} has been drained")
        self.manager.apply(self.spec.with_replicas(replicas))
        return self.last_reconcile

    def reconcile(self) -> ReconcileReport:
        if not self.active:
            raise RuntimeError(f"service {self.name!r} has been drained")
        return self.manager.reconcile(self)

    def upgrade(self, new_spec: "ServiceSpec") -> ReconcileReport:
        """Roll every replica onto ``new_spec`` — one gang at a time."""
        if not self.active:
            raise RuntimeError(f"service {self.name!r} has been drained")
        return self.manager.upgrade(self, new_spec)

    def status(self) -> ServiceStatus:
        return self.manager.status_of(self)

    @property
    def last_reconcile(self) -> ReconcileReport:
        """The most recent reconciliation pass covering THIS service."""
        if self._last_report is not None:
            return self._last_report
        return ReconcileReport(at_ns=self.manager.engine.now, actions=())

    # -- health watchdog -------------------------------------------------------

    def start_watchdog(self, period_ns: float | None = None) -> None:
        self.manager.start_watchdog(self, period_ns)

    def stop_watchdog(self) -> None:
        if self._watchdog is not None and self._watchdog.is_alive:
            self._watchdog.kill()
        self._watchdog = None
        if self._watchdog_ticks is not None:
            fluid = self.manager.engine.fluid
            if fluid is not None:
                fluid.unregister(self._watchdog_ticks)
        self._watchdog_ticks = None

    def __repr__(self) -> str:
        return (
            f"<ServiceHandle {self.name} {len(self.deployments)}/"
            f"{self.spec.replicas} replicas>"
        )


class ClusterManager:
    """Datacenter-wide, declarative service management."""

    def __init__(
        self,
        datacenter: Datacenter,
        default_placement: str = "spread",
        repair_policy: RepairPolicy | None = None,
        bitstream_cache=None,  # opt-in BitstreamCache for re-placements
    ):
        self.datacenter = datacenter
        self.engine: Engine = datacenter.engine
        self.scheduler = ClusterScheduler(
            datacenter, policy=default_placement, bitstream_cache=bitstream_cache
        )
        self.handles: dict[str, ServiceHandle] = {}
        self._endpoints: dict[str, ServiceEndpoint] = {}
        self.reconcile_reports: list[ReconcileReport] = []
        self._health_monitors: dict[int, HealthMonitor] = {}
        # Services whose batch tenants a latency placement evicted;
        # drained (re-placed elsewhere) before the pass that evicted
        # them returns.
        self._preempted: list[str] = []
        # Convergence passes must not overlap: placing a replica spans
        # simulated time (a ~1 s ring reconfiguration inside a nested
        # run), during which a watchdog tick or repair callback could
        # start a second pass that picks the same still-unmarked slot.
        self._converging = False
        # With a repair policy, every cordon opens a service ticket and
        # the slot returns to the pool on its own once the ticket's
        # timer expires — the §3.5 loop closed without an operator.
        self.repairs: RepairQueue | None = None
        if repair_policy is not None:
            self.repairs = RepairQueue(
                self.engine, datacenter, self.scheduler, policy=repair_policy
            )
            self.scheduler.attach_repair_queue(self.repairs)
            self.repairs.on_repaired.append(self._on_repaired)

    # -- wiring ----------------------------------------------------------------

    def _note_transient(self, label: str, actions=None) -> None:
        """Tell the fluid coordinator cluster state changed (no-op on a
        discrete-only engine, or when a convergence pass had nothing to
        do — a healthy watchdog tick must not hold fluid mode off)."""
        if self.engine.fluid is not None and (actions is None or actions):
            self.engine.fluid.note_transient(label)

    def health_monitor(self, pod_id: int) -> HealthMonitor:
        """The pod's Health Monitor, attached to its Mapping Manager.

        The attachment is the failure loop's first half: a report with
        failed machines invokes the Mapping Manager, which rotates the
        affected rings (moving their health weights).
        """
        if pod_id not in self._health_monitors:
            self._health_monitors[pod_id] = HealthMonitor(
                self.engine,
                self.datacenter.pod(pod_id),
                mapping_manager=self.scheduler.mapping_manager(pod_id),
            )
        return self._health_monitors[pod_id]

    # -- declarative lifecycle -------------------------------------------------

    def apply(self, spec: "ServiceSpec") -> ServiceHandle:
        """Converge the cluster onto ``spec``; returns the handle.

        First apply places ``spec.replicas`` rings and builds the front
        end.  Re-applying a spec for the same service updates the
        declaration in place — replica count and balancing policy take
        effect immediately via reconciliation; the placement policy
        governs future placements.
        """
        existing = self.handles.get(spec.name)
        if existing is not None and existing.active:
            if (
                existing.spec.service is not spec.service
                # Independently built but identical definitions (the
                # declarative path rebuilds catalogs) are the same
                # declaration; compare by canonical form, since role
                # factories are distinct closures on every build.
                and existing.spec.service.to_dict() != spec.service.to_dict()
            ):
                raise ValueError(
                    f"service {spec.name!r} is already applied with a "
                    "different ServiceDefinition; use "
                    "handle.upgrade(new_spec) for a rolling in-place "
                    "upgrade, or drain the old handle first"
                )
            existing.spec = spec
            existing.balancer.policy = spec.balancing
            self.reconcile(existing)
            return existing
        deployments: list[Deployment] = []
        actions: list[ReconcileAction] = []
        self._converging = True
        try:
            while len(deployments) < spec.replicas:
                placed, place_actions = self._place_one(spec, kind="place")
                actions.extend(place_actions)
                if placed is None:
                    break
                deployments.append(placed)
            actions.extend(self._drain_preempted())
        finally:
            self._converging = False
        if not deployments:
            raise InsufficientClusterCapacity(
                f"no servable ring for service {spec.name!r}"
            )
        balancer = LoadBalancer(
            self.engine, deployments, policy=spec.balancing, name=spec.name
        )
        handle = ServiceHandle(self, spec, balancer)
        self.handles[spec.name] = handle
        self._note_transient(f"apply:{spec.name}", actions)
        report = ReconcileReport(at_ns=self.engine.now, actions=tuple(actions))
        self.reconcile_reports.append(report)
        handle._last_report = report
        self.start_watchdog(handle)
        return handle

    def drain(self, handle: ServiceHandle) -> list[RingSlot]:
        """Tear a service down: release every ring, stop its watchdog."""
        handle.stop_watchdog()
        freed = []
        for replica in list(handle.balancer.deployments):
            freed.extend(self._release_replica(replica))
            handle.balancer.deployments.remove(replica)
            handle.retired.append(replica)
        handle.active = False
        self.handles.pop(handle.name, None)
        return freed

    # -- replica plumbing (single ring vs composite gang) ----------------------

    @staticmethod
    def _member_rings(replica) -> list[Deployment]:
        """The physical ring deployments behind one replica."""
        if isinstance(replica, CompositeDeployment):
            return replica.members
        return [replica]

    def _release_replica(self, replica) -> list[RingSlot]:
        """Free every ring a replica occupies; returns the slots."""
        return [
            self.scheduler.release(member)
            for member in self._member_rings(replica)
        ]

    # -- reconciliation --------------------------------------------------------

    def reconcile(self, handle: ServiceHandle | None = None) -> ReconcileReport:
        """One convergence pass: shed dead rings, restore replica count.

        A ring is dead when its health weight is zero — failures
        exhausted its spares (the Mapping Manager marked the assignment
        unservable).  Dead rings are released and their slots cordoned
        (the hardware needs manual service); replacements are placed on
        free slots under the spec's placement policy.  When the
        datacenter runs out of free rings the shortfall is recorded and
        the service keeps running degraded.
        """
        if self._converging:
            # A pass is already in flight (we are inside its nested
            # simulated-time wait); it will converge this state, and the
            # caller's next tick covers anything it misses.
            return ReconcileReport(at_ns=self.engine.now, actions=())
        handles = [handle] if handle is not None else list(self.handles.values())
        actions: list[ReconcileAction] = []
        self._converging = True
        try:
            for one in handles:
                if one.active:
                    actions.extend(self._reconcile_one(one))
            actions.extend(self._drain_preempted())
        finally:
            self._converging = False
        self._note_transient("reconcile", actions)
        report = ReconcileReport(at_ns=self.engine.now, actions=tuple(actions))
        self.reconcile_reports.append(report)
        for one in handles:
            one._last_report = report
        return report

    def _on_repaired(self, ticket: ServiceTicket) -> None:
        """A service ticket closed: capacity just returned to the pool.

        Reconcile every service immediately so replicas that were stuck
        in shortfall re-place onto the recovered slot — the repair half
        of the §3.5 loop, with no operator in it.  (The per-service
        watchdogs would converge eventually; this closes the window.)
        """
        del ticket  # which slot recovered does not matter; any shortfall may use it
        if self.handles:
            self.reconcile()

    def _reconcile_one(self, handle: ServiceHandle) -> list[ReconcileAction]:
        if handle._upgrading:
            # A rolling upgrade owns this service's replicas right now;
            # a concurrent pass (watchdog tick or repair callback firing
            # inside the upgrade's nested waits) would release rings the
            # upgrade is already iterating over.
            return []
        actions: list[ReconcileAction] = []
        spec = handle.spec
        balancer = handle.balancer
        # 1. Shed replicas that fell below servability.  A composite
        # replica fails as a unit (its weight is the min over members):
        # every member ring is released, but only the slots of members
        # that actually died are cordoned — healthy members sat on good
        # hardware and their slots return straight to the free pool.
        for replica in list(balancer.deployments):
            if replica.health_weight() > 0.0:
                continue
            for member in self._member_rings(replica):
                dead = member.health_weight() == 0.0
                region = getattr(member, "region", None)
                slot = self.scheduler.release(member)
                if dead:
                    if region is not None:
                        # Only the tenant's node run is bad hardware;
                        # co-resident tenants keep serving the ring.
                        self.scheduler.cordon_region(
                            slot, region.nodes, reason="spares exhausted"
                        )
                    else:
                        self.scheduler.cordon(slot, reason="spares exhausted")
                actions.append(
                    ReconcileAction(
                        spec.name,
                        "release_unservable" if dead else "release_gang_member",
                        slot,
                    )
                )
            balancer.deployments.remove(replica)
            handle.retired.append(replica)
        # 2. Scale down: release the least healthy replicas first.
        # Before reshaping, so surplus replicas are not pointlessly
        # rebuilt at the new shape and their slots are free for it.
        while len(balancer.deployments) > spec.replicas:
            victim = min(balancer.deployments, key=lambda d: d.health_weight())
            for slot in self._release_replica(victim):
                actions.append(ReconcileAction(spec.name, "scale_down", slot))
            balancer.deployments.remove(victim)
            handle.retired.append(victim)
        # 3. Reshape replicas whose member count no longer matches the
        # declaration (``rings_per_replica`` changed on re-apply) — one
        # at a time via the shared roll step (drain, release,
        # re-place), with a capacity pre-flight so a new shape that
        # cannot be placed degrades the service by at most one replica
        # instead of taking every healthy old-shape replica dark.
        for replica in list(balancer.deployments):
            if len(self._member_rings(replica)) == spec.rings_per_replica:
                continue
            outcome = self._roll_one(
                handle,
                replica,
                verb="reshape",
                kind_release="reshape",
                kind_place="replace",
                bound_ns=spec.request_timeout_ns,
                actions=actions,
            )
            if outcome == "capacity":
                break  # capacity raced away; step 4 records the rest
        # 4. Scale up / replace until the declared count is restored.
        while len(balancer.deployments) < spec.replicas:
            placed, place_actions = self._place_one(spec, kind="replace")
            actions.extend(place_actions)
            if placed is None:
                break
            balancer.deployments.append(placed)
        return actions

    def _roll_one(
        self,
        handle: ServiceHandle,
        replica,
        verb: str,
        kind_release: str,
        kind_place: str,
        bound_ns: float,
        actions: list,
    ) -> str:
        """One rolling step shared by reshape and upgrade: drain a
        replica out of rotation, release its rings, re-place at the
        live spec's shape.

        Returns ``"kept"`` when the capacity pre-flight shows the new
        shape cannot possibly fit even reusing this replica's own slots
        (the old replica stays serving, a shortfall is recorded),
        ``"rolled"`` on success, and ``"capacity"`` when placement
        failed *after* the release (the caller should stop rolling
        further healthy replicas; the scale-up pass records the delta).
        """
        spec = handle.spec
        balancer = handle.balancer
        members = self._member_rings(replica)
        free = len(self.scheduler.free_slots())
        if free + len(members) < spec.rings_per_replica:
            actions.append(
                ReconcileAction(
                    spec.name,
                    "shortfall",
                    None,
                    detail=(
                        f"{verb} to {spec.rings_per_replica} rings "
                        f"needs more capacity ({free} free); "
                        "old replica kept in rotation"
                    ),
                )
            )
            return "kept"
        # Drain: out of the rotation first so the balancer sends no new
        # work, then let in-flight requests resolve before the rings
        # are released (bounded — a dead ring's stragglers resolve as
        # timeouts and divert on release, the §3.2 behavior).
        balancer.deployments.remove(replica)
        self._quiesce(replica, bound_ns=bound_ns)
        for slot in self._release_replica(replica):
            actions.append(ReconcileAction(spec.name, kind_release, slot))
        handle.retired.append(replica)
        if len(balancer.deployments) >= spec.replicas:
            return "rolled"  # rolling past a scale-down: nothing to place
        placed, place_actions = self._place_one(spec, kind=kind_place)
        actions.extend(place_actions)
        if placed is None:
            return "capacity"
        balancer.deployments.append(placed)
        return "rolled"

    def _place_one(
        self, spec: "ServiceSpec", kind: str
    ) -> tuple[Deployment | CompositeDeployment | None, list[ReconcileAction]]:
        """Place one replica — a single ring, or a gang of
        ``rings_per_replica`` rings wrapped in a
        :class:`CompositeDeployment` — cordoning slots that fail at
        configure time and retrying until the replica sticks or
        capacity runs out.  Gangs are all-or-nothing: a configure
        failure rolls the partial gang back inside the scheduler, the
        bad slot is cordoned here, and the whole gang is retried."""
        actions: list[ReconcileAction] = []
        while True:
            try:
                if spec.regions is not None:
                    placed = self.scheduler.deploy_region(
                        spec.service,
                        spec.regions,
                        priority=spec.priority,
                        adapter=spec.adapter,
                        slots_per_server=spec.slots_per_server,
                    )
                elif spec.rings_per_replica == 1:
                    (placed,) = self.scheduler.deploy(
                        spec.service,
                        rings=1,
                        adapter=spec.adapter,
                        slots_per_server=spec.slots_per_server,
                        policy=spec.placement,
                    )
                else:
                    members = self.scheduler.deploy_gang(
                        spec.service,
                        rings=spec.rings_per_replica,
                        adapter=spec.adapter,
                        slots_per_server=spec.slots_per_server,
                        policy=spec.placement,
                    )
                    placed = CompositeDeployment(
                        self.engine, members, datacenter=self.datacenter
                    )
            except PlacementFailed as failure:
                # The chosen slot turned out to have bad hardware the
                # scheduler had no record of; hold it out and retry.  A
                # failed *region* cordons only its node run — the
                # ring's other tenants are unaffected.
                if failure.nodes:
                    self.scheduler.cordon_region(
                        failure.slot,
                        failure.nodes,
                        reason=f"configure failed: {failure.cause}",
                    )
                else:
                    self.scheduler.cordon(
                        failure.slot, reason=f"configure failed: {failure.cause}"
                    )
                actions.append(
                    ReconcileAction(
                        spec.name, "cordon", failure.slot, detail=str(failure.cause)
                    )
                )
                continue
            except InsufficientClusterCapacity as exc:
                if spec.regions is not None and spec.priority == "latency":
                    # Priority preemption: a latency tenant may evict a
                    # batch tenant's region; the victim's service is
                    # re-placed elsewhere before this pass returns.
                    victim = self.scheduler.preemption_victim(
                        spec.service, spec.regions
                    )
                    if victim is not None:
                        actions.append(self._preempt(victim, spec))
                        continue
                actions.append(
                    ReconcileAction(spec.name, "shortfall", None, detail=str(exc))
                )
                return None, actions
            members = self._member_rings(placed)
            for member in members:
                self.health_monitor(member.pod.pod_id)
            slots = [self.scheduler.slot_of(member) for member in members]
            actions.append(
                ReconcileAction(
                    spec.name,
                    kind,
                    slots[0],
                    detail=(
                        " -> ".join(str(slot) for slot in slots)
                        if len(slots) > 1
                        else ""
                    ),
                )
            )
            return placed, actions

    # -- priority preemption (region tenants) ----------------------------------

    def _preempt(self, victim: Deployment, spec: "ServiceSpec") -> ReconcileAction:
        """Evict ``victim`` (a batch region tenant) for ``spec``.

        The victim leaves its front-end rotation, drains its in-flight
        requests (bounded by its own timeout), and its region is
        released; its service is queued for re-placement elsewhere via
        :meth:`_drain_preempted` before the evicting pass returns.
        """
        region = victim.region
        slot = self.scheduler.slot_of(victim)
        victim_handle = self.handles.get(region.service)
        if (
            victim_handle is not None
            and victim in victim_handle.balancer.deployments
        ):
            victim_handle.balancer.deployments.remove(victim)
            self._quiesce(victim, bound_ns=victim_handle.spec.request_timeout_ns)
            victim_handle.retired.append(victim)
            if victim_handle.name not in self._preempted:
                self._preempted.append(victim_handle.name)
        self.scheduler.release(victim)
        return ReconcileAction(
            spec.name,
            "preempt",
            slot,
            detail=f"evicted batch tenant {region.service!r}",
        )

    def _drain_preempted(self) -> list[ReconcileAction]:
        """Re-place the services whose tenants this pass evicted.

        Evicted tenants are batch priority and batch placements never
        preempt, so the drain cannot cascade; at worst a victim lands
        in shortfall and the next repair/reconcile picks it up.
        """
        actions: list[ReconcileAction] = []
        while self._preempted:
            victim_handle = self.handles.get(self._preempted.pop(0))
            if victim_handle is not None and victim_handle.active:
                actions.extend(self._reconcile_one(victim_handle))
        return actions

    # -- rolling in-place upgrades ---------------------------------------------

    def upgrade(self, handle: ServiceHandle, new_spec: "ServiceSpec") -> ReconcileReport:
        """Reconfigure a live service onto ``new_spec``, one replica at
        a time — the paper's headline reconfigurability scenario: the
        same machines, a new accelerator, no service-wide downtime.

        Each rolling step takes one replica (a single ring or a whole
        gang) out of the front-end rotation, waits for its in-flight
        requests to drain (bounded by the old request timeout — a dead
        ring's stragglers resolve as timeouts), releases its rings, and
        re-places a replacement under the new declaration — new
        :class:`~repro.services.mapping_manager.ServiceDefinition`,
        placement policy, shape, and slot count all honoured, since
        re-placement is the ordinary placement path.  The remaining
        replicas keep serving throughout, so offered traffic sees a
        capacity dip of one replica, never an outage (provided the
        service declares more than one replica).

        Unlike ``apply()``, which refuses a changed
        ``ServiceDefinition``, this is the intended way to ship a new
        image fleet-wide.  Returns the reconcile report covering the
        whole roll.  If capacity runs out mid-roll (``shortfall``
        actions in the report), the replicas not yet rolled keep
        serving the *old* definition — re-run ``upgrade`` once capacity
        returns (e.g. after a repair ticket closes) to finish the roll.
        """
        if not handle.active:
            raise RuntimeError(f"service {handle.name!r} has been drained")
        if self.handles.get(handle.name) is not handle:
            raise ValueError(f"{handle.name!r} is not managed by this manager")
        if new_spec.name != handle.name:
            raise ValueError(
                f"an upgrade keeps the service name: handle is "
                f"{handle.name!r}, new spec is {new_spec.name!r} "
                "(declare a differently named spec with apply())"
            )
        if self._converging:
            raise RuntimeError(
                "another convergence pass is in flight; upgrade() is a "
                "top-level operator action"
            )
        # In-flight requests dispatched before the roll carry the OLD
        # spec's timeout; those dispatched during it carry the new one.
        # The drain bound must honour whichever is longer, or requests
        # with a legitimately longer budget are spuriously diverted.
        drain_bound_ns = max(
            handle.spec.request_timeout_ns, new_spec.request_timeout_ns
        )
        handle.spec = new_spec
        handle.balancer.policy = new_spec.balancing
        balancer = handle.balancer
        actions: list[ReconcileAction] = []
        handle._upgrading = True
        self._converging = True
        try:
            for replica in list(balancer.deployments):
                outcome = self._roll_one(
                    handle,
                    replica,
                    verb="upgrade",
                    kind_release="upgrade_release",
                    kind_place="upgrade_place",
                    bound_ns=drain_bound_ns,
                    actions=actions,
                )
                if outcome == "capacity":
                    # Capacity raced away mid-roll (e.g. configure
                    # failures cordoned the freed slots): stop
                    # releasing healthy old replicas; the final
                    # reconcile pass records the remaining delta.
                    break
            # Converge any remaining delta: scale-up past the old
            # replica count, or shortfall bookkeeping if capacity ran
            # out mid-roll.  Still inside the guard — a watchdog tick
            # must not start a competing pass mid-placement.
            handle._upgrading = False
            actions.extend(self._reconcile_one(handle))
            actions.extend(self._drain_preempted())
        finally:
            handle._upgrading = False
            self._converging = False
        self._note_transient(f"upgrade:{handle.name}", actions)
        report = ReconcileReport(at_ns=self.engine.now, actions=tuple(actions))
        self.reconcile_reports.append(report)
        handle._last_report = report
        return report

    def _quiesce(self, replica, bound_ns: float, poll_ns: float = 50 * US) -> None:
        """Wait (in simulated time) until ``replica`` has no in-flight
        requests, bounded by ``bound_ns`` — every dispatched request
        resolves within its timeout, so the bound only bites when a
        ring died with stragglers (which then divert as timeouts on
        release, the §3.2 behavior)."""
        if replica.outstanding == 0:
            return
        deadline = self.engine.now + bound_ns + poll_ns
        done = self.engine.event(name=f"drain:{replica.name}")

        def body() -> collections.abc.Generator:
            while replica.outstanding > 0 and self.engine.now < deadline:
                yield self.engine.timeout(poll_ns)
            done.succeed()

        self.engine.process(body(), name=f"cluster.drain:{replica.name}")
        self.engine.run_until(done)

    # -- health watchdog -------------------------------------------------------

    def start_watchdog(
        self, handle: ServiceHandle, period_ns: float | None = None
    ) -> None:
        """Periodic sweep-then-reconcile for one service.

        In production the Health Monitor "is invoked when there is a
        suspected failure" by a machine higher in the hierarchy; the
        watchdog automates that trigger for the service's rings — every
        period it walks each replica's live nodes through the owning
        pod's Health Monitor (error vectors trigger Mapping Manager
        rotations) and reconciles afterwards so exhausted rings are
        replaced without an operator in the loop.
        """
        if handle._watchdog is not None and handle._watchdog.is_alive:
            raise RuntimeError(f"watchdog for {handle.name!r} already running")

        def body() -> collections.abc.Generator:
            while handle.active:
                # Read the period from the live spec each cycle so a
                # re-applied declaration changes the cadence in place.
                yield self.engine.timeout(
                    period_ns
                    if period_ns is not None
                    else handle.spec.health_period_ns
                )
                if not handle.active:
                    return
                yield from self._sweep_body(handle)
                self.reconcile(handle)

        handle._watchdog = self.engine.process(
            body(), name=f"cluster.watchdog:{handle.name}", daemon=True
        )
        if self.engine.fluid is not None:
            # Sweep cadence bounds fluid windows (observer, no guard):
            # a healthy sweep reads state and moves on; an unhealthy
            # one reconciles, and that pass notes its own transient.
            from repro.sim.fluid import PeriodicTransient

            handle._watchdog_ticks = PeriodicTransient(
                period_ns
                if period_ns is not None
                else handle.spec.health_period_ns,
                anchor_ns=self.engine.now,
            )
            self.engine.fluid.register(handle._watchdog_ticks, guarded=False)

    def sweep(self, handle: ServiceHandle):
        """One immediate health sweep + reconcile; returns a completion
        event (usable with ``engine.run_until``)."""
        done = self.engine.event(name=f"sweep:{handle.name}")

        def body() -> collections.abc.Generator:
            yield from self._sweep_body(handle)
            report = self.reconcile(handle)
            done.succeed(report)

        self.engine.process(body(), name=f"cluster.sweep:{handle.name}")
        return done

    def _sweep_body(self, handle: ServiceHandle) -> collections.abc.Generator:
        by_pod: dict[int, list] = {}
        for replica in list(handle.balancer.deployments):
            for member in self._member_rings(replica):
                assignment = member.assignment
                if assignment is None:
                    continue
                live = [
                    node
                    for node in assignment.ring_nodes
                    if node not in assignment.excluded
                ]
                by_pod.setdefault(member.pod.pod_id, []).extend(live)
        for pod_id in sorted(by_pod):
            report = yield self.health_monitor(pod_id).investigate(by_pod[pod_id])
            del report  # failures already routed to the mapping manager

    # -- front door ------------------------------------------------------------

    def endpoint(self, name: str) -> ServiceEndpoint:
        """The stable virtual endpoint (VIP) for service ``name``.

        Memoized per name, and independent of whether the service is
        currently applied: the endpoint resolves the live handle at
        each dispatch, so it survives re-placement, preemption,
        upgrades, repair, and drain + re-apply.  Workloads should hold
        this instead of the :class:`ServiceHandle`.
        """
        if name not in self._endpoints:
            self._endpoints[name] = ServiceEndpoint(self, name)
        return self._endpoints[name]

    # -- observation -----------------------------------------------------------

    def status_of(self, handle: ServiceHandle) -> ServiceStatus:
        rings = []
        for replica in handle.balancer.deployments:
            slots = tuple(
                self.scheduler.slot_of(member)
                for member in self._member_rings(replica)
            )
            rings.append(
                RingStatus(
                    name=replica.name,
                    slot=slots[0],
                    health=replica.health_weight(),
                    outstanding=replica.outstanding,
                    completed=replica.completed,
                    timeouts=replica.timeouts,
                    throughput_per_s=replica.meter.per_second,
                    p99_us=(
                        percentile(replica.latencies_ns, 99) / US
                        if replica.latencies_ns
                        else None
                    ),
                    member_slots=slots,
                )
            )
        balancer = handle.balancer
        return ServiceStatus(
            service=handle.name,
            desired_replicas=handle.spec.replicas,
            ready_replicas=sum(1 for ring in rings if ring.health > 0.0),
            degraded_replicas=sum(1 for ring in rings if 0.0 < ring.health < 1.0),
            capacity=self.scheduler.capacity_report(),
            rings=tuple(rings),
            outstanding=balancer.outstanding,
            dispatched=balancer.dispatched,
            completed=balancer.completed,
            timeouts=balancer.timeouts,
            throughput_per_s=balancer.meter.per_second,
            latency=(
                balancer.latencies_ns.summary() if balancer.latencies_ns else None
            ),
            per_ring_latency=balancer.per_ring_stats(),
            per_ring_throughput=balancer.per_ring_throughput(),
        )

    def status(self) -> dict[str, ServiceStatus]:
        """Every managed service's status, in canonical (sorted) order.

        Sorted so serialized cluster state is independent of the order
        in which services happened to be applied.
        """
        return {name: self.status_of(self.handles[name]) for name in sorted(self.handles)}

    def __repr__(self) -> str:
        return (
            f"<ClusterManager services={sorted(self.handles)} "
            f"{self.scheduler.capacity_report().occupied_rings} rings occupied>"
        )
