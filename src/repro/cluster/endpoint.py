"""Stable virtual endpoints: the cluster's VIP front door.

Workloads used to hold the :class:`~repro.cluster.manager.ServiceHandle`
(or worse, the raw :class:`~repro.cluster.load_balancer.LoadBalancer`)
returned by ``apply()`` — which couples them to control-plane
internals: drain + re-apply replaces the handle object, so every
workload had to be re-threaded whenever the operator surface recreated
a service.  A :class:`ServiceEndpoint` is the indirection that removes
the coupling, the way a VIP in front of a load-balancer pool decouples
clients from pool membership: it names a *service*, not an object, and
resolves the live handle at each dispatch.  The endpoint therefore
survives re-placement, preemption, rolling upgrades, repair — and even
a full drain + re-declaration, including one driven from a cluster
file (:mod:`repro.cluster.clusterfile`).

While the named service is absent (drained and not yet re-applied),
``submit`` raises :class:`~repro.cluster.load_balancer
.NoHealthyDeployment` — the same signal a total outage produces — so an
:class:`~repro.workloads.openloop.OpenLoopInjector` sheds arrivals at
the front door and recovers the moment the service returns.
"""

from __future__ import annotations

import collections.abc
import typing

from repro.cluster.load_balancer import NoHealthyDeployment

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.manager import ClusterManager, ServiceHandle, ServiceStatus


class ServiceEndpoint:
    """A stable front door for one named service.

    Satisfies the open-loop injector's sink protocol (``outstanding`` +
    generator ``submit``), so workloads can be wired to the endpoint
    once and left alone across the service's whole lifecycle.  Obtain
    via :meth:`ClusterManager.endpoint` — endpoints are memoized per
    name and may be created before the service is first applied.
    """

    def __init__(self, manager: "ClusterManager", name: str):
        self.manager = manager
        self.name = name

    # -- resolution ------------------------------------------------------------

    @property
    def handle(self) -> "ServiceHandle | None":
        """The live handle currently behind this endpoint, if any."""
        handle = self.manager.handles.get(self.name)
        if handle is None or not handle.active:
            return None
        return handle

    @property
    def attached(self) -> bool:
        """Whether a live service currently answers to this name."""
        return self.handle is not None

    # -- dispatch (open-loop sink protocol) ------------------------------------

    @property
    def outstanding(self) -> int:
        handle = self.handle
        return handle.outstanding if handle is not None else 0

    def submit(
        self, request: object, timeout_ns: float | None = None
    ) -> collections.abc.Generator:
        """Dispatch one request to whatever serves the name right now.

        Resolution happens per dispatch, so a request submitted after a
        drain + re-apply lands on the new incarnation with no caller
        rewiring.  With nothing behind the VIP the request is refused
        with :class:`NoHealthyDeployment` (shed at the front door).
        """
        handle = self.handle
        if handle is None:
            raise NoHealthyDeployment(
                f"endpoint {self.name!r}: no service behind the front door"
            )
        return (yield from handle.submit(request, timeout_ns=timeout_ns))

    # -- fluid fast-forward (optional sink extension) --------------------------

    # An endpoint's sink has no deterministic per-request service time
    # (requests traverse leases, fabric hops, and health-weighted
    # rings), so its profile is the *sampler* form: fluid windows draw
    # sojourns from the balancer's own latency reservoir — the
    # empirical steady-state distribution the discrete path measured.
    # Cold start (too few samples) or any degraded ring returns None,
    # which keeps the injector discrete until the service has both
    # warmed up and healed; the profile is re-queried at every window.

    FLUID_MIN_SAMPLES = 64

    def fluid_profile(self):
        handle = self.handle
        if handle is None:
            return None
        balancer = handle.balancer
        reservoir = balancer.latencies_ns
        if reservoir.sample_size < self.FLUID_MIN_SAMPLES:
            return None
        if any(d.health_weight() <= 0.0 for d in balancer.deployments):
            return None
        from repro.sim.fluid import FluidProfile

        def sampler(rng, _reservoir=reservoir):
            return _reservoir[rng.randrange(_reservoir.sample_size)]

        return FluidProfile(servers=len(balancer.deployments), sampler=sampler)

    def note_fluid(self, window) -> None:
        """Reconcile an analytic window's counters into the live
        balancer (no-op while detached — the window was credited by a
        profile taken when a handle was attached, and a detach since
        then would have ended the window at its transient)."""
        handle = self.handle
        if handle is not None:
            handle.balancer.record_fluid(window)

    # -- observation -----------------------------------------------------------

    def status(self) -> "ServiceStatus":
        handle = self.handle
        if handle is None:
            raise KeyError(f"endpoint {self.name!r}: service not applied")
        return handle.status()

    def __repr__(self) -> str:
        state = "attached" if self.attached else "detached"
        return f"<ServiceEndpoint {self.name} {state}>"
