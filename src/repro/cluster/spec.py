"""Declarative service specification — the control plane's input.

The paper's production deployment is *operated*: the Mapping Manager
and Health Monitor keep 1,632 machines serving through failures (§2.3,
§3.5).  Operators do not hand-wire schedulers, balancers and monitors;
they declare what the service should look like and management software
converges the fleet onto it.  :class:`ServiceSpec` is that declaration:
a frozen description of the desired state — which service, how many
ring replicas, under which placement and balancing policies, with what
dispatch limits and health-watchdog cadence.  The
:class:`~repro.cluster.manager.ClusterManager` consumes it via
``apply(spec)`` and owns every mechanism underneath.
"""

from __future__ import annotations

import collections.abc
import dataclasses

from repro.cluster.deployment import RequestAdapter
from repro.cluster.load_balancer import BALANCING_POLICIES
from repro.cluster.scheduler import PLACEMENT_POLICIES
from repro.cluster.tenancy import PRIORITIES
from repro.services.mapping_manager import ServiceDefinition
from repro.sim.units import SEC


@dataclasses.dataclass(frozen=True)
class ServiceSpec:
    """Desired state of one datacenter service.

    ``replicas``
        Ring instances the control plane keeps servable.  Reconciliation
        re-places replicas lost to failures and converges scale-up /
        scale-down.

    ``rings_per_replica``
        Rings composing ONE replica.  The default (1) is the paper's
        ranking shape — one service instance per 8-FPGA ring; larger
        accelerators span multiple rings reached over the torus (§2.3),
        so each replica becomes a gang of rings chained into one request
        path (a :class:`~repro.cluster.composite.CompositeDeployment`).
        Gangs are placed all-or-nothing and fail as a unit: a member
        ring exhausting its spares makes the whole replica unservable,
        and reconciliation re-places the full gang.

    ``placement`` / ``balancing``
        Policies for the scheduler (``spread`` / ``pack``) and the
        front-end balancer (``round_robin`` / ``least_outstanding`` /
        ``weighted_health``).

    ``adapter``
        Translates generic dispatch into service-specific wire traffic;
        shared across every replica (adapters are stateless).

    ``health_period_ns``
        Cadence of the per-service health watchdog: how often the
        manager sweeps the replicas' ring nodes through the pod Health
        Monitors and reconciles afterwards.

    ``regions``
        Fraction of a ring each replica needs, or ``None`` (default)
        for the paper's whole-ring shape.  A fractional declaration
        makes each replica a *tenant*: the scheduler bin-packs it onto
        a shared ring's free region beside other small services.  Only
        single-ring replicas can be region tenants.

    ``priority``
        Dispatch class of a region tenant: ``latency`` tenants hold a
        2x weighted share of the shared injection slots and may evict a
        ``batch`` tenant's region when no free region remains (the
        evicted tenant is re-placed elsewhere).  Whole-ring services
        ignore this (they never share resources).
    """

    service: ServiceDefinition
    replicas: int = 1
    rings_per_replica: int = 1
    placement: str = "spread"
    balancing: str = "least_outstanding"
    adapter: RequestAdapter | None = None
    slots_per_server: int = 48
    request_timeout_ns: float = 5 * SEC
    health_period_ns: float = 10 * SEC
    regions: float | None = None
    priority: str = "batch"

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"need at least one replica, got {self.replicas}")
        if self.rings_per_replica < 1:
            raise ValueError(
                f"need at least one ring per replica, got {self.rings_per_replica}"
            )
        if self.priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {self.priority!r}; choose from {PRIORITIES}"
            )
        if self.regions is not None:
            if not 0.0 < self.regions <= 1.0:
                raise ValueError(
                    f"regions must be a ring fraction in (0, 1], got {self.regions}"
                )
            if self.rings_per_replica != 1:
                raise ValueError(
                    "region tenants are single-ring replicas; "
                    f"rings_per_replica={self.rings_per_replica} cannot "
                    "also declare regions"
                )
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {self.placement!r}; "
                f"choose from {PLACEMENT_POLICIES}"
            )
        if self.balancing not in BALANCING_POLICIES:
            raise ValueError(
                f"unknown balancing policy {self.balancing!r}; "
                f"choose from {BALANCING_POLICIES}"
            )
        if self.slots_per_server < 1:
            raise ValueError(
                f"slots_per_server must be positive, got {self.slots_per_server}"
            )
        if self.request_timeout_ns <= 0:
            raise ValueError(
                f"request timeout must be positive, got {self.request_timeout_ns}"
            )
        if self.health_period_ns <= 0:
            raise ValueError(
                f"health period must be positive, got {self.health_period_ns}"
            )

    @property
    def name(self) -> str:
        return self.service.name

    def with_replicas(self, replicas: int) -> "ServiceSpec":
        """The same declaration at a different scale."""
        return dataclasses.replace(self, replicas=replicas)

    # -- declarative (JSON) form -----------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON form of this declaration.

        The two non-data fields serialize by *name*: ``service`` is the
        :class:`ServiceDefinition`'s name (definitions carry role
        constructors — code — and are resolved from a catalog on the
        way back in) and ``adapter`` is the adapter's class name (or
        ``None`` for the default).  Everything else is the plain field
        value, so ``from_dict(to_dict(s), ...) == s`` when the same
        definition and adapter objects are supplied.
        """
        return {
            "service": self.service.name,
            "replicas": self.replicas,
            "rings_per_replica": self.rings_per_replica,
            "placement": self.placement,
            "balancing": self.balancing,
            "adapter": (
                type(self.adapter).__name__ if self.adapter is not None else None
            ),
            "slots_per_server": self.slots_per_server,
            "request_timeout_ns": self.request_timeout_ns,
            "health_period_ns": self.health_period_ns,
            "regions": self.regions,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(
        cls,
        document: dict,
        services: "collections.abc.Mapping[str, ServiceDefinition]",
        adapters: "collections.abc.Mapping[str, RequestAdapter] | None" = None,
    ) -> "ServiceSpec":
        """Build a spec from its :meth:`to_dict` form.

        ``services`` is the catalog resolving the document's ``service``
        name to a live :class:`ServiceDefinition`; ``adapters`` resolves
        a non-null ``adapter`` name the same way.  Field validation is
        the constructor's own ``__post_init__`` — an invalid document
        raises exactly the error direct construction would.
        """
        if not isinstance(document, dict):
            raise ValueError(
                f"ServiceSpec document must be a mapping, got "
                f"{type(document).__name__}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(document) - known
        if unknown:
            raise ValueError(
                f"unknown ServiceSpec fields: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        if "service" not in document:
            raise ValueError("a service declaration needs a 'service' name")
        service_name = document["service"]
        if service_name not in services:
            raise ValueError(
                f"unknown service {service_name!r}: not in the catalog "
                f"(have: {sorted(services)})"
            )
        adapter = None
        adapter_name = document.get("adapter")
        if adapter_name is not None:
            if adapters is None or adapter_name not in adapters:
                raise ValueError(
                    f"unknown adapter {adapter_name!r} for service "
                    f"{service_name!r} (have: "
                    f"{sorted(adapters) if adapters else []})"
                )
            adapter = adapters[adapter_name]
        fields = {
            key: value
            for key, value in document.items()
            if key not in ("service", "adapter")
        }
        return cls(service=services[service_name], adapter=adapter, **fields)
