"""Composite multi-ring services: one replica spanning several rings.

The paper's ranking accelerator spans 8 FPGAs — exactly one torus ring —
but §2.3 is explicit that the fabric composes *groups* of FPGAs into
services, and larger accelerators would span multiple rings reached
over the torus.  :class:`CompositeDeployment` is that shape: a gang of
member :class:`~repro.cluster.deployment.Deployment` rings chained into
one request path.  A request enters member ring 0; each stage's
response is forwarded as the request to the next member ring's head
node; latency is measured end to end across the whole chain.

The composite exposes the same sink surface as a single ring —
``submit`` / ``outstanding`` / ``health_weight()`` (the *minimum* over
members: a chain is only as servable as its weakest link) — so the
front-end :class:`~repro.cluster.load_balancer.LoadBalancer`, the
open-loop injector, and ``ClusterManager.reconcile()`` operate on it
unchanged.  Failure semantics follow from the min: a member ring that
exhausts its spares drives the replica's weight to zero, and the
control-plane watchdog releases the whole gang and re-places it
all-or-nothing (:meth:`~repro.cluster.scheduler.ClusterScheduler
.deploy_gang`).
"""

from __future__ import annotations

import collections.abc

from repro.analysis import ReservoirSample, ThroughputMeter
from repro.cluster.deployment import Deployment
from repro.fabric.datacenter import Datacenter
from repro.sim import Engine
from repro.sim.units import SEC


class CompositeDeployment:
    """One service replica composed of several chained member rings.

    When the owning ``datacenter`` is supplied, each stage-to-stage
    handoff is charged the inter-pod cable-run latency for the pod
    distance between consecutive members
    (``Datacenter.INTER_POD_HOP_NS`` per hop on the pod loop) — the
    cost gang placement minimises by choosing adjacent pods.
    """

    def __init__(
        self,
        engine: Engine,
        members: collections.abc.Sequence[Deployment],
        datacenter: Datacenter | None = None,
        name: str | None = None,
    ):
        if not members:
            raise ValueError("a composite needs at least one member ring")
        services = {member.service.name for member in members}
        if len(services) != 1:
            raise ValueError(
                f"members of one composite must share a service, got {services}"
            )
        self.engine = engine
        self.members = list(members)
        self.hop_delays_ns = [
            Datacenter.INTER_POD_HOP_NS
            * datacenter.pod_distance(a.pod.pod_id, b.pod.pod_id)
            if datacenter is not None
            else 0.0
            for a, b in zip(self.members, self.members[1:], strict=False)
        ]
        self.service = self.members[0].service
        self.name = name or (
            self.service.name
            + "@"
            + "->".join(
                f"pod{member.pod.pod_id}/ring{member.ring_x}"
                for member in self.members
            )
        )
        self.meter = ThroughputMeter(engine)
        self.latencies_ns = ReservoirSample()
        self.completed = 0
        self.timeouts = 0
        self.outstanding = 0  # in-flight composite requests (whole chains)

    # -- health / capacity -----------------------------------------------------

    def health_weight(self) -> float:
        """The weakest member's weight — a chain with any dead ring is
        unservable, and a degraded member bounds the whole replica."""
        return min(member.health_weight() for member in self.members)

    @property
    def released(self) -> bool:
        """True once the scheduler reclaimed any member ring."""
        return any(member.released for member in self.members)

    # -- dispatch (sink protocol) ----------------------------------------------

    def submit(
        self,
        request: object,
        timeout_ns: float = 5 * SEC,
        arrived_ns: float | None = None,
        include_prep: bool = True,
    ) -> collections.abc.Generator:
        """Dispatch one request through the whole chain (a generator).

        Stage ``i``'s response rides to member ring ``i+1``'s head node
        as the next request; the adapter's host-side prep runs once, at
        the front of the chain.  ``timeout_ns`` is an end-to-end budget:
        each stage receives only the time remaining, so a chain never
        outlives the deadline a single ring would honour.  Returns the
        final response, or ``None`` once any stage times out.
        """
        arrived = arrived_ns if arrived_ns is not None else self.engine.now
        deadline = arrived + timeout_ns
        self.outstanding += 1
        try:
            payload = request
            for index, member in enumerate(self.members):
                if index > 0 and self.hop_delays_ns[index - 1] > 0.0:
                    # The response rides the inter-pod cable runs to the
                    # next member's pod (charged against the deadline).
                    yield self.engine.timeout(self.hop_delays_ns[index - 1])
                remaining = deadline - self.engine.now
                if remaining <= 0.0:
                    self.timeouts += 1
                    return None
                if member.released or member.assignment is None:
                    # The gang was released while this request was in
                    # flight between stages (reconcile, reshape, or
                    # scale-down): divert per §3.2 instead of crashing
                    # on the stale member handle.
                    self.timeouts += 1
                    return None
                response = yield from member.submit(
                    payload,
                    timeout_ns=remaining,
                    arrived_ns=self.engine.now,
                    include_prep=include_prep and index == 0,
                )
                if response is None:
                    self.timeouts += 1
                    return None
                payload = response
            self.latencies_ns.append(self.engine.now - arrived)
            self.completed += 1
            self.meter.record()
            return payload
        finally:
            self.outstanding -= 1

    def __repr__(self) -> str:
        return (
            f"<CompositeDeployment {self.name} rings={len(self.members)} "
            f"completed={self.completed} outstanding={self.outstanding}>"
        )
