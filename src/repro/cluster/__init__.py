"""Cluster-level service orchestration.

The paper's production story is many rings across many pods serving one
datacenter-scale service (§2.3), kept alive by management software.
This package is that layer, split into a declarative control plane and
the mechanism underneath:

Control plane
    A frozen :class:`ServiceSpec` declares the desired state (service,
    replica count, policies, watchdog cadence); ``ClusterManager
    .apply(spec)`` converges the datacenter onto it and returns a
    :class:`ServiceHandle` for dispatch, status, and rescaling.  The
    manager wires per-pod Health Monitors to the shared Mapping
    Managers and runs health-driven reconciliation: failed rings rotate
    onto spares, exhausted rings are released (slots cordoned) and
    re-placed on free capacity.  A :class:`RepairPolicy` closes the
    repair half of the loop — every cordon opens a
    :class:`ServiceTicket` in the :class:`RepairQueue`, and on expiry
    the hardware is reset and the slot un-cordoned automatically;
    ``handle.upgrade(new_spec)`` rolls replicas onto a new service
    definition one gang at a time.  :class:`ClusterFailureInjector`
    targets failures at datacenter scope for resilience experiments.

Mechanism
    A :class:`ClusterScheduler` places :class:`ServiceDefinition`s onto
    free torus rings across pods (capacity, spare, and cordon
    accounting), each placement yielding a generic per-ring
    :class:`Deployment`; a front-end :class:`LoadBalancer` dispatches
    requests across the deployed rings under pluggable policies.
    Replicas spanning several rings (``rings_per_replica``) are placed
    as all-or-nothing gangs and chained into one request path by a
    :class:`CompositeDeployment` (§2.3: services compose groups of
    FPGAs over the torus).  Open-loop traffic sources that drive the
    front end live in :mod:`repro.workloads.openloop`.
"""

from repro.cluster.bitstream_cache import (
    BitstreamCache,
    CACHED_RELOAD_NS,
)
from repro.cluster.clusterfile import (
    ClusterApply,
    ClusterDiff,
    DiffEntry,
    apply_cluster,
    apply_file,
    diff_cluster,
    dump_cluster,
    load_cluster,
)
from repro.cluster.composite import CompositeDeployment
from repro.cluster.deployment import Deployment, InjectorStats, RequestAdapter
from repro.cluster.echo import EchoRole, echo_service
from repro.cluster.endpoint import ServiceEndpoint
from repro.cluster.failures import ClusterFailureInjector
from repro.cluster.load_balancer import (
    BALANCING_POLICIES,
    LoadBalancer,
    NoHealthyDeployment,
)
from repro.cluster.manager import (
    ClusterManager,
    ReconcileAction,
    ReconcileReport,
    RingStatus,
    ServiceHandle,
    ServiceStatus,
)
from repro.cluster.metrics import MetricsRegistry, read_series
from repro.cluster.repair import (
    REPAIR_DISTRIBUTIONS,
    RepairPolicy,
    RepairQueue,
    ServiceTicket,
)
from repro.cluster.scheduler import (
    CapacityReport,
    ClusterScheduler,
    InsufficientClusterCapacity,
    PLACEMENT_POLICIES,
    PlacementDecision,
    PlacementFailed,
    PodCapacity,
)
from repro.cluster.spec import ServiceSpec
from repro.cluster.tenancy import (
    PRIORITIES,
    PRIORITY_WEIGHT,
    RegionClaim,
    RingTenancy,
    pack_first_fit_decreasing,
    region_node_count,
    slot_quota,
)
from repro.fabric.datacenter import RingSlot

__all__ = [
    "BALANCING_POLICIES",
    "BitstreamCache",
    "CACHED_RELOAD_NS",
    "CapacityReport",
    "ClusterApply",
    "ClusterDiff",
    "ClusterFailureInjector",
    "ClusterManager",
    "ClusterScheduler",
    "CompositeDeployment",
    "Deployment",
    "DiffEntry",
    "EchoRole",
    "echo_service",
    "InjectorStats",
    "InsufficientClusterCapacity",
    "LoadBalancer",
    "MetricsRegistry",
    "NoHealthyDeployment",
    "PLACEMENT_POLICIES",
    "PlacementDecision",
    "PlacementFailed",
    "ReconcileAction",
    "ReconcileReport",
    "REPAIR_DISTRIBUTIONS",
    "RepairPolicy",
    "RepairQueue",
    "RequestAdapter",
    "RingSlot",
    "RingStatus",
    "ServiceEndpoint",
    "ServiceHandle",
    "ServiceSpec",
    "ServiceStatus",
    "ServiceTicket",
    "apply_cluster",
    "apply_file",
    "diff_cluster",
    "dump_cluster",
    "load_cluster",
    "read_series",
]
