"""Cluster-level service orchestration.

The paper's production story is many rings across many pods serving one
datacenter-scale service (§2.3).  This package is that layer: a
:class:`ClusterScheduler` places :class:`ServiceDefinition`s onto free
torus rings across pods (capacity and spare accounting included), each
placement yielding a generic per-ring :class:`Deployment`; a front-end
:class:`LoadBalancer` dispatches requests across the deployed rings
under pluggable policies and aggregates service-wide throughput and
latency.  Open-loop traffic sources that drive the balancer live in
:mod:`repro.workloads.openloop`.
"""

from repro.cluster.deployment import Deployment, InjectorStats, RequestAdapter
from repro.cluster.load_balancer import (
    BALANCING_POLICIES,
    LoadBalancer,
    NoHealthyDeployment,
)
from repro.cluster.scheduler import (
    CapacityReport,
    ClusterScheduler,
    InsufficientClusterCapacity,
    PLACEMENT_POLICIES,
    PlacementDecision,
)
from repro.fabric.datacenter import RingSlot

__all__ = [
    "BALANCING_POLICIES",
    "CapacityReport",
    "ClusterScheduler",
    "Deployment",
    "InjectorStats",
    "InsufficientClusterCapacity",
    "LoadBalancer",
    "NoHealthyDeployment",
    "PLACEMENT_POLICIES",
    "PlacementDecision",
    "RequestAdapter",
    "RingSlot",
]
