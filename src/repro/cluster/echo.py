"""A minimal reference service for control-plane experiments.

Tests, benchmarks, and examples that exercise the *management* plane —
placement, balancing, health sweeps, reconciliation — don't need the
seven-stage ranking pipeline; they need the smallest service that still
rides the fabric: one active role that answers a request after a fixed
service time, plus a passthrough spare so ring rotation has somewhere
to go.  This module is that service, shared so the scaffolding isn't
re-implemented (and allowed to drift) per experiment.
"""

from __future__ import annotations

from repro.hardware.bitstream import Bitstream, ResourceBudget
from repro.services.mapping_manager import RoleSpec, ServiceDefinition
from repro.shell.messages import PacketKind
from repro.shell.role import PassthroughRole, Role


class EchoRole(Role):
    """Answers each request with a fixed payload after ``delay_ns``."""

    name = "echo"

    def __init__(self, payload: object = "scored", delay_ns: float = 2_000.0):
        super().__init__()
        self.payload = payload
        self.delay_ns = delay_ns

    def handle(self, packet):
        yield self.shell.engine.timeout(self.delay_ns)
        if packet.kind is PacketKind.REQUEST:
            yield self.send(
                packet.response_to(size_bytes=64, payload=self.payload)
            )


def echo_service(
    name: str = "echo-service",
    role_name: str = "echo",
    payload: object = "scored",
    delay_ns: float = 2_000.0,
) -> ServiceDefinition:
    """One active echo role plus a passthrough spare."""

    def bitstream(role: str) -> Bitstream:
        return Bitstream(
            role_name=role,
            role_budget=ResourceBudget(alms=1000),
            clock_mhz=175.0,
        )

    return ServiceDefinition(
        name=name,
        roles=(
            RoleSpec(
                name=role_name,
                bitstream=bitstream(role_name),
                factory=lambda _assignment, _n: EchoRole(payload, delay_ns),
            ),
        ),
        spare=RoleSpec(
            name="spare",
            bitstream=bitstream("spare"),
            factory=lambda _assignment, _n: PassthroughRole(),
        ),
    )
