"""Exported observability: periodic cluster snapshots as JSON series.

The cluster's state used to be inspectable only through in-process
objects — a benchmark that wanted a capacity-over-time figure kept its
own ad-hoc sample list, and nothing outside the Python process could
read health back out.  :class:`MetricsRegistry` is the export path: it
snapshots every managed service (QPS, latency summary, dispatch and
admission counters, per-ring skew, replica counts) together with the
datacenter :class:`~repro.cluster.scheduler.CapacityReport` (per-pod
breakdown, open repair tickets, bitstream-cache counters), on a
simulated-time period, into an append-only JSON-lines file that
benchmarks and dashboards consume.

Every snapshot is one JSON object per line, serialized canonically
(sorted keys, compact separators), so a same-seed simulation produces a
*byte-identical* series file — the export is as deterministic as the
simulation itself.

Snapshot schema (one line)::

    {
      "t_ns": <simulated time>,
      "services": {
        "<name>": {
          ... ServiceStatus.to_dict() sans the shared capacity block ...,
          "workload": {"offered": n, "admitted": n, "rejected": n,
                        "completed": n, "timeouts": n}   # when attached
        }
      },
      "capacity": { ... CapacityReport.to_dict() ... }
    }
"""

from __future__ import annotations

import collections.abc
import json
import pathlib
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.manager import ClusterManager
    from repro.workloads.openloop import OpenLoopStats


class MetricsRegistry:
    """Samples a :class:`ClusterManager` into an exported time series.

    With ``path`` set, the file is created (truncated) at construction
    and each sample appends one canonical JSON line; ``snapshots``
    additionally keeps every sample in memory for in-process consumers.
    ``start(period_ns)`` runs the sampler as a simulated-time daemon;
    :meth:`sample` takes one snapshot on demand (both compose).

    Admission-side counters live in the workload, not the service —
    :meth:`attach_workload` links an open-loop injector's stats to a
    service name so offered/admitted/rejected/shed figures export next
    to the service's own dispatch counters.
    """

    def __init__(self, manager: "ClusterManager", path=None):
        self.manager = manager
        self.engine = manager.engine
        self.path = pathlib.Path(path) if path is not None else None
        # simlint: allow-unbounded-accum -- bounded by the sampling
        # period over the run horizon, one snapshot per tick.
        self.snapshots: list[dict] = []
        self._workloads: dict[str, OpenLoopStats] = {}
        self._sampler = None
        self._tick_source = None  # fluid window bound while sampling
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")  # fresh series; samples append

    # -- wiring ----------------------------------------------------------------

    def attach_workload(self, service: str, workload) -> None:
        """Export ``workload``'s admission counters under ``service``.

        ``workload`` is an :class:`~repro.workloads.openloop
        .OpenLoopInjector` (or anything with a compatible ``stats``
        attribute).
        """
        self._workloads[service] = workload.stats

    # -- sampling --------------------------------------------------------------

    def sample(self) -> dict:
        """Take one snapshot now; returns it (already recorded/appended)."""
        services: dict[str, dict] = {}
        for name, status in self.manager.status().items():
            document = status.to_dict()
            # The capacity report is datacenter-wide; keep the single
            # copy at the top level instead of one per service.
            del document["capacity"]
            stats = self._workloads.get(name)
            if stats is not None:
                document["workload"] = stats.to_dict()
            services[name] = document
        snapshot = {
            "t_ns": self.engine.now,
            "services": services,
            "capacity": self.manager.scheduler.capacity_report().to_dict(),
        }
        self.snapshots.append(snapshot)
        if self.path is not None:
            with self.path.open("a") as series:
                series.write(dumps_canonical(snapshot) + "\n")
        return snapshot

    def start(self, period_ns: float) -> None:
        """Sample every ``period_ns`` of simulated time until stopped."""
        if period_ns <= 0:
            raise ValueError(f"sampling period must be positive, got {period_ns}")
        if self._sampler is not None and self._sampler.is_alive:
            raise RuntimeError("metrics sampler already running")

        def body() -> collections.abc.Generator:
            while True:
                yield self.engine.timeout(period_ns)
                self.sample()

        self._sampler = self.engine.process(
            body(), name="cluster.metrics", daemon=True
        )
        if self.engine.fluid is not None:
            # Sampling ticks bound fluid windows exactly (no guard):
            # window stats are credited before the jump, so a snapshot
            # at the tick reads fully-settled counters and never a
            # partially credited interval.
            from repro.sim.fluid import PeriodicTransient

            self._tick_source = PeriodicTransient(period_ns, anchor_ns=self.engine.now)
            self.engine.fluid.register(self._tick_source, guarded=False)

    def stop(self) -> None:
        if self._sampler is not None and self._sampler.is_alive:
            self._sampler.kill()
        self._sampler = None
        if self._tick_source is not None and self.engine.fluid is not None:
            self.engine.fluid.unregister(self._tick_source)
        self._tick_source = None

    def __repr__(self) -> str:
        where = str(self.path) if self.path is not None else "memory"
        return f"<MetricsRegistry {len(self.snapshots)} snapshots -> {where}>"


def dumps_canonical(snapshot: dict) -> str:
    """One snapshot's canonical serialization (sorted keys, compact)."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def read_series(path) -> list[dict]:
    """Load an exported JSON-lines series back into snapshot dicts."""
    return [
        json.loads(line)
        for line in pathlib.Path(path).read_text().splitlines()
        if line
    ]
