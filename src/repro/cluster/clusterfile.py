"""Declarative cluster files: declare a whole cluster, diff, apply.

The control plane's unit of declaration used to be one
:class:`~repro.cluster.spec.ServiceSpec` at a time, applied
imperatively from Python.  This module raises the surface to the whole
cluster, ``kubectl apply``-style: a JSON document declares *every*
service, :func:`diff_cluster` classifies it against a live
:class:`~repro.cluster.manager.ClusterManager` (add / change / remove /
no-op, with the changed fields named), and :func:`apply_cluster`
converges the fabric — new services placed, changed declarations routed
through the existing reconcile / upgrade / scale paths, removed
services drained.  A dry run returns the diff without touching
anything.

Document format (version 1)::

    {
      "version": 1,
      "services": [
        {"service": "bing-ranking", "replicas": 3, "balancing": "...", ...},
        ...
      ]
    }

Each entry is a :meth:`ServiceSpec.to_dict` document.  Role
constructors and adapters are code, not data, so the file references
them by name and the caller supplies a *catalog* (``services`` mapping
name -> :class:`ServiceDefinition`, ``adapters`` mapping class name ->
adapter instance) — the same split RC3E and Coyote make between the
declarative management plane and the images it instantiates.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing

from repro.cluster.spec import ServiceSpec

if typing.TYPE_CHECKING:  # pragma: no cover
    import collections.abc

    from repro.cluster.manager import ClusterManager

CLUSTERFILE_VERSION = 1

_TOP_LEVEL_KEYS = {"version", "services"}


# -- loading -------------------------------------------------------------------


def load_cluster(
    source: "dict | str | pathlib.Path",
    services: "collections.abc.Mapping",
    adapters: "collections.abc.Mapping | None" = None,
) -> dict[str, ServiceSpec]:
    """Parse a cluster document into ``{service name: ServiceSpec}``.

    ``source`` is a parsed document (mapping) or a filesystem path to a
    JSON file.  Validation is strict — unknown top-level keys, a
    missing/duplicate service name, or an invalid spec field all raise
    ``ValueError`` (spec fields with exactly the message direct
    :class:`ServiceSpec` construction produces).
    """
    if isinstance(source, (str, pathlib.Path)):
        document = json.loads(pathlib.Path(source).read_text())
    else:
        document = source
    if not isinstance(document, dict):
        raise ValueError(
            f"cluster document must be a mapping, got {type(document).__name__}"
        )
    unknown = set(document) - _TOP_LEVEL_KEYS
    if unknown:
        raise ValueError(
            f"unknown cluster document keys: {sorted(unknown)} "
            f"(known: {sorted(_TOP_LEVEL_KEYS)})"
        )
    version = document.get("version", CLUSTERFILE_VERSION)
    if version != CLUSTERFILE_VERSION:
        raise ValueError(
            f"unsupported cluster document version {version!r} "
            f"(this build reads version {CLUSTERFILE_VERSION})"
        )
    entries = document.get("services")
    if not isinstance(entries, list):
        raise ValueError("a cluster document needs a 'services' list")
    specs: dict[str, ServiceSpec] = {}
    for entry in entries:
        spec = ServiceSpec.from_dict(entry, services, adapters)
        if spec.name in specs:
            raise ValueError(
                f"service {spec.name!r} is declared twice in the cluster document"
            )
        specs[spec.name] = spec
    return specs


def dump_cluster(specs: "collections.abc.Mapping[str, ServiceSpec]") -> dict:
    """The canonical document for a set of specs (services sorted by name)."""
    return {
        "version": CLUSTERFILE_VERSION,
        "services": [specs[name].to_dict() for name in sorted(specs)],
    }


# -- diffing -------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DiffEntry:
    """One service's classification against the live cluster."""

    service: str
    action: str  # add | change | remove | noop
    changed: tuple = ()  # field names driving a "change"
    detail: str = ""

    def __str__(self) -> str:
        marker = {"add": "+", "change": "~", "remove": "-", "noop": "="}[self.action]
        suffix = f"  ({self.detail})" if self.detail else ""
        return f"{marker} {self.service}: {self.action}{suffix}"


@dataclasses.dataclass(frozen=True)
class ClusterDiff:
    """What :func:`apply_cluster` would do, per service, in apply order."""

    entries: tuple

    def _with_action(self, action: str) -> list[DiffEntry]:
        return [entry for entry in self.entries if entry.action == action]

    @property
    def adds(self) -> list[DiffEntry]:
        return self._with_action("add")

    @property
    def changes(self) -> list[DiffEntry]:
        return self._with_action("change")

    @property
    def removes(self) -> list[DiffEntry]:
        return self._with_action("remove")

    @property
    def noops(self) -> list[DiffEntry]:
        return self._with_action("noop")

    def __bool__(self) -> bool:
        """True when applying would change anything."""
        return any(entry.action != "noop" for entry in self.entries)

    def summary(self) -> str:
        """The dry-run report: one line per service, kubectl-diff style."""
        lines = [str(entry) for entry in self.entries]
        lines.append(
            f"{len(self.adds)} to add, {len(self.changes)} to change, "
            f"{len(self.removes)} to remove, {len(self.noops)} unchanged"
        )
        return "\n".join(lines)


def _fingerprint(spec: ServiceSpec) -> dict:
    """The spec's full serialized identity, definition included.

    Two independently built :class:`ServiceDefinition`s never compare
    equal directly (their role factories are distinct closures), so the
    diff compares canonical dictionaries instead — which also makes
    "the catalog shipped a new image for the same service name" visible
    as a ``service_definition`` change, routed through the rolling
    upgrade path.
    """
    document = spec.to_dict()
    document["service_definition"] = spec.service.to_dict()
    return document


def diff_cluster(
    manager: "ClusterManager",
    desired: "collections.abc.Mapping[str, ServiceSpec]",
) -> ClusterDiff:
    """Classify ``desired`` against the live cluster, without applying.

    Every service named by either side gets exactly one entry:
    ``add`` (declared, not running), ``remove`` (running, not
    declared), ``change`` (both, fields differ — named in ``changed``),
    or ``noop``.  Entries are sorted by service name.
    """
    live = {
        name: handle
        for name, handle in manager.handles.items()
        if handle.active
    }
    entries: list[DiffEntry] = []
    for name in sorted(set(desired) | set(live)):
        if name not in live:
            spec = desired[name]
            entries.append(
                DiffEntry(name, "add", detail=f"{spec.replicas} replicas")
            )
        elif name not in desired:
            entries.append(
                DiffEntry(
                    name,
                    "remove",
                    detail=f"{len(live[name].deployments)} replicas to drain",
                )
            )
        else:
            old = _fingerprint(live[name].spec)
            new = _fingerprint(desired[name])
            changed = tuple(key for key in sorted(new) if old[key] != new[key])
            if not changed:
                entries.append(DiffEntry(name, "noop"))
            else:
                details = []
                for key in changed:
                    if key == "service_definition":
                        details.append("new service definition")
                    else:
                        details.append(f"{key} {old[key]!r} -> {new[key]!r}")
                entries.append(
                    DiffEntry(name, "change", changed, detail=", ".join(details))
                )
    return ClusterDiff(entries=tuple(entries))


# -- applying ------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ClusterApply:
    """Outcome of one :func:`apply_cluster` call.

    ``reports`` maps each touched service to the reconcile report its
    convergence produced (drained services have no report — their
    entry in ``diff.removes`` records the action).  A dry run carries
    the diff only.
    """

    diff: ClusterDiff
    dry_run: bool
    reports: dict = dataclasses.field(default_factory=dict)

    @property
    def converged(self) -> bool:
        return all(report.converged for report in self.reports.values())


def apply_cluster(
    manager: "ClusterManager",
    desired: "collections.abc.Mapping[str, ServiceSpec]",
    dry_run: bool = False,
) -> ClusterApply:
    """Converge the live cluster onto ``desired`` (or report the diff).

    Apply order is removes, then changes, then adds (each sorted by
    name): draining first returns rings to the pool so grown or new
    services can use them in the same pass.  Changed declarations keep
    their existing convergence semantics — a new service *definition*
    rolls through :meth:`ServiceHandle.upgrade` one replica at a time;
    any other field change re-applies the spec, which routes replica
    count through scale, ``rings_per_replica`` through reshape, and
    policies through the balancer, exactly as the Python API would.
    """
    diff = diff_cluster(manager, desired)
    result = ClusterApply(diff=diff, dry_run=dry_run)
    if dry_run or not diff:
        return result
    for entry in diff.removes:
        manager.drain(manager.handles[entry.service])
    for entry in diff.changes:
        spec = desired[entry.service]
        handle = manager.handles[entry.service]
        if "service_definition" in entry.changed:
            result.reports[entry.service] = handle.upgrade(spec)
        else:
            result.reports[entry.service] = manager.apply(spec).last_reconcile
    for entry in diff.adds:
        result.reports[entry.service] = manager.apply(
            desired[entry.service]
        ).last_reconcile
    return result


def apply_file(
    manager: "ClusterManager",
    source: "dict | str | pathlib.Path",
    services: "collections.abc.Mapping",
    adapters: "collections.abc.Mapping | None" = None,
    dry_run: bool = False,
) -> ClusterApply:
    """:func:`load_cluster` + :func:`apply_cluster` in one operator verb."""
    desired = load_cluster(source, services, adapters)
    return apply_cluster(manager, desired, dry_run=dry_run)
