"""A per-node LRU cache of recently resident role images.

Writing a full bitstream from flash costs ~1 s and even a partial
role-region write costs ~100 ms (§4.3) — both orders of magnitude above
the ~250 µs Model Reload the Queue Manager pays to switch models.  The
asymmetry is the whole point of the paper's partial-reconfiguration
future work: if the image a node needs is already staged in its board
DRAM, swapping the role region is a model-reload-class operation, not a
flash read.

:class:`BitstreamCache` models that staging memory.  Each node keeps
the last ``capacity_per_node`` images it was configured with (LRU);
when the Mapping Manager re-places a service onto a slot that recently
ran its role, a hit downgrades the node's reconfiguration to
:data:`CACHED_RELOAD_NS` (the §4.3 model-reload worst case).  Hardware
service wipes the staging memory — the repair queue invalidates every
node of a serviced slot — and hit/miss counters surface through
:class:`~repro.cluster.scheduler.CapacityReport` so benchmarks can
attribute re-placement speedups to the cache.

The cache is *opt-in* (``ClusterManager(..., bitstream_cache=...)``):
without one, every configure path is bit-identical to the uncached
control plane.
"""

from __future__ import annotations

import collections

from repro.hardware.bitstream import Bitstream
from repro.hardware.constants import MODEL_RELOAD_WORST_NS

# A cache hit swaps the role region at model-reload cost: the image is
# already staged board-side, so no flash read and no PCIe transfer.
CACHED_RELOAD_NS = MODEL_RELOAD_WORST_NS

# §3.1: board DRAM is shared with the role's working set; a handful of
# ~21 MB images is what realistically stays resident per node.
DEFAULT_CAPACITY_PER_NODE = 4


class BitstreamCache:
    """LRU of the role images staged in each node's board DRAM."""

    def __init__(self, capacity_per_node: int = DEFAULT_CAPACITY_PER_NODE):
        if capacity_per_node < 1:
            raise ValueError(
                f"cache needs at least one image per node, got {capacity_per_node}"
            )
        self.capacity_per_node = capacity_per_node
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        # machine_id -> OrderedDict[Bitstream, None], oldest first.
        self._staged: dict[str, collections.OrderedDict] = {}

    # -- lookup / install --------------------------------------------------------

    def lookup(self, machine_id: str, bitstream: Bitstream) -> bool:
        """Whether ``bitstream`` is staged on ``machine_id`` (counts)."""
        images = self._staged.get(machine_id)
        if images is not None and bitstream in images:
            images.move_to_end(bitstream)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def install(self, machine_id: str, bitstream: Bitstream) -> None:
        """Record that ``machine_id`` now holds ``bitstream`` (MRU)."""
        images = self._staged.setdefault(machine_id, collections.OrderedDict())
        images[bitstream] = None
        images.move_to_end(bitstream)
        while len(images) > self.capacity_per_node:
            images.popitem(last=False)
            self.evictions += 1

    def invalidate(self, machine_id: str) -> int:
        """Drop every staged image (hardware serviced/replaced)."""
        images = self._staged.pop(machine_id, None)
        dropped = len(images) if images else 0
        self.invalidations += dropped
        return dropped

    # -- observation -------------------------------------------------------------

    def staged_on(self, machine_id: str) -> list[Bitstream]:
        """Staged images, oldest first (exposed for tests)."""
        return list(self._staged.get(machine_id, ()))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return (
            f"<BitstreamCache nodes={len(self._staged)} "
            f"hits={self.hits} misses={self.misses}>"
        )
