"""Cluster-level failure injection — resilience experiments at
datacenter scope.

The per-pod :class:`~repro.services.failures.FailureInjector` targets a
node of one pod; cluster experiments think in terms of the datacenter
(pods × rings) and in terms of deployed services ("kill this replica").
:class:`ClusterFailureInjector` is that facade: it resolves a node to
its owning pod and delegates, and adds service-level helpers that pick
victims from a live :class:`~repro.cluster.deployment.Deployment`.
"""

from __future__ import annotations

from repro.cluster.deployment import Deployment
from repro.fabric.datacenter import Datacenter
from repro.fabric.torus import NodeId
from repro.services.failures import FailureInjector, FailureKind


class ClusterFailureInjector:
    """Applies failures anywhere in the datacenter."""

    def __init__(self, datacenter: Datacenter):
        self.datacenter = datacenter
        self._injectors: dict[int, FailureInjector] = {}
        self.injected: list[tuple[int, FailureKind, NodeId]] = []

    def _injector_for(self, pod_id: int) -> FailureInjector:
        if pod_id not in self._injectors:
            self._injectors[pod_id] = FailureInjector(self.datacenter.pod(pod_id))
        return self._injectors[pod_id]

    def inject(
        self, kind: FailureKind, pod_id: int, node: NodeId, port=None
    ) -> None:
        """Inject ``kind`` at ``node`` of pod ``pod_id``."""
        self._injector_for(pod_id).inject(kind, node, port=port)
        self.injected.append((pod_id, kind, node))
        fluid = self.datacenter.engine.fluid
        if fluid is not None:
            # A failure is the canonical transient: hold the simulation
            # discrete through the dip so the rotation/reconcile/shed
            # dynamics are computed exactly, never analytically.
            fluid.note_transient(f"failure:{kind.name}")

    # -- service-level helpers -------------------------------------------------

    def inject_role(
        self,
        deployment: Deployment,
        kind: FailureKind,
        role_name: str | None = None,
        port=None,
    ) -> NodeId:
        """Inject at the node hosting ``role_name`` (default: the head
        role) of ``deployment``; returns the victim node."""
        assignment = deployment.assignment
        if assignment is None:
            raise ValueError(f"{deployment.name} is not deployed")
        if role_name is None:
            role_name = deployment.service.roles[0].name
        victim = assignment.node_of(role_name)
        self.inject(kind, deployment.pod.pod_id, victim, port=port)
        return victim

    def inject_spare(
        self, deployment: Deployment, kind: FailureKind, port=None
    ) -> NodeId:
        """Inject at one of the ring's spare nodes (degrades the ring's
        health weight without interrupting the active pipeline)."""
        assignment = deployment.assignment
        if assignment is None or not assignment.spare_nodes:
            raise ValueError(f"{deployment.name} has no spare to fail")
        victim = assignment.spare_nodes[0]
        self.inject(kind, deployment.pod.pod_id, victim, port=port)
        return victim

    def kill_ring(
        self,
        deployment: Deployment,
        kind: FailureKind = FailureKind.FPGA_HARDWARE_FAULT,
    ) -> list[NodeId]:
        """Fail enough of the ring's healthy nodes that no rotation can
        save it — one more failure than the ring has spares.  Returns
        the victim nodes; the next health sweep marks the assignment
        unservable and reconciliation re-places the replica."""
        assignment = deployment.assignment
        if assignment is None:
            raise ValueError(f"{deployment.name} is not deployed")
        healthy = [
            node
            for node in assignment.ring_nodes
            if node not in assignment.excluded
        ]
        needed = len(healthy) - len(deployment.service.roles) + 1
        victims = healthy[:needed]
        for victim in victims:
            self.inject(kind, deployment.pod.pod_id, victim)
        return victims
