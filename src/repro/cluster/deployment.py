"""A generic per-ring service deployment.

The paper's production deployment maps one service instance onto one
torus ring and scales by deploying many rings across many pods (§2.3:
1,632 machines serving Bing ranking).  :class:`Deployment` is the
reusable per-ring handle: it wraps a :class:`MappingManager` deploy of
one :class:`ServiceDefinition` onto one ring and provides the two
injection paths the evaluation uses — closed-loop injector threads
(:meth:`spawn_injector`) and a single-request dispatch generator
(:meth:`submit`) that the front-end load balancer and the open-loop
traffic layer build on.

Service-specific concerns (what payload rides the fabric, what
host-side software work precedes injection) are factored into a
:class:`RequestAdapter` so non-ranking services reuse the machinery
unchanged.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import itertools

from repro.analysis import LatencyStats, ReservoirSample, ThroughputMeter
from repro.fabric.pod import Pod
from repro.fabric.server import Server
from repro.host.slots import (
    RequestTimeout,
    SlotClient,
    shared_slot_allocator,
)
from repro.services.mapping_manager import (
    MappingManager,
    RingAssignment,
    ServiceDefinition,
)
from repro.sim import AllOf, AnyOf, Engine, Event, Store
from repro.sim.units import SEC


class RequestAdapter:
    """Translates generic dispatch into service-specific wire traffic.

    The default adapter sends the request object itself with a nominal
    size and performs no host-side preparation; services override the
    three hooks (ranking overrides all of them — SSD lookup and
    hit-vector prep on a CPU core, §4).
    """

    def payload_for(self, request: object) -> object:
        return request

    def size_of(self, request: object) -> int:
        return getattr(request, "size_bytes", 64)

    def prep(self, server: Server) -> collections.abc.Generator:
        """Host-side software portion before injection (a generator)."""
        if False:  # pragma: no cover - makes the default a generator
            yield
        return


@dataclasses.dataclass
class InjectorStats:
    """Results from one injector (a server's worth of threads)."""

    latencies_ns: list
    timeouts: int
    completed: int

    def stats(self) -> LatencyStats:
        return LatencyStats.from_samples(self.latencies_ns)


class Deployment:
    """One service deployed on one ring of one pod."""

    def __init__(
        self,
        engine: Engine,
        pod: Pod,
        service: ServiceDefinition,
        ring_x: int = 0,
        adapter: RequestAdapter | None = None,
        mapping_manager: MappingManager | None = None,
        slots_per_server: int = 48,
        region=None,  # RegionClaim when this is a tenant of a shared ring
    ):
        self.engine = engine
        self.pod = pod
        self.service = service
        self.ring_x = ring_x
        self.adapter = adapter or RequestAdapter()
        self.mapping_manager = mapping_manager or MappingManager(engine, pod)
        self.slots_per_server = slots_per_server
        self.region = region
        self.assignment: RingAssignment | None = None
        self.released = False  # set when the scheduler reclaims the ring
        self.meter = ThroughputMeter(engine)
        self.latencies_ns = ReservoirSample()
        self.completed = 0
        self.timeouts = 0
        self.outstanding = 0  # dispatched via submit(), not yet resolved
        self._lease_stores: dict[str, Store] = {}
        self._owned_slots: list[tuple[Server, list[int]]] = []
        self._injection_cycle: collections.abc.Iterator[Server] | None = None

    @property
    def name(self) -> str:
        base = f"{self.service.name}@pod{self.pod.pod_id}/ring{self.ring_x}"
        if self.region is not None:
            return f"{base}/region{self.region.index}"
        return base

    # -- deployment ------------------------------------------------------------

    def deploy(self) -> RingAssignment:
        return self.finish_deploy(self.begin_deploy())

    def begin_deploy(self) -> Event:
        """Start configuring the ring; returns the completion event.

        Split from :meth:`finish_deploy` so the scheduler can overlap
        the ~1 s full-ring reconfigurations of a gang's members when
        they sit in different pods.  A region tenant configures only
        its granted node run, not the whole ring.
        """
        nodes = list(self.region.nodes) if self.region is not None else None
        return self.mapping_manager.deploy(self.service, self.ring_x, nodes=nodes)

    def finish_deploy(self, done: Event) -> RingAssignment:
        """Wait out a :meth:`begin_deploy` and adopt the assignment."""
        self.assignment = self.engine.run_until(done)
        return self.assignment

    @property
    def head_node(self):
        return self.assignment.head_node()

    def stage_role(self, role_name: str):
        node = self.assignment.node_of(role_name)
        return self.pod.server_at(node).shell.role

    # -- health / capacity -----------------------------------------------------

    def health_weight(self) -> float:
        """Healthy fraction of the ring; 0 while undeployed or unservable.

        Excluded (mapped-out) nodes lower the weight, so the
        weighted-by-health balancing policy steers load away from rings
        running degraded after failures.  A released ring or one whose
        failures exhausted the spares weighs nothing.
        """
        if self.assignment is None or self.released or not self.assignment.servable:
            return 0.0
        healthy = [
            node
            for node in self.assignment.ring_nodes
            if node not in self.assignment.excluded
        ]
        if len(healthy) < len(self.service.roles):
            return 0.0
        return len(healthy) / len(self.assignment.ring_nodes)

    @property
    def spare_count(self) -> int:
        if self.assignment is None:
            return 0
        return len(self.assignment.spare_nodes)

    def injection_servers(self) -> list[Server]:
        """The ring's servers, which host the injecting threads (§5)."""
        return self.pod.ring(self.ring_x)

    # -- single-request dispatch (front-end path) ------------------------------

    def _leases(self, server: Server) -> Store:
        store = self._lease_stores.get(server.machine_id)
        if store is None:
            client = SlotClient(server)
            store = Store(self.engine, name=f"leases:{self.name}:{server.machine_id}")
            if self.region is not None:
                # Co-resident tenants share the ring's servers: draw the
                # weighted fair-share quota from the server's shared
                # allocator so slot ids never collide across tenants.
                allocator = shared_slot_allocator(server)
                quota = min(self.region.slot_quota, server.buffers.slot_count)
                slot_ids = allocator.acquire(quota, owner=self.name, owner_obj=self)
                self._owned_slots.append((server, slot_ids))
                leases = [client.lease_for(slot_id) for slot_id in slot_ids]
            else:
                count = min(self.slots_per_server, server.buffers.slot_count)
                leases = client.leases(count)
            for lease in leases:
                store.try_put(lease)
            self._lease_stores[server.machine_id] = store
        return store

    def release_slots(self) -> None:
        """Return quota slots to the shared allocators (region tenants).

        Called by the scheduler on release so a successor tenant of the
        same servers can acquire a full quota.
        """
        for server, slot_ids in self._owned_slots:
            shared_slot_allocator(server).release(slot_ids)
        self._owned_slots.clear()
        self._lease_stores.clear()

    def _next_injection_server(self) -> Server:
        if self._injection_cycle is None:
            self._injection_cycle = itertools.cycle(self.injection_servers())
        return next(self._injection_cycle)

    def submit(
        self,
        request: object,
        server: Server | None = None,
        timeout_ns: float = 5 * SEC,
        arrived_ns: float | None = None,
        include_prep: bool = True,
    ) -> collections.abc.Generator:
        """Dispatch one request through this ring (a generator).

        Acquires a slot lease on an injection server (round-robin over
        the ring unless ``server`` is given), performs the adapter's
        host-side prep, injects to the head node, and waits for the
        response.  Returns the response payload, or ``None`` on a
        fabric timeout.  Latency is recorded from ``arrived_ns`` (the
        open-loop arrival instant) so queueing delay is included.

        The lease wait itself is bounded by ``timeout_ns`` too: on a
        ring whose leases were all quarantined by earlier timeouts (a
        dead ring), later submissions resolve as timeouts instead of
        blocking forever — the §3.2 "host will time out and divert the
        request" path applied at admission.
        """
        if self.assignment is None:
            raise RuntimeError(f"{self.name}: submit() before deploy()")
        if self.released:
            raise RuntimeError(f"{self.name}: submit() after release")
        server = server or self._next_injection_server()
        arrived = arrived_ns if arrived_ns is not None else self.engine.now
        self.outstanding += 1
        store = self._leases(server)
        quarantined = False
        try:
            get = store.get()
            if not get.triggered:
                # Contended: bound the wait, abandoning the claim on
                # timeout so a late lease is not handed to a departed
                # waiter (and thereby lost).
                deadline = self.engine.timeout(timeout_ns)
                yield AnyOf(self.engine, [get, deadline])
                if not get.triggered:
                    get.cancelled = True
                    self.timeouts += 1
                    return None
                # The lease arrived: disarm the deadline so it does not
                # keep a bare run() alive (and the heap populated) for
                # the full timeout after the request already resolved.
                deadline.cancel()
            lease = get.value
            try:
                if include_prep:
                    yield from self.adapter.prep(server)
                try:
                    response = yield from lease.request(
                        dst=self.head_node,
                        size_bytes=self.adapter.size_of(request),
                        payload=self.adapter.payload_for(request),
                        timeout_ns=timeout_ns,
                    )
                except RequestTimeout:
                    self.timeouts += 1
                    quarantined = True
                    self._quarantine(server, lease, store)
                    return None
                self.latencies_ns.append(self.engine.now - arrived)
                self.completed += 1
                self.meter.record()
                return response
            finally:
                if not quarantined:
                    yield store.put(lease)
        finally:
            self.outstanding -= 1

    def _quarantine(self, server: Server, lease, store: Store) -> None:
        """Hold a timed-out lease out of the pool until its slot drains.

        The abandoned request left a consume callback armed on the
        lease's output slot; if the late response ever arrives it would
        be swallowed as the *next* request's response.  A daemon process
        waits for the slot to fill-and-drain before recycling the lease;
        if the response was truly lost in the fabric, the lease stays
        retired.
        """

        def drain() -> collections.abc.Generator:
            yield server.buffers.consume_output(lease.slot_id)
            yield store.put(lease)

        # Not a daemon: a blocked process does not keep a bare run()
        # alive, and the lease hand-back must stay on the non-daemon
        # dispatch chain so waiting submitters actually resume.
        # Expendable: if the response was truly lost in the fabric this
        # process never finishes, by design — not an orphan.
        self.engine.process(
            drain(),
            name=f"quarantine:{server.machine_id}:{lease.slot_id}",
            expendable=True,
        )

    # -- closed-loop injection (§5 methodology) --------------------------------

    def spawn_injector(
        self,
        server: Server,
        threads: int,
        pool: list,
        requests_per_thread: int,
        include_prep: bool = True,
        timeout_ns: float = 1e9,
    ) -> tuple[Event, InjectorStats]:
        """Closed-loop injection from ``server`` with ``threads`` threads.

        Each thread repeatedly: does the adapter's software portion when
        ``include_prep``, fills its slot, and sleeps until the response
        interrupt.  Returns a completion event plus the stats object
        (filled in-place).
        """
        client = SlotClient(server)
        stats = InjectorStats(latencies_ns=[], timeouts=0, completed=0)
        pool_cycle = itertools.cycle(pool)
        done = self.engine.event(name=f"injector:{server.machine_id}")

        def thread_body(lease) -> collections.abc.Generator:
            for _ in range(requests_per_thread):
                request = next(pool_cycle)
                started = self.engine.now
                if include_prep:
                    yield from self.adapter.prep(server)
                try:
                    yield from lease.request(
                        dst=self.head_node,
                        size_bytes=self.adapter.size_of(request),
                        payload=self.adapter.payload_for(request),
                        timeout_ns=timeout_ns,
                    )
                except RequestTimeout:
                    stats.timeouts += 1
                    continue
                stats.latencies_ns.append(self.engine.now - started)
                stats.completed += 1
                self.meter.record()

        def waiter(procs) -> collections.abc.Generator:
            yield AllOf(self.engine, procs)
            done.succeed(stats)

        procs = [
            self.engine.process(thread_body(lease), name=f"inj.{server.machine_id}")
            for lease in client.leases(threads)
        ]
        self.engine.process(waiter(procs))
        return done, stats

    def __repr__(self) -> str:
        return (
            f"<Deployment {self.name} completed={self.completed} "
            f"outstanding={self.outstanding}>"
        )
