"""Ring tenancy: virtualized role regions on a shared ring.

The paper dedicates one 8-FPGA ring per service (§2.3); RC3E-style
cloud provisioning instead hands *virtual* FPGA regions to multiple
tenants, and Coyote raises the abstraction so several roles share one
device.  This module is the middle ground the fabric supports today: a
ring's nodes are carved into **regions** — contiguous runs of nodes in
ring order — and several small services become co-resident tenants of
one ring, each owning its region's nodes outright (one role per shell,
so isolation is physical).

A :class:`RegionClaim` is one tenant's grant: its node run, its declared
ring fraction, its priority class, and its *slot quota* — the weighted
fair share of each injection server's 64 PCIe slots the tenant may hold
concurrently.  Quotas are the dispatch-path isolation: co-resident
tenants share the ring's servers, so without them one tenant's burst
could occupy every slot and starve its neighbours.  Latency-class
tenants weigh twice batch-class ones, and the weighted shares are
normalised so they can never oversubscribe the pool.

:class:`RingTenancy` is a ring's occupancy ledger (claims, per-region
cordons, free nodes); the scheduler keeps one per shared ring.  The
:func:`pack_first_fit_decreasing` planner bin-packs a set of region
fractions onto the fewest rings — the classic FFD heuristic the
scheduler's ``deploy_region`` first-fit realises when requests arrive
largest-first.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import math

from repro.fabric.datacenter import RingSlot
from repro.fabric.torus import NodeId
from repro.hardware.bitstream import ResourceBudget, shell_budget
from repro.services.mapping_manager import ServiceDefinition

PRIORITIES = ("latency", "batch")

# Dispatch-path weights: a latency tenant gets its full proportional
# slot share, a batch tenant half — Σ(quota) never exceeds the pool.
PRIORITY_WEIGHT = {"latency": 2.0, "batch": 1.0}


def region_node_count(service: ServiceDefinition, fraction: float, ring_size: int) -> int:
    """Nodes a ``fraction``-sized region of a ``ring_size`` ring spans.

    At least the service's active role count — a region that cannot
    host every role is no region at all — and rounded *up* so a
    declared fraction is a guarantee, not a hint.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"region fraction must be in (0, 1], got {fraction}")
    by_fraction = math.ceil(fraction * ring_size - 1e-9)
    return max(len(service.roles), by_fraction, 1)


def slot_quota(fraction: float, priority: str, slots_per_server: int) -> int:
    """Weighted fair share of one server's slot pool for a tenant.

    ``slots_per_server * fraction`` is the tenant's proportional share;
    the priority weight scales it relative to the heaviest class, so
    shares stay normalised (a half-ring batch tenant alongside a
    half-ring latency tenant holds half as many slots, and the two
    together never exceed the pool).
    """
    if priority not in PRIORITIES:
        raise ValueError(f"unknown priority {priority!r}; choose from {PRIORITIES}")
    weight = PRIORITY_WEIGHT[priority] / max(PRIORITY_WEIGHT.values())
    return max(1, math.floor(slots_per_server * fraction * weight))


def region_budget(service: ServiceDefinition) -> ResourceBudget:
    """The service's total role demand (spare included: every region
    node hosts either an active role or the spare image)."""
    total = ResourceBudget()
    for spec in service.roles:
        total = total + spec.bitstream.role_budget
    return total + service.spare.bitstream.role_budget


def check_region_fit(service: ServiceDefinition, device) -> None:
    """Every role image must fit the per-node headroom beside the shell.

    Raises ``ValueError`` at claim time instead of letting the FPGA
    reject the image a simulated second into the configure."""
    headroom = (
        ResourceBudget(device.alms, device.m20k_blocks, device.dsp_blocks)
        - shell_budget(device)
    )
    for spec in (*service.roles, service.spare):
        if not spec.bitstream.role_budget.fits_within(headroom):
            raise ValueError(
                f"role {spec.name!r} of {service.name!r} exceeds the "
                f"per-node region budget on {device.name}"
            )


@dataclasses.dataclass(frozen=True)
class RegionClaim:
    """One tenant's grant of a region on a shared ring."""

    slot: RingSlot
    index: int  # claim ordinal on its ring (stable display/name key)
    service: str
    fraction: float
    priority: str
    nodes: tuple  # NodeIds of the region, in ring order
    slot_quota: int  # concurrent PCIe slots per injection server

    def __str__(self) -> str:
        return (
            f"region{self.index}[{self.service} {self.fraction:.2f} "
            f"{self.priority} nodes={len(self.nodes)}]"
        )


class RingTenancy:
    """Occupancy ledger of one shared ring: claims, cordons, free nodes."""

    def __init__(self, slot: RingSlot, ring_nodes: collections.abc.Sequence[NodeId]):
        self.slot = slot
        self.ring_nodes = list(ring_nodes)
        self.claims: dict[str, RegionClaim] = {}  # service name -> claim
        self.occupants: dict[str, object] = {}  # service name -> Deployment
        self.cordoned: dict[tuple, str] = {}  # region nodes -> reason
        self._next_index = 0

    # -- node accounting ---------------------------------------------------------

    @property
    def claimed_nodes(self) -> set:
        return {node for claim in self.claims.values() for node in claim.nodes}

    @property
    def cordoned_nodes(self) -> set:
        return {node for nodes in self.cordoned for node in nodes}

    def free_nodes(self) -> list[NodeId]:
        busy = self.claimed_nodes | self.cordoned_nodes
        return [node for node in self.ring_nodes if node not in busy]

    @property
    def free_fraction(self) -> float:
        return len(self.free_nodes()) / len(self.ring_nodes)

    @property
    def empty(self) -> bool:
        return not self.claims and not self.cordoned

    # -- claims ------------------------------------------------------------------

    def can_host(self, service_name: str, node_count: int) -> bool:
        """Room for ``node_count`` more nodes, one claim per service.

        One claim per service per ring keeps replicas of a service on
        *different* rings — the same blast-radius argument as the
        spread placement policy, applied within the tenancy layer.
        """
        if service_name in self.claims:
            return False
        return len(self.free_nodes()) >= node_count

    def claim(
        self,
        service_name: str,
        fraction: float,
        priority: str,
        node_count: int,
        slots_per_server: int,
    ) -> RegionClaim:
        if not self.can_host(service_name, node_count):
            raise ValueError(
                f"{self.slot}: no region of {node_count} nodes for "
                f"{service_name!r}"
            )
        nodes = tuple(self.free_nodes()[:node_count])
        claim = RegionClaim(
            slot=self.slot,
            index=self._next_index,
            service=service_name,
            fraction=fraction,
            priority=priority,
            nodes=nodes,
            slot_quota=slot_quota(fraction, priority, slots_per_server),
        )
        self._next_index += 1
        self.claims[service_name] = claim
        return claim

    def release(self, claim: RegionClaim) -> None:
        existing = self.claims.get(claim.service)
        if existing is not claim:
            raise KeyError(f"{claim} is not held on {self.slot}")
        del self.claims[claim.service]

    # -- per-region cordons ------------------------------------------------------

    def cordon_region(self, nodes: collections.abc.Sequence[NodeId], reason: str = "") -> None:
        """Hold a node run out of the free pool (bad hardware inside)."""
        self.cordoned.setdefault(tuple(nodes), reason)

    def clear_cordons(self) -> None:
        self.cordoned.clear()

    def __repr__(self) -> str:
        return (
            f"<RingTenancy {self.slot} tenants={sorted(self.claims)} "
            f"free={len(self.free_nodes())}/{len(self.ring_nodes)}>"
        )


def pack_first_fit_decreasing(
    requests: collections.abc.Sequence[tuple[str, float]],
) -> list[list[str]]:
    """Plan region packing: FFD bin-packing of fractions onto rings.

    ``requests`` is ``(name, fraction)`` pairs; the result is one list
    of names per ring, largest requests placed first — the classic
    first-fit-decreasing heuristic (≤ 11/9 OPT + 1 bins).  Ties break
    by name so planning is deterministic.
    """
    for name, fraction in requests:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"region fraction must be in (0, 1], got {fraction} for {name!r}"
            )
    bins: list[tuple[float, list[str]]] = []  # (remaining, names)
    ordered = sorted(requests, key=lambda item: (-item[1], item[0]))
    for name, fraction in ordered:
        for index, (remaining, names) in enumerate(bins):
            if fraction <= remaining + 1e-9:
                bins[index] = (remaining - fraction, names + [name])
                break
        else:
            bins.append((1.0 - fraction, [name]))
    return [names for _remaining, names in bins]
