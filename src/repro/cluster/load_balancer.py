"""The front-end load balancer dispatching requests across rings.

In production, requests from the search front door fan out across many
deployed ranking rings; the fabric itself only accelerates one ring's
worth of work (§4).  :class:`LoadBalancer` models that front end: it
picks a ring per request under a pluggable policy and aggregates
throughput/latency across the whole service.

Policies:

``round_robin``
    Cycle through healthy rings in placement order.

``least_outstanding``
    Send to the ring with the fewest in-flight requests — the classic
    join-shortest-queue front end; keeps per-ring tail latency balanced
    under skewed completion times.

``weighted_health``
    Weighted-random by each ring's health weight (healthy fraction of
    its nodes), so rings running degraded after a failure-triggered
    ring rotation receive proportionally less load.
"""

from __future__ import annotations

import collections.abc

from repro.analysis import LatencyStats, ReservoirSample, ThroughputMeter
from repro.cluster.deployment import Deployment
from repro.sim import Engine
from repro.sim.units import SEC

BALANCING_POLICIES = ("round_robin", "least_outstanding", "weighted_health")


class NoHealthyDeployment(Exception):
    """Every ring is unservable (failed below its role count)."""


class LoadBalancer:
    """Dispatches single requests across a set of ring deployments."""

    def __init__(
        self,
        engine: Engine,
        deployments: collections.abc.Sequence[Deployment],
        policy: str = "least_outstanding",
        name: str = "frontend",
    ):
        if policy not in BALANCING_POLICIES:
            raise ValueError(
                f"unknown balancing policy {policy!r}; "
                f"choose from {BALANCING_POLICIES}"
            )
        if not deployments:
            raise ValueError("load balancer needs at least one deployment")
        self.engine = engine
        self.deployments = list(deployments)
        self.policy = policy
        self.name = name
        self.meter = ThroughputMeter(engine)
        self.latencies_ns = ReservoirSample()
        self.dispatched = 0
        self.completed = 0
        self.timeouts = 0
        self._rr_index = 0
        self._rng = engine.rng.stream(f"loadbalancer:{name}")

    # -- policy ----------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Total in-flight requests across all rings (queue depth)."""
        return sum(deployment.outstanding for deployment in self.deployments)

    def pick(self) -> Deployment:
        """Choose the ring for the next request under the active policy."""
        healthy = [d for d in self.deployments if d.health_weight() > 0.0]
        if not healthy:
            raise NoHealthyDeployment(f"{self.name}: no servable ring")
        if self.policy == "round_robin":
            for _ in range(len(self.deployments)):
                candidate = self.deployments[self._rr_index % len(self.deployments)]
                self._rr_index += 1
                if candidate.health_weight() > 0.0:
                    return candidate
            # `healthy` is non-empty, so the full scan must have found a
            # ring; falling through to weighted-random would let a policy
            # bug masquerade as load balancing.
            raise AssertionError(
                f"{self.name}: round_robin scanned {len(self.deployments)} "
                "rings without finding the healthy one"
            )
        if self.policy == "least_outstanding":
            return min(healthy, key=lambda d: d.outstanding)
        weights = [d.health_weight() for d in healthy]
        return self._rng.choices(healthy, weights)[0]

    # -- dispatch ----------------------------------------------------------------

    def submit(
        self, request: object, timeout_ns: float = 5 * SEC
    ) -> collections.abc.Generator:
        """Dispatch one request via the picked ring (a generator).

        Returns the response payload, or ``None`` on a fabric timeout.
        Latency is recorded from the dispatch instant, so it includes
        any lease queueing inside the chosen ring.
        """
        deployment = self.pick()
        self.dispatched += 1
        arrived = self.engine.now
        response = yield from deployment.submit(
            request, timeout_ns=timeout_ns, arrived_ns=arrived
        )
        if response is None:
            self.timeouts += 1
            return None
        self.completed += 1
        self.latencies_ns.append(self.engine.now - arrived)
        self.meter.record()
        return response

    # -- fluid reconciliation --------------------------------------------------

    def record_fluid(self, window) -> None:
        """Credit one analytic window's traffic into the counters.

        Fluid fast-forward (:mod:`repro.sim.fluid`) resolves whole
        stretches of requests without dispatching them; this folds the
        window's totals into the balancer — and, spread evenly, into
        each ring's meter and reservoir so per-ring QPS/skew figures
        stay continuous across fluid intervals.  A steady-state window
        by definition saw every healthy ring take its fair share.
        """
        self.dispatched += window.admitted
        self.completed += window.completed
        self.timeouts += window.timeouts
        completed = window.completed
        if not completed:
            return
        mean = window.mean_latency_ns
        self.latencies_ns.merge_analytic(completed, mean)
        self.meter.record_bulk(completed)
        healthy = [d for d in self.deployments if d.health_weight() > 0.0]
        if not healthy:
            return
        share, extra = divmod(completed, len(healthy))
        for index, deployment in enumerate(healthy):
            portion = share + (1 if index < extra else 0)
            if portion:
                deployment.latencies_ns.merge_analytic(portion, mean)
                deployment.meter.record_bulk(portion)
                deployment.completed += portion

    # -- aggregate reporting -------------------------------------------------------

    def start_measurement(self) -> None:
        """End warm-up on the aggregate and every per-ring meter."""
        self.meter.start_measurement()
        for deployment in self.deployments:
            deployment.meter.start_measurement()

    def stats(self) -> LatencyStats:
        """Exact count/mean/max with (reservoir-)sampled percentiles.

        Raises on zero completions, matching the old
        ``LatencyStats.from_samples`` contract.
        """
        if not self.latencies_ns:
            raise ValueError("no samples")
        return self.latencies_ns.summary()

    def per_ring_stats(self) -> dict[str, LatencyStats]:
        return {
            deployment.name: deployment.latencies_ns.summary()
            for deployment in self.deployments
            if deployment.latencies_ns
        }

    def per_ring_throughput(self) -> dict[str, float]:
        return {
            deployment.name: deployment.meter.per_second
            for deployment in self.deployments
        }

    def __repr__(self) -> str:
        return (
            f"<LoadBalancer {self.name} {self.policy} "
            f"rings={len(self.deployments)} completed={self.completed}>"
        )
