"""The cluster scheduler: placing services onto rings across pods.

The production deployment (§2.3) ran one service over 1,632 machines —
34 pods, each offering six 8-FPGA rings.  The scheduler owns that
ring-granular resource view: it tracks which :class:`RingSlot`s are
occupied, places new :class:`ServiceDefinition` instances under a
placement policy, and accounts for capacity and spares so operators can
ask "how many more rings can this datacenter absorb?".

Placement policies:

``spread``
    Round-robin across pods — each successive ring lands in the next
    pod with a free slot.  Spreads a service's blast radius across
    power domains and top-of-rack switches (each pod has its own PDU
    and TOR, §2.2).

``pack``
    Fill a pod's rings before opening the next pod.  Minimises the
    number of pods that must be built/powered for small services.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.deployment import Deployment, RequestAdapter
from repro.fabric.datacenter import Datacenter, RingSlot
from repro.hardware.fpga import FpgaState, ReconfigError
from repro.services.mapping_manager import (
    InsufficientRingCapacity,
    MappingManager,
    ServiceDefinition,
)

PLACEMENT_POLICIES = ("spread", "pack")


class InsufficientClusterCapacity(Exception):
    """More rings requested than the datacenter has free."""


class PlacementFailed(Exception):
    """A chosen slot could not be configured (bad hardware found late).

    Carries the slot so the control plane can cordon it and retry on a
    different ring.
    """

    def __init__(self, slot: RingSlot, cause: Exception):
        super().__init__(f"placement on {slot} failed: {cause}")
        self.slot = slot
        self.cause = cause


@dataclasses.dataclass(frozen=True)
class PlacementDecision:
    """One scheduler decision: which service landed on which ring."""

    service: str
    slot: RingSlot
    spares: int


@dataclasses.dataclass(frozen=True)
class CapacityReport:
    """Ring-granular capacity accounting for the whole datacenter."""

    total_rings: int
    occupied_rings: int
    total_spare_nodes: int
    cordoned_rings: int = 0  # held out pending manual service

    @property
    def free_rings(self) -> int:
        return self.total_rings - self.occupied_rings - self.cordoned_rings

    @property
    def utilization(self) -> float:
        return self.occupied_rings / self.total_rings if self.total_rings else 0.0


class ClusterScheduler:
    """Places service instances onto free torus rings across pods."""

    def __init__(self, datacenter: Datacenter, policy: str = "spread"):
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; "
                f"choose from {PLACEMENT_POLICIES}"
            )
        self.datacenter = datacenter
        self.engine = datacenter.engine
        self.policy = policy
        self.decisions: list[PlacementDecision] = []
        self._occupied: dict[RingSlot, Deployment] = {}
        self._cordoned: set[RingSlot] = set()
        self._mapping_managers: dict[int, MappingManager] = {}
        self._next_pod_id = 0  # spread policy's round-robin cursor

    # -- resource view ---------------------------------------------------------

    def mapping_manager(self, pod_id: int) -> MappingManager:
        """The (shared, per-pod) mapping manager for ``pod_id``."""
        if pod_id not in self._mapping_managers:
            self._mapping_managers[pod_id] = MappingManager(
                self.engine, self.datacenter.pod(pod_id)
            )
        return self._mapping_managers[pod_id]

    def free_slots(self) -> list[RingSlot]:
        return [
            slot for slot in self.datacenter.ring_slots()
            if slot not in self._occupied and slot not in self._cordoned
        ]

    def cordon(self, slot: RingSlot) -> None:
        """Hold ``slot`` out of placement (bad hardware awaiting service)."""
        if slot not in self.datacenter.ring_slots():
            raise ValueError(f"{slot} is not a ring of this datacenter")
        if slot in self._occupied:
            raise ValueError(f"{slot} is occupied; release it first")
        self._cordoned.add(slot)

    def uncordon(self, slot: RingSlot) -> None:
        """Return a cordoned slot to the placement pool (post-repair)."""
        self._cordoned.discard(slot)

    @property
    def cordoned_slots(self) -> list[RingSlot]:
        return sorted(self._cordoned)

    def slot_of(self, deployment: Deployment) -> RingSlot:
        """The ring slot ``deployment`` occupies."""
        for slot, occupant in self._occupied.items():
            if occupant is deployment:
                return slot
        raise KeyError(f"{deployment.name} is not placed by this scheduler")

    def deployments(self) -> list[Deployment]:
        return [self._occupied[slot] for slot in sorted(self._occupied)]

    def capacity_report(self) -> CapacityReport:
        return CapacityReport(
            total_rings=self.datacenter.total_rings,
            occupied_rings=len(self._occupied),
            total_spare_nodes=sum(
                deployment.spare_count for deployment in self._occupied.values()
            ),
            cordoned_rings=len(self._cordoned),
        )

    # -- placement -------------------------------------------------------------

    def _choose(self, count: int, policy: str | None = None) -> list[RingSlot]:
        policy = policy or self.policy
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; "
                f"choose from {PLACEMENT_POLICIES}"
            )
        free = self.free_slots()
        if len(free) < count:
            raise InsufficientClusterCapacity(
                f"need {count} rings, only {len(free)} of "
                f"{self.datacenter.total_rings} free"
            )
        if policy == "pack":
            return free[:count]
        # spread: take one slot from each pod in turn until satisfied,
        # starting from the round-robin cursor so successive deploy()
        # calls keep rotating across pods instead of restarting at pod 0.
        by_pod: dict[int, list[RingSlot]] = {}
        for slot in free:
            by_pod.setdefault(slot.pod_id, []).append(slot)
        pods = sorted(by_pod)
        start = 0
        for index, pod_id in enumerate(pods):
            if pod_id >= self._next_pod_id:
                start = index
                break
        queues = [by_pod[pod_id] for pod_id in pods[start:] + pods[:start]]
        chosen: list[RingSlot] = []
        while len(chosen) < count:
            for queue in queues:
                if queue and len(chosen) < count:
                    chosen.append(queue.pop(0))
        self._next_pod_id = chosen[-1].pod_id + 1
        return chosen

    def deploy(
        self,
        service: ServiceDefinition,
        rings: int = 1,
        adapter: RequestAdapter | None = None,
        slots_per_server: int = 48,
        policy: str | None = None,
    ) -> list[Deployment]:
        """Place ``service`` on ``rings`` free rings and configure them.

        Each chosen ring gets its own :class:`Deployment` (sharing the
        pod's mapping manager so failure handling sees every assignment)
        and is fully configured — FPGA images written, RX-Halt released
        — before this returns.  ``policy`` overrides the scheduler-wide
        placement policy for this call (the control plane places each
        service under its spec's policy).
        """
        if rings < 1:
            raise ValueError(f"need at least one ring, got {rings}")
        chosen = self._choose(rings, policy)
        deployments = []
        for slot in chosen:
            deployment = Deployment(
                self.engine,
                self.datacenter.pod(slot.pod_id),
                service,
                ring_x=slot.ring_x,
                adapter=adapter,
                mapping_manager=self.mapping_manager(slot.pod_id),
                slots_per_server=slots_per_server,
            )
            try:
                deployment.deploy()
            except (InsufficientRingCapacity, ReconfigError) as exc:
                raise PlacementFailed(slot, exc) from exc
            self._occupied[slot] = deployment
            self.decisions.append(
                PlacementDecision(
                    service=service.name, slot=slot, spares=deployment.spare_count
                )
            )
            deployments.append(deployment)
        return deployments

    def release(self, deployment: Deployment) -> RingSlot:
        """Return a deployment's ring to the free pool (scale-down).

        Deregisters the ring's assignment from the pod's mapping manager
        so later failure reports no longer act on it, detaches the
        service's roles from the surviving nodes (each reverts to the
        service's passthrough spare, keeping the torus routable), and
        marks the deployment released so stale handles can no longer
        dispatch.  The freed slot is immediately redeployable — the next
        deploy reconfigures the ring with the new service's images, with
        any permanently failed hardware pre-mapped-out.
        """
        slot = self.slot_of(deployment)
        del self._occupied[slot]
        manager = deployment.mapping_manager
        if deployment.assignment in manager.assignments:
            manager.assignments.remove(deployment.assignment)
        assignment = deployment.assignment
        if assignment is not None:
            spare = deployment.service.spare
            for node in assignment.ring_nodes:
                if node in assignment.excluded:
                    continue
                server = deployment.pod.server_at(node)
                if server.fpga.state is FpgaState.CONFIGURED:
                    server.shell.attach_role(spare.factory(assignment, spare.name))
        deployment.released = True
        return slot

    def __repr__(self) -> str:
        report = self.capacity_report()
        return (
            f"<ClusterScheduler {self.policy} "
            f"{report.occupied_rings}/{report.total_rings} rings>"
        )
