"""The cluster scheduler: placing services onto rings across pods.

The production deployment (§2.3) ran one service over 1,632 machines —
34 pods, each offering six 8-FPGA rings.  The scheduler owns that
ring-granular resource view: it tracks which :class:`RingSlot`s are
occupied, places new :class:`ServiceDefinition` instances under a
placement policy, and accounts for capacity and spares so operators can
ask "how many more rings can this datacenter absorb?".

Placement policies:

``spread``
    Round-robin across pods — each successive ring lands in the next
    pod with a free slot.  Spreads a service's blast radius across
    power domains and top-of-rack switches (each pod has its own PDU
    and TOR, §2.2).

``pack``
    Fill a pod's rings before opening the next pod.  Minimises the
    number of pods that must be built/powered for small services.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import typing

from repro.cluster.deployment import Deployment, RequestAdapter
from repro.cluster.tenancy import (
    RegionClaim,
    RingTenancy,
    check_region_fit,
    pack_first_fit_decreasing,
    region_node_count,
)
from repro.fabric.datacenter import Datacenter, RingSlot
from repro.hardware.fpga import FpgaState, ReconfigError
from repro.services.mapping_manager import (
    InsufficientRingCapacity,
    MappingManager,
    ServiceDefinition,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.bitstream_cache import BitstreamCache
    from repro.cluster.repair import RepairQueue

PLACEMENT_POLICIES = ("spread", "pack")


class InsufficientClusterCapacity(Exception):
    """More rings requested than the datacenter has free."""


class PlacementFailed(Exception):
    """A chosen slot could not be configured (bad hardware found late).

    Carries the slot so the control plane can cordon it and retry on a
    different ring.
    """

    def __init__(self, slot: RingSlot, cause: Exception, nodes: tuple = ()):
        super().__init__(f"placement on {slot} failed: {cause}")
        self.slot = slot
        self.cause = cause
        # For a region placement: the node run that failed to
        # configure, so the control plane can cordon just that region.
        self.nodes = tuple(nodes)


@dataclasses.dataclass(frozen=True)
class PlacementDecision:
    """One scheduler decision: which service landed on which ring."""

    service: str
    slot: RingSlot
    spares: int


@dataclasses.dataclass(frozen=True)
class PodCapacity:
    """One pod's ring/region accounting inside a :class:`CapacityReport`."""

    pod_id: int
    total_rings: int
    free_rings: int
    occupied_rings: int
    cordoned_rings: int
    tenant_regions: int  # region claims on this pod's shared rings
    cordoned_regions: int  # region-granular cordons (bad node runs)

    def to_dict(self) -> dict:
        """Canonical JSON form (stable keys, plain ints)."""
        return {
            "pod_id": self.pod_id,
            "total_rings": self.total_rings,
            "free_rings": self.free_rings,
            "occupied_rings": self.occupied_rings,
            "cordoned_rings": self.cordoned_rings,
            "tenant_regions": self.tenant_regions,
            "cordoned_regions": self.cordoned_regions,
        }


@dataclasses.dataclass(frozen=True)
class CapacityReport:
    """Ring-granular capacity accounting for the whole datacenter.

    Repair-aware: when a :class:`~repro.cluster.repair.RepairQueue` is
    attached, ``open_tickets`` counts the cordoned rings with a repair
    in flight and ``next_repair_due_ns`` is when the earliest of them
    returns to the pool — so capacity planners can distinguish "gone"
    from "coming back, and when".

    Tenancy-aware: a shared ring hosting region tenants counts as one
    occupied ring; ``tenant_regions`` counts the claims packed onto
    such rings and ``cordoned_regions`` the node runs held out at
    region granularity.  ``per_pod`` breaks every ring/region figure
    down by pod for the packer and future autoscalers (the per-pod
    figures always sum to the datacenter totals).  With a
    :class:`~repro.cluster.bitstream_cache.BitstreamCache` attached,
    ``bitstream_hits``/``bitstream_misses`` attribute re-placement
    speedups to staged images.
    """

    total_rings: int
    occupied_rings: int
    total_spare_nodes: int
    cordoned_rings: int = 0  # held out pending manual service
    open_tickets: int = 0  # cordoned rings with a repair in flight
    next_repair_due_ns: float | None = None
    tenant_regions: int = 0  # region claims across shared rings
    cordoned_regions: int = 0  # region-granular cordons
    bitstream_hits: int = 0
    bitstream_misses: int = 0
    per_pod: dict = dataclasses.field(default_factory=dict)

    @property
    def free_rings(self) -> int:
        return self.total_rings - self.occupied_rings - self.cordoned_rings

    @property
    def serviceable_rings(self) -> int:
        """Rings that are, or will be after repair, available: everything
        except cordoned rings nobody has a ticket for."""
        return self.free_rings + self.occupied_rings + self.open_tickets

    @property
    def utilization(self) -> float:
        return self.occupied_rings / self.total_rings if self.total_rings else 0.0

    def to_dict(self) -> dict:
        """Canonical JSON form: sorted, string-keyed, derived figures
        included.

        ``per_pod`` is keyed by ``str(pod_id)`` in sorted order — JSON
        objects cannot carry int keys, and a canonical order makes the
        serialized report byte-stable across same-seed runs.
        """
        return {
            "total_rings": self.total_rings,
            "occupied_rings": self.occupied_rings,
            "free_rings": self.free_rings,
            "cordoned_rings": self.cordoned_rings,
            "serviceable_rings": self.serviceable_rings,
            "utilization": self.utilization,
            "total_spare_nodes": self.total_spare_nodes,
            "open_tickets": self.open_tickets,
            "next_repair_due_ns": self.next_repair_due_ns,
            "tenant_regions": self.tenant_regions,
            "cordoned_regions": self.cordoned_regions,
            "bitstream_hits": self.bitstream_hits,
            "bitstream_misses": self.bitstream_misses,
            "per_pod": {
                str(pod_id): self.per_pod[pod_id].to_dict()
                for pod_id in sorted(self.per_pod)
            },
        }


class ClusterScheduler:
    """Places service instances onto free torus rings across pods."""

    def __init__(
        self,
        datacenter: Datacenter,
        policy: str = "spread",
        bitstream_cache: "BitstreamCache | None" = None,
    ):
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; "
                f"choose from {PLACEMENT_POLICIES}"
            )
        self.datacenter = datacenter
        self.engine = datacenter.engine
        self.policy = policy
        self.decisions: list[PlacementDecision] = []
        self._occupied: dict[RingSlot, Deployment] = {}
        self._cordoned: dict[RingSlot, str] = {}  # slot -> cordon reason
        self._tenancies: dict[RingSlot, RingTenancy] = {}  # shared rings
        self._mapping_managers: dict[int, MappingManager] = {}
        self._next_pod_id = 0  # spread policy's round-robin cursor
        self.repair_queue: "RepairQueue | None" = None
        self.bitstream_cache = bitstream_cache

    # -- resource view ---------------------------------------------------------

    def mapping_manager(self, pod_id: int) -> MappingManager:
        """The (shared, per-pod) mapping manager for ``pod_id``."""
        if pod_id not in self._mapping_managers:
            manager = MappingManager(self.engine, self.datacenter.pod(pod_id))
            manager.bitstream_cache = self.bitstream_cache
            self._mapping_managers[pod_id] = manager
        return self._mapping_managers[pod_id]

    def set_bitstream_cache(self, cache: "BitstreamCache | None") -> None:
        """Attach (or detach) the bitstream cache, fleet-wide."""
        self.bitstream_cache = cache
        for manager in self._mapping_managers.values():
            manager.bitstream_cache = cache

    def free_slots(self) -> list[RingSlot]:
        return [
            slot for slot in self.datacenter.ring_slots()
            if slot not in self._occupied
            and slot not in self._cordoned
            and slot not in self._tenancies
        ]

    def tenancy_of(self, slot: RingSlot) -> RingTenancy | None:
        """The shared-ring ledger for ``slot``, if it hosts tenants."""
        return self._tenancies.get(slot)

    def tenancies(self) -> list[RingTenancy]:
        return [self._tenancies[slot] for slot in sorted(self._tenancies)]

    def attach_repair_queue(self, queue: "RepairQueue") -> None:
        """Ticket every cordon through ``queue`` from now on.

        With a queue attached, :meth:`cordon` opens a
        :class:`~repro.cluster.repair.ServiceTicket` and the repaired
        slot returns to the pool when the ticket's timer expires — no
        operator :meth:`uncordon` required.  Slots already cordoned at
        attach time are ticketed immediately (they were waiting for
        exactly this).
        """
        if self.repair_queue is not None and self.repair_queue is not queue:
            raise RuntimeError("a repair queue is already attached")
        self.repair_queue = queue
        for slot, reason in self._cordoned.items():
            queue.open_ticket(slot, reason=reason)
        for slot, tenancy in self._tenancies.items():
            if tenancy.cordoned:
                queue.open_ticket(
                    slot, reason=next(iter(tenancy.cordoned.values()))
                )

    def cordon(self, slot: RingSlot, reason: str = "") -> None:
        """Hold ``slot`` out of placement (bad hardware awaiting service).

        Cordoning an occupied or unknown slot raises: an occupied slot
        counts against ``occupied_rings`` already, so also counting it
        cordoned would double-subtract from ``free_rings`` (release it
        first), and an unknown slot is a caller bug.  With a repair
        queue attached a service ticket is opened for the slot.
        """
        if slot not in self.datacenter.ring_slots():
            raise ValueError(f"{slot} is not a ring of this datacenter")
        if slot in self._occupied:
            raise ValueError(f"{slot} is occupied; release it first")
        if slot in self._tenancies:
            raise ValueError(
                f"{slot} is a shared ring; use cordon_region for its "
                "node runs"
            )
        self._cordoned.setdefault(slot, reason)
        if self.repair_queue is not None:
            self.repair_queue.open_ticket(slot, reason=reason)

    def cordon_region(
        self, slot: RingSlot, nodes: collections.abc.Sequence, reason: str = ""
    ) -> None:
        """Hold one region's node run out of ``slot``'s free pool.

        The slot keeps serving its other tenants; only the bad run
        leaves the pool.  With a repair queue attached a (slot-level)
        service ticket is opened — the technician services the whole
        ring's broken components on one visit, which lifts every region
        cordon via :meth:`slot_serviced`.
        """
        if slot not in self.datacenter.ring_slots():
            raise ValueError(f"{slot} is not a ring of this datacenter")
        if slot in self._cordoned:
            raise ValueError(f"{slot} is already cordoned whole")
        tenancy = self._tenancies.get(slot)
        if tenancy is None:
            ring_nodes = [
                server.node_id
                for server in self.datacenter.pod(slot.pod_id).ring(slot.ring_x)
            ]
            tenancy = RingTenancy(slot, ring_nodes)
            self._tenancies[slot] = tenancy
        tenancy.cordon_region(tuple(nodes), reason)
        if self.repair_queue is not None:
            self.repair_queue.open_ticket(slot, reason=reason)

    def slot_serviced(self, slot: RingSlot) -> None:
        """Post-repair hook: ``slot``'s hardware was just serviced.

        Serviced boards come back with empty staging DRAM, so every
        image the bitstream cache had for the ring's nodes is gone; and
        region cordons lift — the bad node runs are bad no longer.
        """
        if self.bitstream_cache is not None:
            for server in self.datacenter.ring_servers(slot):
                self.bitstream_cache.invalidate(server.machine_id)
        tenancy = self._tenancies.get(slot)
        if tenancy is not None:
            tenancy.clear_cordons()
            if tenancy.empty:
                del self._tenancies[slot]

    def uncordon(self, slot: RingSlot) -> None:
        """Return a cordoned slot to the placement pool (post-repair).

        Raises ``KeyError`` for a slot that is not cordoned — silently
        ignoring it let typos pass unnoticed mid-experiment.  A manual
        uncordon cancels the slot's open service ticket, if any (the
        operator serviced it out-of-band).
        """
        if slot not in self._cordoned:
            raise KeyError(f"{slot} is not cordoned")
        del self._cordoned[slot]
        if self.repair_queue is not None:
            self.repair_queue.cancel(slot)

    def cordon_reason(self, slot: RingSlot) -> str:
        """Why ``slot`` is cordoned (raises ``KeyError`` if it is not)."""
        return self._cordoned[slot]

    @property
    def cordoned_slots(self) -> list[RingSlot]:
        return sorted(self._cordoned)

    def is_occupied(self, slot: RingSlot) -> bool:
        """Whether a deployment (or any region tenant) holds ``slot``."""
        if slot in self._occupied:
            return True
        tenancy = self._tenancies.get(slot)
        return tenancy is not None and bool(tenancy.claims)

    def slot_of(self, deployment: Deployment) -> RingSlot:
        """The ring slot ``deployment`` occupies."""
        region = getattr(deployment, "region", None)
        if region is not None:
            tenancy = self._tenancies.get(region.slot)
            if tenancy is not None and tenancy.occupants.get(region.service) is deployment:
                return region.slot
            raise KeyError(f"{deployment.name} is not placed by this scheduler")
        for slot, occupant in self._occupied.items():
            if occupant is deployment:
                return slot
        raise KeyError(f"{deployment.name} is not placed by this scheduler")

    def deployments(self) -> list[Deployment]:
        whole = [self._occupied[slot] for slot in sorted(self._occupied)]
        tenants = [
            tenancy.occupants[service]
            for tenancy in self.tenancies()
            for service in sorted(tenancy.claims)
            if service in tenancy.occupants
        ]
        return whole + tenants

    def capacity_report(self) -> CapacityReport:
        queue = self.repair_queue
        cache = self.bitstream_cache
        per_pod: dict[int, PodCapacity] = {}
        by_pod: dict[int, list[RingSlot]] = {}
        for slot in self.datacenter.ring_slots():
            by_pod.setdefault(slot.pod_id, []).append(slot)
        totals = {"occupied": 0, "cordoned": 0, "regions": 0, "region_cordons": 0}
        for pod_id in sorted(by_pod):
            occupied = cordoned = regions = region_cordons = 0
            for slot in by_pod[pod_id]:
                tenancy = self._tenancies.get(slot)
                if tenancy is not None:
                    regions += len(tenancy.claims)
                    region_cordons += len(tenancy.cordoned)
                    if tenancy.claims:
                        occupied += 1
                    else:
                        # Only cordoned node runs remain: the ring is
                        # out of the free pool but hosts nobody.
                        cordoned += 1
                elif slot in self._occupied:
                    occupied += 1
                elif slot in self._cordoned:
                    cordoned += 1
            per_pod[pod_id] = PodCapacity(
                pod_id=pod_id,
                total_rings=len(by_pod[pod_id]),
                free_rings=len(by_pod[pod_id]) - occupied - cordoned,
                occupied_rings=occupied,
                cordoned_rings=cordoned,
                tenant_regions=regions,
                cordoned_regions=region_cordons,
            )
            totals["occupied"] += occupied
            totals["cordoned"] += cordoned
            totals["regions"] += regions
            totals["region_cordons"] += region_cordons
        spares = sum(
            deployment.spare_count for deployment in self._occupied.values()
        )
        spares += sum(
            occupant.spare_count
            for tenancy in self._tenancies.values()
            for occupant in tenancy.occupants.values()
        )
        return CapacityReport(
            total_rings=self.datacenter.total_rings,
            occupied_rings=totals["occupied"],
            total_spare_nodes=spares,
            cordoned_rings=totals["cordoned"],
            open_tickets=len(queue.open_tickets) if queue is not None else 0,
            next_repair_due_ns=queue.next_due_ns() if queue is not None else None,
            tenant_regions=totals["regions"],
            cordoned_regions=totals["region_cordons"],
            bitstream_hits=cache.hits if cache is not None else 0,
            bitstream_misses=cache.misses if cache is not None else 0,
            per_pod=per_pod,
        )

    # -- placement -------------------------------------------------------------

    def _free_pool(
        self, count: int, policy: str | None
    ) -> tuple[str, dict[int, list[RingSlot]]]:
        """Validated policy + the free slots grouped by pod, or raise
        if fewer than ``count`` rings are free datacenter-wide."""
        policy = policy or self.policy
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; "
                f"choose from {PLACEMENT_POLICIES}"
            )
        free = self.free_slots()
        if len(free) < count:
            raise InsufficientClusterCapacity(
                f"need {count} rings, only {len(free)} of "
                f"{self.datacenter.total_rings} free"
            )
        by_pod: dict[int, list[RingSlot]] = {}
        for slot in free:
            by_pod.setdefault(slot.pod_id, []).append(slot)
        return policy, by_pod

    def _choose(self, count: int, policy: str | None = None) -> list[RingSlot]:
        policy, by_pod = self._free_pool(count, policy)
        if policy == "pack":
            # free_slots() is pod-major ordered; fill pods in order.
            ordered = [
                slot for pod_id in sorted(by_pod) for slot in by_pod[pod_id]
            ]
            return ordered[:count]
        # spread: take one slot from each pod in turn until satisfied,
        # starting from the round-robin cursor so successive deploy()
        # calls keep rotating across pods instead of restarting at pod 0.
        pods = sorted(by_pod)
        start = 0
        for index, pod_id in enumerate(pods):
            if pod_id >= self._next_pod_id:
                start = index
                break
        queues = [by_pod[pod_id] for pod_id in pods[start:] + pods[:start]]
        chosen: list[RingSlot] = []
        while len(chosen) < count:
            for queue in queues:
                if queue and len(chosen) < count:
                    chosen.append(queue.pop(0))
        self._next_pod_id = chosen[-1].pod_id + 1
        return chosen

    def _choose_gang(self, count: int, policy: str | None = None) -> list[RingSlot]:
        """Choose ``count`` rings composing ONE replica (a gang).

        Unlike :meth:`_choose` — independent replicas, where only pod
        diversity matters — gang members are chained into one request
        path, so consecutive members should sit on pods that are close
        on the datacenter's inter-pod loop
        (:meth:`~repro.fabric.datacenter.Datacenter.pod_distance`):

        ``pack``
            Span the fewest pods (ideally one), breaking ties by the
            shortest chained inter-pod path — minimises the cable runs
            a request crosses between stages.

        ``spread``
            One ring per pod where capacity allows, on *consecutive*
            pods of the loop starting at the round-robin cursor: blast
            radius still spans power domains, but each stage-to-stage
            hop crosses a single inter-pod run.
        """
        policy, by_pod = self._free_pool(count, policy)
        num_pods = self.datacenter.num_pods
        if policy == "pack":
            best: tuple | None = None
            for start in range(num_pods):
                window: list[RingSlot] = []
                pods_used = 0
                for step in range(num_pods):
                    queue = by_pod.get((start + step) % num_pods, [])
                    take = min(len(queue), count - len(window))
                    if take:
                        window.extend(queue[:take])
                        pods_used += 1
                    if len(window) == count:
                        break
                if len(window) < count:
                    continue
                cost = sum(
                    self.datacenter.pod_distance(a.pod_id, b.pod_id)
                    for a, b in zip(window, window[1:], strict=False)
                )
                key = (pods_used, cost, start)
                if best is None or key < best[:3]:
                    best = (*key, window)
            assert best is not None  # len(free) >= count guarantees a window
            return best[3]
        # spread
        chosen: list[RingSlot] = []
        start = self._next_pod_id % num_pods
        while len(chosen) < count:
            took = len(chosen)
            for step in range(num_pods):
                queue = by_pod.get((start + step) % num_pods, [])
                if queue and len(chosen) < count:
                    chosen.append(queue.pop(0))
            assert len(chosen) > took  # len(free) >= count guarantees progress
        self._next_pod_id = chosen[-1].pod_id + 1
        return chosen

    def deploy(
        self,
        service: ServiceDefinition,
        rings: int = 1,
        adapter: RequestAdapter | None = None,
        slots_per_server: int = 48,
        policy: str | None = None,
    ) -> list[Deployment]:
        """Place ``service`` on ``rings`` free rings and configure them.

        Each chosen ring gets its own :class:`Deployment` (sharing the
        pod's mapping manager so failure handling sees every assignment)
        and is fully configured — FPGA images written, RX-Halt released
        — before this returns.  ``policy`` overrides the scheduler-wide
        placement policy for this call (the control plane places each
        service under its spec's policy).
        """
        if rings < 1:
            raise ValueError(f"need at least one ring, got {rings}")
        chosen = self._choose(rings, policy)
        return self._configure_slots(service, chosen, adapter, slots_per_server)

    def deploy_gang(
        self,
        service: ServiceDefinition,
        rings: int,
        adapter: RequestAdapter | None = None,
        slots_per_server: int = 48,
        policy: str | None = None,
    ) -> list[Deployment]:
        """Place ONE composite replica: ``rings`` member rings, all or
        nothing.

        Members are chosen by :meth:`_choose_gang` (link-aware, in chain
        order) and configured like :meth:`deploy`; a configure failure
        on any member rolls the whole gang back before re-raising, so a
        replica never comes up partially placed.  The returned list is
        in chain order — the caller wires it into a
        :class:`~repro.cluster.composite.CompositeDeployment`.
        """
        if rings < 1:
            raise ValueError(f"need at least one ring, got {rings}")
        chosen = self._choose_gang(rings, policy)
        return self._configure_slots(service, chosen, adapter, slots_per_server)

    def _configure_slots(
        self,
        service: ServiceDefinition,
        chosen: list[RingSlot],
        adapter: RequestAdapter | None,
        slots_per_server: int,
    ) -> list[Deployment]:
        """Configure the chosen rings, in waves of one slot per pod.

        Rings in *different* pods reconfigure concurrently — a ~1 s
        full-ring reload per wave instead of per ring, which is what
        bounds gang re-placement time after a replica failure.  Rings
        in the *same* pod stay serial: same-pod deploys share the
        spare-image configure work and the FPGA rejects overlapping
        reconfigurations.  Any configure failure rolls back every
        already-placed ring before re-raising ``PlacementFailed`` —
        without the rollback, a partial placement stranded the earlier
        rings in ``_occupied`` and leaked their capacity (the caller
        only ever sees the exception).
        """
        by_pod: dict[int, list[RingSlot]] = {}
        for slot in chosen:
            by_pod.setdefault(slot.pod_id, []).append(slot)
        placed: dict[RingSlot, Deployment] = {}
        failure: PlacementFailed | None = None
        while failure is None and any(by_pod.values()):
            wave = [queue.pop(0) for queue in by_pod.values() if queue]
            started: list[tuple[RingSlot, Deployment, object]] = []
            for slot in wave:
                deployment = Deployment(
                    self.engine,
                    self.datacenter.pod(slot.pod_id),
                    service,
                    ring_x=slot.ring_x,
                    adapter=adapter,
                    mapping_manager=self.mapping_manager(slot.pod_id),
                    slots_per_server=slots_per_server,
                )
                try:
                    event = deployment.begin_deploy()
                except InsufficientRingCapacity as exc:
                    failure = PlacementFailed(slot, exc)
                    break
                started.append((slot, deployment, event))
            # Settle every configure this wave launched (they progress
            # concurrently) even after a failure, so rollback acts on
            # stable state rather than racing in-flight reconfigures.
            for slot, deployment, event in started:
                try:
                    deployment.finish_deploy(event)
                except (InsufficientRingCapacity, ReconfigError) as exc:
                    if failure is None:
                        failure = PlacementFailed(slot, exc)
                    continue
                self._occupied[slot] = deployment
                placed[slot] = deployment
        if failure is not None:
            for deployment in placed.values():
                self.release(deployment)
            raise failure
        # Log decisions in chain order, and only for placements that
        # stuck — a rolled-back ring was never really placed.
        self.decisions.extend(
            PlacementDecision(
                service=service.name,
                slot=slot,
                spares=placed[slot].spare_count,
            )
            for slot in chosen
        )
        return [placed[slot] for slot in chosen]

    # -- region tenancy (shared rings) -----------------------------------------

    @staticmethod
    def pack_regions(requests: list) -> list[list[str]]:
        """Plan an FFD packing of ``(name, fraction)`` region requests.

        Pure planning — no placement happens.  Feeding requests to
        :meth:`deploy_region` largest-first realises the same packing,
        since deploy_region is first-fit over rings in slot order.
        """
        return pack_first_fit_decreasing(requests)

    def deploy_region(
        self,
        service: ServiceDefinition,
        fraction: float,
        priority: str = "batch",
        adapter: RequestAdapter | None = None,
        slots_per_server: int = 48,
    ) -> Deployment:
        """Place ``service`` as a region tenant on a shared ring.

        First-fit: the first already-shared ring (in slot order) with a
        large-enough free node run takes the claim; otherwise the first
        free ring opens as a new shared ring.  One claim per service
        per ring, so a service's replicas land on different rings.
        Raises :class:`InsufficientClusterCapacity` when no ring can
        host the region, and :class:`PlacementFailed` (carrying the
        region's nodes) when the chosen run fails to configure.
        """
        chosen: RingSlot | None = None
        tenancy: RingTenancy | None = None
        node_count = 0
        for slot in sorted(self._tenancies):
            candidate = self._tenancies[slot]
            count = region_node_count(service, fraction, len(candidate.ring_nodes))
            if candidate.can_host(service.name, count):
                chosen, tenancy, node_count = slot, candidate, count
                break
        if chosen is None:
            free = self.free_slots()
            if not free:
                raise InsufficientClusterCapacity(
                    f"no ring with a free {fraction:.2f} region for "
                    f"{service.name!r}"
                )
            chosen = free[0]
            ring_nodes = [
                server.node_id
                for server in self.datacenter.pod(chosen.pod_id).ring(chosen.ring_x)
            ]
            tenancy = RingTenancy(chosen, ring_nodes)
            node_count = region_node_count(service, fraction, len(ring_nodes))
            if node_count > len(ring_nodes):
                raise InsufficientClusterCapacity(
                    f"service {service.name!r} needs {node_count} nodes, "
                    f"rings have {len(ring_nodes)}"
                )
            self._tenancies[chosen] = tenancy
        pod = self.datacenter.pod(chosen.pod_id)
        check_region_fit(service, pod.server_at(tenancy.ring_nodes[0]).fpga.device)
        claim = tenancy.claim(
            service.name, fraction, priority, node_count, slots_per_server
        )
        deployment = Deployment(
            self.engine,
            pod,
            service,
            ring_x=chosen.ring_x,
            adapter=adapter,
            mapping_manager=self.mapping_manager(chosen.pod_id),
            slots_per_server=slots_per_server,
            region=claim,
        )
        try:
            deployment.deploy()
        except (InsufficientRingCapacity, ReconfigError) as exc:
            tenancy.release(claim)
            if tenancy.empty:
                del self._tenancies[chosen]
            raise PlacementFailed(chosen, exc, nodes=claim.nodes) from exc
        tenancy.occupants[service.name] = deployment
        self.decisions.append(
            PlacementDecision(
                service=service.name, slot=chosen, spares=deployment.spare_count
            )
        )
        return deployment

    def preemption_victim(
        self, service: ServiceDefinition, fraction: float
    ) -> Deployment | None:
        """A batch tenant whose eviction would make room for ``service``.

        Scans shared rings in slot order; on each, batch-priority
        claims in claim order.  Returns the first occupant whose region
        plus the ring's current free run covers the needed node count —
        or ``None`` when no eviction helps (the caller records a
        shortfall instead of evicting pointlessly).
        """
        for slot in sorted(self._tenancies):
            tenancy = self._tenancies[slot]
            if service.name in tenancy.claims:
                continue
            needed = region_node_count(service, fraction, len(tenancy.ring_nodes))
            for name in sorted(tenancy.claims):
                claim = tenancy.claims[name]
                if claim.priority != "batch":
                    continue
                occupant = tenancy.occupants.get(name)
                if occupant is None:
                    continue
                if len(tenancy.free_nodes()) + len(claim.nodes) >= needed:
                    return occupant
        return None

    def release(self, deployment: Deployment) -> RingSlot:
        """Return a deployment's ring to the free pool (scale-down).

        Deregisters the ring's assignment from the pod's mapping manager
        so later failure reports no longer act on it, detaches the
        service's roles from the surviving nodes (each reverts to the
        service's passthrough spare, keeping the torus routable), and
        marks the deployment released so stale handles can no longer
        dispatch.  The freed slot is immediately redeployable — the next
        deploy reconfigures the ring with the new service's images, with
        any permanently failed hardware pre-mapped-out.

        A region tenant's release frees only its claim: the tenancy
        (and the ring) persists while other tenants or region cordons
        remain.
        """
        region: RegionClaim | None = getattr(deployment, "region", None)
        if region is not None:
            return self._release_region(deployment, region)
        slot = self.slot_of(deployment)
        del self._occupied[slot]
        manager = deployment.mapping_manager
        if deployment.assignment in manager.assignments:
            manager.assignments.remove(deployment.assignment)
        assignment = deployment.assignment
        if assignment is not None:
            spare = deployment.service.spare
            for node in assignment.ring_nodes:
                if node in assignment.excluded:
                    continue
                server = deployment.pod.server_at(node)
                if server.fpga.state is FpgaState.CONFIGURED:
                    server.shell.attach_role(spare.factory(assignment, spare.name))
        deployment.released = True
        return slot

    def _release_region(
        self, deployment: Deployment, region: RegionClaim
    ) -> RingSlot:
        tenancy = self._tenancies.get(region.slot)
        if tenancy is None or tenancy.occupants.get(region.service) is not deployment:
            raise KeyError(f"{deployment.name} is not placed by this scheduler")
        del tenancy.occupants[region.service]
        tenancy.release(region)
        manager = deployment.mapping_manager
        if deployment.assignment in manager.assignments:
            manager.assignments.remove(deployment.assignment)
        assignment = deployment.assignment
        if assignment is not None:
            spare = deployment.service.spare
            for node in assignment.ring_nodes:
                if node in assignment.excluded:
                    continue
                server = deployment.pod.server_at(node)
                if server.fpga.state is FpgaState.CONFIGURED:
                    server.shell.attach_role(spare.factory(assignment, spare.name))
        deployment.release_slots()
        deployment.released = True
        if tenancy.empty:
            del self._tenancies[region.slot]
        return region.slot

    def __repr__(self) -> str:
        report = self.capacity_report()
        return (
            f"<ClusterScheduler {self.policy} "
            f"{report.occupied_rings}/{report.total_rings} rings>"
        )
