"""The cluster scheduler: placing services onto rings across pods.

The production deployment (§2.3) ran one service over 1,632 machines —
34 pods, each offering six 8-FPGA rings.  The scheduler owns that
ring-granular resource view: it tracks which :class:`RingSlot`s are
occupied, places new :class:`ServiceDefinition` instances under a
placement policy, and accounts for capacity and spares so operators can
ask "how many more rings can this datacenter absorb?".

Placement policies:

``spread``
    Round-robin across pods — each successive ring lands in the next
    pod with a free slot.  Spreads a service's blast radius across
    power domains and top-of-rack switches (each pod has its own PDU
    and TOR, §2.2).

``pack``
    Fill a pod's rings before opening the next pod.  Minimises the
    number of pods that must be built/powered for small services.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cluster.deployment import Deployment, RequestAdapter
from repro.fabric.datacenter import Datacenter, RingSlot
from repro.hardware.fpga import FpgaState, ReconfigError
from repro.services.mapping_manager import (
    InsufficientRingCapacity,
    MappingManager,
    ServiceDefinition,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.repair import RepairQueue

PLACEMENT_POLICIES = ("spread", "pack")


class InsufficientClusterCapacity(Exception):
    """More rings requested than the datacenter has free."""


class PlacementFailed(Exception):
    """A chosen slot could not be configured (bad hardware found late).

    Carries the slot so the control plane can cordon it and retry on a
    different ring.
    """

    def __init__(self, slot: RingSlot, cause: Exception):
        super().__init__(f"placement on {slot} failed: {cause}")
        self.slot = slot
        self.cause = cause


@dataclasses.dataclass(frozen=True)
class PlacementDecision:
    """One scheduler decision: which service landed on which ring."""

    service: str
    slot: RingSlot
    spares: int


@dataclasses.dataclass(frozen=True)
class CapacityReport:
    """Ring-granular capacity accounting for the whole datacenter.

    Repair-aware: when a :class:`~repro.cluster.repair.RepairQueue` is
    attached, ``open_tickets`` counts the cordoned rings with a repair
    in flight and ``next_repair_due_ns`` is when the earliest of them
    returns to the pool — so capacity planners can distinguish "gone"
    from "coming back, and when".
    """

    total_rings: int
    occupied_rings: int
    total_spare_nodes: int
    cordoned_rings: int = 0  # held out pending manual service
    open_tickets: int = 0  # cordoned rings with a repair in flight
    next_repair_due_ns: float | None = None

    @property
    def free_rings(self) -> int:
        return self.total_rings - self.occupied_rings - self.cordoned_rings

    @property
    def serviceable_rings(self) -> int:
        """Rings that are, or will be after repair, available: everything
        except cordoned rings nobody has a ticket for."""
        return self.free_rings + self.occupied_rings + self.open_tickets

    @property
    def utilization(self) -> float:
        return self.occupied_rings / self.total_rings if self.total_rings else 0.0


class ClusterScheduler:
    """Places service instances onto free torus rings across pods."""

    def __init__(self, datacenter: Datacenter, policy: str = "spread"):
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; "
                f"choose from {PLACEMENT_POLICIES}"
            )
        self.datacenter = datacenter
        self.engine = datacenter.engine
        self.policy = policy
        self.decisions: list[PlacementDecision] = []
        self._occupied: dict[RingSlot, Deployment] = {}
        self._cordoned: dict[RingSlot, str] = {}  # slot -> cordon reason
        self._mapping_managers: dict[int, MappingManager] = {}
        self._next_pod_id = 0  # spread policy's round-robin cursor
        self.repair_queue: "RepairQueue | None" = None

    # -- resource view ---------------------------------------------------------

    def mapping_manager(self, pod_id: int) -> MappingManager:
        """The (shared, per-pod) mapping manager for ``pod_id``."""
        if pod_id not in self._mapping_managers:
            self._mapping_managers[pod_id] = MappingManager(
                self.engine, self.datacenter.pod(pod_id)
            )
        return self._mapping_managers[pod_id]

    def free_slots(self) -> list[RingSlot]:
        return [
            slot for slot in self.datacenter.ring_slots()
            if slot not in self._occupied and slot not in self._cordoned
        ]

    def attach_repair_queue(self, queue: "RepairQueue") -> None:
        """Ticket every cordon through ``queue`` from now on.

        With a queue attached, :meth:`cordon` opens a
        :class:`~repro.cluster.repair.ServiceTicket` and the repaired
        slot returns to the pool when the ticket's timer expires — no
        operator :meth:`uncordon` required.  Slots already cordoned at
        attach time are ticketed immediately (they were waiting for
        exactly this).
        """
        if self.repair_queue is not None and self.repair_queue is not queue:
            raise RuntimeError("a repair queue is already attached")
        self.repair_queue = queue
        for slot, reason in self._cordoned.items():
            queue.open_ticket(slot, reason=reason)

    def cordon(self, slot: RingSlot, reason: str = "") -> None:
        """Hold ``slot`` out of placement (bad hardware awaiting service).

        Cordoning an occupied or unknown slot raises: an occupied slot
        counts against ``occupied_rings`` already, so also counting it
        cordoned would double-subtract from ``free_rings`` (release it
        first), and an unknown slot is a caller bug.  With a repair
        queue attached a service ticket is opened for the slot.
        """
        if slot not in self.datacenter.ring_slots():
            raise ValueError(f"{slot} is not a ring of this datacenter")
        if slot in self._occupied:
            raise ValueError(f"{slot} is occupied; release it first")
        self._cordoned.setdefault(slot, reason)
        if self.repair_queue is not None:
            self.repair_queue.open_ticket(slot, reason=reason)

    def uncordon(self, slot: RingSlot) -> None:
        """Return a cordoned slot to the placement pool (post-repair).

        Raises ``KeyError`` for a slot that is not cordoned — silently
        ignoring it let typos pass unnoticed mid-experiment.  A manual
        uncordon cancels the slot's open service ticket, if any (the
        operator serviced it out-of-band).
        """
        if slot not in self._cordoned:
            raise KeyError(f"{slot} is not cordoned")
        del self._cordoned[slot]
        if self.repair_queue is not None:
            self.repair_queue.cancel(slot)

    def cordon_reason(self, slot: RingSlot) -> str:
        """Why ``slot`` is cordoned (raises ``KeyError`` if it is not)."""
        return self._cordoned[slot]

    @property
    def cordoned_slots(self) -> list[RingSlot]:
        return sorted(self._cordoned)

    def is_occupied(self, slot: RingSlot) -> bool:
        """Whether a deployment currently holds ``slot``."""
        return slot in self._occupied

    def slot_of(self, deployment: Deployment) -> RingSlot:
        """The ring slot ``deployment`` occupies."""
        for slot, occupant in self._occupied.items():
            if occupant is deployment:
                return slot
        raise KeyError(f"{deployment.name} is not placed by this scheduler")

    def deployments(self) -> list[Deployment]:
        return [self._occupied[slot] for slot in sorted(self._occupied)]

    def capacity_report(self) -> CapacityReport:
        queue = self.repair_queue
        return CapacityReport(
            total_rings=self.datacenter.total_rings,
            occupied_rings=len(self._occupied),
            total_spare_nodes=sum(
                deployment.spare_count for deployment in self._occupied.values()
            ),
            cordoned_rings=len(self._cordoned),
            open_tickets=len(queue.open_tickets) if queue is not None else 0,
            next_repair_due_ns=queue.next_due_ns() if queue is not None else None,
        )

    # -- placement -------------------------------------------------------------

    def _free_pool(
        self, count: int, policy: str | None
    ) -> tuple[str, dict[int, list[RingSlot]]]:
        """Validated policy + the free slots grouped by pod, or raise
        if fewer than ``count`` rings are free datacenter-wide."""
        policy = policy or self.policy
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {policy!r}; "
                f"choose from {PLACEMENT_POLICIES}"
            )
        free = self.free_slots()
        if len(free) < count:
            raise InsufficientClusterCapacity(
                f"need {count} rings, only {len(free)} of "
                f"{self.datacenter.total_rings} free"
            )
        by_pod: dict[int, list[RingSlot]] = {}
        for slot in free:
            by_pod.setdefault(slot.pod_id, []).append(slot)
        return policy, by_pod

    def _choose(self, count: int, policy: str | None = None) -> list[RingSlot]:
        policy, by_pod = self._free_pool(count, policy)
        if policy == "pack":
            # free_slots() is pod-major ordered; fill pods in order.
            ordered = [
                slot for pod_id in sorted(by_pod) for slot in by_pod[pod_id]
            ]
            return ordered[:count]
        # spread: take one slot from each pod in turn until satisfied,
        # starting from the round-robin cursor so successive deploy()
        # calls keep rotating across pods instead of restarting at pod 0.
        pods = sorted(by_pod)
        start = 0
        for index, pod_id in enumerate(pods):
            if pod_id >= self._next_pod_id:
                start = index
                break
        queues = [by_pod[pod_id] for pod_id in pods[start:] + pods[:start]]
        chosen: list[RingSlot] = []
        while len(chosen) < count:
            for queue in queues:
                if queue and len(chosen) < count:
                    chosen.append(queue.pop(0))
        self._next_pod_id = chosen[-1].pod_id + 1
        return chosen

    def _choose_gang(self, count: int, policy: str | None = None) -> list[RingSlot]:
        """Choose ``count`` rings composing ONE replica (a gang).

        Unlike :meth:`_choose` — independent replicas, where only pod
        diversity matters — gang members are chained into one request
        path, so consecutive members should sit on pods that are close
        on the datacenter's inter-pod loop
        (:meth:`~repro.fabric.datacenter.Datacenter.pod_distance`):

        ``pack``
            Span the fewest pods (ideally one), breaking ties by the
            shortest chained inter-pod path — minimises the cable runs
            a request crosses between stages.

        ``spread``
            One ring per pod where capacity allows, on *consecutive*
            pods of the loop starting at the round-robin cursor: blast
            radius still spans power domains, but each stage-to-stage
            hop crosses a single inter-pod run.
        """
        policy, by_pod = self._free_pool(count, policy)
        num_pods = self.datacenter.num_pods
        if policy == "pack":
            best: tuple | None = None
            for start in range(num_pods):
                window: list[RingSlot] = []
                pods_used = 0
                for step in range(num_pods):
                    queue = by_pod.get((start + step) % num_pods, [])
                    take = min(len(queue), count - len(window))
                    if take:
                        window.extend(queue[:take])
                        pods_used += 1
                    if len(window) == count:
                        break
                if len(window) < count:
                    continue
                cost = sum(
                    self.datacenter.pod_distance(a.pod_id, b.pod_id)
                    for a, b in zip(window, window[1:])
                )
                key = (pods_used, cost, start)
                if best is None or key < best[:3]:
                    best = (*key, window)
            assert best is not None  # len(free) >= count guarantees a window
            return best[3]
        # spread
        chosen: list[RingSlot] = []
        start = self._next_pod_id % num_pods
        while len(chosen) < count:
            took = len(chosen)
            for step in range(num_pods):
                queue = by_pod.get((start + step) % num_pods, [])
                if queue and len(chosen) < count:
                    chosen.append(queue.pop(0))
            assert len(chosen) > took  # len(free) >= count guarantees progress
        self._next_pod_id = chosen[-1].pod_id + 1
        return chosen

    def deploy(
        self,
        service: ServiceDefinition,
        rings: int = 1,
        adapter: RequestAdapter | None = None,
        slots_per_server: int = 48,
        policy: str | None = None,
    ) -> list[Deployment]:
        """Place ``service`` on ``rings`` free rings and configure them.

        Each chosen ring gets its own :class:`Deployment` (sharing the
        pod's mapping manager so failure handling sees every assignment)
        and is fully configured — FPGA images written, RX-Halt released
        — before this returns.  ``policy`` overrides the scheduler-wide
        placement policy for this call (the control plane places each
        service under its spec's policy).
        """
        if rings < 1:
            raise ValueError(f"need at least one ring, got {rings}")
        chosen = self._choose(rings, policy)
        return self._configure_slots(service, chosen, adapter, slots_per_server)

    def deploy_gang(
        self,
        service: ServiceDefinition,
        rings: int,
        adapter: RequestAdapter | None = None,
        slots_per_server: int = 48,
        policy: str | None = None,
    ) -> list[Deployment]:
        """Place ONE composite replica: ``rings`` member rings, all or
        nothing.

        Members are chosen by :meth:`_choose_gang` (link-aware, in chain
        order) and configured like :meth:`deploy`; a configure failure
        on any member rolls the whole gang back before re-raising, so a
        replica never comes up partially placed.  The returned list is
        in chain order — the caller wires it into a
        :class:`~repro.cluster.composite.CompositeDeployment`.
        """
        if rings < 1:
            raise ValueError(f"need at least one ring, got {rings}")
        chosen = self._choose_gang(rings, policy)
        return self._configure_slots(service, chosen, adapter, slots_per_server)

    def _configure_slots(
        self,
        service: ServiceDefinition,
        chosen: list[RingSlot],
        adapter: RequestAdapter | None,
        slots_per_server: int,
    ) -> list[Deployment]:
        """Configure the chosen rings, in waves of one slot per pod.

        Rings in *different* pods reconfigure concurrently — a ~1 s
        full-ring reload per wave instead of per ring, which is what
        bounds gang re-placement time after a replica failure.  Rings
        in the *same* pod stay serial: same-pod deploys share the
        spare-image configure work and the FPGA rejects overlapping
        reconfigurations.  Any configure failure rolls back every
        already-placed ring before re-raising ``PlacementFailed`` —
        without the rollback, a partial placement stranded the earlier
        rings in ``_occupied`` and leaked their capacity (the caller
        only ever sees the exception).
        """
        by_pod: dict[int, list[RingSlot]] = {}
        for slot in chosen:
            by_pod.setdefault(slot.pod_id, []).append(slot)
        placed: dict[RingSlot, Deployment] = {}
        failure: PlacementFailed | None = None
        while failure is None and any(by_pod.values()):
            wave = [queue.pop(0) for queue in by_pod.values() if queue]
            started: list[tuple[RingSlot, Deployment, object]] = []
            for slot in wave:
                deployment = Deployment(
                    self.engine,
                    self.datacenter.pod(slot.pod_id),
                    service,
                    ring_x=slot.ring_x,
                    adapter=adapter,
                    mapping_manager=self.mapping_manager(slot.pod_id),
                    slots_per_server=slots_per_server,
                )
                try:
                    event = deployment.begin_deploy()
                except InsufficientRingCapacity as exc:
                    failure = PlacementFailed(slot, exc)
                    break
                started.append((slot, deployment, event))
            # Settle every configure this wave launched (they progress
            # concurrently) even after a failure, so rollback acts on
            # stable state rather than racing in-flight reconfigures.
            for slot, deployment, event in started:
                try:
                    deployment.finish_deploy(event)
                except (InsufficientRingCapacity, ReconfigError) as exc:
                    if failure is None:
                        failure = PlacementFailed(slot, exc)
                    continue
                self._occupied[slot] = deployment
                placed[slot] = deployment
        if failure is not None:
            for deployment in placed.values():
                self.release(deployment)
            raise failure
        # Log decisions in chain order, and only for placements that
        # stuck — a rolled-back ring was never really placed.
        self.decisions.extend(
            PlacementDecision(
                service=service.name,
                slot=slot,
                spares=placed[slot].spare_count,
            )
            for slot in chosen
        )
        return [placed[slot] for slot in chosen]

    def release(self, deployment: Deployment) -> RingSlot:
        """Return a deployment's ring to the free pool (scale-down).

        Deregisters the ring's assignment from the pod's mapping manager
        so later failure reports no longer act on it, detaches the
        service's roles from the surviving nodes (each reverts to the
        service's passthrough spare, keeping the torus routable), and
        marks the deployment released so stale handles can no longer
        dispatch.  The freed slot is immediately redeployable — the next
        deploy reconfigures the ring with the new service's images, with
        any permanently failed hardware pre-mapped-out.
        """
        slot = self.slot_of(deployment)
        del self._occupied[slot]
        manager = deployment.mapping_manager
        if deployment.assignment in manager.assignments:
            manager.assignments.remove(deployment.assignment)
        assignment = deployment.assignment
        if assignment is not None:
            spare = deployment.service.spare
            for node in assignment.ring_nodes:
                if node in assignment.excluded:
                    continue
                server = deployment.pod.server_at(node)
                if server.fpga.state is FpgaState.CONFIGURED:
                    server.shell.attach_role(spare.factory(assignment, spare.name))
        deployment.released = True
        return slot

    def __repr__(self) -> str:
        report = self.capacity_report()
        return (
            f"<ClusterScheduler {self.policy} "
            f"{report.occupied_rings}/{report.total_rings} rings>"
        )
