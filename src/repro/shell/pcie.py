"""PCIe core with slot-based DMA (§3.1).

Low latency is achieved by avoiding system calls: one input and one
output buffer live in non-paged user-level memory, divided into 64
slots of 64 KB.  Each CPU thread owns one or more slots exclusively —
that is the whole thread-safety story.  The FPGA monitors the input
full bits and *fairly* selects slots by taking periodic snapshots of
the full bits and DMA'ing every full slot before snapshotting again.
Results DMA into the output buffer, set the output full bit, and raise
an interrupt to wake the consumer thread.

A reconfiguring FPGA appears as a failed PCIe device and raises a
non-maskable interrupt that destabilizes the host unless the driver
masked it first (§3.4) — modelled via the ``on_nmi`` callback.
"""

from __future__ import annotations

import collections.abc
import dataclasses

from repro.hardware.constants import (
    PCIE_DMA_SETUP_NS,
    PCIE_GBPS,
    PCIE_SLOT_BYTES,
    PCIE_SLOT_COUNT,
)
from repro.shell.messages import Packet
from repro.shell.router import Port, Router
from repro.sim import Engine, Event, Resource
from repro.sim.units import transfer_time_ns


class SlotError(Exception):
    """Raised on slot misuse (overfill, oversized payload, bad id)."""


@dataclasses.dataclass
class Slot:
    """One DMA slot in host memory."""

    index: int
    full: bool = False
    packet: Packet | None = None
    freed: Event | None = None  # waiters for the slot to drain
    filled: Event | None = None  # waiters for data to arrive


class HostDmaBuffers:
    """The shared user-level input/output buffers (host side).

    The device side (:class:`PcieCore`) scans ``input_slots``; host
    threads fill them and consume ``output_slots``.
    """

    def __init__(
        self,
        engine: Engine,
        slot_count: int = PCIE_SLOT_COUNT,
        slot_bytes: int = PCIE_SLOT_BYTES,
    ):
        if slot_count < 1:
            raise SlotError(f"need at least one slot, got {slot_count}")
        self.engine = engine
        self.slot_count = slot_count
        self.slot_bytes = slot_bytes
        self.input_slots = [Slot(i) for i in range(slot_count)]
        self.output_slots = [Slot(i) for i in range(slot_count)]
        self._dma_wake: Event | None = None

    # -- host-thread side ----------------------------------------------------

    def fill_input(self, slot_id: int, packet: Packet) -> Event:
        """Fill an input slot; returns an event that fires once accepted.

        Blocks (event pends) while the slot is still full from the
        previous send — slots apply natural backpressure per thread.
        """
        slot = self._input_slot(slot_id)
        if packet.size_bytes > self.slot_bytes:
            raise SlotError(
                f"payload {packet.size_bytes} B exceeds slot size {self.slot_bytes} B"
            )
        done = self.engine.event(name=f"fill:{slot_id}")
        packet.slot_id = slot_id

        def do_fill(_event=None):
            slot.full = True
            slot.packet = packet
            self._wake_dma()
            done.succeed()

        if slot.full:
            if slot.freed is None:
                slot.freed = self.engine.event(name=f"freed:{slot_id}")
            slot.freed.add_callback(do_fill)
        else:
            do_fill()
        return done

    def consume_output(self, slot_id: int) -> Event:
        """Wait for the output slot to fill; returns the packet, clears it."""
        slot = self._output_slot(slot_id)
        done = self.engine.event(name=f"consume:{slot_id}")

        def do_consume(_event=None):
            packet = slot.packet
            slot.full = False
            slot.packet = None
            if slot.freed is not None:
                freed, slot.freed = slot.freed, None
                freed.succeed()
            done.succeed(packet)

        if slot.full:
            do_consume()
        else:
            if slot.filled is None:
                slot.filled = self.engine.event(name=f"filled:{slot_id}")
            slot.filled.add_callback(do_consume)
        return done

    # -- device side helpers -----------------------------------------------------

    def snapshot_full_input(self) -> list[int]:
        """The §3.1 fairness primitive: indices of currently full slots."""
        return [slot.index for slot in self.input_slots if slot.full]

    def wait_any_input(self) -> Event:
        if self._dma_wake is None or self._dma_wake.triggered:
            self._dma_wake = self.engine.event(name="dma-wake")
        return self._dma_wake

    def _wake_dma(self) -> None:
        if self._dma_wake is not None and not self._dma_wake.triggered:
            self._dma_wake.succeed()

    def _input_slot(self, slot_id: int) -> Slot:
        if not 0 <= slot_id < self.slot_count:
            raise SlotError(f"bad slot id {slot_id}")
        return self.input_slots[slot_id]

    def _output_slot(self, slot_id: int) -> Slot:
        if not 0 <= slot_id < self.slot_count:
            raise SlotError(f"bad slot id {slot_id}")
        return self.output_slots[slot_id]


@dataclasses.dataclass
class PcieStats:
    requests_dma_in: int = 0
    responses_dma_out: int = 0
    snapshots: int = 0
    nmi_raised: int = 0
    interrupts_raised: int = 0


class PcieCore:
    """Device-side PCIe + DMA engine living in the shell."""

    def __init__(
        self,
        engine: Engine,
        router: Router,
        buffers: HostDmaBuffers,
        gbps: float = PCIE_GBPS,
        setup_ns: float = PCIE_DMA_SETUP_NS,
        staging_buffers: int = 2,
    ):
        self.engine = engine
        self.router = router
        self.buffers = buffers
        self.gbps = gbps
        self.setup_ns = setup_ns
        self.stats = PcieStats()
        self.device_up = True
        self.on_nmi: collections.abc.Callable[[], None] | None = None
        self._device_up_event: Event | None = None
        # Two staging buffers on the FPGA: at most two DMA transfers
        # can be in flight between host memory and the router.
        self._staging = Resource(engine, capacity=staging_buffers, name="pcie-staging")
        # Expendable: both DMA loops idle forever once traffic stops.
        engine.process(self._input_scan_loop(), name="pcie.scan", expendable=True)
        engine.process(self._output_loop(), name="pcie.out", expendable=True)

    # -- reconfiguration visibility ----------------------------------------------

    def device_down(self) -> None:
        """The FPGA dropped off the bus (reconfiguration started)."""
        self.device_up = False
        self.stats.nmi_raised += 1
        if self.on_nmi is not None:
            self.on_nmi()

    def device_restored(self) -> None:
        self.device_up = True
        if self._device_up_event is not None and not self._device_up_event.triggered:
            self._device_up_event.succeed()

    def _wait_device_up(self) -> Event:
        if self._device_up_event is None or self._device_up_event.triggered:
            self._device_up_event = self.engine.event(name="pcie-up")
        return self._device_up_event

    # -- DMA processes -----------------------------------------------------------------

    def dma_time_ns(self, size_bytes: int) -> float:
        return self.setup_ns + transfer_time_ns(size_bytes, self.gbps)

    def _input_scan_loop(self) -> collections.abc.Generator:
        buffers = self.buffers
        while True:
            if not self.device_up:
                yield self._wait_device_up()
                continue
            snapshot = buffers.snapshot_full_input()
            self.stats.snapshots += 1
            if not snapshot:
                yield buffers.wait_any_input()
                continue
            # Fairness: DMA every slot in this snapshot before rescanning.
            for index in snapshot:
                slot = buffers.input_slots[index]
                packet = slot.packet
                if packet is None:
                    continue
                grant = self._staging.request()
                yield grant
                yield self.engine.timeout(self.dma_time_ns(packet.size_bytes))
                # Transfer complete: clear the full bit so the thread
                # can refill while the packet traverses the fabric.
                slot.full = False
                slot.packet = None
                if slot.freed is not None:
                    freed, slot.freed = slot.freed, None
                    freed.succeed()
                self.stats.requests_dma_in += 1
                packet.injected_at_ns = (
                    packet.injected_at_ns or self.engine.now
                )
                put = self.router.submit(packet, Port.PCIE)
                if put is not None:
                    yield put
                self._staging.release()

    def _output_loop(self) -> collections.abc.Generator:
        queue = self.router.output_queues[Port.PCIE]
        while True:
            packet: Packet = yield queue.get()
            if not self.device_up:
                yield self._wait_device_up()
            if packet.slot_id is None:
                continue  # nowhere to deliver (e.g. probe responses)
            slot = self.buffers.output_slots[packet.slot_id]
            while slot.full:
                # Output slot still occupied: wait for consumer drain.
                if slot.freed is None:
                    slot.freed = self.engine.event(name=f"ofreed:{slot.index}")
                yield slot.freed
            yield self.engine.timeout(self.dma_time_ns(packet.size_bytes))
            slot.full = True
            slot.packet = packet
            self.stats.responses_dma_out += 1
            self.stats.interrupts_raised += 1  # wake the consumer thread
            if slot.filled is not None:
                filled, slot.filled = slot.filled, None
                filled.succeed()
