"""SerialLite III inter-FPGA links (§2.2, §3.2, §3.4).

Each of the four shell link cores talks to one torus neighbour over a
pair of 10 Gb/s signals (20 Gb/s peak bidirectional).  The protocol
offers FIFO semantics, Xon/Xoff flow control and per-flit SECDED ECC —
which costs 20 % of peak bandwidth.  Flits with double-bit errors (and
rare multi-bit escapes caught by the end-of-packet CRC) cause the whole
packet to be dropped with **no retransmission**: the host times out and
escalates to the failure-handling protocol.

The reconfiguration-safety protocol (§3.4) also lives at this layer:

* **TX Halt** — an FPGA about to reconfigure tells each neighbour to
  ignore all further traffic from it until the link retrains;
* **RX Halt** — a freshly configured FPGA discards everything it
  receives until the Mapping Manager releases it;
* a neighbour that reconfigures *without* the protocol (crash, surprise
  reboot) emits garbage packets that will corrupt an unprotected role.
"""

from __future__ import annotations

import collections.abc
import dataclasses

from repro.hardware.constants import (
    SL3_ECC_BANDWIDTH_TAX,
    SL3_FLIT_BYTES,
    SL3_HOP_LATENCY_NS,
    SL3_PEAK_GBPS,
)
from repro.shell.messages import Packet, PacketKind
from repro.sim import Engine, Store
from repro.sim.units import transfer_time_ns


@dataclasses.dataclass(frozen=True)
class Sl3Config:
    """Link operating parameters."""

    peak_gbps: float = SL3_PEAK_GBPS
    ecc_enabled: bool = True
    hop_latency_ns: float = SL3_HOP_LATENCY_NS
    rx_fifo_packets: int = 16  # receive buffering before Xoff asserts
    flit_single_error_rate: float = 0.0  # per-flit single-bit-error prob
    flit_double_error_rate: float = 0.0  # per-flit double-bit-error prob
    retrain_ns: float = 2_000_000.0  # link retrain after reconfiguration

    @property
    def effective_gbps(self) -> float:
        """Usable bandwidth after the ECC tax (§3.2: −20 %)."""
        if self.ecc_enabled:
            return self.peak_gbps * (1.0 - SL3_ECC_BANDWIDTH_TAX)
        return self.peak_gbps


@dataclasses.dataclass
class LinkStats:
    """Per-endpoint receive/transmit counters for the health vector."""

    packets_sent: int = 0
    packets_delivered: int = 0
    bytes_delivered: int = 0
    dropped_crc: int = 0  # double-bit/CRC failures (no retransmission)
    dropped_rx_halt: int = 0
    dropped_ignore_peer: int = 0
    dropped_link_down: int = 0
    garbage_received: int = 0  # garbage that REACHED the role (corruption!)
    corrected_flits: int = 0
    xoff_events: int = 0


class Sl3Endpoint:
    """One side of a link: TX queue, RX state, halt flags."""

    def __init__(self, engine: Engine, name: str, config: Sl3Config):
        self.engine = engine
        self.name = name
        self.config = config
        self.tx_queue: Store = Store(engine, capacity=64, name=f"sl3tx:{name}")
        self.rx_fifo: Store = Store(
            engine, capacity=config.rx_fifo_packets, name=f"sl3rx:{name}"
        )
        self.stats = LinkStats()
        self.rx_halt = True  # §3.4: every FPGA comes up with RX Halt enabled
        self.ignore_peer = False  # set by the peer's TX Halt
        self.locked = True  # SERDES lock (power-on check in the FDR)
        # Wired by the shell: invoked with each delivered packet.
        self.deliver: collections.abc.Callable[[Packet], object] | None = None
        self.link: "Sl3Link | None" = None

    @property
    def peer(self) -> "Sl3Endpoint":
        if self.link is None:
            raise RuntimeError(f"endpoint {self.name} is not attached to a link")
        return self.link.b if self.link.a is self else self.link.a

    def send(self, packet: Packet):
        """Enqueue for transmission; returns the (possibly blocking) put."""
        self.stats.packets_sent += 1
        return self.tx_queue.put(packet)

    def assert_tx_halt(self):
        """§3.4: tell the peer to ignore us until the link retrains."""
        halt = Packet(
            kind=PacketKind.TX_HALT,
            src=(-1, -1),
            dst=(-1, -1),
            size_bytes=SL3_FLIT_BYTES,
        )
        return self.tx_queue.put(halt)

    def release_rx_halt(self) -> None:
        """Mapping Manager release after all pipeline FPGAs configured."""
        self.rx_halt = False

    def __repr__(self) -> str:
        return f"<Sl3Endpoint {self.name} rx_halt={self.rx_halt}>"


class Sl3Link:
    """A full-duplex link between two endpoints.

    Each direction runs two processes: a *wire* process that serializes
    packets (subject to error injection and the peer's halt state) into
    the far receive FIFO — blocking there is exactly Xoff — and a
    *delivery* process that drains the FIFO into the far shell.
    """

    def __init__(
        self,
        engine: Engine,
        a: Sl3Endpoint,
        b: Sl3Endpoint,
        config: Sl3Config | None = None,
        name: str = "link",
    ):
        self.engine = engine
        self.name = name
        self.config = config or a.config
        self.a = a
        self.b = b
        a.link = self
        b.link = self
        self.broken = False  # cable failure
        self._rng = engine.rng.stream(f"sl3:{name}")
        for src, dst in ((a, b), (b, a)):
            # Expendable: link loops wait for the next flit forever.
            engine.process(
                self._wire(src, dst), name=f"sl3.wire.{src.name}", expendable=True
            )
            engine.process(
                self._delivery(dst), name=f"sl3.rx.{dst.name}", expendable=True
            )

    # -- processes --------------------------------------------------------

    def _wire(self, src: Sl3Endpoint, dst: Sl3Endpoint):
        config = self.config
        while True:
            packet: Packet = yield src.tx_queue.get()
            serialization = transfer_time_ns(packet.size_bytes, config.effective_gbps)
            yield self.engine.timeout(serialization + config.hop_latency_ns)
            if self.broken:
                src.stats.dropped_link_down += 1
                continue
            if packet.kind is PacketKind.TX_HALT:
                # Link-level control: processed even under RX halt.
                dst.ignore_peer = True
                continue
            if dst.ignore_peer:
                dst.stats.dropped_ignore_peer += 1
                continue
            if dst.rx_halt:
                dst.stats.dropped_rx_halt += 1
                continue
            survived, corrected = self._apply_channel_errors(packet)
            dst.stats.corrected_flits += corrected
            if not survived:
                dst.stats.dropped_crc += 1
                continue
            if dst.rx_fifo.is_full:
                dst.stats.xoff_events += 1
            yield dst.rx_fifo.put(packet)  # blocks while Xoff is asserted

    def _delivery(self, endpoint: Sl3Endpoint):
        while True:
            packet: Packet = yield endpoint.rx_fifo.get()
            packet.hops += 1
            endpoint.stats.packets_delivered += 1
            endpoint.stats.bytes_delivered += packet.size_bytes
            if packet.kind is PacketKind.GARBAGE:
                endpoint.stats.garbage_received += 1
            if endpoint.deliver is None:
                continue
            result = endpoint.deliver(packet)
            if result is not None:
                yield result  # backpressure from the router

    # -- error channel -----------------------------------------------------

    def _apply_channel_errors(self, packet: Packet) -> tuple[bool, int]:
        """Apply per-flit ECC statistics; returns (survived, corrected)."""
        config = self.config
        p_single = config.flit_single_error_rate
        p_double = config.flit_double_error_rate
        if p_single == 0.0 and p_double == 0.0:
            return True, 0
        if not config.ecc_enabled:
            # Without ECC, any bit error corrupts the packet undetected;
            # we count it as delivered garbage via the caller's stats.
            any_error = self._rng.random() < 1.0 - (
                (1.0 - p_single) * (1.0 - p_double)
            ) ** packet.flits
            if any_error:
                packet.kind = PacketKind.GARBAGE
            return True, 0
        flits = packet.flits
        # Double-bit errors: ECC detects, CRC confirms -> drop the packet.
        if p_double and self._rng.random() < 1.0 - (1.0 - p_double) ** flits:
            return False, 0
        corrected = 0
        if p_single:
            # Expected number of corrected flits, sampled cheaply.
            mean = flits * p_single
            corrected = int(mean)
            if self._rng.random() < mean - corrected:
                corrected += 1
            packet.corrected_bit_errors += corrected
        return True, corrected

    # -- reconfiguration/garbage ---------------------------------------------

    def retrain(self, requester: Sl3Endpoint) -> None:
        """Re-establish the link after ``requester``'s reconfiguration.

        The peer stops ignoring us once the retrain delay elapses.
        """
        peer = requester.peer

        def body():
            yield self.engine.timeout(self.config.retrain_ns)
            peer.ignore_peer = False
            requester.locked = True

        self.engine.process(body(), name=f"sl3.retrain.{requester.name}")

    def start_garbage(self, src: Sl3Endpoint, duration_ns: float, period_ns: float = 50_000.0):
        """Emit garbage from ``src`` (a reconfiguring, unprotected FPGA)."""

        def body():
            elapsed = 0.0
            while elapsed < duration_ns:
                garbage = Packet(
                    kind=PacketKind.GARBAGE,
                    src=(-9, -9),
                    dst=(-9, -9),
                    size_bytes=self._rng.randrange(SL3_FLIT_BYTES, 4096),
                )
                yield src.tx_queue.put(garbage)
                yield self.engine.timeout(period_ns)
                elapsed += period_ns

        return self.engine.process(body(), name=f"sl3.garbage.{src.name}")

    def break_cable(self) -> None:
        """Cable assembly failure: the link goes dark both ways."""
        self.broken = True

    def repair_cable(self) -> None:
        self.broken = False

    def __repr__(self) -> str:
        return f"<Sl3Link {self.name} {self.a.name}<->{self.b.name}>"
