"""The Flight Data Recorder (§3.6).

A lightweight "always-on" recorder that captures the most recent head
and tail flits of all packets entering and exiting the FPGA through the
router, into a 512-entry circular buffer that can be streamed out over
PCIe during a health check.  Each entry keeps the trace ID (so the
offending document can be replayed in a test environment), transaction
size, direction of travel, and miscellaneous state such as non-zero
queue lengths.
"""

from __future__ import annotations

import typing
from collections import deque

from repro.hardware.constants import FDR_CAPACITY


class FdrEntry(typing.NamedTuple):
    """One recorded router event.

    A NamedTuple rather than a frozen dataclass: one entry is built per
    router hop, and frozen-dataclass construction (``__init__`` +
    ``object.__setattr__`` per field) is several times the cost of a
    tuple — measurable across tens of millions of hops.
    """

    timestamp_ns: float
    trace_id: int
    size_bytes: int
    direction: str  # e.g. "north->role", "role->south", "pcie->role"
    kind: str
    queue_lengths: tuple  # (port_name, depth) pairs, non-zero only


class FlightDataRecorder:
    """Fixed-capacity circular event buffer with power-on checkpoints.

    The paper's future-work extension is supported: with
    ``spill_to_dram=True``, entries evicted from the on-chip circular
    buffer are "opportunistically buffered into DRAM for extended
    histories" (§3.6), up to a DRAM budget.
    """

    def __init__(
        self,
        capacity: int = FDR_CAPACITY,
        spill_to_dram: bool = False,
        dram_budget_entries: int = 65_536,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.spill_to_dram = spill_to_dram
        self.dram_budget_entries = dram_budget_entries
        self._events: deque[FdrEntry] = deque()
        self._spilled: deque[FdrEntry] = deque()
        self.power_on_checks: dict[str, bool] = {}
        self.total_recorded = 0

    def record(self, entry: FdrEntry) -> None:
        """Append an event, evicting (or spilling) the oldest when full."""
        self._events.append(entry)
        self.total_recorded += 1
        if len(self._events) > self.capacity:
            evicted = self._events.popleft()
            if self.spill_to_dram:
                self._spilled.append(evicted)
                if len(self._spilled) > self.dram_budget_entries:
                    self._spilled.popleft()

    def record_power_on(self, check: str, ok: bool) -> None:
        """Record a power-on sequence check (SL3 lock, PLL, resets...)."""
        self.power_on_checks[check] = ok

    def stream_out(self) -> list[FdrEntry]:
        """Dump the on-chip buffer (what the health check reads)."""
        return list(self._events)

    def extended_history(self) -> list[FdrEntry]:
        """DRAM-spilled entries plus the on-chip window, oldest first."""
        return list(self._spilled) + list(self._events)

    def entries_for_trace(self, trace_id: int) -> list[FdrEntry]:
        """All retained events for one trace ID (deadlock debugging)."""
        return [
            entry
            for entry in self.extended_history()
            if entry.trace_id == trace_id
        ]

    @property
    def dropped(self) -> int:
        """Events lost entirely (not retained on-chip or in DRAM)."""
        retained = len(self._events) + len(self._spilled)
        return max(0, self.total_recorded - retained)

    def __len__(self) -> int:
        return len(self._events)
