"""Packets carried by the inter-FPGA network and the PCIe interface.

The transport is virtual cut-through with no retransmission or source
buffering (§3.2): packets either arrive intact, arrive with corrected
single-bit errors, or are dropped (double-bit/CRC failures) for the
host timeout to handle.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools

from repro.hardware.constants import SL3_FLIT_BYTES

NodeId = tuple[int, int]  # (x, y) coordinates in the pod torus


class PacketKind(enum.Enum):
    """What a packet carries."""

    REQUEST = "request"  # document scoring request, host -> pipeline head
    RESPONSE = "response"  # score, pipeline -> injecting host
    MODEL_RELOAD = "model_reload"  # queue-manager broadcast down the pipeline
    TX_HALT = "tx_halt"  # link control: neighbour entering reconfiguration
    GARBAGE = "garbage"  # random traffic from a misbehaving neighbour
    PROBE = "probe"  # health-monitor neighbour-ID probe


class TraceIds:
    """Monotonic trace-ID source; FDR entries key off these (§3.6)."""

    _counter = itertools.count(1)

    @classmethod
    def next(cls) -> int:
        return next(cls._counter)


@dataclasses.dataclass(slots=True)
class Packet:
    """One network transaction.

    ``payload`` is a Python object (document, score, command); fidelity
    to wire size comes from ``size_bytes``, which drives serialization
    time.  ``route`` tracks hops for diagnostics.  Slotted: several
    packets exist per request, and the per-instance dict is the single
    biggest allocation on that path.
    """

    kind: PacketKind
    src: NodeId
    dst: NodeId
    size_bytes: int
    payload: object = None
    trace_id: int = 0
    injected_at_ns: float = 0.0
    slot_id: int | None = None  # DMA slot for the eventual response
    hops: int = 0
    corrected_bit_errors: int = 0
    route: list = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative packet size {self.size_bytes}")
        if self.trace_id == 0:
            self.trace_id = TraceIds.next()

    @property
    def flits(self) -> int:
        """Number of SL3 flits this packet occupies (min 1: head==tail)."""
        return max(1, -(-self.size_bytes // SL3_FLIT_BYTES))

    def response_to(self, size_bytes: int, payload: object) -> "Packet":
        """Build the response packet travelling back to the injector."""
        return Packet(
            kind=PacketKind.RESPONSE,
            src=self.dst,
            dst=self.src,
            size_bytes=size_bytes,
            payload=payload,
            trace_id=self.trace_id,
            injected_at_ns=self.injected_at_ns,
            slot_id=self.slot_id,
        )

    def __repr__(self) -> str:
        return (
            f"<Packet {self.kind.value} #{self.trace_id} "
            f"{self.src}->{self.dst} {self.size_bytes}B>"
        )
