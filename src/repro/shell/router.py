"""The inter-FPGA router (§3.2).

A crossbar connecting the four SL3 network ports, the PCIe controller
and the application role.  Routing decisions come from a static,
software-configured routing table.  The transport is virtual
cut-through with no retransmission or source buffering; the crossbar
adds a small fixed latency which we fold into the per-hop link latency.

Every packet entering or exiting is recorded in the Flight Data
Recorder (head/tail flits, §3.6).
"""

from __future__ import annotations

import enum

from repro.shell.fdr import FdrEntry, FlightDataRecorder
from repro.shell.messages import NodeId, Packet, PacketKind
from repro.sim import Engine, Event, Store


class RoutingError(Exception):
    """Raised when configuring an invalid route."""


class Port(enum.Enum):
    """Crossbar ports: four neighbours, the host, and the role."""

    NORTH = "north"
    SOUTH = "south"
    EAST = "east"
    WEST = "west"
    PCIE = "pcie"
    ROLE = "role"


NETWORK_PORTS = (Port.NORTH, Port.SOUTH, Port.EAST, Port.WEST)


class Router:
    """Static-table crossbar with bounded per-output queues."""

    def __init__(
        self,
        engine: Engine,
        node_id: NodeId,
        fdr: FlightDataRecorder | None = None,
        queue_capacity: int = 64,
    ):
        self.engine = engine
        self.node_id = node_id
        # NOTE: an empty recorder is falsy (len == 0); test identity.
        self.fdr = fdr if fdr is not None else FlightDataRecorder()
        self.routing_table: dict[NodeId, Port] = {}
        self.output_queues: dict[Port, Store] = {
            port: Store(engine, capacity=queue_capacity, name=f"rtq:{node_id}:{port.value}")
            for port in Port
        }
        self.dropped_no_route = 0
        self.forwarded = 0
        # Hot-path precomputation: the port set is static, so the
        # direction labels (36 combinations) and the queue-probe list
        # are built once instead of per recorded hop.
        self._directions = {
            (a, b): f"{a.value}->{b.value}" for a in Port for b in Port
        }
        self._queue_probe = [
            (port.value, store.items) for port, store in self.output_queues.items()
        ]

    # -- configuration ------------------------------------------------------

    def set_route(self, dst: NodeId, port: Port) -> None:
        """Software-configured static route: packets for ``dst`` exit ``port``."""
        if port not in NETWORK_PORTS:
            raise RoutingError(f"routes must exit a network port, got {port}")
        if dst == self.node_id:
            raise RoutingError("cannot add a network route to self")
        self.routing_table[dst] = port

    def set_routes(self, table: dict[NodeId, Port]) -> None:
        for dst, port in table.items():
            self.set_route(dst, port)

    # -- data path ------------------------------------------------------------

    def submit(self, packet: Packet, in_port: Port) -> Event | None:
        """Route ``packet``; returns a put event (yield it) or None if dropped."""
        out_port = self._select_output(packet)
        if out_port is None:
            self.dropped_no_route += 1
            return None
        self.forwarded += 1
        packet.route.append(self.node_id)
        self._record(packet, in_port, out_port)
        return self.output_queues[out_port].put(packet)

    def _select_output(self, packet: Packet) -> Port | None:
        if packet.kind is PacketKind.GARBAGE:
            # Random bits from a misbehaving neighbour carry no valid
            # destination; the crossbar misinterprets them as local
            # role traffic — exactly the §3.4 corruption hazard.
            return Port.ROLE
        if packet.dst == self.node_id:
            # Local delivery: responses exit to the host, everything
            # else (requests, reloads) goes to the role.
            if packet.kind is PacketKind.RESPONSE:
                return Port.PCIE
            return Port.ROLE
        return self.routing_table.get(packet.dst)

    def _record(self, packet: Packet, in_port: Port, out_port: Port) -> None:
        lengths = []
        for probe in self._queue_probe:
            depth = len(probe[1])
            if depth:
                lengths.append((probe[0], depth))
        self.fdr.record(
            FdrEntry(
                timestamp_ns=self.engine.now,
                trace_id=packet.trace_id,
                size_bytes=packet.size_bytes,
                direction=self._directions[(in_port, out_port)],
                kind=packet.kind.value,
                queue_lengths=tuple(lengths),
            )
        )

    def queue_depth(self, port: Port) -> int:
        return len(self.output_queues[port])

    def __repr__(self) -> str:
        return f"<Router {self.node_id} routes={len(self.routing_table)}>"
