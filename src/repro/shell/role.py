"""The role: application logic hosted by the shell (§3.2).

Role designers "access convenient and well-defined interfaces and
capabilities in the shell (e.g., PCIe, DRAM, routing) without concern
for managing system correctness".  Concretely a role:

* receives packets the router delivers to the ROLE port via
  :meth:`handle` (a generator, so handling can take simulated time);
* sends packets with :meth:`send`, which enters the shell router;
* is subject to corruption if garbage traffic reaches it — the hazard
  the TX/RX-Halt protocol exists to prevent.
"""

from __future__ import annotations

import collections.abc
import typing

from repro.shell.messages import Packet, PacketKind
from repro.shell.router import Port

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.shell.shell import Shell


class Role:
    """Base class for application roles."""

    name = "role"

    def __init__(self) -> None:
        self.shell: "Shell | None" = None
        self.corrupted = False
        self.app_error = False  # reported in the health vector
        self.packets_handled = 0
        self.process = None  # the receive-loop Process once attached

    # -- lifecycle ----------------------------------------------------------

    def attach(self, shell: "Shell") -> None:
        """Bind to a shell and start the receive loop."""
        self.shell = shell
        # Expendable: the receive loop serves packets until detach().
        self.process = shell.engine.process(
            self._receive_loop(),
            name=f"role.{self.name}@{shell.node_id}",
            expendable=True,
        )
        self.on_attach()

    def detach(self) -> None:
        """Stop the receive loop (role being replaced by reconfiguration)."""
        if self.process is not None and self.process.is_alive:
            self.process.kill()
        self.process = None
        self.shell = None

    def on_attach(self) -> None:
        """Hook for subclasses (start extra processes, load state)."""

    # -- data path ------------------------------------------------------------

    def _receive_loop(self) -> collections.abc.Generator:
        assert self.shell is not None
        queue = self.shell.router.output_queues[Port.ROLE]
        while True:
            packet: Packet = yield queue.get()
            if packet.kind is PacketKind.GARBAGE:
                # Garbage that reaches the role corrupts its state (§3.4).
                self.corrupted = True
                self.app_error = True
                continue
            self.packets_handled += 1
            yield from self.handle(packet)

    def handle(self, packet: Packet) -> collections.abc.Generator:
        """Process one packet; override in subclasses.  Must be a generator."""
        if False:  # pragma: no cover - makes the default a generator
            yield
        return

    def send(self, packet: Packet):
        """Send a packet into the fabric; returns an event to yield."""
        if self.shell is None:
            raise RuntimeError(f"role {self.name} is not attached to a shell")
        return self.shell.send_from_role(packet)

    def reset(self) -> None:
        """Reconfiguration clears role state (called by the shell)."""
        self.corrupted = False
        self.app_error = False

    def __repr__(self) -> str:
        return f"<Role {self.name} handled={self.packets_handled}>"


class PassthroughRole(Role):
    """Forwards requests to a fixed next hop; used by spare nodes and tests."""

    name = "passthrough"

    def __init__(self, next_hop: tuple | None = None, delay_ns: float = 0.0):
        super().__init__()
        self.next_hop = next_hop
        self.delay_ns = delay_ns

    def handle(self, packet: Packet) -> collections.abc.Generator:
        if self.delay_ns:
            yield self.shell.engine.timeout(self.delay_ns)
        if self.next_hop is not None:
            packet.dst = self.next_hop
            yield self.send(packet)
