"""Shell composition: one per FPGA board (§3.2, Figure 3).

Wires together the PCIe core + DMA engine, two DRAM controllers, four
SL3 link endpoints, the crossbar router, the RSU reconfiguration path
(config flash), the SEU scrubber and the Flight Data Recorder, and
hosts the application role.

The shell also implements the §3.4 safe-reconfiguration sequence:

1. driver masks the PCIe non-maskable interrupt (host side);
2. TX-Halt is asserted on every link so neighbours ignore the garbage
   a reconfiguring part emits;
3. the FPGA reloads from flash;
4. links retrain; the FPGA comes up with RX-Halt enabled, discarding
   all traffic until the Mapping Manager releases it.
"""

from __future__ import annotations

import collections.abc
import dataclasses

from repro.hardware.bitstream import Bitstream
from repro.hardware.constants import DramSpeed
from repro.hardware.dram import DramConfig, DramController
from repro.hardware.flash import ConfigFlash
from repro.hardware.fpga import Fpga, FpgaState
from repro.shell.fdr import FlightDataRecorder
from repro.shell.messages import NodeId, Packet
from repro.shell.pcie import HostDmaBuffers, PcieCore
from repro.shell.role import Role
from repro.shell.router import NETWORK_PORTS, Port, Router
from repro.shell.sl3 import Sl3Config, Sl3Endpoint
from repro.sim import Engine, Event
from repro.sim.units import MS


@dataclasses.dataclass(frozen=True)
class ShellConfig:
    """Per-board shell parameters."""

    sl3: Sl3Config = dataclasses.field(default_factory=Sl3Config)
    dram_speed: DramSpeed = DramSpeed.DDR3_1333_DUAL_RANK
    dram_error_rate: float = 0.0
    seu_scrub_period_ns: float = 100 * MS
    router_queue_capacity: int = 64


class Shell:
    """The reusable logic partition of one Catapult board."""

    def __init__(
        self,
        engine: Engine,
        fpga: Fpga,
        node_id: NodeId,
        machine_id: str,
        buffers: HostDmaBuffers | None = None,
        config: ShellConfig | None = None,
    ):
        self.engine = engine
        self.fpga = fpga
        self.node_id = node_id
        self.machine_id = machine_id
        self.config = config or ShellConfig()
        self.fdr = FlightDataRecorder()
        self.router = Router(
            engine, node_id, fdr=self.fdr, queue_capacity=self.config.router_queue_capacity
        )
        self.buffers = buffers or HostDmaBuffers(engine)
        self.pcie = PcieCore(engine, self.router, self.buffers)
        dram_config = DramConfig(speed=self.config.dram_speed)
        self.dram = (
            DramController(
                engine, f"{machine_id}.dram0", dram_config, self.config.dram_error_rate
            ),
            DramController(
                engine, f"{machine_id}.dram1", dram_config, self.config.dram_error_rate
            ),
        )
        self.flash = ConfigFlash(engine, name=f"{machine_id}.flash")
        self.endpoints: dict[Port, Sl3Endpoint] = {}
        self.role: Role | None = None
        self.tx_halt_asserted = False
        fpga.on_state_change(self._on_fpga_state)
        engine.process(self._seu_scrubber(), name=f"seu.{machine_id}", daemon=True)
        self.fdr.record_power_on("pll_lock", fpga.pll_locked)

    # -- wiring (done by the fabric) ---------------------------------------------

    def create_endpoint(self, port: Port) -> Sl3Endpoint:
        """Create the SL3 endpoint for ``port``; the fabric links pairs."""
        if port not in NETWORK_PORTS:
            raise ValueError(f"{port} is not a network port")
        endpoint = Sl3Endpoint(
            self.engine, f"{self.machine_id}.{port.value}", self.config.sl3
        )
        endpoint.deliver = lambda packet: self.router.submit(packet, port)
        endpoint.advertised_id = self.machine_id  # exchanged at link training
        self.endpoints[port] = endpoint
        # Expendable: a feeder blocks forever once traffic stops.
        self.engine.process(
            self._link_feeder(port, endpoint),
            name=f"feed.{endpoint.name}",
            expendable=True,
        )
        self.fdr.record_power_on(f"sl3_{port.value}_lock", endpoint.locked)
        return endpoint

    def _link_feeder(self, port: Port, endpoint: Sl3Endpoint) -> collections.abc.Generator:
        """Drain the router output queue for ``port`` onto the link."""
        queue = self.router.output_queues[port]
        while True:
            packet: Packet = yield queue.get()
            if self.tx_halt_asserted:
                continue  # we promised neighbours silence
            yield endpoint.send(packet)

    # -- role hosting ---------------------------------------------------------------

    def attach_role(self, role: Role) -> None:
        """Host ``role``, replacing (and detaching) any previous role."""
        if self.role is not None:
            self.role.detach()
        self.role = role
        role.attach(self)

    def send_from_role(self, packet: Packet):
        """Role -> router entry point; returns an event to yield."""
        put = self.router.submit(packet, Port.ROLE)
        if put is None:
            return self.engine.timeout(0.0)  # dropped: no route
        return put

    def send_from_host(self, packet: Packet):
        """Direct host injection used by tests (bypasses DMA timing)."""
        put = self.router.submit(packet, Port.PCIE)
        if put is None:
            return self.engine.timeout(0.0)
        return put

    # -- neighbour identity (miswiring detection, §3.5) -------------------------------

    def neighbor_id(self, port: Port) -> str | None:
        """Machine ID the peer advertised at link training, if reachable."""
        endpoint = self.endpoints.get(port)
        if endpoint is None or endpoint.link is None or endpoint.link.broken:
            return None
        return getattr(endpoint.peer, "advertised_id", None)

    # -- reconfiguration (§3.4) ----------------------------------------------------------

    def safe_reconfigure(self, bitstream: Bitstream) -> Event:
        """The full safety protocol; returns a completion event.

        The *driver* must have masked the PCIe NMI first; this method
        handles the fabric side (TX-Halt, RX-Halt, retraining).
        """
        done = self.engine.event(name=f"safe-reconfig:{self.machine_id}")
        self.engine.process(self._safe_reconfigure_body(bitstream, done))
        return done

    def _safe_reconfigure_body(self, bitstream: Bitstream, done: Event) -> collections.abc.Generator:
        # 1. Tell every neighbour to ignore us.
        self.tx_halt_asserted = True
        for endpoint in self.endpoints.values():
            yield endpoint.assert_tx_halt()
        # 2. Reload the device.
        reconfig = self.fpga.reconfigure(bitstream)
        try:
            yield reconfig
        except Exception as exc:  # device failed mid-reconfig
            done.fail(exc)
            return
        # 3. Come up with RX Halt enabled; retrain links.  Completion is
        # only signalled once the links are re-established — traffic
        # sent into a still-training link would be silently dropped.
        for endpoint in self.endpoints.values():
            endpoint.rx_halt = True
            if endpoint.link is not None:
                endpoint.link.retrain(endpoint)
        if self.endpoints:
            yield self.engine.timeout(self.config.sl3.retrain_ns)
        self.tx_halt_asserted = False
        if self.role is not None:
            self.role.reset()
        done.succeed(bitstream)

    def partial_reconfigure(
        self, bitstream: Bitstream, reload_ns: float | None = None
    ) -> Event:
        """Swap the role region while the shell keeps running (§3.2).

        The paper's future-work mode: no PCIe drop (no NMI, no driver
        masking), no TX/RX-Halt — the router keeps forwarding
        inter-FPGA traffic throughout.  Only this node's *role* is
        offline during the (much shorter) reload.  ``reload_ns``
        shortens the region write further for bitstream-cache hits.
        """
        done = self.engine.event(name=f"partial-reconfig:{self.machine_id}")
        started = self.fpga.partial_reconfigure(bitstream, reload_ns=reload_ns)

        def body() -> collections.abc.Generator:
            try:
                yield started
            except Exception as exc:
                done.fail(exc)
                return
            if self.role is not None:
                self.role.reset()
            done.succeed(bitstream)

        self.engine.process(body(), name=f"prcfg.{self.machine_id}")
        return done

    def unsafe_reconfigure(self, bitstream: Bitstream) -> Event:
        """Reconfigure WITHOUT the protocol: neighbours see garbage.

        Models the §3.4 hazard — used by tests and the failure-handling
        benchmarks to show why TX/RX-Halt exists.
        """
        for endpoint in self.endpoints.values():
            if endpoint.link is not None:
                endpoint.link.start_garbage(endpoint, duration_ns=self.fpga.reconfig_ns)
        return self.fpga.reconfigure(bitstream)

    def release_rx_halt(self) -> None:
        """Mapping Manager: all pipeline FPGAs configured; accept traffic."""
        for endpoint in self.endpoints.values():
            endpoint.release_rx_halt()

    # -- background services -----------------------------------------------------------------

    def _seu_scrubber(self) -> collections.abc.Generator:
        """Continuously scrub configuration-memory soft errors (§3.2)."""
        while True:
            yield self.engine.timeout(self.config.seu_scrub_period_ns)
            if self.fpga.state is FpgaState.CONFIGURED:
                self.fpga.scrub()

    def _on_fpga_state(self, fpga: Fpga, state: FpgaState) -> None:
        if state is FpgaState.RECONFIGURING:
            self.pcie.device_down()
        elif state is FpgaState.CONFIGURED:
            self.pcie.device_restored()

    # -- health reporting (consumed by the Health Monitor) --------------------------------------

    def health_snapshot(self) -> dict[str, object]:
        """The §3.5 error vector, as reported during a health check."""
        link_errors = {
            port.value: {
                "dropped_crc": endpoint.stats.dropped_crc,
                "corrected_flits": endpoint.stats.corrected_flits,
                "link_down": bool(endpoint.link and endpoint.link.broken),
            }
            for port, endpoint in self.endpoints.items()
        }
        return {
            "machine_id": self.machine_id,
            "fpga_state": self.fpga.state.value,
            "pll_locked": self.fpga.pll_locked,
            "temp_shutdown": self.fpga.temp_shutdown,
            "app_error": bool(self.role and self.role.app_error),
            "role_corrupted": bool(self.role and self.role.corrupted),
            "dram": [
                {
                    "corrected": controller.health.corrected_errors,
                    "uncorrectable": controller.health.uncorrectable_errors,
                    "calibration_failed": controller.health.calibration_failed,
                }
                for controller in self.dram
            ],
            "links": link_errors,
            "neighbors": {
                port.value: self.neighbor_id(port) for port in self.endpoints
            },
            "seu": dataclasses.asdict(self.fpga.seu),
            "fdr_events": len(self.fdr),
        }

    def __repr__(self) -> str:
        return f"<Shell {self.machine_id} node={self.node_id}>"
