"""The shell: reusable programmable logic common across applications (§3.2).

The shell/role split is the paper's key productivity abstraction.  The
shell owns everything board- and system-level — PCIe+DMA, two DRAM
controllers, four SL3 link cores, the inter-FPGA router, the RSU
reconfiguration unit, the SEU scrubber and the Flight Data Recorder —
while the role (application logic) sees only clean queue interfaces.
"""

from repro.shell.messages import Packet, PacketKind, TraceIds
from repro.shell.fdr import FdrEntry, FlightDataRecorder
from repro.shell.sl3 import LinkStats, Sl3Config, Sl3Link
from repro.shell.router import Port, Router, RoutingError
from repro.shell.pcie import HostDmaBuffers, PcieCore, SlotError
from repro.shell.role import Role, PassthroughRole
from repro.shell.shell import Shell, ShellConfig

__all__ = [
    "FdrEntry",
    "FlightDataRecorder",
    "HostDmaBuffers",
    "LinkStats",
    "Packet",
    "PacketKind",
    "PassthroughRole",
    "PcieCore",
    "Port",
    "Role",
    "Router",
    "RoutingError",
    "Shell",
    "ShellConfig",
    "Sl3Config",
    "Sl3Link",
    "SlotError",
    "TraceIds",
]
