"""The 6x8 two-dimensional torus topology (§2.2).

The torus balanced routability and cabling complexity for a 48-server
pod.  Each node connects to four neighbours (north/south/east/west with
wraparound).  Routing tables are static and software-configured (§3.2);
we compute shortest-path dimension-order routes (X then Y).
"""

from __future__ import annotations

import dataclasses

from repro.hardware.constants import TORUS_HEIGHT, TORUS_WIDTH
from repro.shell.router import Port

NodeId = tuple[int, int]


@dataclasses.dataclass(frozen=True)
class TorusTopology:
    """Geometry of one pod's torus."""

    width: int = TORUS_WIDTH
    height: int = TORUS_HEIGHT

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError(
                f"torus needs at least 2x2 nodes, got {self.width}x{self.height}"
            )

    @property
    def node_count(self) -> int:
        return self.width * self.height

    def nodes(self) -> list[NodeId]:
        """All coordinates in row-major order."""
        return [(x, y) for y in range(self.height) for x in range(self.width)]

    def contains(self, node: NodeId) -> bool:
        x, y = node
        return 0 <= x < self.width and 0 <= y < self.height

    def neighbor(self, node: NodeId, port: Port) -> NodeId:
        """The coordinate one hop away through ``port`` (with wraparound)."""
        x, y = node
        if not self.contains(node):
            raise ValueError(f"{node} outside the {self.width}x{self.height} torus")
        if port is Port.EAST:
            return ((x + 1) % self.width, y)
        if port is Port.WEST:
            return ((x - 1) % self.width, y)
        if port is Port.SOUTH:
            return (x, (y + 1) % self.height)
        if port is Port.NORTH:
            return (x, (y - 1) % self.height)
        raise ValueError(f"{port} is not a network port")

    def ring(self, x: int) -> list[NodeId]:
        """One column: the 8-node ring the ranking pipeline maps onto (§4).

        The engine "maps to rings of eight FPGAs on one dimension of
        the torus" — a full wrap in Y at fixed X.
        """
        if not 0 <= x < self.width:
            raise ValueError(f"column {x} outside torus width {self.width}")
        return [(x, y) for y in range(self.height)]

    def links(self) -> list[tuple[NodeId, Port, NodeId, Port]]:
        """Every physical link exactly once, as (node, port, node, port).

        Each node owns its EAST and SOUTH cables; the peer sees them as
        WEST and NORTH.  A W*H torus has 2*W*H links.
        """
        result = []
        for node in self.nodes():
            east = self.neighbor(node, Port.EAST)
            south = self.neighbor(node, Port.SOUTH)
            result.append((node, Port.EAST, east, Port.WEST))
            result.append((node, Port.SOUTH, south, Port.NORTH))
        return result

    def hop_distance(self, a: NodeId, b: NodeId) -> int:
        """Shortest-path hop count between two nodes."""
        dx = abs(a[0] - b[0])
        dy = abs(a[1] - b[1])
        return min(dx, self.width - dx) + min(dy, self.height - dy)


def dor_routes(topology: TorusTopology, src: NodeId) -> dict[NodeId, Port]:
    """Dimension-order (X then Y) shortest-path routes from ``src``.

    Ties on the wraparound midpoint break toward EAST/SOUTH, keeping
    tables deterministic across the pod.
    """
    routes: dict[NodeId, Port] = {}
    for dst in topology.nodes():
        if dst == src:
            continue
        dx = (dst[0] - src[0]) % topology.width
        if dx != 0:
            routes[dst] = Port.EAST if dx <= topology.width // 2 else Port.WEST
            continue
        dy = (dst[1] - src[1]) % topology.height
        routes[dst] = Port.SOUTH if dy <= topology.height // 2 else Port.NORTH
    return routes


def yx_routes(topology: TorusTopology, src: NodeId) -> dict[NodeId, Port]:
    """Y-then-X dimension-order routes.

    The router's "static software-configured routing table supports
    different routing policies" (§3.2); YX is the standard alternative
    to XY — useful to steer traffic off a damaged row, and its
    pairing with XY is the classic deadlock consideration.
    """
    routes: dict[NodeId, Port] = {}
    for dst in topology.nodes():
        if dst == src:
            continue
        dy = (dst[1] - src[1]) % topology.height
        if dy != 0:
            routes[dst] = Port.SOUTH if dy <= topology.height // 2 else Port.NORTH
            continue
        dx = (dst[0] - src[0]) % topology.width
        routes[dst] = Port.EAST if dx <= topology.width // 2 else Port.WEST
    return routes


ROUTING_POLICIES = {"xy": dor_routes, "yx": yx_routes}
