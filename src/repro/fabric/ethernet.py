"""The Ethernet management network (§2.3, §3.3).

Servers carry a 10 Gb NIC into a 48-port top-of-rack switch.  The
Mapping Manager and Health Monitor communicate over this network — it
is entirely separate from the inter-FPGA torus.  We model it as a
reliable RPC fabric with a fixed one-way latency; unresponsive servers
simply never answer, which the caller turns into a timeout.
"""

from __future__ import annotations

import collections.abc

from repro.sim import Engine, Event
from repro.sim.units import MS, US


class RpcTimeout(Exception):
    """The destination did not answer within the deadline."""


class EthernetNetwork:
    """Datacenter management network with per-machine RPC handlers."""

    def __init__(self, engine: Engine, one_way_latency_ns: float = 50 * US):
        self.engine = engine
        self.one_way_latency_ns = one_way_latency_ns
        self._handlers: dict[str, collections.abc.Callable[[object], object]] = {}
        self.rpcs_sent = 0
        self.rpcs_timed_out = 0

    def register(self, machine_id: str, handler: collections.abc.Callable[[object], object]) -> None:
        """Install the RPC handler for ``machine_id``.

        The handler receives the message and returns a response, or
        returns None / raises to model an unresponsive machine.
        """
        self._handlers[machine_id] = handler

    def unregister(self, machine_id: str) -> None:
        self._handlers.pop(machine_id, None)

    def rpc(
        self, dst: str, message: object, timeout_ns: float = 10 * MS
    ) -> Event:
        """Send ``message`` to ``dst``; event succeeds with the response.

        Fails with :class:`RpcTimeout` if the machine is unregistered,
        its handler raises, or it returns None (unresponsive).
        """
        self.rpcs_sent += 1
        done = self.engine.event(name=f"rpc:{dst}")

        def body():
            yield self.engine.timeout(self.one_way_latency_ns)
            handler = self._handlers.get(dst)
            response = None
            if handler is not None:
                try:
                    response = handler(message)
                except Exception:
                    response = None
            if response is None:
                # No answer: the caller's timeout expires.
                yield self.engine.timeout(timeout_ns)
                self.rpcs_timed_out += 1
                done.fail(RpcTimeout(dst))
                return
            yield self.engine.timeout(self.one_way_latency_ns)
            done.succeed(response)

        self.engine.process(body(), name=f"rpc.{dst}")
        return done
