"""The fabric: torus wiring, pods, servers and the datacenter (§2).

One pod is a half-rack of 48 half-width 1U servers whose FPGAs form a
6x8 2-D torus over SAS cable assemblies.  The deployment in the paper
is 34 pods in 17 racks — 1,632 machines.
"""

from repro.fabric.torus import TorusTopology, dor_routes
from repro.fabric.cables import CableAssembly, WiringPlan
from repro.fabric.ethernet import EthernetNetwork, RpcTimeout
from repro.fabric.server import CrashSeverity, Server, ServerState
from repro.fabric.pod import Pod
from repro.fabric.datacenter import Datacenter, ManufacturingReport, RingSlot

__all__ = [
    "CableAssembly",
    "CrashSeverity",
    "Datacenter",
    "EthernetNetwork",
    "ManufacturingReport",
    "Pod",
    "RingSlot",
    "RpcTimeout",
    "Server",
    "ServerState",
    "TorusTopology",
    "WiringPlan",
    "dor_routes",
]
