"""SAS cable assemblies and the wiring plan (§2.2).

The torus is cabled through a passive backplane with custom cable
assemblies — shells of eight and six cables — installed at rack
integration time.  An assembly failure takes down every link it
carries; a miswired assembly cross-connects nodes, which the Health
Monitor detects by comparing advertised neighbour machine IDs against
the expected topology (§3.5).
"""

from __future__ import annotations

import dataclasses

from repro.fabric.torus import NodeId, TorusTopology
from repro.shell.router import Port
from repro.shell.sl3 import Sl3Link


@dataclasses.dataclass
class CableAssembly:
    """A bundle of physical links sharing one cable shell."""

    name: str
    links: list[Sl3Link] = dataclasses.field(default_factory=list)
    failed: bool = False

    def fail(self) -> None:
        """The whole assembly goes dark (cut/unplugged shell)."""
        self.failed = True
        for link in self.links:
            link.break_cable()

    def repair(self) -> None:
        self.failed = False
        for link in self.links:
            link.repair_cable()


WireSpec = tuple[NodeId, Port, NodeId, Port]


class WiringPlan:
    """The intended physical wiring, with optional miswiring injected.

    Built from the topology's link list; ``swap`` exchanges the far
    ends of two wires *before* the pod constructs the physical links —
    modelling a cabling mistake at integration time.
    """

    def __init__(self, topology: TorusTopology):
        self.topology = topology
        self.wires: list[WireSpec] = topology.links()

    def swap(self, index_a: int, index_b: int) -> None:
        """Cross-connect wires ``index_a`` and ``index_b`` (miswiring)."""
        if index_a == index_b:
            raise ValueError("cannot swap a wire with itself")
        a = self.wires[index_a]
        b = self.wires[index_b]
        self.wires[index_a] = (a[0], a[1], b[2], b[3])
        self.wires[index_b] = (b[0], b[1], a[2], a[3])

    def expected_neighbor(self, node: NodeId, port: Port) -> NodeId:
        """What the topology says should be at the far end."""
        return self.topology.neighbor(node, port)

    def assemblies(self) -> dict[str, list[int]]:
        """Group wire indices into cable assemblies.

        Column (Y-dimension) wires form shells of ``height`` cables;
        row (X-dimension) wires form shells of ``width`` cables —
        the paper's shells of eight and six.
        """
        groups: dict[str, list[int]] = {}
        for index, (src, port, _dst, _dport) in enumerate(self.wires):
            if port is Port.SOUTH:
                key = f"col{src[0]}"
            else:
                key = f"row{src[1]}"
            groups.setdefault(key, []).append(index)
        return groups
