"""The datacenter deployment (§2.3).

The production test bed was 34 populated pods in 17 racks — 1,632
machines.  At deployment, 7 cards (0.4 %) had hardware failures and 1
of the 3,264 cable-assembly links (0.03 %) was defective; no further
hardware failures were observed over several months.

Building 34 live pods is possible but rarely necessary: experiments
run on one pod (or one ring) and scale analytically.  The datacenter
object therefore builds pods lazily and provides a Monte Carlo
manufacturing-test model for the §2.3 statistics.
"""

from __future__ import annotations

import dataclasses

from repro.fabric.ethernet import EthernetNetwork
from repro.fabric.pod import Pod
from repro.fabric.server import ServerState
from repro.fabric.torus import TorusTopology
from repro.hardware.constants import (
    CARD_FAILURE_RATE,
    LINK_FAILURE_RATE,
    PODS_DEPLOYED,
)
from repro.hardware.fpga import FpgaState
from repro.shell.shell import ShellConfig
from repro.sim import Engine


@dataclasses.dataclass(frozen=True, order=True)
class RingSlot:
    """One deployable ring: column ``ring_x`` of pod ``pod_id``.

    The scheduling unit of the cluster layer — the paper's engine "maps
    to rings of eight FPGAs on one dimension of the torus" (§4), and
    the datacenter scales by filling many such rings across pods.
    """

    pod_id: int
    ring_x: int


@dataclasses.dataclass(frozen=True)
class ManufacturingReport:
    """Outcome of deployment-time card/cable testing."""

    total_cards: int
    failed_cards: int
    total_links: int
    failed_links: int
    # Where the failed cards landed: (slot, node) pairs, so the control
    # plane can cordon the affected rings until the cards are swapped.
    failed_card_sites: tuple = ()

    @property
    def failed_card_slots(self) -> tuple:
        """The distinct ring slots containing a failed card."""
        return tuple(sorted({slot for slot, _node in self.failed_card_sites}))

    @property
    def card_failure_rate(self) -> float:
        return self.failed_cards / self.total_cards if self.total_cards else 0.0

    @property
    def link_failure_rate(self) -> float:
        return self.failed_links / self.total_links if self.total_links else 0.0


class Datacenter:
    """A deployment of pods sharing one management network."""

    def __init__(
        self,
        engine: Engine,
        num_pods: int = PODS_DEPLOYED,
        topology: TorusTopology | None = None,
        shell_config: ShellConfig | None = None,
    ):
        if num_pods < 1:
            raise ValueError(f"need at least one pod, got {num_pods}")
        self.engine = engine
        self.num_pods = num_pods
        self.topology = topology or TorusTopology()
        self.shell_config = shell_config or ShellConfig()
        self.ethernet = EthernetNetwork(engine)
        self._pods: dict[int, Pod] = {}

    # -- lazily built pods ---------------------------------------------------

    def pod(self, pod_id: int) -> Pod:
        """Build (once) and return pod ``pod_id``."""
        if not 0 <= pod_id < self.num_pods:
            raise ValueError(f"pod {pod_id} outside deployment of {self.num_pods}")
        if pod_id not in self._pods:
            self._pods[pod_id] = Pod(
                self.engine,
                pod_id=pod_id,
                topology=self.topology,
                shell_config=self.shell_config,
                ethernet=self.ethernet,
            )
        return self._pods[pod_id]

    @property
    def built_pods(self) -> list[Pod]:
        return [self._pods[i] for i in sorted(self._pods)]

    @property
    def total_servers(self) -> int:
        return self.num_pods * self.topology.node_count

    @property
    def total_links(self) -> int:
        # Every node owns two cables (EAST + SOUTH) in a 2-D torus.
        return self.num_pods * 2 * self.topology.node_count

    @property
    def racks(self) -> int:
        return (self.num_pods + 1) // 2  # two pods per rack

    # -- ring/pod enumeration (cluster scheduling) ---------------------------

    @property
    def rings_per_pod(self) -> int:
        return self.topology.width

    @property
    def total_rings(self) -> int:
        return self.num_pods * self.rings_per_pod

    def ring_slots(self) -> list[RingSlot]:
        """Every deployable ring, pod-major, without building any pod."""
        return [
            RingSlot(pod_id, ring_x)
            for pod_id in range(self.num_pods)
            for ring_x in range(self.rings_per_pod)
        ]

    def ring_servers(self, slot: RingSlot) -> list:
        """The servers of one ring slot (builds the pod on first use)."""
        return self.pod(slot.pod_id).ring(slot.ring_x)

    # -- inter-pod torus links (composite services) ---------------------------

    # One inter-pod cable run: a rack-to-rack span, several times the
    # 400 ns intra-pod SL3 hop (§2.2 "sub-microsecond" applies inside
    # the pod).  Composite request chains pay this per pod hop between
    # consecutive member rings — what gang placement minimises.
    INTER_POD_HOP_NS = 2_000.0

    def inter_pod_links(self) -> list[tuple[int, int]]:
        """The pod-to-pod cable runs, each exactly once.

        The intra-pod torus stops at the pod boundary (§2.2); traffic
        between pods rides the longer cable runs between neighbouring
        pods — two pods per rack, racks cabled in a loop — so the pods
        themselves form a 1-D wraparound ring.  Composite services that
        chain rings across pods pay one of these runs per consecutive
        pod hop, which is why gang placement prefers adjacent pods.
        """
        if self.num_pods < 2:
            return []
        if self.num_pods == 2:
            return [(0, 1)]  # a single run; no wraparound pair exists
        return [(pod_id, (pod_id + 1) % self.num_pods)
                for pod_id in range(self.num_pods)]

    def pod_distance(self, a: int, b: int) -> int:
        """Inter-pod hop count over the pod loop (0 for the same pod)."""
        for pod_id in (a, b):
            if not 0 <= pod_id < self.num_pods:
                raise ValueError(
                    f"pod {pod_id} outside deployment of {self.num_pods}"
                )
        gap = abs(a - b)
        return min(gap, self.num_pods - gap)

    # -- manual service (§3.5: "a service ticket is raised") -------------------

    def service_ring(self, slot: RingSlot) -> int:
        """One technician visit to ring ``slot``: swap every broken
        component back to factory state.

        Models the paper's repair half of the failure loop — after the
        Mapping Manager maps out bad hardware "a service ticket is
        raised to replace the faulty components" (§3.5).  Dead or
        crashed servers are replaced (which also replaces their FPGA
        card), failed/unlocked/over-temperature FPGAs get a fresh card,
        miscalibrated DIMMs are reseated, and dark cables touching the
        ring — individually broken links and whole failed assemblies —
        are re-plugged.  Returns the number of components serviced.
        Serviced hardware comes back *unconfigured*; the next deploy of
        the slot reimages it.
        """
        pod = self.pod(slot.pod_id)
        ring_nodes = set(self.topology.ring(slot.ring_x))
        serviced = 0
        for node in ring_nodes:
            server = pod.server_at(node)
            fpga = server.fpga
            if (
                server.state is not ServerState.UP
                or fpga.state is FpgaState.FAILED
                or not fpga.pll_locked
                or fpga.temp_shutdown
            ):
                server.replace()
                serviced += 1
            for controller in server.shell.dram:
                if controller.health.calibration_failed:
                    controller.recalibrate()
                    serviced += 1
        # Cables: pod.links is built in wiring order, so each link's
        # wire spec identifies the nodes it connects.
        for assembly in pod.assemblies.values():
            if assembly.failed and self._assembly_touches(pod, assembly, ring_nodes):
                assembly.repair()
                serviced += 1
        for (src, _sp, dst, _dp), link in zip(pod.wiring.wires, pod.links, strict=True):
            if link.broken and (src in ring_nodes or dst in ring_nodes):
                link.repair_cable()
                serviced += 1
        return serviced

    @staticmethod
    def _assembly_touches(pod: Pod, assembly, ring_nodes: set) -> bool:
        for (src, _sp, dst, _dp), link in zip(pod.wiring.wires, pod.links, strict=True):
            if link in assembly.links and (src in ring_nodes or dst in ring_nodes):
                return True
        return False

    # -- §2.3 manufacturing statistics ------------------------------------------

    def manufacturing_test(
        self,
        card_failure_rate: float = CARD_FAILURE_RATE,
        link_failure_rate: float = LINK_FAILURE_RATE,
        stream: str = "manufacturing",
    ) -> ManufacturingReport:
        """Monte Carlo over per-card and per-link defect probabilities.

        Deterministic given the engine seed; reproduces the scale of
        the paper's deployment findings (7 cards, 1 link).
        """
        rng = self.engine.rng.stream(stream)
        failed_sites = []
        for pod_id in range(self.num_pods):
            for node in self.topology.nodes():
                if rng.random() < card_failure_rate:
                    failed_sites.append((RingSlot(pod_id, node[0]), node))
        failed_links = sum(
            1 for _ in range(self.total_links) if rng.random() < link_failure_rate
        )
        return ManufacturingReport(
            total_cards=self.total_servers,
            failed_cards=len(failed_sites),
            total_links=self.total_links,
            failed_links=failed_links,
            failed_card_sites=tuple(failed_sites),
        )

    def __repr__(self) -> str:
        return (
            f"<Datacenter {self.num_pods} pods / {self.racks} racks / "
            f"{self.total_servers} servers ({len(self._pods)} built)>"
        )
