"""The host server (§2.1, §2.3).

Each server is a half-width 1U machine: Intel 2-socket EP motherboard
with 12-core Sandy Bridge CPUs, 64 GB DRAM, two SSDs, four HDDs, a
10 Gb NIC — and the Catapult daughtercard on a mezzanine connector.

The server model carries what the experiments need: a core pool (the
CPU contention that shapes the software baseline's tail latency), an
SSD for document/metastream lookup, reboot state machines for the
Health Monitor's escalation ladder, and the crash-on-unmasked-NMI
behaviour that motivates the driver protocol (§3.4).
"""

from __future__ import annotations

import collections.abc
import enum

from repro.hardware.fpga import Fpga, FpgaState
from repro.shell.pcie import HostDmaBuffers
from repro.shell.shell import Shell, ShellConfig
from repro.sim import Engine, Event, Resource
from repro.sim.units import SEC, US


class ServerState(enum.Enum):
    UP = "up"
    CRASHED = "crashed"  # hung/blue-screened; awaiting Health Monitor
    SOFT_REBOOTING = "soft_rebooting"
    HARD_REBOOTING = "hard_rebooting"
    DEAD = "dead"  # flagged for manual service


class CrashSeverity(enum.Enum):
    """How far up the §3.5 reboot ladder recovery requires going."""

    TRANSIENT = "transient"  # a soft reboot fixes it
    NEEDS_HARD_REBOOT = "needs_hard_reboot"  # only a power cycle fixes it
    PERMANENT = "permanent"  # manual service / replacement required


class Server:
    """One ranking-class server with its Catapult board."""

    CORE_COUNT = 12
    SOFT_REBOOT_NS = 60 * SEC
    HARD_REBOOT_NS = 300 * SEC
    SSD_LOOKUP_NS = 120 * US  # document + metastream fetch (§4)

    def __init__(
        self,
        engine: Engine,
        machine_id: str,
        node_id: tuple,
        shell_config: ShellConfig | None = None,
    ):
        self.engine = engine
        self.machine_id = machine_id
        self.node_id = node_id
        self.state = ServerState.UP
        self.fpga = Fpga(engine, f"{machine_id}.fpga")
        self.buffers = HostDmaBuffers(engine)
        self.shell = Shell(
            engine, self.fpga, node_id, machine_id, self.buffers, shell_config
        )
        self.cpu = Resource(engine, self.CORE_COUNT, name=f"{machine_id}.cpu")
        self.nmi_masked = False
        self.crash_count = 0
        self.crash_severity = CrashSeverity.TRANSIENT
        self.reboot_count = 0
        self.shell.pcie.on_nmi = self._on_pcie_nmi
        self._state_waiters: list[Event] = []

    # -- NMI handling (§3.4) ----------------------------------------------

    def _on_pcie_nmi(self) -> None:
        """A reconfiguring FPGA looks like a failed PCIe device."""
        if not self.nmi_masked and self.state is ServerState.UP:
            self.crash()

    def crash(self, severity: CrashSeverity = CrashSeverity.TRANSIENT) -> None:
        """The machine hangs; a higher-level service will notice (§3.5)."""
        self.state = ServerState.CRASHED
        self.crash_severity = severity
        self.crash_count += 1

    # -- reboot ladder (§3.5) ------------------------------------------------

    @property
    def is_responsive(self) -> bool:
        return self.state is ServerState.UP

    def soft_reboot(self) -> Event:
        """OS restart; the FPGA keeps its configuration."""
        return self._reboot(ServerState.SOFT_REBOOTING, self.SOFT_REBOOT_NS)

    def hard_reboot(self) -> Event:
        """Power cycle; the FPGA loses its configuration SRAM."""
        done = self._reboot(ServerState.HARD_REBOOTING, self.HARD_REBOOT_NS)
        if self.fpga.state is not FpgaState.FAILED:
            self.fpga.bitstream = None
            self.fpga._set_state(FpgaState.UNCONFIGURED)
        return done

    def _reboot(self, state: ServerState, duration_ns: float) -> Event:
        if self.state is ServerState.DEAD:
            raise RuntimeError(f"{self.machine_id} is dead; needs manual service")
        self.state = state
        self.reboot_count += 1
        hard = state is ServerState.HARD_REBOOTING
        done = self.engine.event(name=f"reboot:{self.machine_id}")

        def body():
            yield self.engine.timeout(duration_ns)
            if self.state is not state:
                done.succeed(self.state)  # marked dead meanwhile
                return
            if self.crash_severity is CrashSeverity.PERMANENT:
                self.state = ServerState.CRASHED  # reboot did not help
            elif self.crash_severity is CrashSeverity.NEEDS_HARD_REBOOT and not hard:
                self.state = ServerState.CRASHED  # soft was not enough
            else:
                self.state = ServerState.UP
                self.crash_severity = CrashSeverity.TRANSIENT
            done.succeed(self.state)

        self.engine.process(body(), name=f"reboot.{self.machine_id}")
        return done

    def mark_dead(self) -> None:
        """Flagged for manual service and possible replacement."""
        self.state = ServerState.DEAD

    def replace(self) -> None:
        """Manual service completed (new machine, same slot)."""
        self.state = ServerState.UP
        self.crash_severity = CrashSeverity.TRANSIENT
        self.fpga.repair()

    # -- CPU work ---------------------------------------------------------------

    def run_on_core(self, duration_ns: float) -> collections.abc.Generator:
        """Occupy one core for ``duration_ns`` (generator to yield from)."""
        grant = self.cpu.request()
        yield grant
        try:
            yield self.engine.timeout(duration_ns)
        finally:
            self.cpu.release()

    def ssd_lookup(self) -> Event:
        """Fetch a document + metastreams from the local SSD."""
        return self.engine.timeout(self.SSD_LOOKUP_NS)

    # -- health RPC (answered over Ethernet) ------------------------------------------

    def health_rpc_handler(self, message: object) -> object | None:
        """The §3.5 health-status call; None when unresponsive."""
        if not self.is_responsive:
            return None
        if message == "health":
            return self.shell.health_snapshot()
        if message == "ping":
            return "pong"
        return None

    def __repr__(self) -> str:
        return f"<Server {self.machine_id} {self.state.value}>"
