"""A pod: 48 servers and their 6x8 torus (§2.2, Figure 2).

Each pod has its own power distribution unit and top-of-rack switch.
The pod builds the servers, wires the torus through cable assemblies
(honouring any injected miswiring), and programs every router's static
dimension-order routing table.
"""

from __future__ import annotations


from repro.fabric.cables import CableAssembly, WiringPlan
from repro.fabric.ethernet import EthernetNetwork
from repro.fabric.server import Server
from repro.fabric.torus import ROUTING_POLICIES, NodeId, TorusTopology
from repro.shell.shell import ShellConfig
from repro.shell.sl3 import Sl3Link
from repro.sim import Engine


class Pod:
    """One half-rack of 48 FPGA-equipped servers."""

    def __init__(
        self,
        engine: Engine,
        pod_id: int = 0,
        topology: TorusTopology | None = None,
        shell_config: ShellConfig | None = None,
        ethernet: EthernetNetwork | None = None,
        wiring: WiringPlan | None = None,
        routing_policy: str = "xy",
    ):
        if routing_policy not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing policy {routing_policy!r}")
        self.engine = engine
        self.pod_id = pod_id
        self.topology = topology or TorusTopology()
        self.shell_config = shell_config or ShellConfig()
        self.ethernet = ethernet or EthernetNetwork(engine)
        self.wiring = wiring or WiringPlan(self.topology)
        self.routing_policy = routing_policy
        self.servers: dict[NodeId, Server] = {}
        self.links: list[Sl3Link] = []
        self.assemblies: dict[str, CableAssembly] = {}
        self._link_index: dict[frozenset, Sl3Link] = {}
        self._build()

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        for node in self.topology.nodes():
            machine_id = self.machine_id(node)
            server = Server(self.engine, machine_id, node, self.shell_config)
            self.servers[node] = server
            self.ethernet.register(machine_id, server.health_rpc_handler)
        self._wire_links()
        self._program_routes()

    def machine_id(self, node: NodeId) -> str:
        x, y = node
        return f"pod{self.pod_id}-s{y * self.topology.width + x:02d}"

    def _wire_links(self) -> None:
        assembly_groups = self.wiring.assemblies()
        index_to_assembly = {
            index: name for name, indices in assembly_groups.items() for index in indices
        }
        for index, (src, src_port, dst, dst_port) in enumerate(self.wiring.wires):
            a = self.servers[src].shell.create_endpoint(src_port)
            b = self.servers[dst].shell.create_endpoint(dst_port)
            link = Sl3Link(
                self.engine,
                a,
                b,
                config=self.shell_config.sl3,
                name=f"pod{self.pod_id}:{src}:{src_port.value}",
            )
            self.links.append(link)
            # First link wired between a pair wins (a 2-wide torus wires
            # two parallel links per east-west pair).
            self._link_index.setdefault(frozenset((src, dst)), link)
            name = index_to_assembly[index]
            assembly = self.assemblies.setdefault(
                name, CableAssembly(name=f"pod{self.pod_id}:{name}")
            )
            assembly.links.append(link)

    def _program_routes(self) -> None:
        compute = ROUTING_POLICIES[self.routing_policy]
        for node, server in self.servers.items():
            server.shell.router.set_routes(compute(self.topology, node))

    def reprogram_routes(self, routing_policy: str) -> None:
        """Software route update across the pod (the tables are static
        per configuration, but management software owns them, §3.2)."""
        if routing_policy not in ROUTING_POLICIES:
            raise ValueError(f"unknown routing policy {routing_policy!r}")
        self.routing_policy = routing_policy
        for server in self.servers.values():
            server.shell.router.routing_table.clear()
        self._program_routes()

    # -- access ----------------------------------------------------------------

    def server_at(self, node: NodeId) -> Server:
        return self.servers[node]

    def ring(self, x: int) -> list[Server]:
        """The 8 servers of column ``x`` — one ranking pipeline (§4)."""
        return [self.servers[node] for node in self.topology.ring(x)]

    def all_servers(self) -> list[Server]:
        return [self.servers[node] for node in self.topology.nodes()]

    def release_all_rx_halts(self) -> None:
        """Fabric bring-up complete: accept inter-FPGA traffic."""
        for server in self.servers.values():
            server.shell.release_rx_halt()

    def link_between(self, a: NodeId, b: NodeId) -> Sl3Link | None:
        """The physical link wired between two nodes, if any (O(1))."""
        if a not in self.servers or b not in self.servers:
            raise KeyError(f"{a if a not in self.servers else b} is not a pod node")
        return self._link_index.get(frozenset((a, b)))

    def __repr__(self) -> str:
        return f"<Pod {self.pod_id}: {len(self.servers)} servers, {len(self.links)} links>"
