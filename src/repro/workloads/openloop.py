"""Open-loop traffic: arrival processes, admission control, backpressure.

The closed-loop injector threads of §5 (send, sleep, repeat) measure
pipeline capacity, but "heavy traffic from millions of users" is
open-loop: arrivals occur at the offered rate whether or not earlier
requests have finished.  This module provides the arrival processes —
memoryless Poisson, on/off bursts, and a sinusoidal diurnal curve — and
an :class:`OpenLoopInjector` that feeds any sink exposing the
``submit(request, timeout_ns=...)`` generator protocol.  The preferred
sink is a :class:`~repro.cluster.endpoint.ServiceEndpoint` from
``manager.endpoint(name)`` — a stable virtual front door that resolves
the live service at each dispatch, so the workload survives
re-placement, upgrades, and even drain + re-apply without rewiring —
but a :class:`~repro.cluster.manager.ServiceHandle`, a raw
:class:`~repro.cluster.load_balancer.LoadBalancer`, or a single
:class:`~repro.cluster.deployment.Deployment` still work.

When a ``max_queue_depth`` is set, arrivals that would push the sink's
in-flight count past the limit are rejected at admission instead of
growing the backlog without bound — load shedding at the front door.

Shed-on-outage semantics: a request that finds *no* servable ring at
dispatch time (every replica momentarily unservable — e.g. mid
ring-rotation, or the window between a whole-ring failure and its
reconciliation) is likewise counted as ``rejected`` and dropped, the
§3.2 "time out and divert the request" behavior applied at the front
door.  The injector keeps offering arrivals through the outage, so
throughput recovers as soon as the control plane restores a replica.
"""

from __future__ import annotations

import collections.abc
import dataclasses
import math
import random
import typing

from repro.analysis import LatencyStats, ReservoirSample
from repro.cluster.load_balancer import NoHealthyDeployment
from repro.sim import Engine, Event
from repro.sim.units import SEC


class ArrivalProcess:
    """Base class: a (possibly time-varying) offered-load intensity."""

    def rate_at(self, now_ns: float) -> float:
        raise NotImplementedError

    def constant_rate_per_s(self) -> float | None:
        """The rate if it never varies, else None.

        A constant rate lets the injector skip the per-arrival
        ``rate_at`` call and precompute the exponential scale once.
        """
        return None

    def interarrival_ns(self, rng: random.Random, now_ns: float) -> float:
        """Exponential gap at the instantaneous rate (thinning-free)."""
        rate = self.rate_at(now_ns)
        if rate <= 0.0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        return rng.expovariate(1.0) * (SEC / rate)

    def next_regime_edge_ns(self, now_ns: float) -> float:
        """Next instant the rate changes *discontinuously* (``inf`` if
        never).  Fluid fast-forward windows never span an edge: the
        queue dynamics around a square-wave burst onset are exactly the
        transients the hybrid mode must simulate discretely."""
        return math.inf

    def fluid_horizon_ns(self, now_ns: float, rel_tol: float = 0.05) -> float:
        """Longest analytic window from ``now`` over which the rate
        stays within ``rel_tol`` of its current value (``inf`` for
        piecewise-constant processes).  A slope bound, not an edge:
        smoothly-varying processes (diurnal) are chopped into windows
        short enough that each is near-homogeneous."""
        return math.inf


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a constant offered rate."""

    def __init__(self, rate_per_s: float):
        if rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_s}")
        self.rate_per_s = rate_per_s

    def rate_at(self, now_ns: float) -> float:
        return self.rate_per_s

    def constant_rate_per_s(self) -> float:
        return self.rate_per_s


class BurstyArrivals(ArrivalProcess):
    """On/off square-wave bursts: ``burst`` rate for ``duty`` of each period."""

    def __init__(
        self,
        base_rate_per_s: float,
        burst_rate_per_s: float,
        period_s: float,
        duty: float = 0.5,
    ):
        if base_rate_per_s <= 0 or burst_rate_per_s <= 0:
            raise ValueError("rates must be positive")
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")
        if not 0.0 < duty < 1.0:
            raise ValueError(f"duty must be in (0,1), got {duty}")
        self.base_rate_per_s = base_rate_per_s
        self.burst_rate_per_s = burst_rate_per_s
        self.period_ns = period_s * SEC
        self.duty = duty

    def rate_at(self, now_ns: float) -> float:
        phase = (now_ns % self.period_ns) / self.period_ns
        return self.burst_rate_per_s if phase < self.duty else self.base_rate_per_s

    def next_regime_edge_ns(self, now_ns: float) -> float:
        period = self.period_ns
        cycle_start = now_ns - (now_ns % period)
        duty_edge = cycle_start + self.duty * period
        edge = duty_edge if duty_edge > now_ns else cycle_start + period
        if edge <= now_ns:  # float modulo guard at exact boundaries
            edge += period
        return edge


class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day curve: ``mean * (1 + amplitude * sin(2πt/period))``."""

    def __init__(
        self,
        mean_rate_per_s: float,
        amplitude: float = 0.5,
        period_s: float = 86_400.0,
    ):
        if mean_rate_per_s <= 0:
            raise ValueError(f"mean rate must be positive, got {mean_rate_per_s}")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0,1), got {amplitude}")
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")
        self.mean_rate_per_s = mean_rate_per_s
        self.amplitude = amplitude
        self.period_ns = period_s * SEC

    def rate_at(self, now_ns: float) -> float:
        phase = 2.0 * math.pi * (now_ns % self.period_ns) / self.period_ns
        return self.mean_rate_per_s * (1.0 + self.amplitude * math.sin(phase))

    def fluid_horizon_ns(self, now_ns: float, rel_tol: float = 0.05) -> float:
        if self.amplitude == 0.0:
            return math.inf
        # |d rate/dt| <= mean * amplitude * 2π/period, so the rate moves
        # by at most rel_tol * rate(now) over this window.
        max_slope = self.mean_rate_per_s * self.amplitude * 2.0 * math.pi / self.period_ns
        return rel_tol * self.rate_at(now_ns) / max_slope


@dataclasses.dataclass
class OpenLoopStats:
    """Counters and samples from one open-loop run.

    ``latencies_ns`` is a bounded :class:`ReservoirSample`, not a list:
    a 10M-arrival run keeps memory flat while count/mean/max stay exact
    and percentiles come from a uniform 100k-value sample (exact below
    that).  It still supports ``append``/``len``/iteration/indexing, so
    existing consumers read it like the list it replaced.
    """

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    timeouts: int = 0
    latencies_ns: ReservoirSample = dataclasses.field(
        default_factory=ReservoirSample
    )

    @property
    def admission_fraction(self) -> float:
        """Admitted share of offered arrivals; 0.0 for a zero-arrival
        window (an all-outage run must summarise, not raise)."""
        return self.admitted / self.offered if self.offered else 0.0

    @property
    def completion_fraction(self) -> float:
        """Completed share of offered arrivals (0.0 when none offered)."""
        return self.completed / self.offered if self.offered else 0.0

    def to_dict(self) -> dict:
        """Canonical JSON form of the admission counters (for the
        exported metrics series; samples stay in-process)."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "timeouts": self.timeouts,
        }

    def stats(self) -> LatencyStats:
        """Latency summary — empty-safe: a window during which every
        arrival was shed (total outage) reports the zero summary
        instead of raising on the empty sample set."""
        latencies = self.latencies_ns
        if isinstance(latencies, ReservoirSample):
            return latencies.summary()
        if not latencies:
            return LatencyStats.empty()
        return LatencyStats.from_samples(latencies)


class _SinkProtocol(typing.Protocol):  # pragma: no cover - typing aid
    outstanding: int

    def submit(self, request, timeout_ns: float) -> collections.abc.Generator: ...


class _RegimeEdges:
    """Adapter registering an arrival process's rate edges as a
    :class:`~repro.sim.fluid.TransientSource`."""

    __slots__ = ("arrivals",)

    def __init__(self, arrivals: ArrivalProcess):
        self.arrivals = arrivals

    def next_transient_ns(self, now_ns: float) -> float:
        return self.arrivals.next_regime_edge_ns(now_ns)


class OpenLoopInjector:
    """Drives a sink with open-loop arrivals plus admission control.

    Run completion is a *counter gate*: every in-flight handler holds
    one count, the arrival source holds one until it has offered the
    last arrival, and the done event fires when the count drains to
    zero.  This replaces the old per-run children list + ``AllOf``
    barrier — O(1) memory per run instead of one list slot plus one
    condition callback per admitted arrival.

    ``batch_window_ns`` (opt-in, default 0 = exact per-arrival timing)
    coalesces admission: interarrival gaps are accumulated until the
    window fills, then a *single* scheduler event drains the whole
    batch of arrivals at once.  Latency for batched arrivals is
    measured from the batch admission instant, so the window bounds
    the timing distortion; the RNG draw sequence is identical either
    way.
    """

    def __init__(
        self,
        engine: Engine,
        sink: "_SinkProtocol",
        arrivals: ArrivalProcess,
        pool: collections.abc.Sequence,
        max_queue_depth: int | None = None,
        timeout_ns: float = 5 * SEC,
        seed_tag: str = "openloop",
        batch_window_ns: float = 0.0,
        fluid: bool | None = None,
    ):
        if not pool:
            raise ValueError("request pool must be non-empty")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(f"queue depth must be positive, got {max_queue_depth}")
        if batch_window_ns < 0:
            raise ValueError(f"batch window must be >= 0, got {batch_window_ns}")
        self.engine = engine
        self.sink = sink
        self.arrivals = arrivals
        self.pool = list(pool)
        self.max_queue_depth = max_queue_depth
        self.timeout_ns = timeout_ns
        self.batch_window_ns = batch_window_ns
        self.stats = OpenLoopStats()
        self._rng = engine.rng.stream(f"openloop:{seed_tag}")
        self._pool_index = 0
        self._open = 0  # in-flight handlers + the arrival source itself
        self._done: Event | None = None
        # -- fluid fast-forward (opt-in; see repro.sim.fluid) --
        # ``fluid=None`` follows the engine: enabled iff the engine was
        # built with a coordinator.  Batched admission already trades
        # exact timing for throughput; the two modes do not compose.
        if fluid is None:
            fluid = engine.fluid is not None
        self._fluid = bool(fluid) and engine.fluid is not None and batch_window_ns == 0.0
        self._model = None  # persistent virtual queue across fluid windows
        if self._fluid:
            self._fluid_rng = engine.rng.stream(f"openloop:{seed_tag}:fluid")
            engine.fluid.register(_RegimeEdges(arrivals), guarded=False)

    def _next_request(self):
        request = self.pool[self._pool_index % len(self.pool)]
        self._pool_index += 1
        return request

    def run(self, count: int) -> Event:
        """Offer ``count`` arrivals; the event fires when all admitted
        requests have resolved (response, timeout, or rejection)."""
        if count < 1:
            raise ValueError(f"need at least one arrival, got {count}")
        if self._done is not None and not self._done.triggered:
            raise RuntimeError("injector already has a run in flight")
        done = self.engine.event(name="openloop:done")
        self._done = done
        self._open = 1  # the arrival source's own count
        body = self._arrivals_body_fluid if self._fluid else self._arrivals_body
        self.engine.process(body(count), name="openloop.src")
        return done

    def _close_one(self) -> None:
        self._open -= 1
        if self._open == 0:
            self._done.succeed(self.stats)

    def _arrivals_body(self, count: int) -> collections.abc.Generator:
        engine = self.engine
        timeout = engine.timeout
        spawn = engine.process
        stats = self.stats
        sink = self.sink
        max_depth = self.max_queue_depth
        batch_window = self.batch_window_ns
        rng = self._rng
        # Constant-rate fast path: precompute the exponential scale once
        # and draw straight from the hoisted ``expovariate`` instead of
        # calling ``rate_at`` per arrival.  Same draws either way.
        expovariate = rng.expovariate
        constant_rate = self.arrivals.constant_rate_per_s()
        scale = (SEC / constant_rate) if constant_rate else None
        interarrival = self.arrivals.interarrival_ns
        remaining = count
        # One recycled Timeout serves every arrival gap: rearm() resets
        # and re-schedules the dispatched object in place, so a million
        # sleeps cost zero allocations instead of a million (identical
        # schedule entries and RNG draws — same-seed runs are unchanged).
        gate = None
        while remaining:
            # Accumulate gaps until the batch window fills (one draw —
            # batch of one — when the window is 0, the exact pre-change
            # per-arrival behavior).
            if scale is not None:
                wait = expovariate(1.0) * scale
            else:
                wait = interarrival(rng, engine.now)
            batch = 1
            while wait < batch_window and batch < remaining:
                if scale is not None:
                    gap = expovariate(1.0) * scale
                else:
                    gap = interarrival(rng, engine.now + wait)
                wait += gap
                batch += 1
            if gate is None:
                gate = timeout(wait)
            else:
                gate.rearm(wait)
            yield gate
            remaining -= batch
            now = engine.now
            stats.offered += batch
            for _ in range(batch):
                if max_depth is not None and sink.outstanding >= max_depth:
                    stats.rejected += 1
                    continue
                stats.admitted += 1
                self._open += 1
                spawn(self._handle(self._next_request(), now))
        self._close_one()  # release the source's own count

    def _arrivals_body_fluid(self, count: int) -> collections.abc.Generator:
        """The hybrid arrival source: identical RNG draw sequence and
        arrival instants as :meth:`_arrivals_body`, but whenever the
        cluster is quiescent (no pending transient within the guard, no
        regime edge, real sink idle) and the sink publishes a
        :class:`~repro.sim.fluid.FluidProfile`, whole stretches of
        arrivals are credited analytically — counters, admission
        decisions, and latency samples computed from a virtual M/D/c
        queue — with a *single* engine event advancing the clock across
        the window.

        Exactness: with a deterministic-service profile the virtual
        queue reproduces the discrete sink's per-channel dynamics
        exactly (same arrival times, same round-robin assignment, same
        completion instants), so offered/admitted/rejected/completed
        totals match a same-seed discrete run; only the handful of
        requests straddling a window boundary can see their latency
        shift within the service-time scale.  Window stats are credited
        *before* the jump, so observers waking at the window edge
        (metrics ticks, watchdogs) read fully-settled counters.
        """
        engine = self.engine
        coordinator = engine.fluid
        timeout = engine.timeout
        spawn = engine.process
        stats = self.stats
        sink = self.sink
        arrivals = self.arrivals
        max_depth = self.max_queue_depth
        request_timeout = self.timeout_ns
        rng = self._rng
        expovariate = rng.expovariate
        constant_rate = arrivals.constant_rate_per_s()
        scale = (SEC / constant_rate) if constant_rate else None
        interarrival = arrivals.interarrival_ns
        profile_fn = getattr(sink, "fluid_profile", None)
        note_fluid = getattr(sink, "note_fluid", None)
        latencies = stats.latencies_ns
        min_window = coordinator.min_window_ns
        from repro.sim.fluid import FluidModel, FluidWindow

        remaining = count
        pending_at: float | None = None  # drawn arrival not yet served
        tail_ns = 0.0  # latest analytically credited completion
        gate = None  # recycled sleep Timeout (see _arrivals_body)
        while remaining:
            now = engine.now
            if pending_at is None:
                if scale is not None:
                    arrive_at = now + expovariate(1.0) * scale
                else:
                    arrive_at = now + interarrival(rng, now)
            else:
                arrive_at = pending_at
                pending_at = None
            # -- can an analytic window open at `now`? --------------------
            profile = None
            if profile_fn is not None and sink.outstanding == 0:
                window_end = coordinator.window_end(now)
                edge = arrivals.next_regime_edge_ns(now)
                if edge < window_end:
                    window_end = edge
                horizon = now + arrivals.fluid_horizon_ns(now)
                if horizon < window_end:
                    window_end = horizon
                if window_end - now >= min_window and arrive_at <= window_end:
                    profile = profile_fn()
            if profile is not None and profile.exact:
                model = self._model
                if model is not None:
                    model.drain(now)
                if model is None or model.outstanding == 0:
                    # No live virtual tail: resync channel state from the
                    # sink (cursor moves under discrete interludes).
                    model = self._model = FluidModel(profile)
                elif (
                    model.servers != profile.servers
                    or model.service_ns != profile.service_ns
                ):
                    profile = None  # sink reshaped under a live tail
            if profile is None:
                # -- discrete arrival: the legacy per-request sequence ----
                if gate is None:
                    gate = timeout(arrive_at - now)
                else:
                    gate.rearm(arrive_at - now)
                yield gate
                remaining -= 1
                now = engine.now
                stats.offered += 1
                if max_depth is not None and sink.outstanding >= max_depth:
                    stats.rejected += 1
                else:
                    stats.admitted += 1
                    self._open += 1
                    spawn(self._handle(self._next_request(), now))
                continue
            # -- analytic window: credit arrivals in [now, window_end] ----
            offered = admitted = rejected = completed = timeouts = 0
            latency_sum = 0.0
            exact = profile.service_ns is not None
            model = self._model if exact else None
            sampler = profile.sampler
            fluid_rng = self._fluid_rng
            t = arrive_at
            while True:
                offered += 1
                remaining -= 1
                if exact:
                    model.drain(t)
                    if max_depth is not None and model.outstanding >= max_depth:
                        rejected += 1
                    else:
                        admitted += 1
                        sojourn = model.offer(t) - t
                        if sojourn > request_timeout:
                            timeouts += 1
                        else:
                            completed += 1
                            latency_sum += sojourn
                            latencies.append(sojourn)
                        if t + sojourn > tail_ns:
                            tail_ns = t + sojourn
                else:
                    # Flow/sampler mode (live cluster sinks): no virtual
                    # queue — admission is assumed (steady state implies
                    # the depth limit is slack) and sojourns are drawn
                    # from the sink's empirical distribution on a
                    # dedicated seeded stream.
                    admitted += 1
                    sojourn = sampler(fluid_rng)
                    if sojourn > request_timeout:
                        timeouts += 1
                    else:
                        completed += 1
                        latency_sum += sojourn
                        latencies.append(sojourn)
                    if t + sojourn > tail_ns:
                        tail_ns = t + sojourn
                if not remaining:
                    break
                if scale is not None:
                    gap = expovariate(1.0) * scale
                else:
                    gap = interarrival(rng, t)
                if t + gap > window_end:
                    pending_at = t + gap
                    break
                t += gap
            self._pool_index += admitted
            stats.offered += offered
            stats.admitted += admitted
            stats.rejected += rejected
            stats.completed += completed
            stats.timeouts += timeouts
            coordinator.credit_window(now, window_end, offered)
            if note_fluid is not None:
                note_fluid(
                    FluidWindow(
                        start_ns=now,
                        end_ns=window_end,
                        offered=offered,
                        admitted=admitted,
                        rejected=rejected,
                        completed=completed,
                        timeouts=timeouts,
                        latency_sum_ns=latency_sum,
                    )
                )
            if remaining:
                # Jump to the window edge; the held arrival beyond it is
                # served by the next loop pass (fluid again if a fresh
                # window opens, discretely otherwise).
                target = window_end
            else:
                # Last arrival credited analytically: advance the clock
                # past the final virtual completion so `done` fires at
                # (or after) the same instant as a discrete run.
                target = tail_ns if tail_ns > t else t
            if gate is None:
                gate = timeout(target - now)
            else:
                gate.rearm(target - now)
            yield gate
        self._close_one()  # release the source's own count

    def _handle(self, request, arrived_ns: float) -> collections.abc.Generator:
        try:
            response = yield from self.sink.submit(
                request, timeout_ns=self.timeout_ns
            )
        except NoHealthyDeployment:
            # Every ring is momentarily unservable (mid ring-rotation or
            # mid-reconcile).  Shed the request at the front door and
            # keep the run alive — the outage window is exactly when the
            # control plane is busy restoring capacity.  The arrival was
            # provisionally admitted before dispatch; reclassify it so
            # ``offered == admitted + rejected`` holds and the admission
            # fraction stays honest through outages.
            self.stats.admitted -= 1
            self.stats.rejected += 1
            return
        else:
            if response is None:
                self.stats.timeouts += 1
            else:
                self.stats.completed += 1
                self.stats.latencies_ns.append(self.engine.now - arrived_ns)
        finally:
            self._close_one()
