"""Synthetic workloads standing in for production Bing traces.

The paper evaluates on documents sampled from real-world traces; those
are proprietary, so this package generates synthetic traces calibrated
to every statistic the paper reports: compressed sizes averaging
6.5 KB with a 53 KB 99th percentile and ~0.14 % above the 64 KB
truncation threshold (Figure 4), Zipfian query-term popularity, and a
multi-model query mix for Queue Manager experiments.

:mod:`repro.workloads.openloop` adds the open-loop traffic layer —
Poisson, bursty, and diurnal arrival processes with admission control —
that drives the cluster front end; the closed-loop injector threads of
§5 live on :class:`repro.cluster.Deployment`.
"""

from repro.workloads.openloop import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    OpenLoopInjector,
    OpenLoopStats,
    PoissonArrivals,
)
from repro.workloads.sizes import DocumentSizeDistribution
from repro.workloads.traces import ScoringRequest, TraceGenerator

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "DiurnalArrivals",
    "DocumentSizeDistribution",
    "OpenLoopInjector",
    "OpenLoopStats",
    "PoissonArrivals",
    "ScoringRequest",
    "TraceGenerator",
]
