"""Synthetic workloads standing in for production Bing traces.

The paper evaluates on documents sampled from real-world traces; those
are proprietary, so this package generates synthetic traces calibrated
to every statistic the paper reports: compressed sizes averaging
6.5 KB with a 53 KB 99th percentile and ~0.14 % above the 64 KB
truncation threshold (Figure 4), Zipfian query-term popularity, and a
multi-model query mix for Queue Manager experiments.
"""

from repro.workloads.sizes import DocumentSizeDistribution
from repro.workloads.traces import ScoringRequest, TraceGenerator

__all__ = ["DocumentSizeDistribution", "ScoringRequest", "TraceGenerator"]
