"""Synthetic scoring-request traces.

A :class:`TraceGenerator` produces a deterministic stream of
:class:`ScoringRequest` objects — a query plus a compressed document
whose encoded size follows the Figure 4 distribution, with Zipfian term
popularity and a configurable multi-model mix (for Queue Manager
experiments, §4.3).
"""

from __future__ import annotations

import bisect
import collections.abc
import dataclasses
import random

from repro.ranking.documents import (
    CompressedDocument,
    DocumentCodec,
    HitTuple,
    MAX_STREAMS,
    Query,
    StreamHits,
)
from repro.sim.rng import RngStreams
from repro.workloads.sizes import DocumentSizeDistribution

# Average encoded bytes per hit tuple, used to size documents; tuples
# plus stream/SW-feature overhead average out near this figure.
_APPROX_BYTES_PER_TUPLE = 3.2
_HEADER_OVERHEAD = 22


@dataclasses.dataclass
class ScoringRequest:
    """One {document, query} pair ready for either scoring path."""

    query: Query
    document: CompressedDocument
    encoded: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.encoded)


class ZipfSampler:
    """Zipf(s=1.1) over a finite vocabulary, inverse-CDF sampled."""

    def __init__(self, vocabulary: int, rng: random.Random, s: float = 1.1):
        if vocabulary < 1:
            raise ValueError("vocabulary must be positive")
        self.rng = rng
        weights = [1.0 / (rank**s) for rank in range(1, vocabulary + 1)]
        total = sum(weights)
        self.cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self.cdf.append(acc)

    def sample(self) -> int:
        u = self.rng.random()
        # Clamp: float rounding can leave the final CDF entry below 1.0.
        return min(bisect.bisect_left(self.cdf, u), len(self.cdf) - 1)


class TraceGenerator:
    """Deterministic generator of scoring requests."""

    def __init__(
        self,
        seed: int = 0,
        vocabulary: int = 5_000,
        model_mix: dict[int, float] | None = None,
    ):
        if model_mix is None:
            model_mix = {0: 1.0}
        if not model_mix:
            raise ValueError("model_mix must be non-empty")
        if any(weight <= 0 for weight in model_mix.values()):
            raise ValueError(f"model_mix weights must be positive, got {model_mix}")
        self.rng = RngStreams(seed).stream("trace-generator")
        self.sizes = DocumentSizeDistribution(self.rng)
        self.terms = ZipfSampler(vocabulary, self.rng)
        self.codec = DocumentCodec()
        self.model_mix = dict(model_mix)
        self._model_ids = list(self.model_mix)
        self._model_weights = list(self.model_mix.values())
        self._next_query_id = 0
        self._next_doc_id = 0

    # -- queries -----------------------------------------------------------

    def query(self) -> Query:
        """A query with 1..8 distinct Zipfian terms and a sampled model."""
        count = min(1 + int(self.rng.expovariate(0.45)), 8)
        terms = []
        while len(terms) < count:
            term = self.terms.sample()
            if term not in terms:
                terms.append(term)
        model_id = self.rng.choices(self._model_ids, self._model_weights)[0]
        self._next_query_id += 1
        return Query(
            query_id=self._next_query_id, terms=tuple(terms), model_id=model_id
        )

    # -- documents -----------------------------------------------------------

    def document_for(
        self, query: Query, target_size: int | None = None
    ) -> CompressedDocument:
        """A document whose encoding is near ``target_size`` bytes."""
        target = target_size if target_size is not None else self.sizes.sample()
        sw_count = self.rng.randrange(4, 24)
        software_features = [
            (fid, round(self.rng.random() * 10.0, 3)) for fid in range(sw_count)
        ]
        budget = max(target - _HEADER_OVERHEAD - 6 * sw_count, 8)
        total_tuples = max(1, int(budget / _APPROX_BYTES_PER_TUPLE))
        num_streams = self.rng.randint(3, MAX_STREAMS)
        streams = []
        remaining = total_tuples
        doc_length = max(50, total_tuples * 3)
        for stream_id in range(num_streams):
            share = remaining if stream_id == num_streams - 1 else max(
                1, int(remaining / (num_streams - stream_id) * self.rng.uniform(0.5, 1.5))
            )
            share = min(share, remaining)
            tuples = self._make_tuples(share, len(query.terms))
            streams.append(
                StreamHits(stream_id=stream_id, length=doc_length, tuples=tuples)
            )
            remaining -= share
            if remaining <= 0:
                break
        self._next_doc_id += 1
        return CompressedDocument(
            doc_id=self._next_doc_id,
            doc_length=doc_length,
            num_query_terms=len(query.terms),
            model_id=query.model_id,
            software_features=software_features,
            streams=streams,
        )

    def _make_tuples(self, count: int, num_terms: int) -> list:
        tuples = []
        for _ in range(count):
            delta = int(self.rng.expovariate(1 / 40.0)) + 1
            term_index = self.rng.randrange(num_terms)
            roll = self.rng.random()
            if roll < 0.70:
                tuples.append(HitTuple(min(delta, 1023), min(term_index, 15), 0))
            elif roll < 0.95:
                tuples.append(
                    HitTuple(min(delta * 16, 65_535), term_index, self.rng.randrange(256))
                )
            else:
                tuples.append(
                    HitTuple(
                        min(delta * 256, (1 << 24) - 1),
                        term_index,
                        self.rng.randrange(1 << 16),
                    )
                )
        return tuples

    # -- requests -------------------------------------------------------------

    def request(self, target_size: int | None = None) -> ScoringRequest:
        query = self.query()
        document = self.document_for(query, target_size)
        encoded = self.codec.encode(document)
        return ScoringRequest(query=query, document=document, encoded=encoded)

    def requests(self, count: int) -> collections.abc.Iterator[ScoringRequest]:
        for _ in range(count):
            yield self.request()
