"""Compressed-document size distribution (Figure 4).

Figure 4's CDF over a 210 Kdoc production sample shows documents
averaging 6.5 KB compressed, a 99th percentile of 53 KB, and only
~300 of 210,000 (0.14 %) above the 64 KB truncation threshold.

A log-normal fits this shape well.  Solving
``mean = exp(mu + sigma^2/2)`` and ``p99 = exp(mu + 2.3263*sigma)``
for the paper's anchors gives ``mu = 8.053, sigma = 1.2246``; we trim
the extreme tail (cap at 128 KB) so the >64 KB mass lands near the
paper's 0.14 % rather than the unconstrained log-normal's ~0.6 %.
"""

from __future__ import annotations

import math
import random


class DocumentSizeDistribution:
    """Sampler for compressed {document,query} request sizes in bytes."""

    MU = 8.053
    SIGMA = 1.2246
    CAP_BYTES = 128 * 1024
    # Thin the >64 KB tail: keep 1 in TAIL_THINNING of oversized draws,
    # resampling the rest, to land near the paper's 0.14 %.
    TAIL_THRESHOLD = 64 * 1024
    TAIL_THINNING = 5
    MIN_BYTES = 256  # header + a handful of tuples

    def __init__(self, rng: random.Random):
        self.rng = rng

    def sample(self) -> int:
        """One compressed request size in bytes."""
        while True:
            size = int(self.rng.lognormvariate(self.MU, self.SIGMA))
            if size > self.TAIL_THRESHOLD:
                if self.rng.randrange(self.TAIL_THINNING) != 0:
                    continue  # resample: tail thinned
                size = min(size, self.CAP_BYTES)
            return max(size, self.MIN_BYTES)

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]

    @classmethod
    def theoretical_mean(cls) -> float:
        """Mean of the untrimmed log-normal (the Figure 4 anchor)."""
        return math.exp(cls.MU + cls.SIGMA**2 / 2)

    @classmethod
    def theoretical_p99(cls) -> float:
        return math.exp(cls.MU + 2.3263 * cls.SIGMA)
