"""Fluid fast-forward: hybrid analytic/discrete traffic advance.

Discrete-event simulation pays a per-request price: the reference
million-arrival scenario schedules ~9 engine events per arrival, so a
5-second simulated run costs ~40 wall seconds even after the timer-wheel
overhaul.  Most of that work is *steady state* — the cluster is neither
failing, repairing, upgrading, nor crossing an arrival-regime edge, and
every request resolves the same way the last ten thousand did.  The
standard hybrid fluid-flow technique skips it: while the system is
quiescent the traffic source advances simulated time in one analytic
step, updating queue levels, completion counters, and latency
reservoirs directly; the engine only discretizes around *transients*.

Three pieces cooperate:

:class:`FluidCoordinator`
    Owned by the engine (``Engine(fluid=True)``).  Transient sources —
    repair queues, failure injectors, watchdog periods, metrics
    sampling ticks, arrival-regime edges — register here, and anything
    that mutates cluster state calls :meth:`FluidCoordinator
    .note_transient`.  :meth:`FluidCoordinator.window_end` answers the
    one question a fluid traffic source asks: *how far may simulated
    time advance analytically from ``now`` before something discrete
    must be simulated exactly?*  Guarded (state-changing) sources end
    the window ``guard_ns`` early, so the discrete engine is warm —
    in-flight requests rebuilt, queues repopulated — before the
    transient fires; after any noted transient, fluid stays disengaged
    for ``warmup_ns`` so dips and recoveries are simulated exactly.

:class:`FluidModel`
    The analytic queue: ``c`` round-robin FIFO channels with a
    deterministic per-request service time (M/D/c-style).  ``offer``
    returns the exact completion instant of one arrival in O(1) with no
    engine events; per-channel next-free times carry queue build-up
    across arrivals, so bursts that temporarily exceed capacity are
    still modeled exactly.  For sinks without a deterministic service
    time (a live cluster service), :class:`FluidProfile` carries a
    sojourn *sampler* instead and flow balance credits completions at
    the offered rate.

:class:`TransientSource` implementations
    :class:`ScheduledTransients` (a known schedule: planned kills,
    upgrade instants) and :class:`PeriodicTransient` (watchdog sweeps,
    metrics sampling ticks — observers that bound the step so every
    snapshot reflects fully-credited counters, never future ones).

Everything here is opt-in: with ``Engine(fluid=False)`` (the default)
no coordinator exists and every caller takes its unchanged discrete
path, bit-identical to previous releases.
"""

from __future__ import annotations

import bisect
import collections.abc
import dataclasses
import math
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

# Defaults, overridable per coordinator.  The guard must exceed the
# sink's worst-case sojourn so the discrete warm-up rebuilds in-flight
# state before a scheduled transient fires; the warm-up keeps fluid
# disengaged after a transient long enough for dips to resolve
# discretely; the minimum window keeps fluid from thrashing on windows
# too short to amortize the step.
DEFAULT_GUARD_NS = 5_000_000.0  # 5 ms
DEFAULT_WARMUP_NS = 5_000_000.0  # 5 ms
DEFAULT_MIN_WINDOW_NS = 1_000_000.0  # 1 ms


class TransientSource(typing.Protocol):  # pragma: no cover - typing aid
    """Anything that knows when it will next need exact simulation."""

    def next_transient_ns(self, now_ns: float) -> float:
        """Time of this source's next transient strictly after ``now``
        (``math.inf`` when none is pending)."""
        ...


class ScheduledTransients:
    """A known schedule of future discrete moments.

    Benchmark drivers that mutate the cluster from *outside* the engine
    (kill a ring between ``run(until=...)`` chunks, trigger a midweek
    upgrade) register their planned instants here so no fluid window
    overshoots a mutation the engine cannot see coming.
    """

    def __init__(self, times_ns: collections.abc.Iterable[float] = ()):
        self.times: list[float] = sorted(times_ns)

    def add(self, when_ns: float) -> None:
        bisect.insort(self.times, when_ns)

    def next_transient_ns(self, now_ns: float) -> float:
        index = bisect.bisect_right(self.times, now_ns)
        return self.times[index] if index < len(self.times) else math.inf

    def __repr__(self) -> str:
        return f"<ScheduledTransients {len(self.times)} planned>"


class PeriodicTransient:
    """Fixed-period ticks anchored at ``anchor_ns`` (first tick at
    ``anchor_ns + period_ns``): watchdog sweeps, metrics sampling.

    These are *observers*: they end a fluid window exactly at the tick
    (no guard lead) so the counters they read are fully credited and
    never include post-tick traffic.
    """

    def __init__(self, period_ns: float, anchor_ns: float = 0.0):
        if period_ns <= 0:
            raise ValueError(f"period must be positive, got {period_ns}")
        self.period_ns = period_ns
        self.anchor_ns = anchor_ns

    def next_transient_ns(self, now_ns: float) -> float:
        elapsed = now_ns - self.anchor_ns
        ticks = math.floor(elapsed / self.period_ns) + 1
        when = self.anchor_ns + ticks * self.period_ns
        if when <= now_ns:  # float floor-division guard
            when += self.period_ns
        return when

    def __repr__(self) -> str:
        return f"<PeriodicTransient every {self.period_ns:.0f}ns>"


@dataclasses.dataclass(frozen=True)
class FluidProfile:
    """A sink's analytic description, queried per fluid window.

    ``servers`` is the number of parallel service channels (c in
    M/D/c).  With ``service_ns`` set, the sink's service time is
    deterministic and :class:`FluidModel` computes *exact* per-arrival
    completion instants.  Without it, ``sampler(rng)`` draws sojourn
    times from the sink's analytic (or empirical) distribution and flow
    balance credits completions at the offered rate — approximate but
    deterministic given the seeded stream.
    """

    servers: int
    service_ns: float | None = None
    sampler: collections.abc.Callable[..., float] | None = None
    # Round-robin position of the sink's dispatch cursor at the moment
    # the profile was taken, so the virtual model assigns arrivals to
    # the same channels the discrete sink would have.
    cursor: int = 0

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError(f"need at least one server, got {self.servers}")
        if self.service_ns is None and self.sampler is None:
            raise ValueError("profile needs service_ns or a sojourn sampler")
        if self.service_ns is not None and self.service_ns <= 0:
            raise ValueError(f"service time must be positive, got {self.service_ns}")

    @property
    def exact(self) -> bool:
        return self.service_ns is not None


@dataclasses.dataclass(frozen=True)
class FluidWindow:
    """One analytic interval, reported to the sink for reconciliation.

    Latencies are carried as a sum plus a bounded stride sample — a
    window can cover millions of arrivals, and the sink's reservoir is
    reconciled analytically (see ``ReservoirSample.merge_analytic``)
    rather than replayed value by value.
    """

    start_ns: float
    end_ns: float
    offered: int
    admitted: int
    rejected: int
    completed: int
    timeouts: int = 0
    latency_sum_ns: float = 0.0
    latency_sample_ns: tuple[float, ...] = ()

    @property
    def mean_latency_ns(self) -> float:
        return self.latency_sum_ns / self.completed if self.completed else 0.0


class FluidModel:
    """Virtual M/D/c queue: exact completion instants without events.

    ``c`` FIFO channels served round-robin with deterministic service
    time ``D``.  ``offer(t)`` assigns the arrival to the next channel
    and returns its completion instant ``max(t, channel_free) + D`` —
    queue build-up is carried in the per-channel next-free times, so a
    window whose offered rate transiently exceeds ``c/D`` still
    resolves every arrival exactly.  Completions are credited as the
    clock passes them via :meth:`drain`.
    """

    __slots__ = ("servers", "service_ns", "_next_free", "_cursor", "_in_flight")

    def __init__(self, profile: FluidProfile, cursor: int | None = None):
        if not profile.exact:
            raise ValueError("FluidModel needs a deterministic service time")
        self.servers = profile.servers
        self.service_ns = profile.service_ns
        self._next_free = [0.0] * profile.servers
        self._cursor = (profile.cursor if cursor is None else cursor) % profile.servers
        # Completion instants of virtual in-flight arrivals, ascending.
        # Round-robin over deterministic channels keeps this list
        # *almost* sorted; insort keeps it exact without heap overhead.
        self._in_flight: list[float] = []

    @property
    def outstanding(self) -> int:
        return len(self._in_flight)

    @property
    def last_completion_ns(self) -> float:
        """Latest pending completion (the window flush target)."""
        return self._in_flight[-1] if self._in_flight else 0.0

    def offer(self, arrival_ns: float) -> float:
        """Accept one arrival; returns its exact completion instant."""
        index = self._cursor
        self._cursor = (index + 1) % self.servers
        free = self._next_free[index]
        start = free if free > arrival_ns else arrival_ns
        completion = start + self.service_ns
        self._next_free[index] = completion
        in_flight = self._in_flight
        if not in_flight or completion >= in_flight[-1]:
            in_flight.append(completion)
        else:
            bisect.insort(in_flight, completion)
        return completion

    def drain(self, now_ns: float) -> int:
        """Retire completions at or before ``now``; returns the count."""
        in_flight = self._in_flight
        index = bisect.bisect_right(in_flight, now_ns)
        if index:
            del in_flight[:index]
        return index

    def __repr__(self) -> str:
        return (
            f"<FluidModel c={self.servers} D={self.service_ns:.0f}ns "
            f"in_flight={len(self._in_flight)}>"
        )


class FluidCoordinator:
    """The engine-side clearing house for fluid fast-forward.

    Created by ``Engine(fluid=True)`` and reached as ``engine.fluid``.
    Traffic sources ask :meth:`window_end` how far they may advance
    analytically; transient sources :meth:`register`; state mutations
    :meth:`note_transient`.  Purely advisory — a coordinator with no
    registered traffic source changes nothing.
    """

    def __init__(
        self,
        engine: "Engine",
        guard_ns: float = DEFAULT_GUARD_NS,
        warmup_ns: float = DEFAULT_WARMUP_NS,
        min_window_ns: float = DEFAULT_MIN_WINDOW_NS,
    ):
        if guard_ns < 0 or warmup_ns < 0 or min_window_ns < 0:
            raise ValueError("guard/warmup/min-window must be >= 0")
        self.engine = engine
        self.enabled = True
        self.guard_ns = guard_ns
        self.warmup_ns = warmup_ns
        self.min_window_ns = min_window_ns
        # (source, guarded) pairs: guarded sources get the guard lead so
        # discrete simulation is warm before their transient fires;
        # observers (samplers, watchdog ticks) bound the window exactly.
        self._sources: list[tuple[object, bool]] = []
        self._discrete_until = -math.inf
        # -- diagnostics -----------------------------------------------
        self.windows = 0
        self.fluid_time_ns = 0.0
        self.covered_arrivals = 0
        self.transients_noted = 0

    # -- registration ----------------------------------------------------

    def register(self, source: TransientSource, guarded: bool = True) -> None:
        """Add a transient source.  ``guarded=True`` (state-changing
        sources) ends windows ``guard_ns`` early; ``guarded=False``
        (pure observers) bounds them exactly at the transient."""
        self._sources.append((source, guarded))

    def unregister(self, source: TransientSource) -> None:
        self._sources = [(s, g) for s, g in self._sources if s is not source]

    # -- transitions -----------------------------------------------------

    def note_transient(self, label: str = "") -> None:
        """Record that cluster state just changed: fluid stays
        disengaged until ``now + warmup_ns`` so the dip or recovery is
        simulated exactly."""
        self.transients_noted += 1
        until = self.engine.now + self.warmup_ns
        if until > self._discrete_until:
            self._discrete_until = until

    @property
    def discrete_until_ns(self) -> float:
        return self._discrete_until

    # -- the one question ------------------------------------------------

    def window_end(self, now_ns: float) -> float:
        """Furthest instant fluid may advance to from ``now``.

        Returns ``now`` (no window) while disabled or inside a
        post-transient warm-up.  Otherwise the minimum over every
        registered source's next transient (guarded sources minus the
        guard lead) and the engine's current ``run(until=...)``
        deadline — external drivers may mutate state the moment a
        bounded run returns, so no window ever overshoots one.
        """
        if not self.enabled or now_ns < self._discrete_until:
            return now_ns
        end = self.engine.run_deadline_ns
        for source, guarded in self._sources:
            when = source.next_transient_ns(now_ns)
            if guarded:
                when -= self.guard_ns
            if when < end:
                end = when
        return end if end > now_ns else now_ns

    def usable_window(self, now_ns: float) -> float:
        """``window_end`` if the window clears the minimum width, else
        ``now`` — the caller-facing gate."""
        end = self.window_end(now_ns)
        if end - now_ns < self.min_window_ns:
            return now_ns
        return end

    # -- accounting ------------------------------------------------------

    def credit_window(self, start_ns: float, end_ns: float, arrivals: int) -> None:
        """Record one completed analytic interval (diagnostics)."""
        self.windows += 1
        self.fluid_time_ns += end_ns - start_ns
        self.covered_arrivals += arrivals

    def __repr__(self) -> str:
        return (
            f"<FluidCoordinator windows={self.windows} "
            f"fluid={self.fluid_time_ns / 1e9:.3f}s "
            f"covered={self.covered_arrivals}>"
        )
