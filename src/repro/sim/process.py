"""Coroutine processes.

A process wraps a generator that yields :class:`~repro.sim.events.Event`
objects.  The process is itself an event, so processes can wait for each
other by yielding them (a *join*).
"""

from __future__ import annotations

import collections.abc
import typing

from repro.sim.events import Event, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class ProcessKilled(Exception):
    """Raised inside a process that has been forcibly killed."""


class Process(Event):
    """A running simulation coroutine.

    The generator may ``return`` a value, which becomes the process's
    event value, observable by any process that yields (joins) it.
    """

    __slots__ = ("generator", "daemon", "expendable", "_waiting_on")

    def __init__(
        self,
        engine: "Engine",
        generator: collections.abc.Generator,
        name: str = "",
        daemon: bool = False,
        expendable: bool = False,
    ):
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(engine, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self.daemon = daemon
        # May legitimately never finish (see Engine.process); consulted
        # only by the sanitizer's orphan detector.
        self.expendable = expendable
        self._waiting_on: Event | None = None
        # Kick-start on the next engine dispatch at the current time.
        start = Event(engine, name="start")
        start.callbacks = [self._resume]
        start.succeed()
        if daemon:
            engine.mark_daemon(start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    # -- stepping --------------------------------------------------------

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return  # process already finished; stale wakeup
        if self._waiting_on is not None and event is not self._waiting_on:
            return  # superseded by an interrupt; ignore the old event
        self._waiting_on = None
        try:
            exception = event._exception
            if exception is None:
                target = self.generator.send(event._value)
            else:
                target = self.generator.throw(exception)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if not self.callbacks and not isinstance(exc, ProcessKilled):
                # Nobody is joining this process: surface the crash loudly
                # rather than failing an event no-one observes.
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.generator.close()
            raise TypeError(f"process {self.name!r} yielded non-event {target!r}")
        if self.daemon and not target.triggered:
            self.engine.mark_daemon(target)
        self._waiting_on = target
        target.add_callback(self._resume)

    # -- control ---------------------------------------------------------

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point.

        If the awaited event has already triggered, the process is about
        to wake anyway and the interrupt is dropped (benign race).
        """
        if self.triggered:
            return
        waiting_on = self._waiting_on
        if waiting_on is not None:
            if waiting_on.triggered:
                return  # normal wakeup already in flight
            # Detach from (and cancel) the event we were waiting on so
            # stores/resources do not hand work to a departed waiter.
            if waiting_on.callbacks is not None:
                try:
                    waiting_on.callbacks.remove(self._resume)
                except ValueError:
                    pass
            waiting_on.cancelled = True
        poke = Event(self.engine, name=f"interrupt:{self.name}")
        self._waiting_on = poke
        poke.callbacks = [self._resume]
        poke.fail(Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process unconditionally."""
        if self.triggered:
            return
        waiting_on = self._waiting_on
        if waiting_on is not None and not waiting_on.triggered:
            if waiting_on.callbacks is not None:
                try:
                    waiting_on.callbacks.remove(self._resume)
                except ValueError:
                    pass
            waiting_on.cancelled = True
        self._waiting_on = None
        self.generator.close()
        self.fail(ProcessKilled(self.name))

    def __repr__(self) -> str:
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"
