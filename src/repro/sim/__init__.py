"""Discrete-event simulation kernel.

A small, deterministic, coroutine-based simulation engine in the style
of SimPy, purpose-built for the Catapult reproduction.  Components are
Python generators that ``yield`` waitable events; the :class:`Engine`
advances virtual time (float nanoseconds) in causal order.

The kernel is intentionally self-contained so every hardware and
software model in the repository shares one notion of time, ordering,
and randomness.
"""

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.fluid import (
    FluidCoordinator,
    FluidModel,
    FluidProfile,
    FluidWindow,
    PeriodicTransient,
    ScheduledTransients,
    TransientSource,
)
from repro.sim.process import Process, ProcessKilled
from repro.sim.rng import RngStreams
from repro.sim.sanitizer import (
    DualRunReport,
    SanitizerError,
    SanitizerFinding,
    SimSanitizer,
    dual_run,
    state_digest,
)
from repro.sim.slab import Slab, SlabError
from repro.sim.stores import PriorityStore, Store, StoreFull
from repro.sim.resources import Resource
from repro.sim.units import MS, NS, SEC, US, cycles_to_ns, ns_to_us

__all__ = [
    "AllOf",
    "AnyOf",
    "DualRunReport",
    "Engine",
    "Event",
    "FluidCoordinator",
    "FluidModel",
    "FluidProfile",
    "FluidWindow",
    "Interrupt",
    "MS",
    "NS",
    "PeriodicTransient",
    "PriorityStore",
    "Process",
    "ProcessKilled",
    "Resource",
    "RngStreams",
    "SEC",
    "SanitizerError",
    "SanitizerFinding",
    "ScheduledTransients",
    "SimSanitizer",
    "SimulationError",
    "Slab",
    "SlabError",
    "Store",
    "StoreFull",
    "Timeout",
    "TransientSource",
    "US",
    "cycles_to_ns",
    "dual_run",
    "ns_to_us",
    "state_digest",
]
