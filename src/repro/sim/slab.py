"""Slab/freelist recycling for per-request hot-path objects.

A million-arrival open-loop run allocates (and promptly discards) one
completion event, one guard deadline, and one lease record per request
— garbage-collector churn that the kernel's ``__slots__`` classes made
cheap but not free.  A :class:`Slab` removes the allocation entirely:
released objects park on a bounded freelist and the next acquire hands
one back after running the caller's ``reset`` hook.

Recycling's classic failure mode is *resurrection*: handing an object
back out (or accepting its release) while its previous life is still
referenced by live machinery — a queued engine entry, a pending
condition, an unfired callback.  The slab guards against it:

* every object carries a live flag (``_slab_live``) that acquire sets
  and release clears — double release and double acquire of the same
  object always raise, sanitizer or not;
* an optional ``still_live`` predicate inspects the object at release
  time (e.g. "is this event still scheduled and undispatched?"); a
  release that flunks it raises, and under ``REPRO_SANITIZE=1`` is
  also recorded as a ``slab-resurrection`` finding with the caller's
  site.

The flag lives on the recycled objects themselves, so slabbed classes
must either have a ``__dict__`` or include ``_slab_live`` in their
``__slots__`` — the kernel's :class:`~repro.sim.events.Event` tree
qualifies via :meth:`Slab.for_events` helpers at the call sites.
"""

from __future__ import annotations

import collections.abc
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine


class SlabError(RuntimeError):
    """A recycled object was used while live (or released while free)."""


class Slab:
    """A bounded freelist of reusable objects.

    ``factory`` builds a fresh object when the freelist is empty;
    ``reset`` (optional) scrubs a recycled object back to its pristine
    state on acquire; ``still_live`` (optional) vets objects at release
    time.  ``capacity`` bounds the parked freelist — releases beyond it
    simply drop the object to the garbage collector.
    """

    __slots__ = (
        "factory",
        "reset",
        "still_live",
        "capacity",
        "engine",
        "_free",
        "allocated",
        "recycled",
    )

    def __init__(
        self,
        factory: collections.abc.Callable[[], object],
        reset: collections.abc.Callable[[object], None] | None = None,
        still_live: collections.abc.Callable[[object], bool] | None = None,
        capacity: int = 4096,
        engine: "Engine | None" = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.factory = factory
        self.reset = reset
        self.still_live = still_live
        self.capacity = capacity
        self.engine = engine
        self._free: list[object] = []
        self.allocated = 0  # fresh constructions (cache misses)
        self.recycled = 0  # freelist hits

    @classmethod
    def for_events(
        cls, engine: "Engine", name: str = "", capacity: int = 4096
    ) -> "Slab":
        """A slab of plain :class:`~repro.sim.events.Event` objects.

        The ``reset`` hook scrubs a recycled event back to the state a
        fresh ``Engine.event()`` would produce; ``still_live`` refuses
        to accept an event whose previous firing is still sitting in
        the engine queue (scheduled but not yet dispatched) — recycling
        it then would hand its waiters someone else's completion.
        """
        from repro.sim.events import _PENDING

        def factory() -> object:
            return engine.event(name=name)

        def reset(event) -> None:
            event.callbacks = None
            event.cancelled = False
            event.triggered = False
            event._value = _PENDING
            event._exception = None
            event._dispatched = False
            event._daemon = False
            event._scheduled = False

        def still_live(event) -> bool:
            return event._scheduled and not event._dispatched

        return cls(
            factory,
            reset=reset,
            still_live=still_live,
            capacity=capacity,
            engine=engine,
        )

    def _violation(self, message: str) -> typing.NoReturn:
        if self.engine is not None and self.engine.sanitizer is not None:
            self.engine.sanitizer.note_resurrection(message)
        raise SlabError(message)

    def acquire(self) -> object:
        free = self._free
        if free:
            obj = free.pop()
            if getattr(obj, "_slab_live", False):
                self._violation(
                    f"slab acquire returned {obj!r} which is already live"
                )
            if self.reset is not None:
                self.reset(obj)
            self.recycled += 1
        else:
            obj = self.factory()
            self.allocated += 1
        obj._slab_live = True
        return obj

    def release(self, obj: object) -> None:
        if not getattr(obj, "_slab_live", False):
            self._violation(
                f"double release of {obj!r}: it is already on the freelist "
                "(or was never acquired from this slab)"
            )
        if self.still_live is not None and self.still_live(obj):
            self._violation(
                f"release of {obj!r} while still live: recycling it now "
                "would resurrect an object the engine still references"
            )
        obj._slab_live = False
        free = self._free
        if len(free) < self.capacity:
            free.append(obj)

    def __len__(self) -> int:
        return len(self._free)

    def __repr__(self) -> str:
        return (
            f"<Slab free={len(self._free)}/{self.capacity} "
            f"allocated={self.allocated} recycled={self.recycled}>"
        )
