"""Counted resources (semaphores) for modelling cores, ports, and buses."""

from __future__ import annotations

import typing
from collections import deque

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Resource:
    """A resource with ``capacity`` interchangeable units.

    ``request()`` returns an event that succeeds when a unit is granted;
    the holder must call ``release()`` exactly once.  Grants are FIFO.

    Example::

        core = Resource(eng, capacity=12, name="cpu")

        def job(eng, core):
            grant = core.request()
            yield grant
            try:
                yield eng.timeout(100.0)
            finally:
                core.release()
    """

    def __init__(self, engine: "Engine", capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque[Event] = deque()
        self._request_label = f"req:{name}"

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that succeeds when one unit is granted."""
        event = Event(self.engine, self._request_label)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit; hands it to the oldest live waiter if any."""
        if self.in_use <= 0:
            raise RuntimeError(f"release() without grant on {self.name!r}")
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.cancelled:
                waiter.succeed()
                return
        self.in_use -= 1

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name} {self.in_use}/{self.capacity} "
            f"waiting={len(self._waiters)}>"
        )
