"""Deterministic, named random-number streams.

Every component draws randomness from its own stream, derived from the
engine seed and a stable name.  Adding a new component therefore never
perturbs the random sequence seen by existing components — essential
for reproducible experiments and meaningful A/B ablations.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """A factory of independent ``random.Random`` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.root_seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RngStreams":
        """Derive a child factory with an independent seed space."""
        digest = hashlib.sha256(f"{self.root_seed}/{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
