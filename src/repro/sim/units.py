"""Time units and conversions.

The simulation clock counts **nanoseconds** as floats.  All public
constants convert *to* nanoseconds: ``5 * US`` is five microseconds.
"""

NS = 1.0
US = 1_000.0
MS = 1_000_000.0
SEC = 1_000_000_000.0
MIN = 60.0 * SEC
HOUR = 60.0 * MIN
DAY = 24.0 * HOUR


def cycles_to_ns(cycles: float, clock_mhz: float) -> float:
    """Convert a cycle count at ``clock_mhz`` MHz into nanoseconds.

    >>> cycles_to_ns(200, 200.0)
    1000.0
    """
    if clock_mhz <= 0:
        raise ValueError(f"clock must be positive, got {clock_mhz} MHz")
    return cycles * 1_000.0 / clock_mhz


def ns_to_us(ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return ns / US


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Convert gigabits/second into bytes/nanosecond.

    >>> gbps_to_bytes_per_ns(8.0)
    1.0
    """
    return gbps / 8.0


def transfer_time_ns(num_bytes: float, gbps: float) -> float:
    """Serialization time for ``num_bytes`` at ``gbps`` gigabits/second."""
    if gbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {gbps} Gb/s")
    return num_bytes / gbps_to_bytes_per_ns(gbps)
