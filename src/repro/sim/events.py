"""Waitable events for the simulation kernel.

An :class:`Event` is a one-shot occurrence.  Processes wait on events by
``yield``-ing them; the engine resumes the process when the event
triggers.  Events may succeed with a value or fail with an exception
(which is re-raised inside every waiting process).

This module is the per-event hot path of every experiment: a
million-arrival open-loop run allocates tens of millions of events, so
the classes are ``__slots__``-only (no per-instance dict), state flags
are plain attributes instead of computed properties, and the callback
list is allocated lazily (most events never get more than one waiter).
"""

from __future__ import annotations

import collections.abc
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

# Sentinel distinguishing "not yet triggered" from "triggered with None".
_PENDING = object()


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable occurrence.

    Callbacks are invoked by the engine in trigger order at the trigger
    timestamp.  An event can only be triggered once; triggering twice is
    a programming error and raises ``RuntimeError``.
    """

    __slots__ = (
        "engine",
        "name",
        "callbacks",
        "cancelled",
        "triggered",
        "_value",
        "_exception",
        "_dispatched",
        "_daemon",
        "_scheduled",
        "_slab_live",  # freelist recycling flag; see repro.sim.slab
    )

    # Class-level fallback: only Timeout carries a real deadline value.
    # The engine reads this on lazily-triggered entries without a
    # ``getattr`` probe (a plain Event scheduled untriggered resolves to
    # the class attribute, None).
    _timeout_value = None

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self.callbacks: list | None = None  # allocated on first waiter
        self.cancelled = False  # abandoned by its waiter (kill/interrupt)
        self.triggered = False  # set by succeed()/fail()/lazy deadline
        self._value: object = _PENDING
        self._exception: BaseException | None = None
        self._dispatched = False
        self._daemon = False
        self._scheduled = False
        self._slab_live = False

    # -- state ---------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True if the event succeeded (triggered without exception)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> object:
        """The success value; raises if pending or failed."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise RuntimeError(f"event {self!r} has not been triggered")
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    # -- triggering ----------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully, delivering ``value``."""
        if self.triggered:
            raise RuntimeError(f"event {self!r} already triggered")
        self.triggered = True
        self._value = value
        self.engine._schedule_trigger(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise RuntimeError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self.triggered = True
        self._exception = exception
        self._value = None
        self.engine._schedule_trigger(self)
        return self

    # -- engine plumbing -------------------------------------------------

    def add_callback(self, callback: collections.abc.Callable[["Event"], None]) -> None:
        """Register ``callback``; fired immediately if already dispatched."""
        if self._dispatched:
            callback(self)
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "ok" if self.ok else ("failed" if self.triggered else "pending")
        label = self.name or self.__class__.__name__
        return f"<{label} {state}>"


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay.

    Timeouts trigger *lazily*: the entry sits untriggered in the engine's
    timer queue and receives its value only when the deadline pops.
    :meth:`cancel` therefore makes the entry vanish for free — the engine
    drops cancelled, still-untriggered entries without dispatching them.
    """

    __slots__ = ("delay", "_timeout_value")

    def __init__(self, engine: "Engine", delay: float, value: object = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(engine)
        self.delay = delay
        self._timeout_value = value
        engine._schedule_at(engine.now + delay, self)

    def cancel(self) -> None:
        """Disarm a pending timeout its waiter no longer needs.

        The entry is dropped — not dispatched — when the engine reaches
        it (true lazy deletion; removal from the timer queue itself
        would be O(n)).  It is also demoted to daemon work immediately,
        so an abandoned deadline no longer keeps a bare ``run()`` alive
        until it fires.
        """
        if self.triggered or self.cancelled:
            return
        self.cancelled = True
        self.engine.mark_daemon(self)
        self.engine._note_cancel()

    def rearm(self, delay: float, value: object = None) -> "Timeout":
        """Re-schedule a *dispatched* timeout ``delay`` ns from now.

        Object recycling for tight per-arrival loops: an arrival source
        that sleeps a million times can reuse one ``Timeout`` instead
        of allocating a million.  Only a dispatched timeout may be
        rearmed — an undispatched one still has a queue entry (pending,
        or lazily cancelled and not yet dropped), and resetting its
        flags would resurrect that stale entry as a spurious second
        firing.  Rearming a live timeout raises ``RuntimeError``; under
        the sanitizer it is additionally recorded as a
        ``slab-resurrection`` finding.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        engine = self.engine
        if not self._dispatched:
            if engine.sanitizer is not None:
                engine.sanitizer.note_resurrection(
                    f"rearm of {self!r}: the previous arming is still queued"
                )
            raise RuntimeError(
                f"cannot rearm {self!r}: not dispatched yet (the previous "
                "arming still has a live or lazily-cancelled queue entry)"
            )
        self.delay = delay
        self._timeout_value = value
        self.callbacks = None
        self.cancelled = False
        self.triggered = False
        self._value = _PENDING
        self._exception = None
        self._dispatched = False
        self._daemon = False
        self._scheduled = False
        if engine.sanitizer is not None:
            engine.sanitizer.note_rearm(self)
        engine._schedule_at(engine.now + delay, self)
        return self

    def __repr__(self) -> str:
        state = "ok" if self.ok else ("failed" if self.triggered else "pending")
        if self.cancelled and not self.triggered:
            state = "cancelled"
        return f"<Timeout({self.delay}) {state}>"


class ConditionValue(dict):
    """Mapping of event -> value for AllOf/AnyOf results."""


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_ok_count")

    def __init__(self, engine: "Engine", events: collections.abc.Sequence[Event]):
        super().__init__(engine, name=self.__class__.__name__)
        self.events = list(events)
        # Count satisfied children instead of rescanning the whole list
        # on every child trigger: a condition over N events is O(N)
        # total, not O(N^2) — an open-loop run awaits an AllOf over one
        # child per admitted arrival, where the rescan dominated long-
        # horizon experiments.
        self._ok_count = 0
        if not self.events:
            self.succeed(ConditionValue())
            return
        for event in self.events:
            if event.triggered:
                self._on_child(event)
                if self.triggered:
                    return
            else:
                event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._ok_count += 1
        if self._is_satisfied():
            self.succeed(self._collect())

    def _is_satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> ConditionValue:
        values = ConditionValue()
        for event in self.events:
            if event.ok:
                values[event] = event._value
        return values


class AllOf(_Condition):
    """Succeeds when every child event has succeeded."""

    __slots__ = ()

    def _is_satisfied(self) -> bool:
        return self._ok_count >= len(self.events)


class AnyOf(_Condition):
    """Succeeds when at least one child event has succeeded."""

    __slots__ = ()

    def _is_satisfied(self) -> bool:
        return self._ok_count >= 1
