"""FIFO and priority stores (bounded queues) for producer/consumer flows.

``Store.put`` and ``Store.get`` return events; processes yield them.
Bounded stores apply backpressure: a ``put`` into a full store blocks
until a consumer makes room — this is how Xon/Xoff flow control and
DMA staging buffers are modelled.
"""

from __future__ import annotations

import heapq
import math
import typing
from collections import deque

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class StoreFull(Exception):
    """Raised by non-blocking ``try_put`` on a full store."""


class Store:
    """A FIFO queue with optional capacity.

    Items are delivered to getters in arrival order; waiting getters are
    served in request order (fairness matters for the DMA fairness
    modelling).
    """

    def __init__(self, engine: "Engine", capacity: float = math.inf, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.items: deque = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, object]] = deque()
        # Event labels are precomputed: put/get run once per item moved,
        # and per-event f-string formatting shows up in long experiments.
        self._put_label = f"put:{name}"
        self._get_label = f"get:{name}"

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    # -- blocking API ------------------------------------------------------

    def put(self, item: object) -> Event:
        """Return an event that succeeds once ``item`` is enqueued."""
        event = Event(self.engine, self._put_label)
        if not self.is_full and not self._putters:
            self._enqueue(item)
            event.succeed(item)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        event = Event(self.engine, self._get_label)
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_waiting_putters()
        else:
            self._getters.append(event)
        return event

    # -- non-blocking API ---------------------------------------------------

    def try_put(self, item: object) -> None:
        """Enqueue immediately or raise :class:`StoreFull`."""
        if self.is_full:
            raise StoreFull(self.name)
        self._enqueue(item)

    def try_get(self) -> object | None:
        """Dequeue immediately, or return None if empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._admit_waiting_putters()
        return item

    # -- internals -----------------------------------------------------------

    def _pop_live_getter(self):
        """Next getter whose process has not been killed/interrupted."""
        while self._getters:
            event = self._getters.popleft()
            if not event.cancelled:
                return event
        return None

    def _enqueue(self, item: object) -> None:
        getter = self._pop_live_getter()
        if getter is not None:
            getter.succeed(item)
        else:
            self.items.append(item)

    def _admit_waiting_putters(self) -> None:
        while self._putters and not self.is_full:
            event, item = self._putters.popleft()
            if event.cancelled:
                continue  # putter departed; drop its item
            self._enqueue(item)
            event.succeed(item)

    def __repr__(self) -> str:
        return (
            f"<{self.__class__.__name__} {self.name} {len(self.items)}/"
            f"{self.capacity} getters={len(self._getters)}>"
        )


class PriorityStore(Store):
    """A store that delivers the smallest item first.

    Items must be orderable; use ``(priority, seq, payload)`` tuples to
    guarantee a total order.
    """

    def __init__(self, engine: "Engine", capacity: float = math.inf, name: str = ""):
        super().__init__(engine, capacity, name)
        self.items: list = []

    def __len__(self) -> int:
        return len(self.items)

    def _enqueue(self, item: object) -> None:
        getter = self._pop_live_getter()
        if getter is not None:
            getter.succeed(item)
        else:
            heapq.heappush(self.items, item)

    def get(self) -> Event:
        event = Event(self.engine, self._get_label)
        if self.items:
            event.succeed(heapq.heappop(self.items))
            self._admit_waiting_putters()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> object | None:
        if not self.items:
            return None
        item = heapq.heappop(self.items)
        self._admit_waiting_putters()
        return item
