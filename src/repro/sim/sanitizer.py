"""SimSanitizer: runtime race and leak detection for the sim kernel.

Opt-in via ``Engine(sanitize=True)`` or ``REPRO_SANITIZE=1``.  The
sanitizer watches four contract violations that static analysis cannot
prove:

* **Timeout leaks** — a deadline that stays armed after every waiter
  has moved on (the classic forgotten ``cancel()`` after an ``AnyOf``
  race) keeps a bare ``run()`` alive and bloats the queue.  Reported
  with the creation site.
* **Orphaned processes** — a non-daemon process still alive when a
  bare ``run()`` drains is waiting on an event nothing will ever
  trigger: a silent deadlock.
* **Slot-lease leaks** — leases acquired from a shared
  :class:`~repro.host.slots.SlotAllocator` whose owning deployment was
  released without returning them: the slots are lost to every future
  tenant of that server.
* **Non-monotonic dispatch** — the engine's core ordering invariant,
  asserted on every event.

The **dual-run race detector** (:func:`dual_run`) goes further: it
runs a scenario twice, the second time with a *salted* tie-break order
(same event times, different order among same-timestamp events — a
legal alternative schedule), and compares state digests.  A scenario
whose observable state depends on same-timestamp dispatch order has a
real discrete-event race.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import sys
import typing

from repro.sim.events import Event, Timeout

if typing.TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Callable

    from repro.sim.engine import Engine
    from repro.sim.process import Process

# Default tie-break salt for the shuffled run: a large odd constant so
# XOR flips high and low sequence bits alike.
DEFAULT_TIE_SALT = 0x5DEECE66D

_KERNEL_FILES = (
    f"{os.sep}sim{os.sep}engine.py",
    f"{os.sep}sim{os.sep}events.py",
    f"{os.sep}sim{os.sep}process.py",
    f"{os.sep}sim{os.sep}sanitizer.py",
    f"{os.sep}sim{os.sep}stores.py",
    f"{os.sep}sim{os.sep}resources.py",
    f"{os.sep}sim{os.sep}slab.py",
    f"{os.sep}sim{os.sep}fluid.py",
)


class SanitizerError(RuntimeError):
    """Raised at run() return when the sanitizer holds findings."""


@dataclasses.dataclass(frozen=True)
class SanitizerFinding:
    """One detected violation."""

    kind: str  # timeout-leak | orphan-process | lease-leak | clock-regression | slab-resurrection
    message: str
    site: str  # creation site "file:line in func", or "" when unknown

    def format(self) -> str:
        suffix = f" (created at {self.site})" if self.site else ""
        return f"[{self.kind}] {self.message}{suffix}"


@dataclasses.dataclass
class LeaseToken:
    """Tracks one acquisition of a shared resource until closed."""

    kind: str
    label: str
    site: str
    owner: object = None  # object with a .released attribute, if any
    closed: bool = False

    def close(self) -> None:
        self.closed = True


def _creation_site() -> str:
    """First stack frame outside the sim kernel, as 'file:line in func'."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.endswith(_KERNEL_FILES):
            return f"{filename}:{frame.f_lineno} in {frame.f_code.co_name}"
        frame = frame.f_back
    return ""


class SimSanitizer:
    """Per-engine runtime checker; created by ``Engine(sanitize=True)``."""

    def __init__(self, engine: "Engine", strict: bool = True):
        self.engine = engine
        self.strict = strict
        self.findings: list[SanitizerFinding] = []
        self._timeout_sites: dict[Timeout, str] = {}
        self._processes: list[Process] = []
        self._process_sites: dict[object, str] = {}
        self._leases: list[LeaseToken] = []
        # Order-insensitive event-trace digest: records accumulate per
        # timestamp and fold in sorted order when the clock advances,
        # so two tie-break schedules of a race-free scenario digest
        # identically.
        self._trace_hash = hashlib.sha256()
        self._trace_time: float | None = None
        self._trace_records: list[str] = []

    # -- engine hooks ----------------------------------------------------

    def note_timeout(self, timeout: Timeout) -> None:
        self._timeout_sites[timeout] = _creation_site()

    def note_rearm(self, timeout: Timeout) -> None:
        """A recycled timeout was re-armed: track the new arming's site
        so leak findings point at the rearm, not the original birth."""
        self._timeout_sites[timeout] = _creation_site()

    def note_resurrection(self, message: str) -> None:
        """A recycled object (slab entry, rearmed timeout) was brought
        back to life while its previous life was still live."""
        self.findings.append(
            SanitizerFinding(
                kind="slab-resurrection", message=message, site=_creation_site()
            )
        )

    def note_process(self, process: "Process") -> None:
        self._processes.append(process)
        self._process_sites[process] = _creation_site()

    def on_dispatch(self, when: float, event: Event) -> None:
        """Called by the engine for every dispatch, before the clock moves."""
        now = self.engine.now
        if when < now:
            self.findings.append(
                SanitizerFinding(
                    kind="clock-regression",
                    message=(
                        f"dispatch at t={when} after clock reached {now}: "
                        "the (time, seq) ordering invariant is broken"
                    ),
                    site="",
                )
            )
        if isinstance(event, Timeout) and self._timeout_abandoned(event):
            self.findings.append(
                SanitizerFinding(
                    kind="timeout-leak",
                    message=(
                        f"{event!r} fired at t={when} with no live waiter; "
                        "it was kept armed (and kept run() alive) after every "
                        "waiter moved on — cancel() it when the race resolves"
                    ),
                    site=self._timeout_sites.get(event, ""),
                )
            )
        if when != self._trace_time:
            self._fold_trace()
            self._trace_time = when
        self._trace_records.append(
            f"{type(event).__name__}:{event.name}:{event.cancelled:d}"
        )

    # -- resource tracking ----------------------------------------------

    def track_lease(
        self, kind: str, label: str, owner: object = None
    ) -> LeaseToken:
        token = LeaseToken(kind=kind, label=label, site=_creation_site(), owner=owner)
        self._leases.append(token)
        return token

    def open_leases(self) -> "list[LeaseToken]":
        return [token for token in self._leases if not token.closed]

    # -- leak predicates -------------------------------------------------

    @staticmethod
    def _timeout_abandoned(timeout: Timeout) -> bool:
        """Armed, and every registered waiter has already triggered."""
        if timeout.cancelled or timeout.triggered:
            return False
        callbacks = timeout.callbacks
        if not callbacks:
            return True  # never awaited at all
        for callback in callbacks:
            owner = getattr(callback, "__self__", None)
            if not isinstance(owner, Event):
                return False  # opaque waiter; assume live
            if not owner.triggered:
                return False  # a pending process/condition may still need it
        return True

    def _pending_timeout_leaks(self) -> "list[SanitizerFinding]":
        findings = []
        for _, _, event in self.engine._pending_entries():
            if isinstance(event, Timeout) and self._timeout_abandoned(event):
                findings.append(
                    SanitizerFinding(
                        kind="timeout-leak",
                        message=(
                            f"{event!r} still armed at run() return with no "
                            "live waiter — cancel() abandoned deadlines"
                        ),
                        site=self._timeout_sites.get(event, ""),
                    )
                )
        return findings

    def _orphan_processes(self) -> "list[SanitizerFinding]":
        findings = []
        for process in self._processes:
            if process.triggered or process.daemon or process.expendable:
                continue
            waiting = process._waiting_on
            findings.append(
                SanitizerFinding(
                    kind="orphan-process",
                    message=(
                        f"{process!r} still alive after the queue drained, "
                        f"waiting on {waiting!r} which nothing will trigger"
                    ),
                    site=self._process_sites.get(process, ""),
                )
            )
        return findings

    def _lease_leaks(self) -> "list[SanitizerFinding]":
        findings = []
        for token in self._leases:
            if token.closed:
                continue
            owner_released = bool(getattr(token.owner, "released", False))
            if owner_released:
                findings.append(
                    SanitizerFinding(
                        kind="lease-leak",
                        message=(
                            f"{token.kind} {token.label!r}: owner was released "
                            "but the lease was never returned — the slots are "
                            "lost to every future tenant"
                        ),
                        site=token.site,
                    )
                )
        return findings

    # -- checks ----------------------------------------------------------

    def check(self, drained: bool = False) -> "list[SanitizerFinding]":
        """Collect leak findings; raise when strict and any exist.

        Called by the engine at every ``run()`` return (``drained=True``
        for a bare run that emptied its non-daemon work).  Timeout and
        lease leaks are checked on every return; orphan detection only
        after a drain, because a time-bounded run legitimately leaves
        work pending.
        """
        self.findings.extend(self._pending_timeout_leaks())
        self.findings.extend(self._lease_leaks())
        if drained:
            self.findings.extend(self._orphan_processes())
        if self.findings and self.strict:
            lines = "\n  ".join(finding.format() for finding in self.findings)
            raise SanitizerError(f"SimSanitizer found {len(self.findings)} issue(s):\n  {lines}")
        return self.findings

    # -- trace digest ----------------------------------------------------

    def _fold_trace(self) -> None:
        if self._trace_time is None:
            return
        self._trace_hash.update(repr(self._trace_time).encode())
        for record in sorted(self._trace_records):
            self._trace_hash.update(record.encode())
        self._trace_records.clear()

    def trace_digest(self) -> str:
        """Digest of the dispatch trace, order-insensitive per timestamp."""
        snapshot = self._trace_hash.copy()
        if self._trace_time is not None:
            snapshot.update(repr(self._trace_time).encode())
            for record in sorted(self._trace_records):
                snapshot.update(record.encode())
        return snapshot.hexdigest()


# -- dual-run race detection ---------------------------------------------


def state_digest(state: object) -> str:
    """SHA-256 of a canonical, order-stable rendering of ``state``."""
    digest = hashlib.sha256()
    digest.update(_canonical(state).encode())
    return digest.hexdigest()


def _canonical(obj: object) -> str:
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: _canonical(kv[0]))
        body = ",".join(f"{_canonical(k)}:{_canonical(v)}" for k, v in items)
        return "{" + body + "}"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(item) for item in obj)) + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(_canonical(item) for item in obj) + "]"
    if isinstance(obj, float):
        return repr(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            field.name: getattr(obj, field.name)
            for field in dataclasses.fields(obj)
        }
        return f"{type(obj).__name__}({_canonical(fields)})"
    return repr(obj)


@dataclasses.dataclass(frozen=True)
class DualRunReport:
    """Outcome of a tie-break-shuffled A/B run."""

    baseline_state: str
    shuffled_state: str
    baseline_trace: str
    shuffled_trace: str

    @property
    def state_match(self) -> bool:
        return self.baseline_state == self.shuffled_state

    @property
    def trace_match(self) -> bool:
        return self.baseline_trace == self.shuffled_trace

    @property
    def racy(self) -> bool:
        """True when observable state depends on same-timestamp order."""
        return not self.state_match


def dual_run(
    scenario: "Callable[[Engine], object]",
    seed: int = 0,
    salt: int = DEFAULT_TIE_SALT,
    strict_leaks: bool = False,
) -> DualRunReport:
    """Run ``scenario`` twice — FIFO vs salted tie-breaks — and compare.

    ``scenario`` receives a sanitized engine, must drive it (including
    ``engine.run()``), and returns its observable state (stats,
    counters, latency summaries — anything :func:`state_digest` can
    canonicalize).  Differing digests mean the scenario's outcome
    depends on the dispatch order of same-timestamp events: a
    discrete-event race no single run can expose.
    """
    from repro.sim.engine import Engine

    def run_once(tie_salt: int) -> tuple[str, str]:
        engine = Engine(
            seed=seed,
            timer_wheel=False,
            sanitize=True,
            tie_break_salt=tie_salt,
        )
        engine.sanitizer.strict = strict_leaks
        state = scenario(engine)
        return state_digest(state), engine.sanitizer.trace_digest()

    baseline_state, baseline_trace = run_once(0)
    shuffled_state, shuffled_trace = run_once(salt)
    return DualRunReport(
        baseline_state=baseline_state,
        shuffled_state=shuffled_state,
        baseline_trace=baseline_trace,
        shuffled_trace=shuffled_trace,
    )
