"""The simulation engine: a causally ordered event loop.

Time is a float in nanoseconds.  Determinism is guaranteed by a
monotonic tie-break sequence number on every scheduled entry, so two
runs with the same seed produce identical traces.
"""

from __future__ import annotations

import heapq
import typing

from repro.sim.events import Event, Timeout
from repro.sim.rng import RngStreams

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling in the past)."""


class Engine:
    """Discrete-event engine owning the clock, the queue, and the RNG.

    Typical use::

        eng = Engine(seed=42)

        def worker(eng):
            yield eng.timeout(5.0)
            return "done"

        proc = eng.process(worker(eng))
        eng.run()
        assert proc.value == "done"
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = RngStreams(seed)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        self._nondaemon_pending = 0

    # -- scheduling ------------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when} < now {self.now}")
        self._seq += 1
        event._scheduled = True
        if not getattr(event, "_daemon", False):
            self._nondaemon_pending += 1
        heapq.heappush(self._queue, (when, self._seq, event))

    def mark_daemon(self, event: Event) -> None:
        """Tag a pending event as daemon work.

        Daemon events (periodic background services like the SEU
        scrubber) do not keep :meth:`run` alive: a bare ``run()``
        returns once only daemon work remains.  ``run(until=...)``
        still executes daemon events up to the deadline.  A daemon
        process must not be a required link in a non-daemon dataflow
        chain — handoffs to daemons may be left undispatched by a
        bare ``run()``.
        """
        if not getattr(event, "_daemon", False):
            event._daemon = True
            if getattr(event, "_scheduled", False):
                self._nondaemon_pending -= 1

    def _schedule_trigger(self, event: Event) -> None:
        """Schedule dispatch of an already-triggered event at ``now``."""
        self._schedule_at(self.now, event)

    # -- factories -------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create an untriggered event."""
        return Event(self, name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: typing.Generator, name: str = "", daemon: bool = False
    ) -> "Process":
        """Spawn a new process from a generator.

        ``daemon=True`` marks background periodic work that should not
        keep a bare :meth:`run` alive.
        """
        from repro.sim.process import Process

        return Process(self, generator, name=name, daemon=daemon)

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Process the single next event in the queue."""
        when, _seq, event = heapq.heappop(self._queue)
        self.now = when
        if not getattr(event, "_daemon", False):
            self._nondaemon_pending -= 1
        if not event.triggered:
            # A Timeout reaching its deadline triggers lazily, here.
            event._value = getattr(event, "_timeout_value", None)
        event._dispatch()
        event._dispatched = True

    def run(self, until: float | None = None) -> float:
        """Run until the queue drains or simulated time passes ``until``.

        Returns the simulation time at which execution stopped.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            while self._queue:
                if until is None and self._nondaemon_pending <= 0:
                    break  # only daemon (periodic background) work remains
                when = self._queue[0][0]
                if until is not None and when > until:
                    # max(): a nested run_until (e.g. a reconciliation
                    # placing a replacement ring from inside a watchdog
                    # callback) may already have advanced the clock past
                    # the deadline; never move time backwards.
                    self.now = max(self.now, until)
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def run_until(self, event: Event) -> object:
        """Run until ``event`` triggers; returns its value (raises on fail).

        Raises :class:`SimulationError` if the queue drains first.
        """
        while not event.triggered:
            if not self._queue:
                raise SimulationError(f"queue drained before {event!r} triggered")
            self.step()
        # Drain same-timestamp callbacks so observers see a settled state.
        while self._queue and self._queue[0][0] == self.now:
            self.step()
        return event.value

    @property
    def queue_length(self) -> int:
        """Number of pending scheduled entries (diagnostic)."""
        return len(self._queue)

    def __repr__(self) -> str:
        return f"<Engine t={self.now:.1f}ns queue={len(self._queue)}>"
