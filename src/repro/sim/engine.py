"""The simulation engine: a causally ordered event loop.

Time is a float in nanoseconds.  Determinism is guaranteed by a
monotonic tie-break sequence number on every scheduled entry, so two
runs with the same seed produce identical traces.

The queue is three-tiered for per-event cost (the ceiling on
million-arrival experiments):

* a FIFO **ready deque** for already-triggered events dispatching at the
  current instant (the majority: every ``succeed()``/``fail()``) — O(1)
  instead of a heap push;
* a binary **heap** for near deadlines;
* a banded **timer wheel** for far deadlines (coarse time bands, one
  list per band, flushed into the heap when the clock approaches the
  band).  Cancelled timeouts parked in a band are dropped at flush time
  without ever touching the heap — the request-timeout churn of the
  cluster layer (one guard deadline per request, cancelled microseconds
  later) costs O(1) per request instead of bloating the heap for the
  full timeout horizon.

All three tiers dispatch in strict global ``(time, seq)`` order, so the
event order is bit-identical to a single-heap engine
(``timer_wheel=False`` keeps the heap-only arrangement for A/B tests).
"""

from __future__ import annotations

import collections.abc
import heapq
import math
import os
import typing
from collections import deque

from repro.sim.events import Event, Timeout
from repro.sim.rng import RngStreams

if typing.TYPE_CHECKING:  # pragma: no cover
    from collections.abc import Iterator

    from repro.sim.fluid import FluidCoordinator
    from repro.sim.process import Process
    from repro.sim.sanitizer import SimSanitizer

# One timer-wheel band covers this much simulated time.  Coarse enough
# that band bookkeeping is negligible, fine enough that a cancelled
# request deadline (armed ~ms-to-s ahead, cancelled ~µs later) almost
# always dies in its band, never reaching the heap.
DEFAULT_BAND_NS = 1_000_000.0  # 1 ms


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling in the past)."""


class Engine:
    """Discrete-event engine owning the clock, the queue, and the RNG.

    Typical use::

        eng = Engine(seed=42)

        def worker(eng):
            yield eng.timeout(5.0)
            return "done"

        proc = eng.process(worker(eng))
        eng.run()
        assert proc.value == "done"

    Diagnostics: :attr:`events_dispatched` counts dispatched events,
    :attr:`events_dropped` counts cancelled entries that were dropped
    without dispatch (lazy deletion), and :attr:`peak_queue_length`
    tracks the high-water mark of pending entries across all tiers.
    """

    def __init__(
        self,
        seed: int = 0,
        timer_wheel: bool = True,
        timer_band_ns: float = DEFAULT_BAND_NS,
        sanitize: bool | None = None,
        tie_break_salt: int = 0,
        fluid: "bool | FluidCoordinator" = False,
    ):
        if timer_band_ns <= 0:
            raise ValueError(f"band width must be positive, got {timer_band_ns}")
        self.now: float = 0.0
        self.rng = RngStreams(seed)
        # -- fluid fast-forward (opt-in hybrid analytic mode) --
        self.fluid: FluidCoordinator | None = None
        if fluid:
            from repro.sim.fluid import FluidCoordinator

            self.fluid = (
                fluid if isinstance(fluid, FluidCoordinator) else FluidCoordinator(self)
            )
            self.fluid.engine = self
        # Deadline of the innermost bounded run(until=...), math.inf
        # outside one.  Fluid windows never advance past it: an external
        # driver may mutate cluster state the moment a bounded run
        # returns, and the analytic step must not have credited traffic
        # beyond that point.
        self.run_deadline_ns: float = math.inf
        # -- SimSanitizer (opt-in runtime race/leak detection) --
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        self.sanitizer: SimSanitizer | None = None
        if sanitize:
            from repro.sim.sanitizer import SimSanitizer

            self.sanitizer = SimSanitizer(self)
        # A nonzero salt permutes the tie-break keys of same-timestamp
        # events — a *legal alternative schedule* the dual-run race
        # detector compares against the FIFO baseline.  Salted engines
        # route every entry through the heap (the ready-deque/wheel
        # fast paths assume monotonic keys).
        self._tie_salt = tie_break_salt
        if tie_break_salt:
            timer_wheel = False
        self._queue: list[tuple[float, int, Event]] = []  # near-deadline heap
        self._ready: deque[tuple[float, int, Event]] = deque()  # triggered, due now
        self._seq = 0
        self._running = False
        self._nondaemon_pending = 0
        self._pending = 0  # entries across all tiers
        self.events_dispatched = 0
        self.events_dropped = 0
        self.peak_queue_length = 0
        # -- timer wheel (far deadlines, banded) --
        self._wheel = timer_wheel
        self._band_ns = timer_band_ns
        self._bands: dict[int, list[tuple[float, int, Event]]] = {}
        self._band_heap: list[int] = []  # pending band indices, min first
        self._band_floor = 0  # bands <= floor flush straight to the heap
        # Start time of the earliest pending band (inf when none): the
        # run loops compare against this plain float instead of calling
        # into the flush machinery on every pop.
        self._band_start = math.inf
        # Cancelled-but-still-queued entries.  Once they outnumber the
        # live entries the queue is compacted, so a workload that arms
        # and disarms one guard deadline per request runs in flat
        # memory instead of accumulating every dead deadline until its
        # band comes due.
        self._cancelled_pending = 0

    # -- scheduling ------------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        if when < self.now:
            raise SimulationError(f"cannot schedule at {when} < now {self.now}")
        self._seq += 1
        seq = self._seq
        if self._tie_salt:
            # XOR with the salt is a bijection on the key space:
            # uniqueness (hence a total order) is preserved while the
            # relative order of same-timestamp entries is permuted.
            seq ^= self._tie_salt
        event._scheduled = True
        if not event._daemon:
            self._nondaemon_pending += 1
        pending = self._pending = self._pending + 1
        if pending > self.peak_queue_length:
            self.peak_queue_length = pending
        if self._wheel:
            band = int(when // self._band_ns)
            if band * self._band_ns > when:  # float floor-division guard
                band -= 1
            if band > self._band_floor:
                bucket = self._bands.get(band)
                if bucket is None:
                    self._bands[band] = [(when, seq, event)]
                    heapq.heappush(self._band_heap, band)
                    start = self._band_heap[0] * self._band_ns
                    if start < self._band_start:
                        self._band_start = start
                else:
                    bucket.append((when, seq, event))
                return
        heapq.heappush(self._queue, (when, seq, event))

    def _schedule_trigger(self, event: Event) -> None:
        """Schedule dispatch of an already-triggered event at ``now``.

        Triggered events dispatch at the current instant, after
        everything already pending at this timestamp — a FIFO append,
        no heap involved.
        """
        self._seq += 1
        event._scheduled = True
        if not event._daemon:
            self._nondaemon_pending += 1
        pending = self._pending = self._pending + 1
        if pending > self.peak_queue_length:
            self.peak_queue_length = pending
        if self._tie_salt:
            # Salted engines have no FIFO tier: the permuted key decides
            # the order among same-timestamp entries via the heap.
            heapq.heappush(self._queue, (self.now, self._seq ^ self._tie_salt, event))
        else:
            self._ready.append((self.now, self._seq, event))

    def _note_cancel(self) -> None:
        """Record a cancellation; compact the queue when dead weight wins.

        Dropping entries eagerly would be O(n) per cancel; instead the
        sweep runs only when cancelled entries outnumber live ones (and
        at least a thousand have piled up), making it amortised O(1)
        per cancellation while bounding the queue at ~2x the live size.
        """
        self._cancelled_pending += 1
        if self._cancelled_pending > 1024 and self._cancelled_pending * 2 > self._pending:
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled, untriggered entry from all queue tiers."""
        dropped = 0
        queue = self._queue
        live = [e for e in queue if not (e[2].cancelled and not e[2].triggered)]
        if len(live) != len(queue):
            dropped += len(queue) - len(live)
            heapq.heapify(live)
            self._queue = live
        bands = self._bands
        for band, bucket in bands.items():
            kept = [e for e in bucket if not (e[2].cancelled and not e[2].triggered)]
            if len(kept) != len(bucket):
                dropped += len(bucket) - len(kept)
                # Emptied buckets stay in place: their index is still on
                # the band heap and is popped (harmlessly) at flush time.
                bands[band] = kept
        self._pending -= dropped
        self.events_dropped += dropped
        self._cancelled_pending = 0

    def mark_daemon(self, event: Event) -> None:
        """Tag a pending event as daemon work.

        Daemon events (periodic background services like the SEU
        scrubber) do not keep :meth:`run` alive: a bare ``run()``
        returns once only daemon work remains.  ``run(until=...)``
        still executes daemon events up to the deadline.  A daemon
        process must not be a required link in a non-daemon dataflow
        chain — handoffs to daemons may be left undispatched by a
        bare ``run()``.
        """
        if not event._daemon:
            event._daemon = True
            if event._scheduled:
                self._nondaemon_pending -= 1

    # -- factories -------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create an untriggered event."""
        return Event(self, name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        timeout = Timeout(self, delay, value)
        if self.sanitizer is not None:
            self.sanitizer.note_timeout(timeout)
        return timeout

    def process(
        self,
        generator: collections.abc.Generator,
        name: str = "",
        daemon: bool = False,
        expendable: bool = False,
    ) -> "Process":
        """Spawn a new process from a generator.

        ``daemon=True`` marks background periodic work that should not
        keep a bare :meth:`run` alive.  ``expendable=True`` marks a
        process that may legitimately never finish (e.g. a quarantine
        drain waiting on a response that was lost in the fabric) so the
        sanitizer's orphan detector does not report it.
        """
        from repro.sim.process import Process

        process = Process(
            self, generator, name=name, daemon=daemon, expendable=expendable
        )
        if self.sanitizer is not None:
            self.sanitizer.note_process(process)
        return process

    # -- queue internals -------------------------------------------------

    def _flush_due_bands(self) -> None:
        """Move every band that could hold the next event into the heap.

        Cancelled, still-untriggered entries (disarmed deadlines) are
        dropped here — they never reach the heap at all.
        """
        band_heap = self._band_heap
        queue = self._queue
        ready = self._ready
        band_ns = self._band_ns
        while band_heap:
            start = band_heap[0] * band_ns
            if ready and ready[0][0] < start:
                break
            if queue and queue[0][0] < start:
                break
            band = heapq.heappop(band_heap)
            self._band_floor = band
            for entry in self._bands.pop(band):
                event = entry[2]
                if event.cancelled and not event.triggered:
                    self._pending -= 1
                    self._cancelled_pending -= 1
                    self.events_dropped += 1
                    if not event._daemon:
                        self._nondaemon_pending -= 1
                    continue
                heapq.heappush(queue, entry)
        self._band_start = band_heap[0] * band_ns if band_heap else math.inf

    def _pop_next(self) -> tuple[float, int, Event] | None:
        """Remove and return the globally next entry, or None if empty.

        Cancelled, untriggered entries (lazily-deleted timeouts) are
        dropped — never dispatched — on the way.
        """
        queue = self._queue
        ready = self._ready
        inf = math.inf
        while True:
            if ready:
                # ready entries were appended at (then-) current time, so
                # the ready head is never later than the queue head; it is
                # the flush candidate.
                if self._band_start <= ready[0][0]:
                    self._flush_due_bands()
                head = ready[0]
                if queue and queue[0] < head:
                    entry = heapq.heappop(queue)
                else:
                    entry = ready.popleft()
            elif queue:
                if self._band_start <= queue[0][0]:
                    self._flush_due_bands()
                entry = heapq.heappop(queue)
            else:
                if self._band_start < inf:
                    # Only banded entries remain (e.g. far-future
                    # timeouts, or parked cancelled deadlines to drop).
                    self._flush_due_bands()
                    continue
                return None
            event = entry[2]
            if event.cancelled and not event.triggered:
                self._pending -= 1
                self._cancelled_pending -= 1
                self.events_dropped += 1
                if not event._daemon:
                    self._nondaemon_pending -= 1
                continue
            self._pending -= 1
            return entry

    def _unpop(self, entry: tuple[float, int, Event]) -> None:
        """Return a popped-but-undispatched entry to the queue."""
        heapq.heappush(self._queue, entry)
        self._pending += 1

    def _dispatch(self, entry: tuple[float, int, Event]) -> None:
        """Advance the clock to ``entry`` and run its event's callbacks."""
        event = entry[2]
        if self.sanitizer is not None:
            self.sanitizer.on_dispatch(entry[0], event)
        self.now = entry[0]
        if not event._daemon:
            self._nondaemon_pending -= 1
        if not event.triggered:
            # A Timeout reaching its deadline triggers lazily, here.
            event.triggered = True
            event._value = event._timeout_value
        self.events_dispatched += 1
        # Dispatched before the callbacks run, so a callback registered
        # *during* dispatch fires immediately instead of being lost.
        event._dispatched = True
        callbacks = event.callbacks
        if callbacks is not None:
            event.callbacks = None
            for callback in callbacks:
                callback(event)

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        """Process the single next event in the queue."""
        entry = self._pop_next()
        if entry is None:
            raise IndexError("step() on an empty event queue")
        self._dispatch(entry)

    def run(self, until: float | None = None) -> float:
        """Run until the queue drains or simulated time passes ``until``.

        Returns the simulation time at which execution stopped.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        pop_next = self._pop_next
        dispatch = self._dispatch
        saved_deadline = self.run_deadline_ns
        self.run_deadline_ns = math.inf if until is None else until
        try:
            if until is None:
                while self._nondaemon_pending > 0:
                    entry = pop_next()
                    if entry is None:
                        break
                    dispatch(entry)
            else:
                while True:
                    entry = pop_next()
                    if entry is None:
                        break
                    if entry[0] > until:
                        # max(): a nested run_until (e.g. a reconciliation
                        # placing a replacement ring from inside a watchdog
                        # callback) may already have advanced the clock past
                        # the deadline; never move time backwards.
                        self._unpop(entry)
                        self.now = max(self.now, until)
                        break
                    dispatch(entry)
        finally:
            self._running = False
            self.run_deadline_ns = saved_deadline
        if until is not None and self.now < until:
            self.now = until
        if self.sanitizer is not None:
            # Leak checks fire on the normal-exit path only (a crashed
            # dispatch already has a better error in flight).
            self.sanitizer.check(drained=until is None)
        return self.now

    def run_until(self, event: Event) -> object:
        """Run until ``event`` triggers; returns its value (raises on fail).

        Raises :class:`SimulationError` if the queue drains first.
        """
        pop_next = self._pop_next
        dispatch = self._dispatch
        while not event.triggered:
            entry = pop_next()
            if entry is None:
                raise SimulationError(f"queue drained before {event!r} triggered")
            dispatch(entry)
        # Drain same-timestamp callbacks so observers see a settled state.
        while True:
            entry = pop_next()
            if entry is None:
                break
            if entry[0] != self.now:
                self._unpop(entry)
                break
            dispatch(entry)
        return event.value

    def _pending_entries(self) -> "Iterator[tuple[float, int, Event]]":
        """Every queued entry across all tiers (diagnostic/sanitizer)."""
        yield from self._ready
        yield from self._queue
        for bucket in self._bands.values():
            yield from bucket

    @property
    def queue_length(self) -> int:
        """Number of pending scheduled entries (diagnostic)."""
        return self._pending

    def __repr__(self) -> str:
        return f"<Engine t={self.now:.1f}ns queue={self._pending}>"
