"""Plain-text table and series formatting for benchmark output.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that output consistent.
"""

from __future__ import annotations

import collections.abc


def format_table(
    headers: collections.abc.Sequence[str],
    rows: collections.abc.Sequence[collections.abc.Sequence],
    title: str = "",
) -> str:
    """Fixed-width table with a separator rule under the headers."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths, strict=False)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths, strict=False)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: collections.abc.Mapping[str, collections.abc.Sequence],
    x_values: collections.abc.Sequence,
    title: str = "",
) -> str:
    """A figure as columns: x plus one column per named series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
