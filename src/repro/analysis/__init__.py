"""Measurement, reporting, and trace-replay utilities."""

from repro.analysis.stats import LatencyStats, ReservoirSample, cdf_points, percentile
from repro.analysis.meters import ThroughputMeter
from repro.analysis.replay import PathStep, TraceReplay, replay_trace
from repro.analysis.tables import format_series, format_table

__all__ = [
    "LatencyStats",
    "PathStep",
    "ReservoirSample",
    "ThroughputMeter",
    "TraceReplay",
    "cdf_points",
    "format_series",
    "format_table",
    "percentile",
    "replay_trace",
]
