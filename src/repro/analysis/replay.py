"""FDR trace replay: reconstruct a packet's path across the fabric.

The Flight Data Recorder keeps "a trace ID that corresponds to a
specific compressed document that can be replayed in a test
environment" (§3.6).  This module is the replay side: given a pod and
a trace ID, it collects every FDR sighting across all routers and
orders them into the packet's journey — the workflow the authors used
to diagnose deadlocks and stage hangs at scale.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.fabric.pod import Pod


@dataclasses.dataclass(frozen=True)
class PathStep:
    """One router sighting of the traced packet."""

    timestamp_ns: float
    machine_id: str
    node_id: tuple
    direction: str
    kind: str
    size_bytes: int
    queue_lengths: tuple


@dataclasses.dataclass
class TraceReplay:
    """The assembled journey of one trace ID."""

    trace_id: int
    steps: list

    @property
    def hop_count(self) -> int:
        return len(self.steps)

    @property
    def total_latency_ns(self) -> float:
        if len(self.steps) < 2:
            return 0.0
        return self.steps[-1].timestamp_ns - self.steps[0].timestamp_ns

    def nodes_visited(self) -> list:
        return [step.node_id for step in self.steps]

    def stalls(self, threshold_ns: float = 50_000.0) -> list:
        """Suspiciously long gaps between consecutive sightings —
        where a deadlocked or hung stage shows up."""
        slow = []
        for before, after in zip(self.steps, self.steps[1:], strict=False):
            gap = after.timestamp_ns - before.timestamp_ns
            if gap > threshold_ns:
                slow.append((before, after, gap))
        return slow

    def congested_steps(self) -> list:
        """Sightings where the router reported non-empty queues."""
        return [step for step in self.steps if step.queue_lengths]

    def format(self) -> str:
        lines = [f"trace {self.trace_id}: {self.hop_count} sightings, "
                 f"{self.total_latency_ns / 1000.0:.1f} us end to end"]
        for step in self.steps:
            queues = (
                " queues=" + ",".join(f"{p}:{d}" for p, d in step.queue_lengths)
                if step.queue_lengths
                else ""
            )
            lines.append(
                f"  t={step.timestamp_ns / 1000.0:10.1f}us  "
                f"{step.machine_id:<12} {step.direction:<16} "
                f"{step.kind:<12} {step.size_bytes:>7}B{queues}"
            )
        return "\n".join(lines)


def replay_trace(pod: "Pod", trace_id: int) -> TraceReplay:
    """Collect and order every FDR sighting of ``trace_id`` in a pod."""
    steps = []
    for node, server in pod.servers.items():
        for entry in server.shell.fdr.entries_for_trace(trace_id):
            steps.append(
                PathStep(
                    timestamp_ns=entry.timestamp_ns,
                    machine_id=server.machine_id,
                    node_id=node,
                    direction=entry.direction,
                    kind=entry.kind,
                    size_bytes=entry.size_bytes,
                    queue_lengths=entry.queue_lengths,
                )
            )
    steps.sort(key=lambda step: step.timestamp_ns)
    return TraceReplay(trace_id=trace_id, steps=steps)
